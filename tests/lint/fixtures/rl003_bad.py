"""RL003 bad: unseeded randomness in every flavor."""

import random

import numpy as np


def draw():
    a = random.random()                  # line 9: stdlib global RNG
    b = random.choice([1, 2, 3])         # line 10
    c = np.random.rand(4)                # line 11: numpy legacy global
    d = np.random.shuffle([1, 2])        # line 12
    rng = np.random.default_rng()        # line 13: unseeded generator
    r = random.Random()                  # line 14: unseeded Random
    return a, b, c, d, rng, r
