"""Tests for repro.core.queueing — the M/M/c drop predictor."""

import numpy as np
import pytest

from repro.core.queueing import (ClassQueue, erlang_c, mm1k_blocking,
                                 predict_completion)
from repro.simulate.engine import simulate_trace
from repro.workload.trace import generate_trace


class TestErlangC:
    def test_single_server_equals_rho(self):
        """For M/M/1, P(wait) = rho."""
        assert erlang_c(1, 0.5) == pytest.approx(0.5)
        assert erlang_c(1, 0.9) == pytest.approx(0.9)

    def test_zero_load(self):
        assert erlang_c(10, 0.0) == 0.0

    def test_saturation(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 9.9) == 1.0

    def test_monotone_in_load(self):
        loads = np.linspace(0.1, 7.9, 20)
        vals = [erlang_c(8, a) for a in loads]
        assert all(np.diff(vals) > 0)

    def test_more_servers_less_waiting(self):
        """At equal utilization, bigger pools wait less (pooling gain)."""
        assert erlang_c(20, 16.0) < erlang_c(5, 4.0)

    def test_known_value(self):
        # c=2, a=1 (rho=0.5): ErlangB = 1/(1+... ) b2 = (1*... ) = 0.2;
        # C = 0.2/(0.5 + 0.5*0.2) = 1/3
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="server"):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError, match="load"):
            erlang_c(2, -1.0)


class TestMM1KBlocking:
    def test_rho_one(self):
        assert mm1k_blocking(1.0, 4) == pytest.approx(0.2)

    def test_light_load_vanishes(self):
        assert mm1k_blocking(0.2, 20) < 1e-10

    def test_zero_capacity_blocks_all(self):
        assert mm1k_blocking(0.5, 0) == 1.0

    def test_zero_load(self):
        assert mm1k_blocking(0.0, 5) == 0.0

    def test_monotone_in_rho(self):
        rhos = np.linspace(0.1, 2.0, 15)
        vals = [mm1k_blocking(r, 5) for r in rhos]
        assert all(np.diff(vals) > 0)

    def test_monotone_in_capacity(self):
        vals = [mm1k_blocking(0.9, k) for k in range(1, 10)]
        assert all(np.diff(vals) < 0)

    def test_negative_rho_rejected(self):
        with pytest.raises(ValueError, match="utilization"):
            mm1k_blocking(-0.1, 5)


class TestClassQueue:
    def make(self, wait_p=0.5, servers=4, lam=2.0, mean_s=1.0):
        return ClassQueue(node_type=0, pstate=0, servers=servers,
                          arrival_rate=lam, mean_service_s=mean_s,
                          wait_probability=wait_p)

    def test_impossible_deadline(self):
        q = self.make()
        assert q.on_time_probability(service_s=2.0, slack_s=1.0) == 0.0

    def test_idle_pool_always_on_time(self):
        q = self.make(lam=0.0)
        assert q.on_time_probability(1.0, 1.5) == pytest.approx(1.0)

    def test_saturated_pool_drops_inverse_capacity(self):
        """At rho = 1 the M/M/1/K blocking is 1/(K+1)."""
        q = self.make(servers=4, lam=4.0, mean_s=1.0)   # rho = 1
        # margin 3 -> capacity 4 -> blocking 1/5
        assert q.on_time_probability(1.0, 4.0) == pytest.approx(0.8)

    def test_large_slack_approaches_one(self):
        q = self.make()
        assert q.on_time_probability(1.0, 100.0) == pytest.approx(1.0)

    def test_monotone_in_slack(self):
        q = self.make()
        slacks = np.linspace(1.0, 5.0, 10)
        vals = [q.on_time_probability(1.0, s) for s in slacks]
        assert all(np.diff(vals) >= 0)

    def test_utilization(self):
        q = self.make(servers=4, lam=2.0, mean_s=1.0)
        assert q.utilization == pytest.approx(0.5)


class TestPrediction:
    def test_bounded_by_plan(self, scenario, assignment):
        rates, pools = predict_completion(
            scenario.datacenter, scenario.workload, assignment.pstates,
            assignment.tc)
        planned = assignment.tc.sum(axis=1)
        assert np.all(rates <= planned + 1e-9)
        assert np.all(rates >= 0)
        assert pools  # at least one active class

    def test_pools_within_utilization(self, scenario, assignment):
        _, pools = predict_completion(
            scenario.datacenter, scenario.workload, assignment.pstates,
            assignment.tc)
        for p in pools:
            assert 0.0 <= p.utilization <= 1.0 + 1e-6

    def test_predicts_des_direction(self, scenario, assignment):
        """The predictor identifies which types the DES actually drops:
        its predicted completion fraction correlates positively with the
        simulated one across served types."""
        dc, wl = scenario.datacenter, scenario.workload
        rates, _ = predict_completion(dc, wl, assignment.pstates,
                                      assignment.tc)
        trace = generate_trace(wl, 30.0, np.random.default_rng(8))
        m = simulate_trace(dc, wl, assignment.tc, assignment.pstates,
                           trace, duration=30.0)
        planned = assignment.tc.sum(axis=1)
        served = planned > 1e-9
        pred_frac = rates[served] / planned[served]
        sim_frac = (m.atc.sum(axis=1)[served]) / planned[served]
        # both identify the same weakest type
        assert int(np.argmin(pred_frac)) == int(np.argmin(sim_frac)) or \
            abs(pred_frac[np.argmin(sim_frac)]
                - pred_frac.min()) < 0.2

    def test_shape_check(self, scenario, assignment):
        with pytest.raises(ValueError, match="shape"):
            predict_completion(scenario.datacenter, scenario.workload,
                               assignment.pstates, assignment.tc[:, :4])
