"""Tests for repro.thermal.constraints — the linearized LP view."""

import numpy as np
import pytest

from repro.power.crac import crac_power_kw
from repro.thermal.constraints import ThermalLinearization


@pytest.fixture(scope="module")
def lin(small_dc):
    t = np.full(small_dc.n_crac, 15.0)
    return ThermalLinearization.build(small_dc.thermal, t,
                                      small_dc.redline_c)


class TestAffineAccuracy:
    def test_inlets_match_model(self, small_dc, lin):
        p = np.linspace(0.4, 0.8, small_dc.n_nodes)
        state = small_dc.thermal.steady_state(lin.t_crac_out, p)
        np.testing.assert_allclose(lin.inlet_temperatures(p), state.t_in)

    def test_crac_power_matches_eq3(self, small_dc, lin):
        """While no CRAC clamps, the linearized power is exact."""
        p = small_dc.node_power_kw(small_dc.all_p0_pstates())
        state = small_dc.thermal.steady_state(lin.t_crac_out, p)
        exact = sum(
            crac_power_kw(c.flow_m3s, state.t_in[i], lin.t_crac_out[i],
                          cop_model=c.cop_model)
            for i, c in enumerate(small_dc.cracs))
        assert lin.crac_power(p) == pytest.approx(exact, rel=1e-9)

    def test_crac_power_linear_in_p(self, small_dc, lin):
        p1 = np.full(small_dc.n_nodes, 0.5)
        p2 = np.full(small_dc.n_nodes, 0.7)
        mid = lin.crac_power((p1 + p2) / 2)
        assert mid == pytest.approx(
            (lin.crac_power(p1) + lin.crac_power(p2)) / 2)

    def test_redline_rhs_consistent(self, small_dc, lin):
        """gain @ P <= redline_rhs  <=>  T_in <= redline."""
        p = np.full(small_dc.n_nodes, 0.6)
        lhs = lin.inlet_gain @ p
        t_in = lin.inlet_temperatures(p)
        viol_direct = t_in > small_dc.redline_c + 1e-9
        viol_rows = lhs > lin.redline_rhs + 1e-9
        np.testing.assert_array_equal(viol_direct, viol_rows)


class TestCheck:
    def test_feasible_point_passes(self, small_dc, lin):
        p = small_dc.node_power_kw(small_dc.all_off_pstates())
        assert lin.check(p)

    def test_overheated_point_fails(self, small_dc):
        t = np.full(small_dc.n_crac, 25.0)  # warmest allowed outlets
        lin_hot = ThermalLinearization.build(small_dc.thermal, t,
                                             small_dc.redline_c)
        p = small_dc.node_power_kw(small_dc.all_p0_pstates())
        assert not lin_hot.check(p)

    def test_shape_validation(self, small_dc):
        with pytest.raises(ValueError, match="redline"):
            ThermalLinearization.build(small_dc.thermal,
                                       np.full(small_dc.n_crac, 15.0),
                                       np.asarray([25.0]))

    def test_n_nodes(self, small_dc, lin):
        assert lin.n_nodes == small_dc.n_nodes
