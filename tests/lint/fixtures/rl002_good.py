"""RL002 good: serialization goes through the canonicalizer."""

import hashlib

from repro.experiments.engine import canonical_json


def cache_key(config_dict, seed):
    payload = {"config": config_dict, "seed": seed}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def tag_blob(tags):
    return canonical_json({"tags": set(tags)})
