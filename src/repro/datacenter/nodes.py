"""Compute node and core bookkeeping (Section III.C).

A :class:`ComputeNode` ties a :class:`~repro.datacenter.coretypes.NodeTypeSpec`
to a physical position in the room.  Cores use a *global* index across
the whole data center, as in the paper; :class:`ComputeNode` records the
range of global core indices it owns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.coretypes import NodeTypeSpec

__all__ = ["ComputeNode"]


@dataclass(frozen=True)
class ComputeNode:
    """One compute node placed in the data center.

    Attributes
    ----------
    index:
        Node index ``j`` in ``0..NCN-1``.
    spec:
        The node type (``NT_j``); nodes of equal type are identical.
    type_index:
        Index of ``spec`` in the data center's node-type list (``NT_j``
        as an integer, convenient for array indexing).
    rack, slot, label, hot_aisle:
        Physical placement (see :mod:`repro.datacenter.layout`).
    first_core:
        Global index of this node's first core; the node owns
        ``first_core .. first_core + spec.cores_per_node - 1``.
    """

    index: int
    spec: NodeTypeSpec
    type_index: int
    rack: int
    slot: int
    label: str
    hot_aisle: int
    first_core: int

    @property
    def n_cores(self) -> int:
        return self.spec.cores_per_node

    @property
    def core_indices(self) -> range:
        """Global indices of the cores in this node (``cores_j``)."""
        return range(self.first_core, self.first_core + self.n_cores)

    def node_power_kw(self, core_pstates: np.ndarray | list[int]) -> float:
        """Eq. 1: base power plus the power of each core's P-state.

        ``core_pstates`` holds one P-state index per core of this node
        (local order).  The turned-off state contributes 0 kW but the
        base power is always drawn — the paper does not allow switching
        whole nodes off in an oversubscribed system.
        """
        ps = np.asarray(core_pstates, dtype=int)
        if ps.shape != (self.n_cores,):
            raise ValueError(
                f"node {self.index} expects {self.n_cores} P-states, got {ps.shape}")
        table = np.asarray(self.spec.pstate_power_kw)
        if np.any(ps < 0) or np.any(ps >= table.size):
            raise IndexError(f"P-state out of range for node {self.index}")
        return self.spec.base_power_kw + float(table[ps].sum())
