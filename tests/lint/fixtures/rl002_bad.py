"""RL002 bad: the PR-3 cache-key bug, both shapes.

``cache_key`` reproduces the original defect verbatim: a config whose
``psis`` field was a set, serialized with ``default=list`` — iteration
order (and therefore the digest) depended on ``PYTHONHASHSEED``.
"""

import hashlib
import json


def cache_key(config_dict, seed):
    payload = {"config": config_dict, "seed": seed}
    blob = json.dumps(payload, sort_keys=True, default=list)   # line 14
    return hashlib.sha256(blob.encode()).hexdigest()


def tag_blob(tags):
    return json.dumps({"tags": set(tags)})                     # line 19
