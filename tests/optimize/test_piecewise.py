"""Tests for repro.optimize.piecewise — PWL functions and concave hulls."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimize.piecewise import (PiecewiseLinear, Segment,
                                      concave_majorant_points)


def paper_rr() -> PiecewiseLinear:
    """The Figure 3 example function."""
    return PiecewiseLinear([0.0, 0.05, 0.10, 0.15], [0.0, 0.5, 0.9, 1.2])


class TestConstruction:
    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            PiecewiseLinear([0, 1], [0, 1, 2])

    def test_requires_two_points(self):
        with pytest.raises(ValueError, match=">= 2"):
            PiecewiseLinear([0], [1])

    def test_requires_increasing_x(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PiecewiseLinear([0, 0.1, 0.1], [0, 1, 2])

    def test_requires_1d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            PiecewiseLinear([[0, 1]], [[0, 1]])

    def test_through_points_sorts(self):
        f = PiecewiseLinear.through_points([(0.1, 1.0), (0.0, 0.0)])
        assert f.x[0] == 0.0 and f.y[0] == 0.0

    def test_through_points_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            PiecewiseLinear.through_points([(0.1, 1.0), (0.1, 2.0)])


class TestEvaluation:
    def test_at_breakpoints(self):
        f = paper_rr()
        assert f(0.05) == pytest.approx(0.5)
        assert f(0.15) == pytest.approx(1.2)

    def test_interpolates_between(self):
        f = paper_rr()
        assert f(0.075) == pytest.approx(0.7)

    def test_clamps_outside_domain(self):
        f = paper_rr()
        assert f(-1.0) == pytest.approx(0.0)
        assert f(1.0) == pytest.approx(1.2)

    def test_vectorized(self):
        f = paper_rr()
        out = f(np.array([0.0, 0.05, 0.10]))
        np.testing.assert_allclose(out, [0.0, 0.5, 0.9])

    def test_domain(self):
        assert paper_rr().domain == (0.0, 0.15)


class TestSegments:
    def test_slopes(self):
        np.testing.assert_allclose(paper_rr().slopes(), [10.0, 8.0, 6.0])

    def test_segments_decompose(self):
        segs = paper_rr().segments()
        assert segs[0] == Segment(length=pytest.approx(0.05),
                                  slope=pytest.approx(10.0))
        assert len(segs) == 3

    def test_is_concave_true(self):
        assert paper_rr().is_concave()

    def test_is_concave_false(self):
        dent = PiecewiseLinear([0.0, 0.05, 0.1], [0.0, 0.0, 0.9])
        assert not dent.is_concave()


class TestAlgebra:
    def test_scale(self):
        f = paper_rr().scale(2.0)
        assert f(0.05) == pytest.approx(1.0)

    def test_average_of_identical_is_identity(self):
        f = paper_rr()
        avg = PiecewiseLinear.average([f, f, f])
        np.testing.assert_allclose(avg(f.x), f.y)

    def test_average_merges_breakpoints(self):
        f = PiecewiseLinear([0.0, 1.0], [0.0, 1.0])
        g = PiecewiseLinear([0.0, 0.5, 1.0], [0.0, 1.0, 1.0])
        avg = PiecewiseLinear.average([f, g])
        assert 0.5 in avg.x
        assert avg(0.5) == pytest.approx((0.5 + 1.0) / 2)

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError, match="zero functions"):
            PiecewiseLinear.average([])

    def test_equality(self):
        assert paper_rr() == paper_rr()
        assert paper_rr() != paper_rr().scale(2.0)


class TestConcaveMajorant:
    def test_paper_figure5(self):
        """Figure 4 -> Figure 5: the (0.05, 0) dent is removed."""
        f = PiecewiseLinear([0.0, 0.05, 0.10, 0.15], [0.0, 0.0, 0.9, 1.2])
        hull = f.concave_majorant()
        np.testing.assert_allclose(hull.x, [0.0, 0.10, 0.15])
        np.testing.assert_allclose(hull.y, [0.0, 0.9, 1.2])

    def test_concave_input_unchanged(self):
        f = paper_rr()
        hull = f.concave_majorant()
        np.testing.assert_allclose(hull.x, f.x)
        np.testing.assert_allclose(hull.y, f.y)

    def test_collinear_points_kept_or_merged_consistently(self):
        f = PiecewiseLinear([0.0, 1.0, 2.0], [0.0, 1.0, 2.0])
        hull = f.concave_majorant()
        # value is what matters, not breakpoint count
        assert hull(1.5) == pytest.approx(1.5)

    @given(
        ys=st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=2, max_size=12),
    )
    @settings(max_examples=200, deadline=None)
    def test_hull_properties(self, ys):
        xs = np.arange(len(ys), dtype=float)
        hx, hy = concave_majorant_points(xs, np.asarray(ys))
        hull = PiecewiseLinear(hx, hy)
        # 1. dominates the input at every breakpoint
        assert np.all(hull(xs) >= np.asarray(ys) - 1e-9)
        # 2. concave
        assert hull.is_concave(tol=1e-7)
        # 3. touches the input at its own breakpoints (minimality)
        orig = dict(zip(xs, ys))
        for x, y in zip(hx, hy):
            assert y == pytest.approx(orig[x])
        # 4. idempotent
        hx2, hy2 = concave_majorant_points(hx, hy)
        np.testing.assert_allclose(hx2, hx)
        np.testing.assert_allclose(hy2, hy)
