"""Suppression pragmas and the committed-baseline workflow."""

import json
from pathlib import Path

import pytest

from repro.lint import (Baseline, Finding, LintConfig, lint_paths,
                        load_baseline, parse_suppressions, select_rules,
                        write_baseline)

BAD_LINE = "x = time.time()\n"


def _write(tmp_path: Path, body: str) -> Path:
    path = tmp_path / "mod.py"
    path.write_text("import time\n" + body)
    return path


def _rl004(tmp_path: Path, body: str):
    return lint_paths([_write(tmp_path, body)],
                      rules=select_rules(select=["RL004"]),
                      config=LintConfig())


class TestSuppressions:
    def test_line_pragma_suppresses_only_that_line(self, tmp_path):
        report = _rl004(
            tmp_path,
            "a = time.time()  # repro-lint: disable=RL004\n"
            "b = time.time()\n")
        assert [f.line for f in report.findings] == [3]
        assert [f.line for f in report.suppressed] == [2]

    def test_file_pragma_suppresses_whole_file(self, tmp_path):
        report = _rl004(
            tmp_path,
            "# repro-lint: disable-file=RL004\n"
            "a = time.time()\n"
            "b = time.time()\n")
        assert report.findings == []
        assert len(report.suppressed) == 2

    def test_disable_file_all(self, tmp_path):
        report = _rl004(
            tmp_path, "# repro-lint: disable-file=all\na = time.time()\n")
        assert report.findings == []

    def test_pragma_for_other_code_does_not_suppress(self, tmp_path):
        report = _rl004(
            tmp_path, "a = time.time()  # repro-lint: disable=RL001\n")
        assert [f.line for f in report.findings] == [2]

    def test_pragma_inside_string_is_inert(self):
        sup = parse_suppressions(
            's = "# repro-lint: disable=RL004"\n')
        assert not sup.is_suppressed("RL004", 1)

    def test_pragma_covers_whole_multiline_statement(self, tmp_path):
        report = _rl004(
            tmp_path,
            "a = time.time(\n"
            ")  # repro-lint: disable=RL004\n")
        assert report.findings == []
        assert [f.line for f in report.suppressed] == [2]

    def test_multiline_pragma_does_not_leak_to_next_statement(self,
                                                              tmp_path):
        report = _rl004(
            tmp_path,
            "a = time.time(\n"
            ")  # repro-lint: disable=RL004\n"
            "b = time.time()\n")
        assert [f.line for f in report.findings] == [4]

    def test_def_line_pragma_suppresses_decorated_function(self):
        sup = parse_suppressions(
            "@decorator\n"
            "def f(a,\n"
            "      b):  # repro-lint: disable=RL004\n"
            "    pass\n")
        assert sup.is_suppressed("RL004", 2)   # the def line
        assert sup.is_suppressed("RL004", 3)
        assert not sup.is_suppressed("RL004", 1)  # not the decorator

    def test_decorator_line_pragma_does_not_reach_def(self):
        sup = parse_suppressions(
            "@decorator  # repro-lint: disable=RL004\n"
            "def f():\n"
            "    pass\n")
        assert sup.is_suppressed("RL004", 1)
        assert not sup.is_suppressed("RL004", 2)

    def test_multiple_codes_one_pragma(self):
        sup = parse_suppressions(
            "x = 1  # repro-lint: disable=RL001,RL004\n")
        assert sup.is_suppressed("RL001", 1)
        assert sup.is_suppressed("RL004", 1)
        assert not sup.is_suppressed("RL002", 1)


class TestBaseline:
    def _finding(self, **kw):
        defaults = dict(path="src/m.py", line=5, col=1, code="RL004",
                        rule="wall-clock", message="msg",
                        context=BAD_LINE.strip())
        defaults.update(kw)
        return Finding(**defaults)

    def test_absorbs_on_context_not_line_number(self):
        base = Baseline([{"code": "RL004", "path": "src/m.py",
                          "context": BAD_LINE.strip(), "reason": "why"}])
        assert base.absorb(self._finding(line=99))      # drifted line
        assert not base.absorb(self._finding(line=100))  # budget spent

    def test_stale_entries_reported(self):
        entry = {"code": "RL004", "path": "src/m.py",
                 "context": "gone = time.time()", "reason": "why"}
        base = Baseline([entry])
        assert base.stale_entries() == [entry]

    def test_write_then_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self._finding()], path, reason="kept on purpose")
        base = load_baseline(path)
        assert base.absorb(self._finding())
        doc = json.loads(path.read_text())
        assert doc["schema"] == 2
        assert doc["entries"][0]["reason"] == "kept on purpose"

    def test_schema_1_file_still_loads(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "schema": 1,
            "entries": [{"code": "RL004", "path": "src/m.py",
                         "context": BAD_LINE.strip(),
                         "reason": "legacy"}]}))
        base = load_baseline(path)
        assert base.absorb(self._finding())

    def test_missing_file_is_empty(self, tmp_path):
        base = load_baseline(tmp_path / "nope.json")
        assert not base.absorb(self._finding())
        assert base.stale_entries() == []

    def test_entry_missing_reason_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "schema": 1,
            "entries": [{"code": "RL004", "path": "p",
                         "context": "c"}]}))
        with pytest.raises(ValueError, match="reason"):
            load_baseline(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_baselined_findings_do_not_fail_report(self, tmp_path):
        mod = _write(tmp_path, BAD_LINE)
        base = Baseline([{"code": "RL004", "path": mod.as_posix(),
                          "context": BAD_LINE.strip(), "reason": "legacy"}])
        report = lint_paths([mod], rules=select_rules(select=["RL004"]),
                            config=LintConfig(), baseline=base)
        assert report.ok
        assert len(report.baselined) == 1


class TestBaselineDrift:
    """Satellite: whitespace-normalized matching with a drift report
    that distinguishes reflowed entries from genuinely stale ones."""

    def _finding(self, context):
        return Finding(path="src/m.py", line=5, col=1, code="RL004",
                       rule="wall-clock", message="msg", context=context)

    def test_reflowed_context_still_absorbs_and_reports_drift(self):
        base = Baseline([{"code": "RL004", "path": "src/m.py",
                          "context": "x  =  time.time()",
                          "reason": "legacy"}])
        assert base.absorb(self._finding("x = time.time()"))
        drift = base.drifted_entries()
        assert len(drift) == 1
        assert drift[0]["context"] == "x  =  time.time()"
        assert drift[0]["found_context"] == "x = time.time()"
        assert base.stale_entries() == []

    def test_exact_match_is_not_drift(self):
        base = Baseline([{"code": "RL004", "path": "src/m.py",
                          "context": "x = time.time()",
                          "reason": "legacy"}])
        assert base.absorb(self._finding("x = time.time()"))
        assert base.drifted_entries() == []

    def test_unmatched_entry_is_stale_not_drifted(self):
        entry = {"code": "RL004", "path": "src/m.py",
                 "context": "gone = time.time()", "reason": "legacy"}
        base = Baseline([entry])
        assert base.stale_entries() == [entry]
        assert base.drifted_entries() == []

    def test_drift_flows_into_report(self, tmp_path):
        mod = _write(tmp_path, BAD_LINE)
        base = Baseline([{"code": "RL004", "path": mod.as_posix(),
                          "context": "x   =   time.time()",
                          "reason": "legacy"}])
        report = lint_paths([mod], rules=select_rules(select=["RL004"]),
                            config=LintConfig(), baseline=base)
        assert report.ok and len(report.baselined) == 1
        assert len(report.baseline_drift) == 1
        assert report.baseline_drift[0]["found_context"] == \
            BAD_LINE.strip()


hypothesis = pytest.importorskip("hypothesis")
given = hypothesis.given
settings = hypothesis.settings
st = hypothesis.strategies

_SAFE_TEXT = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                           exclude_characters='"\'\\'),
    max_size=30)
_QUOTES = st.sampled_from(['"', "'", '"""', "'''"])
_CODES = st.sampled_from(["RL001", "RL004", "all"])


class TestPragmaStringInertness:
    """Property test: a pragma spelled inside a string literal never
    creates a suppression, no matter how the literal is quoted or what
    surrounds the pragma text."""

    @given(prefix=_SAFE_TEXT, suffix=_SAFE_TEXT, quote=_QUOTES,
           code=_CODES)
    @settings(max_examples=200, deadline=None)
    def test_pragma_in_string_literal_never_suppresses(
            self, prefix, suffix, quote, code):
        pragma = f"# repro-lint: disable={code}"
        source = f"s = {quote}{prefix}{pragma}{suffix}{quote}\n"
        sup = parse_suppressions(source)
        assert not sup.file_all
        assert not sup.file_codes
        assert not sup.line_codes
