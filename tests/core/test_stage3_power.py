"""Tests for repro.core.stage3_power — power-aware desired rates."""

import numpy as np
import pytest

from repro.core.stage3_power import solve_stage3_power_aware
from repro.optimize.linprog import InfeasibleError
from repro.power.taskpower import TaskPowerModel, expected_node_power
from repro.thermal.constraints import ThermalLinearization


@pytest.fixture(scope="module")
def lin(scenario, assignment):
    dc = scenario.datacenter
    return ThermalLinearization.build(dc.thermal, assignment.t_crac_out,
                                      dc.redline_c)


@pytest.fixture(scope="module")
def heavy_model(scenario):
    """Compute-heavy mix: every type draws 15% above nominal."""
    t = scenario.workload.n_task_types
    return TaskPowerModel(factors=np.full(t, 1.15), idle_fraction=0.6)


@pytest.fixture(scope="module")
def aware(scenario, assignment, lin, heavy_model):
    return solve_stage3_power_aware(
        scenario.datacenter, scenario.workload, assignment.pstates,
        heavy_model, lin, scenario.p_const)


class TestPowerAwareness:
    def test_respects_cap_under_heavy_mix(self, scenario, assignment, lin,
                                          heavy_model, aware):
        dc, wl = scenario.datacenter, scenario.workload
        p = expected_node_power(dc, wl, assignment.pstates, aware.tc,
                                heavy_model)
        total = p.sum() + lin.crac_power(p)
        assert total <= scenario.p_const * (1 + 1e-6) + 1e-6

    def test_classic_overshoots_where_aware_does_not(self, scenario,
                                                     assignment, lin,
                                                     heavy_model):
        """The motivating failure: classic Stage 3 rates violate the cap
        when every type draws above nominal."""
        dc, wl = scenario.datacenter, scenario.workload
        p = expected_node_power(dc, wl, assignment.pstates, assignment.tc,
                                heavy_model)
        total = p.sum() + lin.crac_power(p)
        # classic budgeting used factor 1.0 and a nearly saturated cap
        assert total > scenario.p_const

    def test_reward_sacrifice_is_bounded(self, assignment, aware):
        """Safety costs some reward but not a collapse."""
        assert aware.reward_rate <= assignment.reward_rate + 1e-6
        assert aware.reward_rate >= 0.5 * assignment.reward_rate

    def test_still_respects_classic_constraints(self, scenario,
                                                assignment, aware):
        dc, wl = scenario.datacenter, scenario.workload
        ecs = wl.ecs[:, dc.core_type, assignment.pstates]
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(aware.tc > 0, aware.tc / ecs, 0.0).sum(axis=0)
        assert np.all(util <= 1.0 + 1e-6)
        assert np.all(aware.tc.sum(axis=1)
                      <= wl.arrival_rates + 1e-6)

    def test_light_mix_matches_classic(self, scenario, assignment, lin):
        """With factors 1.0 and idle saving power, the cap is slack, so
        the power-aware LP reproduces the classic reward."""
        wl = scenario.workload
        neutral = TaskPowerModel(factors=np.ones(wl.n_task_types),
                                 idle_fraction=0.6)
        res = solve_stage3_power_aware(
            scenario.datacenter, wl, assignment.pstates, neutral, lin,
            scenario.p_const)
        assert res.reward_rate == pytest.approx(assignment.reward_rate,
                                                rel=1e-6)

    def test_thermal_rows_hold(self, scenario, assignment, lin,
                               heavy_model, aware):
        dc, wl = scenario.datacenter, scenario.workload
        p = expected_node_power(dc, wl, assignment.pstates, aware.tc,
                                heavy_model)
        assert dc.thermal.is_feasible(assignment.t_crac_out, p,
                                      dc.redline_c)


class TestValidation:
    def test_infeasible_idle_raises(self, scenario, assignment, lin,
                                    heavy_model):
        with pytest.raises(InfeasibleError, match="idle room"):
            solve_stage3_power_aware(
                scenario.datacenter, scenario.workload,
                assignment.pstates, heavy_model, lin, p_const=0.1)

    def test_dimension_check(self, scenario, assignment, lin):
        bad = TaskPowerModel(factors=np.ones(2))
        with pytest.raises(ValueError, match="dimension"):
            solve_stage3_power_aware(
                scenario.datacenter, scenario.workload,
                assignment.pstates, bad, lin, scenario.p_const)
