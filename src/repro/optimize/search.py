"""Coarse-to-fine discretized search over CRAC outlet temperatures.

Section V.B.2 of the paper observes that with the CRAC outlet
temperatures fixed, the Stage 1 problem becomes an LP, and proposes "a
multi-step method where the first step is a coarse-grained search for the
entire range of possible outlet temperatures.  Every subsequent step
searches around the best set ... found in the previous step, however,
with a finer granularity."

:func:`coarse_to_fine_search` implements exactly that, generically over
any objective of a temperature vector, so the same search serves Stage 1,
the baseline assignment and the power-bounds problem (Eq. 17).  Because
the number of grid points grows exponentially with the number of CRAC
units, :func:`coarse_to_fine_search` also supports an optional
"uniform first" pass that scans a common temperature for all CRACs
before searching the full product grid in a narrowed window.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["SearchResult", "coarse_to_fine_search", "temperature_grid",
           "uniform_then_coordinate_search", "seeded_coordinate_search",
           "golden_refine"]

#: Objective signature: maps an outlet-temperature vector to a scalar
#: score, or ``None``/``-inf`` when the temperatures are infeasible.
Objective = Callable[[np.ndarray], float | None]


@dataclass
class SearchResult:
    """Outcome of a discretized temperature search.

    Attributes
    ----------
    temperatures:
        Best outlet-temperature vector found (one entry per CRAC unit).
    score:
        Objective value at the best vector.
    evaluations:
        Total number of objective evaluations performed.
    """

    temperatures: np.ndarray
    score: float
    evaluations: int


def temperature_grid(low: float, high: float, step: float) -> np.ndarray:
    """Inclusive 1-D grid ``low, low+step, ..., <= high``."""
    if step <= 0:
        raise ValueError(f"grid step must be positive, got {step}")
    if high < low:
        raise ValueError(f"empty range [{low}, {high}]")
    n = int(np.floor((high - low) / step + 1e-9)) + 1
    return low + step * np.arange(n)


def coarse_to_fine_search(objective: Objective,
                          n_crac: int,
                          low: float,
                          high: float,
                          *,
                          coarse_step: float = 5.0,
                          refinement_factor: float = 4.0,
                          final_step: float = 1.0,
                          uniform_first: bool = True,
                          maximize: bool = True) -> SearchResult:
    """Multi-step discretized search over CRAC outlet temperatures.

    Parameters
    ----------
    objective:
        Callable evaluated on each candidate vector.  Returning ``None``
        or ``-inf`` (``+inf`` when minimizing) marks the point infeasible.
    n_crac:
        Dimension of the temperature vector.
    low, high:
        Range of admissible outlet temperatures (inclusive), Celsius.
    coarse_step:
        Step of the first (coarsest) grid.
    refinement_factor:
        Each refinement round divides the step by this factor.
    final_step:
        Search stops once the step is at or below this granularity —
        "the outlet temperatures of the CRAC units usually have a
        granularity of 1 degree" (Section V.B.2).
    uniform_first:
        When True, the coarse pass only scans vectors with all CRACs at
        the same temperature (reasonable for homogeneous CRAC units),
        then the full product grid is searched in a window around the
        winner.  This reduces the coarse pass from ``g**n`` to ``g``
        evaluations.
    maximize:
        Sense of the objective.

    Raises
    ------
    RuntimeError
        If no feasible temperature vector exists on any grid.
    """
    if n_crac <= 0:
        raise ValueError(f"n_crac must be positive, got {n_crac}")
    sign = 1.0 if maximize else -1.0
    best_t: np.ndarray | None = None
    best_score = -np.inf
    evaluations = 0

    def consider(t_vec: np.ndarray) -> None:
        nonlocal best_t, best_score, evaluations
        evaluations += 1
        score = objective(t_vec)
        if score is None or not np.isfinite(score):
            return
        if sign * score > best_score:
            best_score = sign * score
            best_t = t_vec.copy()

    # -- coarse pass ---------------------------------------------------
    coarse = temperature_grid(low, high, coarse_step)
    if uniform_first:
        for t in coarse:
            consider(np.full(n_crac, t))
    else:
        for combo in itertools.product(coarse, repeat=n_crac):
            consider(np.asarray(combo))

    if best_t is None:
        # Uniform scan may genuinely miss all feasible points; fall back
        # to the full product grid before giving up.
        if uniform_first and n_crac > 1:
            for combo in itertools.product(coarse, repeat=n_crac):
                consider(np.asarray(combo))
        if best_t is None:
            raise RuntimeError(
                "no feasible CRAC outlet temperature vector in "
                f"[{low}, {high}] at step {coarse_step}")

    # -- refinement rounds ----------------------------------------------
    step = coarse_step
    while step > final_step:
        prev_step = step
        # keep every round's grid on the final lattice ("granularity of
        # 1 degree"): steps are always multiples of final_step
        step = max(final_step,
                   final_step * int(step / refinement_factor / final_step))
        # per-CRAC window of +/- previous step around the incumbent,
        # snapped to the step lattice anchored at `low` so the final
        # round lands on whole-granularity temperatures
        axes: list[np.ndarray] = []
        for i in range(n_crac):
            lo_i = max(low, best_t[i] - prev_step)
            hi_i = min(high, best_t[i] + prev_step)
            lo_i = low + np.ceil((lo_i - low) / step - 1e-9) * step
            axes.append(temperature_grid(lo_i, hi_i, step))
        for combo in itertools.product(*axes):
            consider(np.asarray(combo))

    return SearchResult(temperatures=best_t, score=sign * best_score,
                        evaluations=evaluations)


def uniform_then_coordinate_search(objective: Objective,
                                   n_crac: int,
                                   low: float,
                                   high: float,
                                   *,
                                   step: float = 1.0,
                                   max_sweeps: int = 8,
                                   maximize: bool = True) -> SearchResult:
    """Scalar scan of a common outlet temperature, then coordinate descent.

    The paper notes the product grid "increases exponentially with the
    number of CRAC units"; for the homogeneous CRACs of its simulations a
    much cheaper search is near-optimal: scan one *common* temperature at
    the final granularity (``g`` evaluations), then repeatedly try moving
    each CRAC individually by ``+-step`` until a full sweep yields no
    improvement.  Complexity is ``O(g + sweeps * n_crac)`` objective
    evaluations, versus ``O(g**n_crac)`` for the full grid.

    Raises ``RuntimeError`` when no feasible point exists on the scalar
    scan (coordinate moves start from a feasible incumbent).
    """
    if n_crac <= 0:
        raise ValueError(f"n_crac must be positive, got {n_crac}")
    sign = 1.0 if maximize else -1.0
    evaluations = 0

    def score_of(t_vec: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        s = objective(t_vec)
        if s is None or not np.isfinite(s):
            return -np.inf
        return sign * s

    best_t: np.ndarray | None = None
    best_score = -np.inf
    for t in temperature_grid(low, high, step):
        vec = np.full(n_crac, t)
        s = score_of(vec)
        if s > best_score:
            best_score, best_t = s, vec
    if best_t is None or not np.isfinite(best_score):
        raise RuntimeError(
            f"no feasible uniform CRAC outlet temperature in [{low}, {high}]")

    for _ in range(max_sweeps):
        improved = False
        for i in range(n_crac):
            for delta in (step, -step):
                cand = best_t.copy()
                cand[i] = np.clip(cand[i] + delta, low, high)
                if cand[i] == best_t[i]:
                    continue
                s = score_of(cand)
                if s > best_score + 1e-12:
                    best_score, best_t = s, cand
                    improved = True
        if not improved:
            break
    return SearchResult(temperatures=best_t, score=sign * best_score,
                        evaluations=evaluations)


def seeded_coordinate_search(objective: Objective,
                             seed: np.ndarray,
                             n_crac: int,
                             low: float,
                             high: float,
                             *,
                             step: float = 1.0,
                             max_sweeps: int = 8,
                             maximize: bool = True) -> SearchResult | None:
    """Coordinate descent from a known-good starting vector.

    The warm-started variant of
    :func:`uniform_then_coordinate_search`: instead of the scalar scan,
    the descent starts from ``seed`` — typically the previous control
    epoch's optimal outlet temperatures.  The ``+-step`` moves and the
    ``1e-12`` acceptance threshold are identical to the cold search, so
    when the seed is the cold search's own optimum it is a fixed point
    of the descent and the result is bit-identical to cold.

    Returns ``None`` when the seed itself is infeasible (the caller
    should fall back to the cold search rather than fail).
    """
    if n_crac <= 0:
        raise ValueError(f"n_crac must be positive, got {n_crac}")
    sign = 1.0 if maximize else -1.0
    evaluations = 0

    def score_of(t_vec: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        s = objective(t_vec)
        if s is None or not np.isfinite(s):
            return -np.inf
        return sign * s

    best_t = np.clip(np.asarray(seed, dtype=float).copy(), low, high)
    if best_t.shape != (n_crac,):
        raise ValueError(
            f"seed shape {best_t.shape} does not match n_crac={n_crac}")
    best_score = score_of(best_t)
    if not np.isfinite(best_score):
        return None

    for _ in range(max_sweeps):
        improved = False
        for i in range(n_crac):
            for delta in (step, -step):
                cand = best_t.copy()
                cand[i] = np.clip(cand[i] + delta, low, high)
                if cand[i] == best_t[i]:
                    continue
                s = score_of(cand)
                if s > best_score + 1e-12:
                    best_score, best_t = s, cand
                    improved = True
        if not improved:
            break
    return SearchResult(temperatures=best_t, score=sign * best_score,
                        evaluations=evaluations)


def golden_refine(objective: Callable[[float], float], low: float,
                  high: float, *, tol: float = 1e-3,
                  maximize: bool = True) -> tuple[float, float]:
    """1-D golden-section refinement for a scalar temperature.

    Used by the power-bounds solver to polish the common outlet
    temperature after the discretized scan.  Assumes unimodality on the
    bracket, which holds for the CRAC power curve (the CoP of Eq. 8 is
    monotone increasing over the operating range while removed heat falls
    linearly with outlet temperature).

    Returns ``(t_best, f(t_best))`` in the caller's sense.
    """
    sign = 1.0 if maximize else -1.0
    invphi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = float(low), float(high)
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    fc = sign * objective(c)
    fd = sign * objective(d)
    while abs(b - a) > tol:
        if fc > fd:
            b, d, fd = d, c, fc
            c = b - invphi * (b - a)
            fc = sign * objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + invphi * (b - a)
            fd = sign * objective(d)
    t_best = (a + b) / 2.0
    return t_best, objective(t_best)
