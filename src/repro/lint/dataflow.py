"""A small forward abstract interpreter over function bodies.

:class:`FunctionAnalysis` drives one pass over one function: statements
execute in source order against an environment of ``local name →
abstract value``; branches execute on copies and re-join; loop bodies
run twice so loop-carried values reach a (one-round) fixpoint.  The
value domain is defined entirely by subclass hooks, so the same driver
powers both the unit-dimension analysis (values are physical
dimensions, RL03x) and the determinism-taint analysis (values are sets
of taint atoms with traces, RL04x).

Design constraints, in order:

1. **Deterministic** — environments join in sorted-key order and every
   container is traversed in syntax order, so repeated runs (and runs
   under different ``PYTHONHASHSEED``) emit byte-identical findings.
2. **Err toward silence** — anything the interpreter cannot model
   (dynamic dispatch, ``self.x`` mutation, comprehensions over call
   results) evaluates to the hook's ``bottom`` rather than guessing.
3. **Cheap** — one pass per function per analysis; the whole ``src``
   tree interprets in well under the CI gate's 60 s budget.

Interprocedural behavior comes from *summaries*: analyses walk
functions in :meth:`~repro.lint.callgraph.CallGraph.bottom_up` order,
record what each function's return value carries, and consult that
table at call sites (see the analyses in ``repro/lint/rules/``).
Module-level statements are not interpreted — the invariants under
guard live in function bodies.
"""

from __future__ import annotations

import ast
from typing import Any, Generic, TypeVar

from repro.lint.project import FunctionInfo, ModuleInfo, Project

__all__ = ["FunctionAnalysis"]

V = TypeVar("V")

#: One extra execution of every loop body propagates values assigned in
#: iteration *k* to uses in iteration *k+1*; further rounds cannot grow
#: the environments of the domains used here (joins are idempotent and
#: monotone over finite lattices).
_LOOP_ROUNDS = 2


class FunctionAnalysis(Generic[V]):
    """Forward abstract interpretation of one function body.

    Subclasses implement the value-domain hooks (at minimum
    :meth:`join`); the driver owns statement sequencing, environment
    management and expression dispatch.  ``None`` is the universal
    bottom: absent names, unmodeled expressions and hook defaults all
    evaluate to it.
    """

    def __init__(self, project: Project, func: FunctionInfo) -> None:
        self.project = project
        self.func = func
        self.module: ModuleInfo = func.module
        self.returns: list[tuple[ast.Return, V | None]] = []

    # -- value-domain hooks (override in analyses) ---------------------
    def join(self, a: V, b: V) -> V | None:
        raise NotImplementedError

    def param_value(self, name: str, annotation: str | None) -> V | None:
        """Initial abstract value of one parameter."""
        return None

    def free_name(self, node: ast.Name) -> V | None:
        """Value of a name never assigned locally (global / builtin)."""
        return None

    def const_value(self, node: ast.Constant) -> V | None:
        return None

    def call_result(self, node: ast.Call, fqn: str | None,
                    args: list[V | None],
                    kwargs: dict[str, V | None],
                    receiver: V | None = None) -> V | None:
        """Value of a call; also where analyses check sinks/sources.

        ``receiver`` is the abstract value of ``x`` in ``x.method(...)``
        — method calls are never resolved to project functions, but
        e.g. taint must still flow through ``payload.encode()``.
        """
        return None

    def binop_value(self, node: ast.BinOp, left: V | None,
                    right: V | None) -> V | None:
        return self._join_opt(left, right)

    def compare_values(self, node: ast.Compare,
                       operands: list[V | None]) -> None:
        """Observation hook for comparisons (no value: bools are bottom)."""

    def attribute_value(self, node: ast.Attribute,
                        base: V | None) -> V | None:
        return base

    def subscript_value(self, node: ast.Subscript,
                        base: V | None) -> V | None:
        return base

    def collection_value(self, node: ast.expr,
                         elements: list[V | None]) -> V | None:
        out: V | None = None
        for element in elements:
            out = self._join_opt(out, element)
        return out

    def element_value(self, iter_node: ast.expr,
                      iterable: V | None) -> V | None:
        """Value bound to a loop/comprehension target per element."""
        return iterable

    def unpack_value(self, value: V | None) -> V | None:
        """Value bound to each name of a tuple-unpacking target."""
        return value

    # -- driver --------------------------------------------------------
    def analyze(self) -> None:
        env: dict[str, V] = {}
        for name in self.func.params:
            value = self.param_value(name,
                                     self.func.annotations.get(name))
            if value is not None:
                env[name] = value
        self.exec_stmts(self.func.node.body, env)

    def _join_opt(self, a: V | None, b: V | None) -> V | None:
        if a is None:
            return b
        if b is None:
            return a
        return self.join(a, b)

    def _join_env(self, a: dict[str, V], b: dict[str, V]) -> dict[str, V]:
        out: dict[str, V] = {}
        for key in sorted(set(a) | set(b)):
            value = self._join_opt(a.get(key), b.get(key))
            if value is not None:
                out[key] = value
        return out

    def _bind(self, target: ast.expr, value: V | None,
              env: dict[str, V]) -> None:
        if isinstance(target, ast.Name):
            if value is None:
                env.pop(target.id, None)
            else:
                env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            each = self.unpack_value(value)
            for element in target.elts:
                self._bind(element, each, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, value, env)
        # attribute/subscript targets mutate objects we do not model

    def exec_stmts(self, stmts: list[ast.stmt],
                   env: dict[str, V]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt, env)

    def exec_stmt(self, stmt: ast.stmt, env: dict[str, V]) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval_expr(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self.eval_expr(stmt.value, env),
                           env)
        elif isinstance(stmt, ast.AugAssign):
            current = (env.get(stmt.target.id)
                       if isinstance(stmt.target, ast.Name) else None)
            value = self.binop_value(
                ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value,
                          lineno=stmt.lineno, col_offset=stmt.col_offset),
                current, self.eval_expr(stmt.value, env))
            self._bind(stmt.target, value, env)
        elif isinstance(stmt, ast.Return):
            value = (None if stmt.value is None
                     else self.eval_expr(stmt.value, env))
            self.returns.append((stmt, value))
        elif isinstance(stmt, ast.Expr):
            self.eval_expr(stmt.value, env)
        elif isinstance(stmt, (ast.If,)):
            self.eval_expr(stmt.test, env)
            then_env = dict(env)
            self.exec_stmts(stmt.body, then_env)
            else_env = dict(env)
            self.exec_stmts(stmt.orelse, else_env)
            env.clear()
            env.update(self._join_env(then_env, else_env))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self.eval_expr(stmt.iter, env)
            for _ in range(_LOOP_ROUNDS):
                body_env = dict(env)
                self._bind(stmt.target,
                           self.element_value(stmt.iter, iterable),
                           body_env)
                self.exec_stmts(stmt.body, body_env)
                env.update(self._join_env(env, body_env))
            self.exec_stmts(stmt.orelse, env)
        elif isinstance(stmt, ast.While):
            self.eval_expr(stmt.test, env)
            for _ in range(_LOOP_ROUNDS):
                body_env = dict(env)
                self.exec_stmts(stmt.body, body_env)
                env.update(self._join_env(env, body_env))
            self.exec_stmts(stmt.orelse, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval_expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, env)
            self.exec_stmts(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self.exec_stmts(stmt.body, body_env)
            merged = self._join_env(env, body_env)
            for handler in stmt.handlers:
                handler_env = dict(merged)
                self.exec_stmts(handler.body, handler_env)
                merged = self._join_env(merged, handler_env)
            env.clear()
            env.update(merged)
            self.exec_stmts(stmt.orelse, env)
            self.exec_stmts(stmt.finalbody, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval_expr(stmt.exc, env)
        elif isinstance(stmt, ast.Assert):
            self.eval_expr(stmt.test, env)
            if stmt.msg is not None:
                self.eval_expr(stmt.msg, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # nested defs/classes, import/global/pass: no dataflow modeled

    def eval_expr(self, node: ast.expr,
                  env: dict[str, V]) -> V | None:
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return self.free_name(node)
        if isinstance(node, ast.Constant):
            return self.const_value(node)
        if isinstance(node, ast.NamedExpr):
            value = self.eval_expr(node.value, env)
            self._bind(node.target, value, env)
            return value
        if isinstance(node, ast.Call):
            args = [self.eval_expr(a, env) for a in node.args]
            kwargs = {kw.arg: self.eval_expr(kw.value, env)
                      for kw in node.keywords if kw.arg is not None}
            for kw in node.keywords:        # **expansions join the pot
                if kw.arg is None:
                    args.append(self.eval_expr(kw.value, env))
            fqn = self.project.resolve(self.module, node.func)
            receiver: V | None = None
            if isinstance(node.func, ast.Attribute):
                # a method call: evaluate the receiver so nested calls
                # inside it are observed and its value can flow through
                # (``payload.encode()`` keeps payload's taint)
                receiver = self.eval_expr(node.func.value, env)
            return self.call_result(node, fqn, args, kwargs, receiver)
        if isinstance(node, ast.BinOp):
            return self.binop_value(node,
                                    self.eval_expr(node.left, env),
                                    self.eval_expr(node.right, env))
        if isinstance(node, ast.UnaryOp):
            return self.eval_expr(node.operand, env)
        if isinstance(node, ast.BoolOp):
            out: V | None = None
            for value_node in node.values:
                out = self._join_opt(out,
                                     self.eval_expr(value_node, env))
            return out
        if isinstance(node, ast.Compare):
            operands = [self.eval_expr(node.left, env)]
            operands += [self.eval_expr(c, env)
                         for c in node.comparators]
            self.compare_values(node, operands)
            return None
        if isinstance(node, ast.IfExp):
            self.eval_expr(node.test, env)
            return self._join_opt(self.eval_expr(node.body, env),
                                  self.eval_expr(node.orelse, env))
        if isinstance(node, ast.Attribute):
            return self.attribute_value(
                node, self.eval_expr(node.value, env))
        if isinstance(node, ast.Subscript):
            base = self.eval_expr(node.value, env)
            if isinstance(node.slice, ast.expr):
                self.eval_expr(node.slice, env)
            return self.subscript_value(node, base)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            elements = [self.eval_expr(e, env) for e in node.elts]
            return self.collection_value(node, elements)
        if isinstance(node, ast.Dict):
            elements = [self.eval_expr(k, env)
                        for k in node.keys if k is not None]
            elements += [self.eval_expr(v, env) for v in node.values]
            return self.collection_value(node, elements)
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp, ast.DictComp)):
            comp_env = dict(env)
            for gen in node.generators:
                iterable = self.eval_expr(gen.iter, comp_env)
                self._bind(gen.target,
                           self.element_value(gen.iter, iterable),
                           comp_env)
                for cond in gen.ifs:
                    self.eval_expr(cond, comp_env)
            if isinstance(node, ast.DictComp):
                elements = [self.eval_expr(node.key, comp_env),
                            self.eval_expr(node.value, comp_env)]
            else:
                elements = [self.eval_expr(node.elt, comp_env)]
            return self.collection_value(node, elements)
        if isinstance(node, ast.JoinedStr):
            out = None
            for part in node.values:
                if isinstance(part, ast.FormattedValue):
                    out = self._join_opt(
                        out, self.eval_expr(part.value, env))
            return out
        if isinstance(node, ast.FormattedValue):
            return self.eval_expr(node.value, env)
        if isinstance(node, ast.Starred):
            return self.eval_expr(node.value, env)
        if isinstance(node, ast.Await):
            return self.eval_expr(node.value, env)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval_expr(part, env)
            return None
        if isinstance(node, ast.Lambda):
            return None
        return None

    # -- shared conveniences for analyses ------------------------------
    def joined_returns(self) -> V | None:
        out: V | None = None
        for _, value in self.returns:
            out = self._join_opt(out, value)
        return out

    def location(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 1)
        return f"{self.module.rel_path}:{lineno}"

    def map_arguments(self, callee: FunctionInfo, node: ast.Call,
                      args: list[V | None],
                      kwargs: dict[str, V | None]) -> dict[str, V | None]:
        """Positional+keyword abstract arguments keyed by parameter name.

        ``self`` receivers are not modeled, so method parameters shift
        by one when the callee is a method called on an instance; the
        resolver only produces direct-function targets, so the plain
        positional zip is right for everything it resolves.
        """
        mapping: dict[str, V | None] = {}
        params = [p for p in callee.params if p not in ("self", "cls")]
        for name, value in zip(params, args):
            mapping[name] = value
        for name, value in kwargs.items():
            if name in callee.params:
                mapping[name] = value
        return mapping
