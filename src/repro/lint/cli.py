"""``repro lint`` — argument handling and the command body.

Exit codes: 0 clean (possibly with baselined/suppressed findings),
1 actionable findings (or unparsable files), 2 usage errors.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.base import (LintConfig, load_span_taxonomy, rule_catalog)
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import ANALYSES, lint_paths, select_rules
from repro.lint.output import render_github, render_json, render_text

__all__ = ["add_lint_arguments", "main", "run_lint_command"]

DEFAULT_BASELINE = "lint-baseline.json"
FORMATS = ("text", "json", "github")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` arguments to ``parser``."""
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to lint (default: src)")
    parser.add_argument("--format", choices=FORMATS, default="text",
                        help="report format (default text; 'github' "
                             "emits ::error annotations for Actions)")
    parser.add_argument("--baseline", type=str, default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             f"(default {DEFAULT_BASELINE}; a missing "
                             "file is an empty baseline)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--select", type=str, default=None,
                        help="comma-separated rule codes to run "
                             "exclusively (e.g. RL001,RL002)")
    parser.add_argument("--ignore", type=str, default=None,
                        help="comma-separated rule codes to skip")
    parser.add_argument("--analysis", choices=ANALYSES, default="all",
                        help="analysis tier: per-file 'ast' rules, "
                             "whole-program 'dataflow' rules, or 'all' "
                             "(default)")
    parser.add_argument("--since", metavar="REV", default=None,
                        help="report findings only in files changed "
                             "since REV (git diff --name-only REV, plus "
                             "untracked files); the dataflow project "
                             "still sees the whole tree")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write every current finding to the "
                             "baseline file and exit 0 (adoption "
                             "workflow; fill in the reasons!)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def _split_codes(text: str | None) -> list[str] | None:
    if text is None:
        return None
    return [c.strip() for c in text.split(",") if c.strip()]


def _changed_since(rev: str) -> set[str]:
    """Resolved POSIX paths of .py files changed since ``rev``.

    Changed-or-added tracked files (``git diff --name-only``) plus
    untracked files, anchored at the repository toplevel so the set
    compares equal to the engine's resolved paths from any cwd.
    """
    def git(*cmd: str) -> str:
        proc = subprocess.run(["git", *cmd], capture_output=True,
                              text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"git {' '.join(cmd)} failed: "
                f"{proc.stderr.strip() or proc.stdout.strip()}")
        return proc.stdout

    top = Path(git("rev-parse", "--show-toplevel").strip())
    names = git("diff", "--name-only", "-z", rev, "--").split("\0")
    names += git("ls-files", "--others", "--exclude-standard",
                 "-z").split("\0")
    return {(top / name).resolve().as_posix()
            for name in names if name.endswith(".py")}


def run_lint_command(args: argparse.Namespace) -> int:
    """Body of ``repro lint`` (shared by repro.cli and python -m)."""
    if args.list_rules:
        for code, name, category, description in rule_catalog():
            print(f"{code}  {name:30s} [{category}]")
            print(f"       {description}")
        return 0
    try:
        rules = select_rules(_split_codes(args.select),
                             _split_codes(args.ignore))
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    start = Path(args.paths[0]) if args.paths else Path.cwd()
    config = LintConfig(span_taxonomy=load_span_taxonomy(start))
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    restrict_to = None
    if args.since is not None:
        try:
            restrict_to = _changed_since(args.since)
        except (RuntimeError, OSError) as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
    try:
        report = lint_paths(list(args.paths), rules=rules, config=config,
                            baseline=baseline, analysis=args.analysis,
                            restrict_to=restrict_to)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(report.findings, args.baseline)
        print(f"wrote {len(report.findings)} entries to {args.baseline}; "
              "replace the TODO reasons with real justifications")
        return 0
    renderer = {"text": render_text, "json": render_json,
                "github": render_github}[args.format]
    print(renderer(report))
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point: ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism / physics-invariant / "
                    "hygiene analysis for the repro codebase")
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))
