"""Figure 3 — the example RR_{i,j} piecewise-linear function.

Rebuilds the Section V.B.2 worked example with the library machinery and
checks the curve against the paper's printed breakpoints
(0,0) (0.05,0.5) (0.1,0.9) (0.15,1.2).
"""

import numpy as np

from repro.experiments.figures import fig3_rr_function


def bench_fig3(benchmark, capsys):
    rr = benchmark(fig3_rr_function)
    np.testing.assert_allclose(rr.x, [0.0, 0.05, 0.10, 0.15])
    np.testing.assert_allclose(rr.y, [0.0, 0.5, 0.9, 1.2])

    with capsys.disabled():
        print()
        print("Figure 3 — RR_{i,j} for the example core type")
        print(f"{'power (W)':>10}{'reward rate':>13}")
        for x, y in zip(rr.x, rr.y):
            print(f"{x * 1000:>9.0f}m{y:>13.2f}")
        grid = np.linspace(0, 0.15, 7)
        print("sampled curve:",
              ", ".join(f"({p:.3f},{rr(p):.3f})" for p in grid))
