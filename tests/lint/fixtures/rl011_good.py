"""RL011 good: tolerance comparisons, and exact-zero structure checks."""

from repro.units import approx_eq


def redline_hit(t_inlet_c, redline_c):
    return approx_eq(t_inlet_c, redline_c)


def at_half_load(node_power_kw):
    return approx_eq(node_power_kw, 0.3965, tol=1e-9)


def is_off(node_power_kw):
    return node_power_kw == 0.0        # exact zero = structural check
