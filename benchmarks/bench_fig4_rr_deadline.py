"""Figure 4 — RR_{i,j} when a P-state cannot meet the deadline.

Same example as Figure 3 but with m_i = 1.5: P-state 2's execution time
(1/0.5 = 2s) exceeds the deadline slack, so its reward rate drops to
zero and the curve stops being concave — the motivation for the "bad
P-state" treatment of Figure 5.
"""

import numpy as np

from repro.experiments.figures import fig4_rr_function_with_deadline


def bench_fig4(benchmark, capsys):
    rr = benchmark(fig4_rr_function_with_deadline)
    np.testing.assert_allclose(rr.x, [0.0, 0.05, 0.10, 0.15])
    np.testing.assert_allclose(rr.y, [0.0, 0.0, 0.9, 1.2])
    assert not rr.is_concave()

    with capsys.disabled():
        print()
        print("Figure 4 — RR_{i,j} with m_i = 1.5 (P-state 2 misses)")
        print(f"{'power (W)':>10}{'reward rate':>13}{'note':>28}")
        notes = ["off", "P2: 1/ECS = 2.0 > 1.5 -> 0", "P1", "P0"]
        for x, y, n in zip(rr.x, rr.y, notes):
            print(f"{x * 1000:>9.0f}m{y:>13.2f}{n:>28}")
        print(f"concave: {rr.is_concave()}")
