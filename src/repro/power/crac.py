"""CRAC unit heat removal and power consumption (Eqs. 2-3).

A CRAC unit draws hot air at ``T_in`` and supplies cold air at its
assigned outlet temperature ``T_out``.  The heat it removes is

    q = rho * Cp * F * (T_in - T_out)                        (Eq. 2)

and the electrical power it consumes to do so is

    P_CRAC = q / CoP(T_out)                                  (Eq. 3)

clamped at zero when ``T_in <= T_out`` ("when the inlet air temperature
of a CRAC unit is less than or equal to the assigned outlet temperature
there is no heat to be removed [and] the power consumption is 0").
"""

from __future__ import annotations

import numpy as np

from repro.power.cop import CoPModel, HP_UTILITY_COP
from repro.units import AIR_DENSITY, AIR_SPECIFIC_HEAT

__all__ = ["heat_removed_kw", "crac_power_kw"]


def heat_removed_kw(flow_m3s, inlet_temp_c, outlet_temp_c,
                    rho: float = AIR_DENSITY,
                    cp: float = AIR_SPECIFIC_HEAT):
    """Heat removed by a CRAC unit, kW (Eq. 2), clamped at >= 0.

    All arguments broadcast, so a vector of CRAC units can be evaluated
    in one call.
    """
    flow = np.asarray(flow_m3s, dtype=float)
    if np.any(flow <= 0.0):
        raise ValueError("CRAC air flow rates must be positive")
    q = rho * cp * flow * (np.asarray(inlet_temp_c, dtype=float)
                           - np.asarray(outlet_temp_c, dtype=float))
    q = np.maximum(q, 0.0)
    return q if q.ndim else float(q)


def crac_power_kw(flow_m3s, inlet_temp_c, outlet_temp_c,
                  cop_model: CoPModel = HP_UTILITY_COP,
                  rho: float = AIR_DENSITY,
                  cp: float = AIR_SPECIFIC_HEAT):
    """Electrical power consumed by a CRAC unit, kW (Eq. 3).

    Parameters broadcast like :func:`heat_removed_kw`.  The CoP is
    evaluated at the *outlet* temperature per Eq. 3.
    """
    q = heat_removed_kw(flow_m3s, inlet_temp_c, outlet_temp_c, rho, cp)
    cop = cop_model(outlet_temp_c)
    p = np.asarray(q, dtype=float) / np.asarray(cop, dtype=float)
    return p if p.ndim else float(p)
