"""Self-check: the shipped tree is clean against the committed baseline.

This is the test the CI ``lint`` job mirrors — if it fails, either fix
the new finding or (with a written reason) add it to
``lint-baseline.json``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).parents[2]


def _run_lint(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", *args],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
        timeout=300)


class TestSelfCheck:
    def test_src_is_clean_against_committed_baseline(self):
        proc = _run_lint("--baseline", "lint-baseline.json",
                         "--format", "json")
        doc = json.loads(proc.stdout)
        assert proc.returncode == 0, \
            f"repro lint src reported new findings:\n" \
            f"{json.dumps(doc.get('findings'), indent=2)}"
        assert doc["ok"] is True

    def test_baseline_has_no_stale_entries(self):
        proc = _run_lint("--baseline", "lint-baseline.json",
                         "--format", "json")
        doc = json.loads(proc.stdout)
        assert doc["stale_baseline"] == [], \
            "baseline entries no longer match any finding — delete them"

    def test_baseline_reasons_are_real(self):
        doc = json.loads(
            (REPO_ROOT / "lint-baseline.json").read_text())
        for entry in doc["entries"]:
            assert "TODO" not in entry["reason"], entry
            assert len(entry["reason"]) >= 20, entry
