"""Tests for repro.power.taskpower — task-dependent power (extension)."""

import numpy as np
import pytest

from repro.power.taskpower import (TaskPowerModel, expected_node_power,
                                   sample_task_power_model)


class TestModel:
    def test_active_and_idle(self):
        m = TaskPowerModel(factors=np.asarray([0.8, 1.2]),
                           idle_fraction=0.5)
        assert m.active_power(0.01, 0) == pytest.approx(0.008)
        assert m.active_power(0.01, 1) == pytest.approx(0.012)
        assert m.idle_power(0.01) == pytest.approx(0.005)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            TaskPowerModel(factors=np.asarray([0.0, 1.0]))
        with pytest.raises(ValueError, match="idle_fraction"):
            TaskPowerModel(factors=np.asarray([0.8]), idle_fraction=0.9)
        with pytest.raises(ValueError, match="1-D"):
            TaskPowerModel(factors=np.ones((2, 2)))

    def test_sampling_bounds(self, small_workload):
        rng = np.random.default_rng(0)
        m = sample_task_power_model(small_workload, rng, spread=0.2)
        assert m.n_task_types == small_workload.n_task_types
        assert np.all(m.factors >= 0.8 - 1e-12)
        assert np.all(m.factors <= 1.2 + 1e-12)
        assert m.idle_fraction <= m.factors.min()

    def test_sampling_validation(self, small_workload):
        with pytest.raises(ValueError, match="spread"):
            sample_task_power_model(small_workload,
                                    np.random.default_rng(0), spread=1.0)


class TestExpectedNodePower:
    def test_idle_room(self, scenario, assignment):
        """Zero rates -> base power + idle draw of the P-states."""
        dc, wl = scenario.datacenter, scenario.workload
        m = TaskPowerModel(factors=np.ones(wl.n_task_types),
                           idle_fraction=0.5)
        zero_tc = np.zeros_like(assignment.tc)
        p = expected_node_power(dc, wl, assignment.pstates, zero_tc, m)
        nominal = dc.node_power_kw(assignment.pstates)
        expect = dc.node_base_power \
            + 0.5 * (nominal - dc.node_base_power)
        np.testing.assert_allclose(p, expect)

    def test_unit_factors_bounded_by_nominal(self, scenario, assignment):
        """With factors == 1, expected power never exceeds the nominal
        always-busy Eq. 1 power."""
        dc, wl = scenario.datacenter, scenario.workload
        m = TaskPowerModel(factors=np.ones(wl.n_task_types),
                           idle_fraction=0.6)
        p = expected_node_power(dc, wl, assignment.pstates, assignment.tc,
                                m)
        nominal = dc.node_power_kw(assignment.pstates)
        assert np.all(p <= nominal + 1e-9)

    def test_monotone_in_factors(self, scenario, assignment):
        dc, wl = scenario.datacenter, scenario.workload
        lo = TaskPowerModel(factors=np.full(wl.n_task_types, 0.9),
                            idle_fraction=0.5)
        hi = TaskPowerModel(factors=np.full(wl.n_task_types, 1.1),
                            idle_fraction=0.5)
        p_lo = expected_node_power(dc, wl, assignment.pstates,
                                   assignment.tc, lo)
        p_hi = expected_node_power(dc, wl, assignment.pstates,
                                   assignment.tc, hi)
        assert np.all(p_hi >= p_lo - 1e-12)

    def test_rejects_oversubscribed_tc(self, scenario, assignment):
        dc, wl = scenario.datacenter, scenario.workload
        m = TaskPowerModel(factors=np.ones(wl.n_task_types))
        bad_tc = assignment.tc * 100.0
        with pytest.raises(ValueError, match="over-subscribes"):
            expected_node_power(dc, wl, assignment.pstates, bad_tc, m)

    def test_rejects_rate_on_incapable_core(self, scenario, assignment):
        dc, wl = scenario.datacenter, scenario.workload
        m = TaskPowerModel(factors=np.ones(wl.n_task_types))
        off = np.asarray([dc.node_types[t].off_pstate
                          for t in dc.core_type])
        bad_tc = np.zeros_like(assignment.tc)
        off_cores = np.nonzero(assignment.pstates == off)[0]
        if off_cores.size:
            bad_tc[0, off_cores[0]] = 1.0
            with pytest.raises(ValueError, match="cannot run"):
                expected_node_power(dc, wl, assignment.pstates, bad_tc, m)

    def test_shape_checks(self, scenario, assignment):
        dc, wl = scenario.datacenter, scenario.workload
        m = TaskPowerModel(factors=np.ones(3))
        with pytest.raises(ValueError, match="dimension"):
            expected_node_power(dc, wl, assignment.pstates, assignment.tc,
                                m)
