"""Tests for repro.core.serverlevel — the utilization-governor strawman."""

import numpy as np
import pytest

from repro.core.serverlevel import local_governor_pstate, solve_server_level
from repro.datacenter.power import total_power


@pytest.fixture(scope="module")
def server_level(scenario):
    sol, trace = solve_server_level(scenario.datacenter, scenario.workload,
                                    scenario.p_const)
    return sol, trace


class TestLocalGovernor:
    def test_oversubscribed_picks_p0(self, scenario):
        """The paper's observation: near-100% utilization -> P-state 0."""
        wl = scenario.workload
        huge_demand = 10.0 * float(wl.ecs[:, 0, 0].mean())
        assert local_governor_pstate(wl, 0, huge_demand) == 0

    def test_idle_picks_weakest(self, scenario):
        wl = scenario.workload
        eta = wl.n_pstates
        assert local_governor_pstate(wl, 0, 0.0) == eta - 2

    def test_threshold_shifts_choice(self, scenario):
        """A mid-range demand needs a faster P-state when the threshold
        tightens."""
        wl = scenario.workload
        # demand sized to ~60% of P-state-1 capacity
        demand = 0.6 * float(wl.ecs[:, 0, 1].mean())
        loose = local_governor_pstate(wl, 0, demand, threshold=0.9)
        tight = local_governor_pstate(wl, 0, demand, threshold=0.3)
        assert tight <= loose  # tighter threshold -> lower P-state index

    def test_validation(self, scenario):
        wl = scenario.workload
        with pytest.raises(ValueError, match="threshold"):
            local_governor_pstate(wl, 0, 1.0, threshold=0.0)
        with pytest.raises(ValueError, match="demand"):
            local_governor_pstate(wl, 0, -1.0)


class TestSolveServerLevel:
    def test_governor_lands_on_p0(self, scenario, server_level):
        sol, _ = server_level
        np.testing.assert_array_equal(sol.governor_pstate, 0)

    def test_watchdog_caps_cores(self, scenario, server_level):
        """Under the Eq. 18 cap the watchdog must turn cores off."""
        sol, _ = server_level
        assert sol.cores_capped > 0

    def test_constraints_respected(self, scenario, server_level):
        sol, _ = server_level
        dc = scenario.datacenter
        node_power = dc.node_power_kw(sol.pstates)
        assert dc.thermal.is_feasible(sol.t_crac_out, node_power,
                                      dc.redline_c)
        total = total_power(dc, sol.t_crac_out, node_power).total
        assert total <= scenario.p_const + 1e-6

    def test_underperforms_three_stage(self, scenario, server_level,
                                       assignment):
        """Contribution 1, quantified: uncoordinated server-level control
        earns less than the data-center-level technique."""
        sol, _ = server_level
        assert sol.reward_rate < assignment.reward_rate

    def test_pstates_p0_or_off(self, scenario, server_level):
        """With a P0 governor, the room ends up P0-or-off (but chosen
        blindly, unlike the optimized baseline)."""
        sol, _ = server_level
        dc = scenario.datacenter
        off = np.asarray([dc.node_types[t].off_pstate
                          for t in dc.core_type])
        assert np.all((sol.pstates == 0) | (sol.pstates == off))

    def test_reward_consistent_with_stage3(self, server_level):
        sol, _ = server_level
        assert sol.reward_rate == pytest.approx(sol.stage3.reward_rate)
