"""Physical constants and unit conventions used throughout the library.

The paper (Appendix A) works in a consistent unit system which we adopt
everywhere:

* power        — kilowatts (kW)
* temperature  — degrees Celsius
* air flow     — cubic metres per second (m^3/s)
* air density  — kg/m^3
* specific heat— kJ/(kg.K)  (so that ``P [kW] = rho * Cp * F * dT``)
* time         — seconds
* frequency    — MHz (only ratios of frequencies matter)
* voltage      — volts

With ``rho = 1.205`` and ``Cp = 1.0`` the paper's sanity check holds: an
HP ProLiant DL785 G5 node at full load (0.793 kW, 0.07 m^3/s air flow)
heats its air stream by ``0.793 / (1.205 * 0.07) = 9.4 C``.
"""

from __future__ import annotations

import math

#: Density of air used in the paper's simulations, kg/m^3.
AIR_DENSITY: float = 1.205

#: Specific heat capacity of air used in the paper's simulations,
#: kJ/(kg.K).  The paper notes this is a simplification ("in reality, the
#: density of air and its specific heat capacity depend on multiple
#: factors such as pressure and temperature").
AIR_SPECIFIC_HEAT: float = 1.0

#: Redline inlet temperature for compute nodes, Celsius (Section VI.F).
NODE_REDLINE_C: float = 25.0

#: Redline inlet temperature for CRAC units, Celsius (Section VI.F).
CRAC_REDLINE_C: float = 40.0

#: Default tolerance for comparing temperatures, Celsius.  Matches the
#: redline slack used by the constraint checkers
#: (:meth:`repro.thermal.constraints.ThermalLinearization.check`).
TEMP_TOL_C: float = 1e-6

#: Default tolerance for comparing powers, kW.
POWER_TOL_KW: float = 1e-6


def approx_eq(a: float, b: float, tol: float = TEMP_TOL_C) -> bool:
    """Tolerance comparison for physical quantities.

    Exact ``==`` on temperatures or powers is brittle once values have
    passed through the thermal algebra (LP round-off, affine
    reconstruction); the lint rule RL011 points here.  ``tol`` is an
    absolute tolerance in the quantity's unit; a relative component of
    1e-9 guards large magnitudes.
    """
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=tol)


def heat_capacity_rate(flow_m3s: float,
                       rho: float = AIR_DENSITY,
                       cp: float = AIR_SPECIFIC_HEAT) -> float:
    """Heat capacity rate ``rho * Cp * F`` of an air stream, kW/K.

    Multiplying by a temperature difference in Kelvin (or Celsius, since
    only differences appear) yields heat flow in kW.

    Parameters
    ----------
    flow_m3s:
        Volumetric air flow rate in m^3/s.  Must be positive: a zero-flow
        stream cannot carry heat and would make downstream temperature
        equations singular.
    rho, cp:
        Air density and specific heat; defaults are the paper's values.
    """
    if flow_m3s <= 0.0:
        raise ValueError(f"air flow rate must be positive, got {flow_m3s}")
    return rho * cp * flow_m3s


def delta_t_for_power(power_kw: float, flow_m3s: float,
                      rho: float = AIR_DENSITY,
                      cp: float = AIR_SPECIFIC_HEAT) -> float:
    """Temperature rise (C) of an air stream absorbing ``power_kw``.

    Implements the rearranged Equation 4 of the paper:
    ``Tout - Tin = P / (rho * Cp * F)``.
    """
    if power_kw < 0.0:
        raise ValueError(f"power must be non-negative, got {power_kw}")
    return power_kw / heat_capacity_rate(flow_m3s, rho, cp)
