"""Task arrival traces (Section III.B) for the dynamic scheduler.

The first-step optimization only needs arrival *rates*; the second-step
dynamic scheduler consumes an actual stream of tasks.  We model each task
type as an independent Poisson process with the workload's rate, the
standard model consistent with the paper's steady-state analysis.

For the live control service (:mod:`repro.serve`) this module also
provides *streaming* generation — :func:`stream_trace_ticks` yields one
:class:`TickDemand` per control tick — plus two profile combinators
(:class:`FlashCrowdProfile`, :class:`RegionalShiftProfile`) that wrap
any :class:`repro.workload.profiles.ArrivalProfile` with the demand
patterns the service is stress-tested against: sudden flash-crowd
bursts and slow regional demand shifts between task types.  The
combinators duck-type the profile protocol rather than import it, since
:mod:`repro.workload.profiles` already imports :class:`Task` from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.workload.tasktypes import Workload

__all__ = ["Task", "generate_trace", "FlashCrowdProfile",
           "RegionalShiftProfile", "TickDemand", "stream_trace_ticks"]


@dataclass(frozen=True, order=True)
class Task:
    """One task instance flowing through the data center.

    Ordered by arrival time so heaps/sorts work directly.

    Attributes
    ----------
    arrival:
        Arrival time, seconds.
    task_type:
        Index into the workload's task types.
    uid:
        Unique id (dense, per trace).
    deadline:
        ``arrival + m_i`` (Section III.B).
    """

    arrival: float
    task_type: int
    uid: int
    deadline: float


def generate_trace(workload: Workload, duration: float,
                   rng: np.random.Generator) -> list[Task]:
    """Sample a merged Poisson arrival trace over ``[0, duration)``.

    Tasks of type *i* arrive with exponential inter-arrival times of mean
    ``1 / lambda_i``; the per-type streams are merged and re-numbered in
    arrival order.  Types with zero rate produce no tasks.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    arrivals: list[tuple[float, int]] = []
    for i, rate in enumerate(workload.arrival_rates):
        if rate <= 0:
            continue
        # Expected count + 6 sigma headroom, then trim; resample the
        # rare shortfall instead of looping one-by-one in Python.
        n_expected = rate * duration
        n_draw = int(n_expected + 6.0 * np.sqrt(n_expected) + 10)
        while True:
            gaps = rng.exponential(1.0 / rate, size=n_draw)
            times = np.cumsum(gaps)
            if times[-1] >= duration:
                break
            n_draw *= 2
        times = times[times < duration]
        arrivals.extend((float(t), i) for t in times)
    arrivals.sort()
    slack = workload.deadline_slack
    return [Task(arrival=t, task_type=i, uid=uid, deadline=t + float(slack[i]))
            for uid, (t, i) in enumerate(arrivals)]


@dataclass(frozen=True)
class FlashCrowdProfile:
    """Flash-crowd bursts multiplied onto an inner profile.

    Each burst is ``(start_s, duration_s, magnitude)``: every task
    type's rate is multiplied by ``magnitude`` on
    ``[start_s, start_s + duration_s)``.  Overlapping bursts compound.
    ``inner`` is any arrival profile
    (:class:`repro.workload.profiles.ArrivalProfile`).
    """

    inner: object
    bursts: tuple[tuple[float, float, float], ...]

    def __post_init__(self) -> None:
        for start, duration, magnitude in self.bursts:
            if duration <= 0:
                raise ValueError(
                    f"burst duration must be positive, got {duration}")
            if magnitude < 0:
                raise ValueError(
                    f"burst magnitude must be non-negative, got {magnitude}")
            if start < 0:
                raise ValueError(
                    f"burst start must be non-negative, got {start}")

    def _factor(self, t: float) -> float:
        factor = 1.0
        for start, duration, magnitude in self.bursts:
            if start <= t < start + duration:
                factor *= magnitude
        return factor

    def rates(self, t: float) -> np.ndarray:
        return np.asarray(self.inner.rates(t), dtype=float) \
            * self._factor(t)

    def max_rates(self) -> np.ndarray:
        # valid thinning bound: assume every amplifying burst overlaps
        bound = 1.0
        for _, _, magnitude in self.bursts:
            bound *= max(magnitude, 1.0)
        return np.asarray(self.inner.max_rates(), dtype=float) * bound


@dataclass(frozen=True)
class RegionalShiftProfile:
    """Slow demand shift *between* task types (regions) over a cycle.

    Each task type ``i`` is modulated by
    ``1 + amplitude * sin(2 pi t / period_s + 2 pi i / T)`` — the phase
    offset staggers the types around the cycle, so total demand is
    roughly conserved while its composition rotates (follow-the-sun
    regional load).  ``inner`` is any arrival profile.
    """

    inner: object
    amplitude: float = 0.3
    period_s: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}")
        if self.period_s <= 0:
            raise ValueError("period must be positive")

    def _factors(self, t: float, n: int) -> np.ndarray:
        phase = 2.0 * np.pi * np.arange(n) / max(n, 1)
        return 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * t / self.period_s + phase)

    def rates(self, t: float) -> np.ndarray:
        base = np.asarray(self.inner.rates(t), dtype=float)
        return base * self._factors(t, base.size)

    def max_rates(self) -> np.ndarray:
        return np.asarray(self.inner.max_rates(), dtype=float) \
            * (1.0 + self.amplitude)


@dataclass(frozen=True)
class TickDemand:
    """Demand presented to the control service during one tick.

    Attributes
    ----------
    index / start_s:
        Tick number and its start instant (run time, seconds).
    rates:
        The profile's arrival-rate vector at ``start_s`` — what the
        rolling-horizon replanner plans against.
    tasks:
        The tick's sampled arrivals (absolute arrival times), uids
        continuous across the whole stream.
    """

    index: int
    start_s: float
    rates: np.ndarray
    tasks: tuple[Task, ...]


def stream_trace_ticks(workload: Workload, profile: object, tick_s: float,
                       n_ticks: int, rng: np.random.Generator
                       ) -> Iterator[TickDemand]:
    """Yield one :class:`TickDemand` per control tick.

    Arrivals are sampled per tick by Lewis-Shedler thinning against the
    profile's global maximum rates; because Poisson increments over
    disjoint windows are independent, restarting the candidate stream at
    each tick boundary is still an exact simulation of the
    inhomogeneous process.  Task uids number the stream continuously.
    """
    if tick_s <= 0:
        raise ValueError(f"tick length must be positive, got {tick_s}")
    if n_ticks <= 0:
        raise ValueError(f"tick count must be positive, got {n_ticks}")
    max_rates = np.asarray(profile.max_rates(), dtype=float)
    if max_rates.shape != (workload.n_task_types,):
        raise ValueError("profile dimension does not match workload")
    slack = workload.deadline_slack
    uid = 0
    for index in range(n_ticks):
        a = index * tick_s
        b = a + tick_s
        arrivals: list[tuple[float, int]] = []
        for i, rate_max in enumerate(max_rates):
            if rate_max <= 0:
                continue
            t = a
            while True:
                t += rng.exponential(1.0 / rate_max)
                if t >= b:
                    break
                if rng.uniform() <= profile.rates(t)[i] / rate_max:
                    arrivals.append((t, i))
        arrivals.sort()
        tasks = tuple(
            Task(arrival=t, task_type=i, uid=uid + j,
                 deadline=t + float(slack[i]))
            for j, (t, i) in enumerate(arrivals))
        uid += len(tasks)
        yield TickDemand(index=index, start_s=a,
                         rates=np.asarray(profile.rates(a), dtype=float),
                         tasks=tasks)
