"""Analytic verification of the heat-flow model on hand-solvable rooms.

Beyond the generated-room invariants in test_heatflow.py, these cases
have closed-form steady states derived by hand, checking the matrix
algebra (the ``(I - A_MM)^{-1}`` construction) against independent
arithmetic.
"""

import numpy as np
import pytest

from repro.thermal.heatflow import HeatFlowModel
from repro.units import AIR_DENSITY


def chain_model() -> HeatFlowModel:
    """CRAC -> node1 -> node2 -> CRAC, all at flow 1.0.

    alpha rows (source -> destinations): CRAC feeds node1; node1 feeds
    node2; node2 returns to the CRAC.
    """
    alpha = np.asarray([
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
        [1.0, 0.0, 0.0],
    ])
    flows = np.ones(3)
    return HeatFlowModel(alpha, flows, n_crac=1)


class TestChainRoom:
    def test_temperatures_accumulate_along_the_chain(self):
        model = chain_model()
        p = np.asarray([2.0, 3.0])
        t = np.asarray([10.0])
        state = model.steady_state(t, p)
        k = 1.0 / (AIR_DENSITY * 1.0 * 1.0)    # K per kW at flow 1
        # node1 inlet = CRAC outlet; node2 inlet = node1 outlet
        assert state.t_in[1] == pytest.approx(10.0)
        assert state.t_out[1] == pytest.approx(10.0 + 2.0 * k)
        assert state.t_in[2] == pytest.approx(10.0 + 2.0 * k)
        assert state.t_out[2] == pytest.approx(10.0 + 5.0 * k)
        # CRAC ingests the fully heated stream
        assert state.t_in[0] == pytest.approx(10.0 + 5.0 * k)

    def test_heat_removed_is_total_power(self):
        model = chain_model()
        state = model.steady_state(np.asarray([10.0]),
                                   np.asarray([2.0, 3.0]))
        assert state.crac_heat_kw[0] == pytest.approx(5.0)

    def test_downstream_node_runs_hotter(self):
        """Order matters: the node at the end of the chain sees all
        upstream heat (the paper's recirculation penalty in miniature)."""
        model = chain_model()
        state = model.steady_state(np.asarray([10.0]),
                                   np.asarray([2.0, 2.0]))
        assert state.t_in[2] > state.t_in[1]


def split_model(share: float) -> HeatFlowModel:
    """One CRAC, one node; a ``share`` of node exhaust recirculates into
    the node itself, the rest reaches the CRAC.

    Flow conservation fixes the flows: the node's inlet takes
    ``share * F_n`` from itself and the rest from the CRAC.
    """
    f_node = 1.0
    f_crac = (1.0 - share) * f_node
    alpha = np.asarray([
        [0.0, 1.0],
        [1.0 - share, share],
    ])
    return HeatFlowModel(alpha, np.asarray([f_crac, f_node]), n_crac=1)


class TestSelfRecirculation:
    @pytest.mark.parametrize("share", [0.0, 0.2, 0.5])
    def test_closed_form_inlet(self, share):
        """Hand-derived fixed point.

        With x = node outlet, t = CRAC outlet, k = 1/(rho Cp F_n):
            T_in = (1 - share) t + share x,  x = T_in + P k
        =>  x = t + P k / (1 - share)  and  T_in = t + share P k/(1-share)
        """
        model = split_model(share)
        p, t = 2.0, 12.0
        k = 1.0 / (AIR_DENSITY * 1.0 * 1.0)
        state = model.steady_state(np.asarray([t]), np.asarray([p]))
        expect_in = t + share * p * k / (1.0 - share)
        expect_out = t + p * k / (1.0 - share)
        assert state.t_in[1] == pytest.approx(expect_in)
        assert state.t_out[1] == pytest.approx(expect_out)

    @pytest.mark.parametrize("share", [0.0, 0.2, 0.5])
    def test_energy_balance_with_smaller_crac_flow(self, share):
        """The CRAC only sees (1-share) of the node flow but a hotter
        stream — removed heat still equals dissipated power."""
        model = split_model(share)
        state = model.steady_state(np.asarray([12.0]), np.asarray([2.0]))
        assert state.crac_heat_kw[0] == pytest.approx(2.0)

    def test_recirculation_amplification_is_nonlinear(self):
        """Inlet rise grows as share/(1-share): super-linear in share."""
        rises = []
        for share in (0.2, 0.4):
            model = split_model(share)
            state = model.steady_state(np.asarray([12.0]),
                                       np.asarray([2.0]))
            rises.append(state.t_in[1] - 12.0)
        assert rises[1] > 2 * rises[0]


class TestSuperposition:
    def test_inlets_affine_in_everything(self, small_dc):
        """T_in(t1 + t2, P1 + P2) - T_in(0 baseline) decomposes into the
        sum of individual contributions (the map is affine)."""
        model = small_dc.thermal
        nc, nn = small_dc.n_crac, small_dc.n_nodes
        t1 = np.full(nc, 3.0)
        t2 = np.full(nc, 7.0)
        rng = np.random.default_rng(1)
        p1 = rng.uniform(0, 1, nn)
        p2 = rng.uniform(0, 1, nn)
        f = lambda t, p: model.steady_state(t, p).t_in
        zero = f(np.zeros(nc), np.zeros(nn))
        combined = f(t1 + t2, p1 + p2)
        parts = f(t1, p1) + f(t2, p2) - zero
        np.testing.assert_allclose(combined, parts, atol=1e-9)
