"""Finding and report datatypes shared by the lint engine and outputs."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding", "LintReport"]


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic at one source location.

    Orders by ``(path, line, col, code)`` so reports are stable
    regardless of rule execution order.

    Attributes
    ----------
    path:
        POSIX-style path of the offending file, relative to the lint
        invocation's working directory.
    line, col:
        1-based source position.
    code:
        Stable rule code (``RL0xx``); ``RL000`` is reserved for files
        the engine could not parse.
    rule:
        Kebab-case rule name (``unordered-iteration``).
    message:
        Human-readable explanation with the suggested fix.
    context:
        The stripped source line — the key baselines match on, so
        grandfathered findings survive unrelated line-number drift.
    trace:
        For dataflow findings (RL03x/RL04x/RL05x): the full
        source → propagation → sink chain, one ``path:line: event``
        step per element.  Empty for per-statement AST findings.
    """

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str
    context: str = ""
    trace: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
            "context": self.context,
            "trace": list(self.trace),
        }


@dataclass
class LintReport:
    """Outcome of one lint run, partitioned by disposition.

    ``findings`` are actionable (they fail the run); ``suppressed`` and
    ``baselined`` are retained so the JSON report shows the full
    picture; ``stale_baseline`` lists baseline entries that matched
    nothing — candidates for deletion — while ``baseline_drift`` lists
    entries that matched only through whitespace normalization (the
    code reflowed; refresh the entry's context at leisure).
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[dict[str, str]] = field(default_factory=list)
    baseline_drift: list[dict[str, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when nothing actionable remains."""
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": 2,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "suppressed": [f.to_dict() for f in sorted(self.suppressed)],
            "baselined": [f.to_dict() for f in sorted(self.baselined)],
            "stale_baseline": list(self.stale_baseline),
            "baseline_drift": list(self.baseline_drift),
        }
