"""Reproducible fault-timeline generation.

Chaos experiments need two sources of fault schedules:

* **Drawn** — :func:`generate_fault_schedule` samples a timeline from a
  seed and per-kind rate parameters (:class:`FaultRates`).  Onsets are
  Poisson per (kind, target) pair, repair times exponential, severities
  uniform around a configured mean.  Targets and kinds are iterated in a
  fixed order from a single generator, so the same seed always yields
  the same schedule — the property the chaos sweep's cache keys and the
  ``--jobs`` reproducibility guarantee rest on.
* **Hand-written** — :func:`schedule_from_dict` /
  :func:`load_schedule` parse explicit scenario files (JSON always;
  YAML when PyYAML happens to be installed), for "what if CRAC 1 dies
  at minute 10" style questions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.faults.model import FaultEvent, FaultKind, FaultSchedule

__all__ = ["FaultRates", "generate_fault_schedule", "schedule_from_dict",
           "load_schedule", "demo_rates"]


@dataclass(frozen=True)
class FaultRates:
    """Arrival-rate and severity parameters for drawn fault timelines.

    Rates are events per hour; targeted kinds are per *unit* (so a room
    with more nodes sees proportionally more crashes, like real fleets).
    A rate of 0 disables the kind.

    Attributes
    ----------
    node_crash_per_hour / crac_degrade_per_hour / crac_outage_per_hour:
        Per-node / per-CRAC onset rates.
    cap_drop_per_hour / ecs_drift_per_hour:
        Room-wide onset rates.
    mean_repair_s:
        Mean of the exponential repair-time distribution.
    degrade_magnitude / cap_drop_magnitude / ecs_drift_magnitude:
        Mean severities; samples are uniform on ``[0.5, 1.5] * mean``,
        clipped into ``(0.05, 0.95)``.
    """

    node_crash_per_hour: float = 0.0
    crac_degrade_per_hour: float = 0.0
    crac_outage_per_hour: float = 0.0
    cap_drop_per_hour: float = 0.0
    ecs_drift_per_hour: float = 0.0
    mean_repair_s: float = 600.0
    degrade_magnitude: float = 0.5
    cap_drop_magnitude: float = 0.2
    ecs_drift_magnitude: float = 0.2

    def __post_init__(self) -> None:
        for name in ("node_crash_per_hour", "crac_degrade_per_hour",
                     "crac_outage_per_hour", "cap_drop_per_hour",
                     "ecs_drift_per_hour"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.mean_repair_s <= 0:
            raise ValueError("mean_repair_s must be positive")
        for name in ("degrade_magnitude", "cap_drop_magnitude",
                     "ecs_drift_magnitude"):
            if not 0.0 < getattr(self, name) < 1.0:
                raise ValueError(f"{name} must be in (0, 1)")

    def scaled(self, factor: float) -> "FaultRates":
        """All onset rates multiplied by ``factor`` (severities kept)."""
        if factor < 0:
            raise ValueError("rate factor must be >= 0")
        return replace(
            self,
            node_crash_per_hour=self.node_crash_per_hour * factor,
            crac_degrade_per_hour=self.crac_degrade_per_hour * factor,
            crac_outage_per_hour=self.crac_outage_per_hour * factor,
            cap_drop_per_hour=self.cap_drop_per_hour * factor,
            ecs_drift_per_hour=self.ecs_drift_per_hour * factor,
        )

    def to_dict(self) -> dict:
        return {
            "node_crash_per_hour": self.node_crash_per_hour,
            "crac_degrade_per_hour": self.crac_degrade_per_hour,
            "crac_outage_per_hour": self.crac_outage_per_hour,
            "cap_drop_per_hour": self.cap_drop_per_hour,
            "ecs_drift_per_hour": self.ecs_drift_per_hour,
            "mean_repair_s": self.mean_repair_s,
            "degrade_magnitude": self.degrade_magnitude,
            "cap_drop_magnitude": self.cap_drop_magnitude,
            "ecs_drift_magnitude": self.ecs_drift_magnitude,
        }


def demo_rates(horizon_s: float, n_nodes: int, n_crac: int) -> FaultRates:
    """Rates sized so a factor-1.0 draw averages a handful of faults.

    Chaos runs compress time (horizons of seconds to minutes rather than
    weeks), so per-hour fleet rates are rescaled to target, per horizon:
    ~2 node crashes, ~1 CRAC degrade, ~0.5 CRAC outages, ~0.5 cap drops
    and ~0.5 ECS drifts, with repair times around a quarter horizon.
    """
    if horizon_s <= 0 or n_nodes < 1 or n_crac < 1:
        raise ValueError("need a positive horizon and a non-empty room")
    hours = horizon_s / 3600.0
    return FaultRates(
        node_crash_per_hour=2.0 / (hours * n_nodes),
        crac_degrade_per_hour=1.0 / (hours * n_crac),
        crac_outage_per_hour=0.5 / (hours * n_crac),
        cap_drop_per_hour=0.5 / hours,
        ecs_drift_per_hour=0.5 / hours,
        mean_repair_s=horizon_s / 4.0,
    )


def _draw_onsets(rng: np.random.Generator, rate_per_hour: float,
                 horizon_s: float) -> list[float]:
    """Poisson onsets on ``(0, horizon)`` via exponential gaps."""
    if rate_per_hour <= 0:
        return []
    rate_per_s = rate_per_hour / 3600.0
    onsets: list[float] = []
    t = float(rng.exponential(1.0 / rate_per_s))
    while t < horizon_s:
        onsets.append(t)
        t += float(rng.exponential(1.0 / rate_per_s))
    return onsets


def _draw_magnitude(rng: np.random.Generator, mean: float) -> float:
    return float(np.clip(rng.uniform(0.5 * mean, 1.5 * mean), 0.05, 0.95))


def generate_fault_schedule(n_nodes: int, n_crac: int, horizon_s: float,
                            rates: FaultRates,
                            rng: np.random.Generator | int
                            ) -> FaultSchedule:
    """Draw a reproducible fault timeline for one room and horizon.

    Parameters
    ----------
    n_nodes / n_crac:
        Room inventory the targeted kinds index into.
    horizon_s:
        Onsets are drawn on ``(0, horizon_s)``; repairs may land beyond
        it (the run then ends degraded).
    rates:
        Onset rates and severity means.
    rng:
        A seeded generator, or an integer seed.  Kinds and targets are
        visited in a fixed order, so ``(room, horizon, rates, seed)``
        fully determines the schedule.
    """
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    if n_nodes < 1 or n_crac < 1:
        raise ValueError("room must have at least one node and one CRAC")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    events: list[FaultEvent] = []

    def repair() -> float:
        return max(1e-3, float(rng.exponential(rates.mean_repair_s)))

    # Fixed visit order: node crashes (per node), CRAC degrades, CRAC
    # outages (per CRAC), then the room-wide kinds — all from one rng.
    for node in range(n_nodes):
        for t in _draw_onsets(rng, rates.node_crash_per_hour, horizon_s):
            events.append(FaultEvent(start_s=t, kind=FaultKind.NODE_CRASH,
                                     target=node, duration_s=repair()))
    for crac in range(n_crac):
        for t in _draw_onsets(rng, rates.crac_degrade_per_hour, horizon_s):
            events.append(FaultEvent(
                start_s=t, kind=FaultKind.CRAC_DEGRADE, target=crac,
                duration_s=repair(),
                magnitude=_draw_magnitude(rng, rates.degrade_magnitude)))
    for crac in range(n_crac):
        for t in _draw_onsets(rng, rates.crac_outage_per_hour, horizon_s):
            events.append(FaultEvent(start_s=t, kind=FaultKind.CRAC_OUTAGE,
                                     target=crac, duration_s=repair()))
    for t in _draw_onsets(rng, rates.cap_drop_per_hour, horizon_s):
        events.append(FaultEvent(
            start_s=t, kind=FaultKind.POWER_CAP_DROP, duration_s=repair(),
            magnitude=_draw_magnitude(rng, rates.cap_drop_magnitude)))
    for t in _draw_onsets(rng, rates.ecs_drift_per_hour, horizon_s):
        events.append(FaultEvent(
            start_s=t, kind=FaultKind.ECS_DRIFT, duration_s=repair(),
            magnitude=_draw_magnitude(rng, rates.ecs_drift_magnitude)))

    schedule = FaultSchedule.from_events(events)
    schedule.validate_for(n_nodes, n_crac)
    return schedule


def schedule_from_dict(doc: dict) -> FaultSchedule:
    """Parse a hand-written scenario dict (``{"events": [...]}``).

    Each event dict carries ``kind``, ``start_s`` and optionally
    ``duration_s`` (omitted/null = permanent), ``target`` and
    ``magnitude`` — the exact shape :meth:`FaultSchedule.to_dict`
    produces, so scenarios round-trip.
    """
    return FaultSchedule.from_dict(doc)


def load_schedule(path: str | Path) -> FaultSchedule:
    """Load a scenario file: JSON always, YAML when PyYAML is available."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise RuntimeError(
                f"{path} is YAML but PyYAML is not installed; convert the "
                "scenario to JSON") from exc
        doc = yaml.safe_load(text)
    else:
        doc = json.loads(text)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: scenario root must be a mapping")
    return schedule_from_dict(doc)
