"""Scenario generation — one fully-specified simulation run (Section VI).

A *scenario* bundles everything one Figure 6 data point needs: a random
room (node types, layout, CRACs), its cross-interference thermal model,
a workload (ECS tensor, rewards, deadlines, arrival rates) and the
derived power cap ``Pconst`` (Eqs. 17-18).  ``generate_scenario`` is a
pure function of ``(config, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.builder import DataCenter, build_datacenter
from repro.datacenter.coretypes import paper_node_types
from repro.datacenter.power import PowerBounds, power_bounds
from repro.experiments.config import ScenarioConfig
from repro.thermal.interference import attach_thermal_model
from repro.workload.tasktypes import Workload, generate_workload

__all__ = ["Scenario", "generate_scenario"]


@dataclass
class Scenario:
    """One concrete simulation instance.

    Attributes
    ----------
    config / seed:
        The recipe that produced this scenario (reproducibility).
    datacenter:
        Room with its thermal model attached.
    workload:
        The Section VI workload.
    bounds:
        ``Pmin`` / ``Pmax`` from Eq. 17.
    """

    config: ScenarioConfig
    seed: int
    datacenter: DataCenter
    workload: Workload
    bounds: PowerBounds

    @property
    def p_const(self) -> float:
        """Eq. 18 power cap — midpoint of the Eq. 17 bounds."""
        return self.bounds.p_const


def generate_scenario(config: ScenarioConfig, seed: int) -> Scenario:
    """Build a scenario deterministically from a config and seed."""
    rng = np.random.default_rng(seed)
    node_types = paper_node_types(config.static_fraction)
    dc = build_datacenter(
        n_nodes=config.n_nodes,
        n_crac=config.n_crac,
        node_types=node_types,
        rng=rng,
        crac_outlet_range_c=(config.crac_outlet_low_c,
                             config.crac_outlet_high_c),
        nodes_per_rack=config.nodes_per_rack,
    )
    attach_thermal_model(dc, rng=rng, facing_share=config.facing_share)
    workload = generate_workload(
        dc, rng,
        n_task_types=config.n_task_types,
        v_ecs=config.v_ecs,
        v_prop=config.v_prop,
        v_arrival=config.v_arrival,
    )
    bounds = power_bounds(dc)
    return Scenario(config=config, seed=seed, datacenter=dc,
                    workload=workload, bounds=bounds)
