"""Tests for repro.experiments.generator — scenario assembly."""

import numpy as np
import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.generator import generate_scenario


@pytest.fixture(scope="module")
def small_scenario():
    return generate_scenario(ScenarioConfig(name="t", n_nodes=15), 3)


class TestGeneration:
    def test_reproducible(self, small_scenario):
        again = generate_scenario(small_scenario.config, 3)
        np.testing.assert_allclose(
            again.workload.ecs, small_scenario.workload.ecs)
        np.testing.assert_allclose(
            again.datacenter.thermal.mix,
            small_scenario.datacenter.thermal.mix)
        assert again.p_const == pytest.approx(small_scenario.p_const)

    def test_seed_matters(self, small_scenario):
        other = generate_scenario(small_scenario.config, 4)
        assert not np.allclose(other.workload.ecs,
                               small_scenario.workload.ecs)

    def test_static_fraction_flows_to_node_types(self):
        s20 = generate_scenario(
            ScenarioConfig(name="s", n_nodes=15, static_fraction=0.2), 1)
        for spec in s20.datacenter.node_types:
            assert spec.static_fraction_p0 == 0.2

    def test_thermal_attached(self, small_scenario):
        assert small_scenario.datacenter.thermal is not None

    def test_oversubscribed_by_construction(self, small_scenario):
        """Pconst sits strictly between idle and flat-out power."""
        b = small_scenario.bounds
        assert b.p_min < small_scenario.p_const < b.p_max

    def test_workload_dimensions(self, small_scenario):
        wl = small_scenario.workload
        cfg = small_scenario.config
        assert wl.n_task_types == cfg.n_task_types
        assert wl.n_node_types == 2
