"""Tests for repro.faults.inject — degraded-room views.

The load-bearing physics claim: dropping crashed nodes via Markov-chain
censoring reproduces the full room with those nodes passive, exactly —
and the degraded model still satisfies every invariant the
:class:`~repro.thermal.heatflow.HeatFlowModel` constructor enforces
(row-stochastic mixing, conserved flows), because censoring preserves
them by construction.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import build_datacenter
from repro.faults.inject import degraded_view, derated_cracs
from repro.faults.model import InventoryState
from repro.thermal import attach_thermal_model
from repro.thermal.transient import simulate_transient
from repro.workload import generate_workload

N_NODES, N_CRAC = 8, 2


@pytest.fixture(scope="module")
def room():
    rng = np.random.default_rng(42)
    dc = build_datacenter(n_nodes=N_NODES, n_crac=N_CRAC, rng=rng)
    attach_thermal_model(dc, rng=rng)
    return dc


@pytest.fixture(scope="module")
def room_workload(room):
    return generate_workload(room, np.random.default_rng(43))


def _state(dead=(), capacity=None, cap=1.0, ecs=1.0):
    counts = np.zeros(N_NODES, dtype=int)
    for j in dead:
        counts[j] += 1
    cap_arr = np.ones(N_CRAC) if capacity is None \
        else np.asarray(capacity, dtype=float)
    return InventoryState(node_dead_count=counts, crac_capacity=cap_arr,
                          power_cap_factor=cap, ecs_factor=ecs)


class TestIdentityFastPath:
    def test_nominal_state_returns_same_objects(self, room, room_workload):
        view = degraded_view(room, room_workload, _state())
        assert view.is_identity
        assert view.datacenter is room
        assert view.workload is room_workload
        assert list(view.node_map) == list(range(N_NODES))

    def test_cap_factor(self, room, room_workload):
        view = degraded_view(room, room_workload, _state(cap=0.7))
        assert view.cap(100.0) == pytest.approx(70.0)
        # a pure cap fault leaves the room itself untouched
        assert view.datacenter is room


class TestDeratedCracs:
    def test_ranges_narrow_from_cold_end(self, room):
        cracs = derated_cracs(room, np.array([0.5, 1.0]))
        lo0, hi0 = room.cracs[0].outlet_range_c
        lo, hi = cracs[0].outlet_range_c
        assert hi == hi0
        assert lo == pytest.approx(lo0 + 0.5 * (hi0 - lo0))
        assert cracs[1] is room.cracs[1]

    def test_outage_pins_warm_end(self, room):
        cracs = derated_cracs(room, np.array([0.0, 1.0]))
        lo, hi = cracs[0].outlet_range_c
        assert lo == pytest.approx(hi)

    def test_shape_and_range_validation(self, room):
        with pytest.raises(ValueError, match="capacity"):
            derated_cracs(room, np.array([0.5]))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            derated_cracs(room, np.array([1.5, 0.5]))


class TestNodeCensoring:
    def test_reduced_model_passes_constructor_invariants(self, room,
                                                         room_workload):
        # merely building the view runs HeatFlowModel.__init__, which
        # validates row sums and flow conservation of the censored chain
        view = degraded_view(room, room_workload, _state(dead=(1, 4)))
        model = view.datacenter.require_thermal()
        assert model.n_units == N_CRAC + N_NODES - 2

    def test_censoring_matches_passive_full_room(self, room, room_workload):
        """Reduced steady state == full room with dead nodes at 0 kW."""
        dead = (2, 5)
        view = degraded_view(room, room_workload, _state(dead=dead))
        full_model = room.require_thermal()
        red_model = view.datacenter.require_thermal()
        t_crac = np.full(N_CRAC, 18.0)
        rng = np.random.default_rng(7)
        power_full = rng.uniform(0.5, 3.0, N_NODES)
        power_full[list(dead)] = 0.0
        alive = [j for j in range(N_NODES) if j not in dead]
        full = full_model.steady_state(t_crac, power_full)
        red = red_model.steady_state(t_crac, power_full[alive])
        np.testing.assert_allclose(red.t_out,
                                   full.t_out[view.kept_units], atol=1e-9)
        # and expand_t_out reconstructs the dead units' temperatures
        expanded = view.expand_t_out(red.t_out)
        np.testing.assert_allclose(expanded, full.t_out, atol=1e-9)

    def test_reduce_expand_round_trip(self, room, room_workload):
        view = degraded_view(room, room_workload, _state(dead=(0,)))
        rng = np.random.default_rng(3)
        t_red = np.asarray(
            view.datacenter.require_thermal().steady_state(
                np.full(N_CRAC, 17.0),
                rng.uniform(0.5, 2.0, N_NODES - 1)).t_out)
        assert view.reduce_t_out(view.expand_t_out(t_red)) \
            == pytest.approx(t_red)

    def test_all_nodes_dead_rejected(self, room, room_workload):
        with pytest.raises(ValueError, match="crashed"):
            degraded_view(room, room_workload,
                          _state(dead=tuple(range(N_NODES))))

    def test_ecs_drift_scales_workload(self, room, room_workload):
        view = degraded_view(room, room_workload, _state(ecs=0.8))
        np.testing.assert_allclose(view.workload.ecs,
                                   room_workload.ecs * 0.8)


class TestTransientFixedPointProperty:
    """Satellite 3: the transient's fixed point is the steady state, on
    degraded inventories too (CRAC derate and/or node removal)."""

    @staticmethod
    def _cached_room():
        if not hasattr(TestTransientFixedPointProperty, "_room"):
            rng = np.random.default_rng(42)
            room = build_datacenter(n_nodes=N_NODES, n_crac=N_CRAC, rng=rng)
            attach_thermal_model(room, rng=rng)
            workload = generate_workload(room, np.random.default_rng(43))
            TestTransientFixedPointProperty._room = (room, workload)
        return TestTransientFixedPointProperty._room

    @settings(max_examples=12, deadline=None)
    @given(dead=st.sets(st.integers(min_value=0, max_value=N_NODES - 1),
                        max_size=3),
           capacity0=st.floats(min_value=0.0, max_value=1.0),
           power_seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_fixed_point_equals_steady_state(self, dead, capacity0,
                                             power_seed):
        room, workload = self._cached_room()
        state = _state(dead=tuple(dead),
                       capacity=np.array([capacity0, 1.0]))
        view = degraded_view(room, workload, state)
        dc = view.datacenter
        model = dc.require_thermal()
        # an admissible operating point of the *degraded* room
        t_crac = np.array([c.outlet_range_c[1] for c in dc.cracs])
        power = np.random.default_rng(power_seed).uniform(
            0.5, 3.0, dc.n_nodes)
        target = model.steady_state(t_crac, power)
        # start far from the fixed point and integrate well past settling
        t0 = np.full(model.n_units, 35.0)
        t0[:N_CRAC] = t_crac
        # recirculation slows convergence below the bare 1/tau rate, so
        # integrate far past settling before comparing
        result = simulate_transient(model, t_crac, power, t0,
                                    duration_s=500.0, tau_s=8.0, dt_s=2.0)
        np.testing.assert_allclose(result.t_out[-1], target.t_out,
                                   atol=1e-6)
        np.testing.assert_allclose(result.t_in[-1], target.t_in, atol=1e-6)
