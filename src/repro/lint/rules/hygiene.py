"""Hygiene rules (RL020-RL029).

Failure-handling and API-surface rules: exception handlers that could
swallow :class:`~repro.faults.model.FaultEvent` processing or solver
errors, the classic mutable-default trap, and observability span names
drifting away from the documented taxonomy.
"""

from __future__ import annotations

import ast

from repro.lint.base import RuleVisitor, register

__all__ = ["MutableDefault", "SilentExcept", "SpanTaxonomy"]


@register
class SilentExcept(RuleVisitor):
    """Bare or overbroad ``except`` without a re-raise."""

    code = "RL020"
    name = "silent-except"
    category = "hygiene"
    description = (
        "bare 'except:' (always flagged) or 'except Exception/"
        "BaseException' with no raise in the handler — swallows "
        "FaultEvent handling and solver errors (InfeasibleError, "
        "EngineError) that callers rely on; catch the specific "
        "exceptions or re-raise after handling")

    _BROAD = ("Exception", "BaseException")

    def _is_broad(self, node: ast.expr | None) -> bool:
        if node is None:
            return True
        if isinstance(node, ast.Name):
            return node.id in self._BROAD
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(e) for e in node.elts)
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare 'except:' catches everything "
                              "including SystemExit/KeyboardInterrupt; "
                              "name the exceptions you expect")
        elif self._is_broad(node.type):
            reraises = any(isinstance(sub, ast.Raise)
                           for sub in ast.walk(node))
            if not reraises:
                self.report(
                    node,
                    "'except Exception' without a re-raise can swallow "
                    "FaultEvent and solver errors; catch the specific "
                    "exceptions or re-raise after handling")
        self.generic_visit(node)


@register
class MutableDefault(RuleVisitor):
    """Mutable default argument values."""

    code = "RL021"
    name = "mutable-default"
    category = "hygiene"
    description = (
        "list/dict/set literals (or their zero-arg constructors) as "
        "parameter defaults are shared across calls; default to None "
        "and construct inside the function")

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "dict", "set")
                and not node.args and not node.keywords)

    def _check(self, args: ast.arguments) -> None:
        for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None]:
            if self._is_mutable(default):
                self.report(default,
                            "mutable default argument is shared across "
                            "calls; use None and create it inside the "
                            "function")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check(node.args)
        self.generic_visit(node)


@register
class SpanTaxonomy(RuleVisitor):
    """Span names outside the documented taxonomy."""

    code = "RL022"
    name = "span-taxonomy"
    category = "hygiene"
    description = (
        "obs span() opened with a name segment missing from the table "
        "in docs/OBSERVABILITY.md — undocumented spans fragment the "
        "profile tree and silently break profile-structure identity "
        "tests; add the span to the doc table or reuse an existing "
        "name")

    def skip_file(self) -> bool:
        return self.ctx.path_matches(self.config.span_rule_skip)

    @staticmethod
    def _is_span_call(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in ("span", "obs_span")
        return isinstance(func, ast.Attribute) and func.attr == "span"

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_span_call(node) and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) \
                    and isinstance(first.value, str):
                unknown = [seg for seg in first.value.split(".")
                           if seg not in self.config.span_taxonomy]
                if unknown:
                    self.report(
                        first,
                        f"span name {first.value!r} has undocumented "
                        f"segment(s) {', '.join(sorted(unknown))}; add "
                        "them to the span-taxonomy table in "
                        "docs/OBSERVABILITY.md or reuse a documented "
                        "name")
        self.generic_visit(node)
