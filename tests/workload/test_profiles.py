"""Tests for repro.workload.profiles — non-stationary arrivals."""

import numpy as np
import pytest

from repro.workload.profiles import (ConstantProfile, DiurnalProfile,
                                     StepProfile,
                                     generate_nonstationary_trace)
from repro.workload.tasktypes import Workload


def tiny_workload(rates) -> Workload:
    t = len(rates)
    ecs = np.ones((t, 1, 2))
    ecs[:, :, 1] = 0.0
    return Workload(ecs=ecs, rewards=np.ones(t),
                    deadline_slack=np.full(t, 2.0),
                    arrival_rates=np.asarray(rates, dtype=float))


class TestProfiles:
    def test_constant(self):
        p = ConstantProfile(np.asarray([2.0, 3.0]))
        np.testing.assert_allclose(p.rates(0.0), [2.0, 3.0])
        np.testing.assert_allclose(p.rates(1e6), p.max_rates())

    def test_diurnal_bounds(self):
        p = DiurnalProfile(np.asarray([10.0]), amplitude=0.5,
                           period_s=100.0)
        ts = np.linspace(0, 200, 400)
        vals = np.asarray([p.rates(t)[0] for t in ts])
        assert vals.max() <= 15.0 + 1e-9
        assert vals.min() >= 5.0 - 1e-9
        assert p.max_rates()[0] == pytest.approx(15.0)

    def test_diurnal_peak_position(self):
        p = DiurnalProfile(np.asarray([10.0]), amplitude=0.5,
                           period_s=100.0)
        assert p.rates(25.0)[0] == pytest.approx(15.0)  # quarter period

    def test_diurnal_validation(self):
        with pytest.raises(ValueError, match="amplitude"):
            DiurnalProfile(np.asarray([1.0]), amplitude=1.0)
        with pytest.raises(ValueError, match="period"):
            DiurnalProfile(np.asarray([1.0]), period_s=0.0)

    def test_step_profile(self):
        p = StepProfile(boundaries=np.asarray([10.0]),
                        rate_levels=np.asarray([[1.0], [5.0]]))
        assert p.rates(0.0)[0] == 1.0
        assert p.rates(9.999)[0] == 1.0
        assert p.rates(10.0)[0] == 5.0
        assert p.max_rates()[0] == 5.0

    def test_step_validation(self):
        with pytest.raises(ValueError, match="boundary"):
            StepProfile(boundaries=np.asarray([1.0, 2.0]),
                        rate_levels=np.asarray([[1.0], [2.0]]))
        with pytest.raises(ValueError, match="increasing"):
            StepProfile(boundaries=np.asarray([2.0, 1.0]),
                        rate_levels=np.asarray([[1.0], [2.0], [3.0]]))


class TestNonstationaryTrace:
    def test_step_realizes_rates(self):
        """Arrival counts in each regime match that regime's rate."""
        wl = tiny_workload([1.0])
        p = StepProfile(boundaries=np.asarray([200.0]),
                        rate_levels=np.asarray([[2.0], [20.0]]))
        trace = generate_nonstationary_trace(wl, p, 400.0,
                                             np.random.default_rng(0))
        early = sum(1 for t in trace if t.arrival < 200.0)
        late = len(trace) - early
        assert early / 200.0 == pytest.approx(2.0, rel=0.25)
        assert late / 200.0 == pytest.approx(20.0, rel=0.15)

    def test_constant_matches_homogeneous(self):
        wl = tiny_workload([8.0])
        p = ConstantProfile(np.asarray([8.0]))
        trace = generate_nonstationary_trace(wl, p, 500.0,
                                             np.random.default_rng(1))
        assert len(trace) / 500.0 == pytest.approx(8.0, rel=0.15)

    def test_sorted_and_deadlined(self):
        wl = tiny_workload([3.0, 5.0])
        p = DiurnalProfile(np.asarray([3.0, 5.0]), amplitude=0.3,
                           period_s=60.0)
        trace = generate_nonstationary_trace(wl, p, 120.0,
                                             np.random.default_rng(2))
        arr = [t.arrival for t in trace]
        assert arr == sorted(arr)
        for t in trace:
            assert t.deadline == pytest.approx(t.arrival + 2.0)

    def test_dimension_mismatch(self):
        wl = tiny_workload([1.0, 2.0])
        p = ConstantProfile(np.asarray([1.0]))
        with pytest.raises(ValueError, match="dimension"):
            generate_nonstationary_trace(wl, p, 10.0,
                                         np.random.default_rng(0))

    def test_bad_duration(self):
        wl = tiny_workload([1.0])
        p = ConstantProfile(np.asarray([1.0]))
        with pytest.raises(ValueError, match="positive"):
            generate_nonstationary_trace(wl, p, -1.0,
                                         np.random.default_rng(0))
