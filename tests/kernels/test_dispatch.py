"""Kernel registry, scoped selection and end-to-end dispatch plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro import kernels
from repro.cli import build_parser
from repro.core.api import SolveOptions, SolveRequest, solve
from repro.experiments.config import PAPER_SET_1, scaled_down
from repro.experiments.engine import cache_key
from repro.experiments.generator import generate_scenario

from tests.conftest import SEED


class TestRegistry:
    def test_both_kernels_listed(self):
        assert kernels.available_kernels() == ("reference", "vectorized")

    def test_default_is_vectorized(self):
        assert kernels.DEFAULT_KERNEL == "vectorized"

    def test_active_module_matches_name(self):
        with kernels.use_kernel("reference"):
            assert kernels.active().__name__ == "repro.kernels.reference"
        with kernels.use_kernel("vectorized"):
            assert kernels.active().__name__ == "repro.kernels.vectorized"

    def test_set_kernel_returns_previous(self):
        before = kernels.active_name()
        try:
            assert kernels.set_kernel("reference") == before
            assert kernels.active_name() == "reference"
        finally:
            kernels.set_kernel(before)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernels.set_kernel("turbo")
        with pytest.raises(ValueError, match="unknown kernel"):
            with kernels.use_kernel("turbo"):
                pass  # pragma: no cover - the context must not enter


class TestUseKernel:
    def test_restores_on_exit(self):
        start = kernels.active_name()
        with kernels.use_kernel("reference"):
            assert kernels.active_name() == "reference"
        assert kernels.active_name() == start

    def test_restores_on_error(self):
        start = kernels.active_name()
        with pytest.raises(RuntimeError):
            with kernels.use_kernel("reference"):
                raise RuntimeError("boom")
        assert kernels.active_name() == start

    def test_nesting(self):
        with kernels.use_kernel("reference"):
            with kernels.use_kernel("vectorized"):
                assert kernels.active_name() == "vectorized"
            assert kernels.active_name() == "reference"

    def test_none_is_a_noop(self):
        start = kernels.active_name()
        with kernels.use_kernel(None):
            assert kernels.active_name() == start


class TestSolveOptions:
    def test_kernel_default(self):
        assert SolveOptions().kernel == kernels.DEFAULT_KERNEL

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            SolveOptions(kernel="turbo")

    def test_solve_agrees_across_kernels(self):
        sc = generate_scenario(scaled_down(PAPER_SET_1, 8), SEED)
        outcomes = {}
        for name in kernels.available_kernels():
            request = SolveRequest(sc.datacenter, sc.workload, sc.p_const,
                                   options=SolveOptions(kernel=name))
            outcomes[name] = solve(request)
        ref, vec = outcomes["reference"], outcomes["vectorized"]
        assert vec.reward_rate == pytest.approx(ref.reward_rate,
                                                rel=1e-9, abs=1e-9)
        assert np.array_equal(ref.pstates, vec.pstates)
        assert np.array_equal(ref.t_crac_out, vec.t_crac_out)

    def test_solve_restores_ambient_kernel(self):
        sc = generate_scenario(scaled_down(PAPER_SET_1, 8), SEED)
        before = kernels.active_name()
        request = SolveRequest(sc.datacenter, sc.workload, sc.p_const,
                               options=SolveOptions(kernel="reference"))
        solve(request)
        assert kernels.active_name() == before


class TestEngineCacheKeys:
    def test_cache_key_differs_per_kernel(self):
        config = scaled_down(PAPER_SET_1, 8)
        with kernels.use_kernel("reference"):
            ref_key = cache_key(config, 7)
        with kernels.use_kernel("vectorized"):
            vec_key = cache_key(config, 7)
        assert ref_key != vec_key

    def test_cache_key_stable_within_kernel(self):
        config = scaled_down(PAPER_SET_1, 8)
        with kernels.use_kernel("reference"):
            assert cache_key(config, 7) == cache_key(config, 7)


class TestCliOption:
    @pytest.mark.parametrize("command", ["compare", "fig6", "sweep",
                                         "simulate", "chaos"])
    def test_kernel_flag_parses(self, command):
        parser = build_parser()
        args = parser.parse_args([command, "--kernel", "reference"])
        assert args.kernel == "reference"

    def test_kernel_flag_defaults_to_vectorized(self):
        args = build_parser().parse_args(["fig6"])
        assert args.kernel == kernels.DEFAULT_KERNEL

    def test_unknown_kernel_flag_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--kernel", "turbo"])
