"""RL010 good: constants come from repro.units."""

from repro.units import AIR_DENSITY, CRAC_REDLINE_C, NODE_REDLINE_C


def heat_rate(flow_m3s, rho=AIR_DENSITY):
    return rho * flow_m3s


def violates(t_inlet_c, redline_c=NODE_REDLINE_C):
    return t_inlet_c > redline_c


def crac_ok(t_in):
    return t_in <= CRAC_REDLINE_C
