"""Second-step dynamic scheduler (Section V.C).

The first step fixes the *desired* execution rate ``TC(i, k)`` of every
task type on every core; at run time tasks arrive one by one and must be
mapped immediately.  The paper's scheduler tracks the *actual* rates
``ATC(i, k)`` and, for each incoming task of type *i*:

* considers only cores that are supposed to run that type
  (``TC(i, k) > 0``), are not already ahead of their desired rate
  (``ATC/TC <= 1``), and can finish the task before its deadline given
  their current queue;
* among those, picks the core with the minimum ``ATC(i, k) / TC(i, k)``
  — the core furthest *behind* its desired rate;
* drops the task when no such core exists.

``ATC(i, k)`` is maintained as assigned-count divided by elapsed time;
at time zero all ratios are zero, so early tasks spread across all
eligible cores.
"""

from __future__ import annotations

import numpy as np

from repro.datacenter.builder import DataCenter
from repro.workload.tasktypes import Workload

__all__ = ["DynamicScheduler"]


class DynamicScheduler:
    """Stateful second-step scheduler.

    Parameters
    ----------
    datacenter / workload:
        Give core types and ECS values.
    tc:
        Desired execution rates, ``(T, NCORES)`` (from Stage 3 or the
        baseline).
    pstates:
        Per-core P-states the rates were computed for; fixes execution
        times.
    """

    def __init__(self, datacenter: DataCenter, workload: Workload,
                 tc: np.ndarray, pstates: np.ndarray):
        tc = np.asarray(tc, dtype=float)
        pstates = np.asarray(pstates, dtype=int)
        t_count = workload.n_task_types
        n_cores = datacenter.n_cores
        if tc.shape != (t_count, n_cores):
            raise ValueError(
                f"tc must be ({t_count}, {n_cores}), got {tc.shape}")
        if pstates.shape != (n_cores,):
            raise ValueError(f"pstates must be ({n_cores},)")
        self.tc = tc
        # execution time of each (type, core); inf when the core cannot
        # run the type at its P-state
        ecs = workload.ecs[:, datacenter.core_type, pstates]  # (T, NCORES)
        with np.errstate(divide="ignore"):
            self.exec_time = np.where(ecs > 0.0, 1.0 / np.maximum(ecs, 1e-300),
                                      np.inf)
        self.assigned = np.zeros((t_count, n_cores))
        self._eligible = (tc > 0.0) & np.isfinite(self.exec_time)
        # fault-injection support: dead cores are excluded from selection
        # until marked alive again; _any_dead keeps the healthy hot path
        # free of the extra mask.
        self._core_dead = np.zeros(n_cores, dtype=bool)
        self._any_dead = False
        # hot-path acceleration: per-type candidate core lists (usually a
        # small subset of the room) plus contiguous copies of their
        # rates/exec-times, so select_core touches O(candidates) memory
        self._cand: list[np.ndarray] = []
        self._cand_tc: list[np.ndarray] = []
        self._cand_exec: list[np.ndarray] = []
        self._cand_assigned: list[np.ndarray] = []
        for i in range(t_count):
            idx = np.nonzero(self._eligible[i])[0]
            self._cand.append(idx)
            self._cand_tc.append(np.ascontiguousarray(tc[i, idx]))
            self._cand_exec.append(
                np.ascontiguousarray(self.exec_time[i, idx]))
            self._cand_assigned.append(np.zeros(idx.size))

    # ------------------------------------------------------------------
    def ratios(self, task_type: int, now: float) -> np.ndarray:
        """``ATC(i, k) / TC(i, k)`` for one task type at time ``now``.

        Cores with ``TC = 0`` report ``inf`` so they are never selected.
        """
        out = np.full(self.tc.shape[1], np.inf)
        mask = self._eligible[task_type]
        if now <= 0.0:
            out[mask] = 0.0
            return out
        out[mask] = (self.assigned[task_type, mask]
                     / (self.tc[task_type, mask] * now))
        return out

    def select_core(self, task_type: int, deadline: float, now: float,
                    core_free_time: np.ndarray) -> int | None:
        """Pick a core for an arriving task, or ``None`` to drop it.

        ``core_free_time[k]`` is the time core *k* finishes its current
        queue; the task would start at ``max(now, free)`` and must finish
        by ``deadline``.
        """
        idx = self._cand[task_type]
        if idx.size == 0:
            return None
        if now <= 0.0:
            ratio = np.zeros(idx.size)
        else:
            ratio = self._cand_assigned[task_type] \
                / (self._cand_tc[task_type] * now)
        start = np.maximum(core_free_time[idx], now)
        finish = start + self._cand_exec[task_type]
        ok = (ratio <= 1.0 + 1e-12) & (finish <= deadline + 1e-12)
        if self._any_dead:
            ok &= ~self._core_dead[idx]
        if not ok.any():
            return None
        masked = np.where(ok, ratio, np.inf)
        return int(idx[int(np.argmin(masked))])

    def record_assignment(self, task_type: int, core: int) -> None:
        """Count an assignment toward ``ATC``."""
        self.assigned[task_type, core] += 1.0
        pos = self._candidate_pos(task_type, core)
        self._cand_assigned[task_type][pos] += 1.0

    def forget_assignment(self, task_type: int, core: int) -> None:
        """Reverse one :meth:`record_assignment` (stranded task).

        When a fault strands a queued task, the task was assigned but
        never executed; forgetting it keeps ``ATC`` an honest count of
        work the core actually absorbed (and lets a requeued copy pick
        any core without double-counting).
        """
        if self.assigned[task_type, core] < 1.0:
            raise ValueError(
                f"no recorded assignment of type {task_type} on core {core} "
                "to forget")
        self.assigned[task_type, core] -= 1.0
        pos = self._candidate_pos(task_type, core)
        self._cand_assigned[task_type][pos] -= 1.0

    def _candidate_pos(self, task_type: int, core: int) -> int:
        cand = self._cand[task_type]
        pos = int(np.searchsorted(cand, core))
        if pos >= cand.size or cand[pos] != core:
            raise ValueError(
                f"core {core} is not a planned target for type {task_type}")
        return pos

    # ------------------------------------------------------------------
    def mark_cores_dead(self, cores: np.ndarray) -> None:
        """Exclude cores from selection (node crash) until marked alive."""
        self._core_dead[np.asarray(cores, dtype=int)] = True
        self._any_dead = bool(self._core_dead.any())

    def mark_cores_alive(self, cores: np.ndarray) -> None:
        """Readmit previously dead cores (node recovery)."""
        self._core_dead[np.asarray(cores, dtype=int)] = False
        self._any_dead = bool(self._core_dead.any())

    def core_dead(self, core: int) -> bool:
        """True while ``core`` is marked dead."""
        return bool(self._core_dead[core])

    def atc(self, elapsed: float) -> np.ndarray:
        """Actual execution-rate matrix after ``elapsed`` seconds."""
        if elapsed <= 0.0:
            raise ValueError("elapsed time must be positive")
        return self.assigned / elapsed
