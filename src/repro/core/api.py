"""Unified solver API — one request shape for every first-step solver.

The four first-step entry points grew up separately and diverged:
``solve_stage1`` takes ``(datacenter, workload, psi, p_const)``,
``solve_baseline`` and ``best_psi_assignment`` take
``(datacenter, workload, p_const)`` with different tuning keywords, and
``solve_exact`` adds its own enumeration knobs.  Their return shapes
diverged the same way (result, ``(result, search)`` tuples, …).

This module is the convergence point:

* :class:`SolveRequest` — the problem: a data center, a workload and a
  power cap.
* :class:`SolveOptions` — every tuning knob any solver accepts, all
  keyword-only, with the shared defaults.
* :func:`solve` — dispatch to a solver by name (``"three_stage"``,
  ``"best_psi"``, ``"baseline"``, ``"exact"``); every return value
  satisfies :class:`SolveOutcome` (``.reward_rate``, ``.verify(...)``,
  ``.to_dict()``).

The legacy entry points keep working (see their deprecation shims) but
new code — including the experiment engine — should build a
``SolveRequest`` and call :func:`solve`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro import kernels
from repro.datacenter.builder import DataCenter
from repro.workload.tasktypes import Workload

if TYPE_CHECKING:
    from repro.core.assignment import AssignmentResult

__all__ = ["SolveOptions", "SolveRequest", "SolveOutcome", "BestPsiOutcome",
           "solve", "available_methods"]


@runtime_checkable
class SolveOutcome(Protocol):
    """What every first-step solver result can do.

    ``AssignmentResult``, ``BaselineSolution``, ``ExactResult`` and
    :class:`BestPsiOutcome` all satisfy this protocol.
    """

    @property
    def reward_rate(self) -> float: ...

    def verify(self, datacenter: DataCenter, p_const: float,
               tol: float = 1e-6) -> None: ...

    def to_dict(self) -> dict: ...


@dataclass(frozen=True)
class SolveOptions:
    """Tuning knobs shared across solvers (all keyword-only in use).

    Attributes
    ----------
    psi:
        ARR aggregation level for the single-ψ three-stage pipeline.
    psis:
        ψ levels evaluated by the ``best_psi`` method.
    search:
        CRAC outlet-temperature search mode (``"fast"`` or ``"full"``).
    coarse_step / final_step:
        Grid granularities of the ``"full"`` coarse-to-fine search.
    temp_step / max_assignments:
        Exact-enumeration knobs (``"exact"`` method only).
    kernel:
        Numeric kernel the solve runs under (``"vectorized"`` — the
        default — or the scalar ``"reference"`` oracle; see
        :mod:`repro.kernels` and ``docs/KERNELS.md``).
    """

    psi: float = 50.0
    psis: tuple[float, ...] = (25.0, 50.0)
    search: str = "fast"
    coarse_step: float = 5.0
    final_step: float = 1.0
    temp_step: float = 3.0
    max_assignments: int = 200_000
    kernel: str = kernels.DEFAULT_KERNEL

    def __post_init__(self) -> None:
        if self.search not in ("fast", "full"):
            raise ValueError(
                f"unknown search mode {self.search!r} (use 'fast' or 'full')")
        if not self.psis:
            raise ValueError("need at least one psi value")
        if self.kernel not in kernels.available_kernels():
            raise ValueError(
                f"unknown kernel {self.kernel!r}; choose from "
                f"{', '.join(kernels.available_kernels())}")


@dataclass(frozen=True, eq=False)
class SolveRequest:
    """One first-step problem instance: room + workload + power cap."""

    datacenter: DataCenter
    workload: Workload
    p_const: float
    options: SolveOptions = field(default_factory=SolveOptions)

    def with_options(self, **changes: object) -> "SolveRequest":
        """A copy of this request with some options replaced."""
        return replace(self, options=replace(self.options, **changes))


@dataclass
class BestPsiOutcome:
    """Best-of-ψ result with the per-ψ assignments kept around.

    Satisfies :class:`SolveOutcome`; ``verify`` audits every per-ψ
    assignment (the paper reports them separately, so all must hold).
    """

    by_psi: dict[float, AssignmentResult]
    search: object | None = None

    @property
    def best(self) -> AssignmentResult:
        return max(self.by_psi.values(), key=lambda r: r.reward_rate)

    @property
    def reward_rate(self) -> float:
        return self.best.reward_rate

    @property
    def reward_by_psi(self) -> dict[float, float]:
        return {psi: r.reward_rate for psi, r in self.by_psi.items()}

    def verify(self, datacenter: DataCenter, p_const: float,
               tol: float = 1e-6) -> None:
        for result in self.by_psi.values():
            result.verify(datacenter, p_const, tol=tol)

    def to_dict(self) -> dict:
        return {
            "method": "best_psi",
            "reward_rate": self.reward_rate,
            "best_psi": self.best.psi,
            "by_psi": {str(psi): r.to_dict()
                       for psi, r in self.by_psi.items()},
        }


def _solve_three_stage(request: SolveRequest) -> SolveOutcome:
    from repro.core.assignment import three_stage_assignment

    opt = request.options
    return three_stage_assignment(
        request.datacenter, request.workload, request.p_const,
        psi=opt.psi, search=opt.search)


def _solve_best_psi(request: SolveRequest) -> BestPsiOutcome:
    from repro.core.assignment import best_psi_assignment

    opt = request.options
    _, by_psi = best_psi_assignment(
        request.datacenter, request.workload, request.p_const,
        psis=opt.psis, search=opt.search)
    return BestPsiOutcome(by_psi=by_psi)


def _solve_baseline(request: SolveRequest) -> SolveOutcome:
    from repro.core.baseline import solve_baseline

    opt = request.options
    solution, search = solve_baseline(
        request.datacenter, request.workload, request.p_const,
        search=opt.search, coarse_step=opt.coarse_step,
        final_step=opt.final_step)
    solution.search = search
    return solution


def _solve_exact(request: SolveRequest) -> SolveOutcome:
    from repro.core.exact import solve_exact

    opt = request.options
    return solve_exact(
        request.datacenter, request.workload, request.p_const,
        temp_step=opt.temp_step, max_assignments=opt.max_assignments)


_SOLVERS = {
    "three_stage": _solve_three_stage,
    "best_psi": _solve_best_psi,
    "baseline": _solve_baseline,
    "exact": _solve_exact,
}


def available_methods() -> tuple[str, ...]:
    """Names accepted by :func:`solve`."""
    return tuple(_SOLVERS)


def solve(request: SolveRequest, *, method: str = "three_stage"
          ) -> SolveOutcome:
    """Solve one first-step problem with the named technique.

    Every return value exposes ``.reward_rate``, ``.verify(datacenter,
    p_const)`` and ``.to_dict()`` regardless of the method.  The solve
    runs under ``request.options.kernel`` (scoped — the process-wide
    kernel selection is restored afterwards).
    """
    try:
        solver = _SOLVERS[method]
    except KeyError:
        raise ValueError(
            f"unknown solve method {method!r}; "
            f"choose from {', '.join(_SOLVERS)}") from None
    with kernels.use_kernel(request.options.kernel):
        return solver(request)
