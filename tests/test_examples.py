"""Smoke-run every shipped example at a shrunken problem size.

The examples are executable documentation of the public API; this suite
keeps them from rotting when the API moves.  Each module is loaded from
its file (``examples/`` is not a package) and its ``main()`` called with
small keyword overrides so the whole suite stays in CI budget.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Per-example keyword overrides that shrink the run (defaults are
#: sized for humans reading the output, not for CI).
SHRUNK = {
    "capacity_planning": {"n_nodes": 8},
    "diurnal_control": {"n_nodes": 6},
    "dynamic_scheduling": {"horizon": 10.0},
    "oversubscribed_datacenter": {"n_nodes": 10},
    "quickstart": {},
    "thermal_map": {},
}


def _load_example(stem: str):
    path = EXAMPLES_DIR / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(f"example_{stem}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_example_is_covered():
    on_disk = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(SHRUNK), \
        "examples/ and the SHRUNK table drifted apart"


@pytest.mark.parametrize("stem", sorted(SHRUNK))
def test_example_runs(stem, capsys):
    module = _load_example(stem)
    module.main(**SHRUNK[stem])
    out = capsys.readouterr().out
    assert out.strip(), f"{stem}.main() printed nothing"
