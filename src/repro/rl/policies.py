"""Scripted reference policies for :class:`ThermalSchedulingEnv`.

The in-repo baseline agent any learned policy must beat: it plans like
the constructive seed grid of the metaheuristic backends — enumerate
every (outlet level, uniform P-state fill) action, repair each through
the environment's evaluator, and commit the one with the best Stage 3
predicted reward.  Fully deterministic (grid order breaks ties) and
feasible by construction, so a full greedy episode never violates a
steady-state redline.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.rl.env import ThermalSchedulingEnv

__all__ = ["GreedyPlanPolicy"]


class GreedyPlanPolicy:
    """Pick the best repaired (outlet level, uniform fill) plan.

    The scan is done once and memoized — the predicted Stage 3 reward
    of a plan does not depend on the epoch, only on the plan — so an
    episode costs one grid scan plus cache lookups.
    """

    def __init__(self, env: ThermalSchedulingEnv):
        self.env = env
        self._best_action: tuple[int, Any] | None = None

    def _scan(self) -> tuple[int, Any]:
        spec = self.env.action_spec()
        n_types = len(spec["pstate_levels"])
        max_eta = max(spec["pstate_levels"])
        best_reward = -np.inf
        best_action: tuple[int, Any] | None = None
        for level in range(spec["outlet_levels"]):
            for fill in range(max_eta):
                action = (level, tuple([fill] * n_types))
                _, reward = self.env.plan_action(action)
                if reward > best_reward:
                    best_reward = reward
                    best_action = action
        assert best_action is not None
        return best_action

    def __call__(self, obs: np.ndarray) -> tuple[int, Any]:
        """The action for this observation (observation-independent)."""
        if self._best_action is None:
            self._best_action = self._scan()
        return self._best_action
