"""Tests for repro.core.assignment — the three-stage facade."""

import numpy as np
import pytest

from repro.core.assignment import best_psi_assignment, three_stage_assignment


class TestThreeStage:
    def test_verify_passes(self, scenario, assignment):
        assignment.verify(scenario.datacenter, scenario.p_const)

    def test_decisions_consistent(self, scenario, assignment):
        dc = scenario.datacenter
        assert assignment.pstates.shape == (dc.n_cores,)
        assert assignment.tc.shape == (scenario.workload.n_task_types,
                                       dc.n_cores)
        assert assignment.t_crac_out.shape == (dc.n_crac,)
        assert assignment.reward_rate == pytest.approx(
            assignment.stage3.reward_rate)

    def test_outlets_within_range(self, scenario, assignment):
        lo, hi = scenario.datacenter.cracs[0].outlet_range_c
        assert np.all(assignment.t_crac_out >= lo)
        assert np.all(assignment.t_crac_out <= hi)

    def test_positive_reward(self, assignment):
        assert assignment.reward_rate > 0

    def test_power_breakdown(self, scenario, assignment):
        b = assignment.power(scenario.datacenter)
        assert b.total <= scenario.p_const + 1e-6
        assert b.cooling_total > 0

    def test_verify_catches_cap_violation(self, scenario, assignment):
        with pytest.raises(AssertionError, match="power cap"):
            assignment.verify(scenario.datacenter,
                              p_const=assignment.power(
                                  scenario.datacenter).total - 1.0)

    def test_uses_most_of_the_cap(self, scenario, assignment):
        """Oversubscribed room: the technique should not leave large
        amounts of power unused."""
        b = assignment.power(scenario.datacenter)
        assert b.total >= 0.95 * scenario.p_const


class TestBestPsi:
    def test_returns_all_and_best(self, scenario):
        best, results = best_psi_assignment(
            scenario.datacenter, scenario.workload, scenario.p_const,
            psis=(25.0, 50.0))
        assert set(results) == {25.0, 50.0}
        assert best.reward_rate == max(r.reward_rate
                                       for r in results.values())

    def test_single_psi(self, scenario):
        best, results = best_psi_assignment(
            scenario.datacenter, scenario.workload, scenario.p_const,
            psis=(50.0,))
        assert list(results) == [50.0]
        assert best is results[50.0]

    def test_empty_psis_rejected(self, scenario):
        with pytest.raises(ValueError, match="psi"):
            best_psi_assignment(scenario.datacenter, scenario.workload,
                                scenario.p_const, psis=())

    def test_psi_changes_assignment(self, scenario):
        """Different ARR aggregations generally choose different plans."""
        _, results = best_psi_assignment(
            scenario.datacenter, scenario.workload, scenario.p_const,
            psis=(25.0, 100.0))
        a, b = results[25.0], results[100.0]
        assert (a.reward_rate != pytest.approx(b.reward_rate, rel=1e-9)
                or not np.array_equal(a.pstates, b.pstates))


class TestPsiMonotonicityStory:
    def test_stage1_overestimates_with_small_psi(self, scenario):
        """Paper Section VII.B: with psi=25 the Stage 1 (relaxed,
        arrival-blind) objective exceeds the Stage 3 reward because the
        few 'best' types cannot keep the cores busy."""
        res = three_stage_assignment(scenario.datacenter,
                                     scenario.workload, scenario.p_const,
                                     psi=25.0)
        # Stage 1 ignores arrival rates entirely, so it cannot be below
        # stage-3 by more than the integer-rounding loss, and for small
        # psi it typically overshoots.
        assert res.stage1.objective > 0
