#!/usr/bin/env python
"""Epoch-based re-assignment over a diurnal load cycle.

The paper's first-step assignment is static; a deployed controller
re-runs it as load drifts. This example drives the
:class:`repro.core.controller.EpochController` through a compressed
day/night cycle, showing each epoch's re-plan, the thermal-transient
safety check on every transition, and the achieved versus planned
reward.

Run:  python examples/diurnal_control.py [n_nodes] [seed]
"""

import sys

import numpy as np

from repro.core import EpochController
from repro.experiments import PAPER_SET_1, generate_scenario, scaled_down
from repro.workload import DiurnalProfile


def main(n_nodes: int = 15, seed: int = 9) -> None:
    scenario = generate_scenario(scaled_down(PAPER_SET_1, n_nodes), seed)
    dc, wl = scenario.datacenter, scenario.workload

    # one "day" compressed into an hour: 15-minute epochs, thermal time
    # constant of a minute so transitions settle well within an epoch
    profile = DiurnalProfile(base_rates=wl.arrival_rates, amplitude=0.4,
                             period_s=3600.0)
    controller = EpochController(dc, wl, scenario.p_const,
                                 epoch_s=900.0, tau_s=60.0)
    print(f"room: {dc.n_nodes} nodes, cap {scenario.p_const:.1f} kW; "
          "diurnal load +/-40% over a 1h cycle, 15-min epochs\n")
    result = controller.run(profile, horizon_s=3600.0,
                            rng=np.random.default_rng(seed + 1))

    print(f"{'epoch':>12}{'offered/s':>11}{'planned/s':>11}"
          f"{'achieved/s':>12}{'P0 cores':>10}{'overshoot C':>13}")
    eta = dc.node_types[0].n_pstates
    for e in result.epochs:
        p0 = int((e.plan.pstates == 0).sum())
        print(f"{e.start_s:>5.0f}-{e.end_s:<6.0f}{e.rates.sum():>11.1f}"
              f"{e.plan.reward_rate:>11.1f}{e.metrics.reward_rate:>12.1f}"
              f"{p0:>10}{e.transient_overshoot_c:>+13.2f}")
    print(f"\nwhole horizon: achieved {result.reward_rate:.1f}/s of "
          f"planned {result.planned_reward_rate:.1f}/s "
          f"({100 * result.reward_rate / result.planned_reward_rate:.1f}%)")
    print("every transition was verified transient-safe before commit "
          "(overshoot <= 0).")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 15
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 9
    main(n, s)
