"""Tests for repro.core.controller — epoch-based re-assignment."""

import numpy as np
import pytest

from repro.core.controller import EpochController
from repro.experiments import ScenarioConfig, generate_scenario
from repro.workload.profiles import ConstantProfile, StepProfile


@pytest.fixture(scope="module")
def tiny_scenario():
    """A very small, fast room for controller runs."""
    return generate_scenario(ScenarioConfig(name="ctrl", n_nodes=10), 21)


@pytest.fixture(scope="module")
def controller(tiny_scenario):
    sc = tiny_scenario
    return EpochController(sc.datacenter, sc.workload, sc.p_const,
                           epoch_s=60.0, tau_s=10.0)


@pytest.fixture(scope="module")
def step_run(tiny_scenario, controller):
    """One run over a load step (half rates -> full rates)."""
    sc = tiny_scenario
    profile = StepProfile(
        boundaries=np.asarray([60.0]),
        rate_levels=np.vstack([0.5 * sc.workload.arrival_rates,
                               sc.workload.arrival_rates]))
    return controller.run(profile, horizon_s=120.0,
                          rng=np.random.default_rng(3))


class TestRun:
    def test_epoch_count_and_boundaries(self, step_run):
        assert len(step_run.epochs) == 2
        assert step_run.epochs[0].start_s == 0.0
        assert step_run.epochs[0].end_s == 60.0
        assert step_run.epochs[1].end_s == 120.0

    def test_plans_track_the_load_step(self, tiny_scenario, step_run):
        sc = tiny_scenario
        e0, e1 = step_run.epochs
        np.testing.assert_allclose(e0.rates,
                                   0.5 * sc.workload.arrival_rates)
        np.testing.assert_allclose(e1.rates, sc.workload.arrival_rates)
        # more offered load -> at least as much planned reward
        assert e1.plan.reward_rate >= e0.plan.reward_rate - 1e-6

    def test_transitions_are_transient_safe(self, step_run):
        for e in step_run.epochs:
            assert e.transient_overshoot_c <= 1e-6

    def test_plans_respect_cap(self, tiny_scenario, step_run):
        sc = tiny_scenario
        for e in step_run.epochs:
            e.plan.verify(sc.datacenter, sc.p_const)

    def test_aggregate_metrics(self, step_run):
        total = sum(e.metrics.total_reward for e in step_run.epochs)
        assert step_run.total_reward == pytest.approx(total)
        assert step_run.reward_rate > 0
        assert step_run.planned_reward_rate > 0

    def test_constant_profile_keeps_same_plan_quality(self, tiny_scenario,
                                                      controller):
        sc = tiny_scenario
        profile = ConstantProfile(sc.workload.arrival_rates)
        res = controller.run(profile, horizon_s=120.0,
                             rng=np.random.default_rng(4))
        r0 = res.epochs[0].plan.reward_rate
        for e in res.epochs[1:]:
            assert e.plan.reward_rate == pytest.approx(r0, rel=1e-6)


class TestValidation:
    def test_bad_epoch_length(self, tiny_scenario):
        sc = tiny_scenario
        with pytest.raises(ValueError, match="epoch"):
            EpochController(sc.datacenter, sc.workload, sc.p_const,
                            epoch_s=0.0)

    def test_bad_derate_step(self, tiny_scenario):
        sc = tiny_scenario
        with pytest.raises(ValueError, match="derate"):
            EpochController(sc.datacenter, sc.workload, sc.p_const,
                            derate_step=1.5)

    def test_bad_horizon(self, tiny_scenario, controller):
        sc = tiny_scenario
        profile = ConstantProfile(sc.workload.arrival_rates)
        with pytest.raises(ValueError, match="horizon"):
            controller.run(profile, horizon_s=0.0,
                           rng=np.random.default_rng(0))


class TestDegenerateResult:
    """Regression: empty/zero-length results must not raise.

    ``ControllerResult.reward_rate`` used to index ``epochs[-1]`` and
    divide by the horizon unguarded — an empty epoch list raised
    ``IndexError`` and a single instantaneous epoch raised
    ``ZeroDivisionError``.  The documented convention is now 0.0.
    """

    def test_empty_epochs_rate_is_zero(self):
        from repro.core.controller import ControllerResult

        result = ControllerResult(epochs=[])
        assert result.horizon_s == 0.0
        assert result.reward_rate == 0.0
        assert result.planned_reward_rate == 0.0
        assert result.total_reward == 0.0

    def test_zero_length_horizon_rate_is_zero(self):
        from types import SimpleNamespace

        from repro.core.controller import ControllerResult, EpochRecord

        epoch = EpochRecord(
            start_s=5.0, end_s=5.0, rates=np.asarray([1.0]),
            plan=SimpleNamespace(reward_rate=7.0), derated=0,
            transient_overshoot_c=0.0,
            metrics=SimpleNamespace(total_reward=3.0))
        result = ControllerResult(epochs=[epoch])
        assert result.horizon_s == 0.0
        assert result.reward_rate == 0.0
        assert result.planned_reward_rate == 0.0
        # the reward itself is still reported
        assert result.total_reward == 3.0


def _idle_t_out(sc):
    """Idle-room steady state (the controller's cold-start convention)."""
    dc = sc.datacenter
    model = dc.require_thermal()
    idle = dc.node_power_kw(dc.all_off_pstates())
    t_mid = np.full(dc.n_crac,
                    float(np.mean([c.outlet_range_c for c in dc.cracs])))
    return model.steady_state(t_mid, idle).t_out


class TestWarmChaining:
    """The epoch controller threads SolveState between epochs; all epoch
    reuse is value-exact, so the warm chain is bit-identical to solving
    every epoch cold."""

    def test_plan_epoch_returns_solve_result(self, tiny_scenario):
        from repro.core.api import SolveResult

        sc = tiny_scenario
        ctrl = EpochController(sc.datacenter, sc.workload, sc.p_const,
                               epoch_s=60.0, tau_s=10.0)
        t_out = _idle_t_out(sc)
        plan, derated, overshoot = ctrl.plan_epoch(
            sc.workload.arrival_rates, t_out)
        assert isinstance(plan, SolveResult)
        assert derated >= 0

    def test_warm_chain_matches_cold_epochs(self, tiny_scenario):
        from repro.core.api import SolveRequest, solve
        from dataclasses import replace as dc_replace

        sc = tiny_scenario
        ctrl = EpochController(sc.datacenter, sc.workload, sc.p_const,
                               epoch_s=60.0, tau_s=10.0)
        t_out = _idle_t_out(sc)
        rng = np.random.default_rng(11)
        for _ in range(3):
            factors = rng.uniform(0.6, 1.0, sc.workload.n_task_types)
            rates = sc.workload.arrival_rates * factors
            plan, _, _ = ctrl.plan_epoch(rates, t_out)
            wl = dc_replace(sc.workload, arrival_rates=rates)
            cold = solve(SolveRequest(sc.datacenter, wl, sc.p_const))
            assert np.array_equal(plan.t_crac_out, cold.t_crac_out)
            assert np.array_equal(plan.pstates, cold.pstates)
            assert np.array_equal(plan.tc, cold.tc)
            assert plan.reward_rate == cold.reward_rate
