"""Tests for repro.experiments.report — ASCII/markdown rendering."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.report import (ascii_bar_chart, comparison_markdown,
                                      fig6_bar_chart, fig6_markdown)
from repro.experiments.runner import RunResult, SetResult


def tiny_set_result() -> SetResult:
    cfg = ScenarioConfig(name="s", n_nodes=10)
    runs = [
        RunResult(seed=0, reward_by_psi={25.0: 105.0, 50.0: 110.0},
                  baseline_reward=100.0, p_const=10.0),
        RunResult(seed=1, reward_by_psi={25.0: 108.0, 50.0: 104.0},
                  baseline_reward=100.0, p_const=10.0),
    ]
    return SetResult(config=cfg, runs=runs)


class TestAsciiBars:
    def test_basic_render(self):
        out = ascii_bar_chart(["a", "bb"], [1.0, 2.0])
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a  |")
        assert lines[1].count("#") > lines[0].count("#")

    def test_longest_bar_fills_width(self):
        out = ascii_bar_chart(["x"], [5.0], width=20)
        assert out.count("#") == 20

    def test_negative_bar_renders_differently(self):
        out = ascii_bar_chart(["neg"], [-3.0], width=20)
        assert "<" in out and "#" not in out

    def test_errors_shown(self):
        out = ascii_bar_chart(["x"], [5.0], errors=[1.5])
        assert "+/- 1.50" in out

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            ascii_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError, match="errors"):
            ascii_bar_chart(["a"], [1.0], errors=[1.0, 2.0])
        with pytest.raises(ValueError, match="width"):
            ascii_bar_chart(["a"], [1.0], width=3)

    def test_all_zero_values(self):
        out = ascii_bar_chart(["a"], [0.0])
        assert "+0.00%" in out


class TestFig6Renderers:
    def test_bar_chart_includes_all_groups(self):
        res = {"s": tiny_set_result()}
        out = fig6_bar_chart(res)
        assert "s/best" in out
        assert "s/psi=25" in out and "s/psi=50" in out

    def test_markdown_table(self):
        res = {"s": tiny_set_result()}
        md = fig6_markdown(res)
        assert md.startswith("| set |")
        assert "| s | 30% | 0.1 |" in md
        # best-of means: max(105,110)=10%, max(108,104)=8% -> +9.00%
        assert "+9.00%" in md


class TestComparisonMarkdown:
    def test_table_shape(self):
        md = comparison_markdown(["a", "b"], [["1", "2"], ["3", "4"]])
        lines = md.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4

    def test_row_width_check(self):
        with pytest.raises(ValueError, match="row"):
            comparison_markdown(["a"], [["1", "2"]])
