"""Discrete-event simulation of the second-step dynamic scheduling."""

from repro.simulate.energy import EnergyReport, energy_report
from repro.simulate.engine import simulate_trace
from repro.simulate.events import CoreOutage, Event, EventKind, EventQueue
from repro.simulate.metrics import SimulationMetrics

__all__ = [
    "EnergyReport",
    "energy_report",
    "simulate_trace",
    "CoreOutage",
    "Event",
    "EventKind",
    "EventQueue",
    "SimulationMetrics",
]
