"""RL022 bad: span names outside the documented taxonomy."""

from repro.obs.trace import span as obs_span


def solve_with_mystery_span(fn):
    with obs_span("mystery_stage"):                   # line 7
        with obs_span("stage1.warmup"):               # line 8: bad tail
            return fn()
