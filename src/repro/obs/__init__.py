"""repro.obs — dependency-free tracing, metrics and profiling.

The observability layer for the solver and DES hot paths.  Three parts:

* :mod:`repro.obs.trace` — hierarchical wall-clock spans
  (``with span("stage1.search"): ...``), thread-safe, near-zero
  overhead while disabled.
* :mod:`repro.obs.metrics` — process-local counters / gauges /
  histograms (LP solve counts, cache hits, replans, shed-load events).
* :mod:`repro.obs.export` — JSON-lines event log, aggregated profile
  tree, and worker-snapshot merging for the process-pool engine.

Everything is **off by default**: instrumented code pays one flag check
per span or metric touch and produces no records, so tier-1 results and
timings are unchanged.  Turn it on around a region of interest::

    from repro import obs

    obs.enable()
    ... run something ...
    obs.write_events_jsonl("trace.jsonl")
    print(obs.render_profile(obs.profile_from_snapshot(obs.obs_snapshot())))

or scoped (state swapped in and restored, used by the engine to isolate
each run's spans)::

    with obs.capture() as snap_fn:
        ... run one unit of work ...
    snapshot = snap_fn()     # picklable: spans + metrics of the region

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.obs.export import (ProfileNode, build_profile, merge_snapshot,
                              obs_snapshot, profile_from_snapshot,
                              profile_to_dict, read_events_jsonl,
                              render_metrics, render_profile,
                              write_events_jsonl)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               counter, current_registry, gauge, histogram,
                               swap_registry)
from repro.obs.trace import (Span, Tracer, annotate, current_tracer,
                             disable_tracing, enable_tracing, span,
                             swap_tracer, tracing_enabled)

__all__ = [
    # switches
    "enable", "disable", "enabled", "reset", "capture",
    # tracing
    "span", "annotate", "tracing_enabled", "Tracer", "Span",
    "current_tracer", "swap_tracer", "enable_tracing", "disable_tracing",
    # metrics
    "counter", "gauge", "histogram", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "current_registry", "swap_registry",
    # export
    "ProfileNode", "build_profile", "profile_from_snapshot",
    "profile_to_dict", "obs_snapshot", "merge_snapshot",
    "write_events_jsonl", "read_events_jsonl", "render_profile",
    "render_metrics",
]


def enabled() -> bool:
    """True when the observability layer is recording."""
    return current_tracer().enabled


def enable() -> None:
    """Start recording spans and metrics (idempotent)."""
    current_tracer().enabled = True
    current_registry().enabled = True


def disable() -> None:
    """Stop recording (already-collected records are kept)."""
    current_tracer().enabled = False
    current_registry().enabled = False


def reset() -> None:
    """Drop all collected spans and metrics (enabled state unchanged)."""
    current_tracer().reset()
    current_registry().reset()


@contextmanager
def capture() -> Iterator[Callable[[], dict[str, Any]]]:
    """Record a region into *fresh, isolated* state.

    Swaps in a new enabled tracer and registry, restores the previous
    globals on exit (even on error), and yields a zero-argument callable
    returning the region's snapshot — picklable, so a pool worker can
    return it to the parent, and mergeable via :func:`merge_snapshot`.

    The engine wraps every run in a capture (inline or in a worker), so
    span paths inside a run are rooted identically regardless of
    ``--jobs``.  Not safe to interleave with other threads tracing
    concurrently: the swap is process-global.
    """
    tracer = Tracer(enabled=True)
    registry = MetricsRegistry(enabled=True)
    old_tracer = swap_tracer(tracer)
    old_registry = swap_registry(registry)
    try:
        yield lambda: {
            "schema": 1,
            "spans": tracer.snapshot()["spans"],
            "metrics": registry.snapshot(),
        }
    finally:
        swap_tracer(old_tracer)
        swap_registry(old_registry)
