"""RL001 good: every set is sorted (or consumed order-insensitively)."""


def keep_order(items):
    seen = set(items)
    out = []
    for item in sorted(seen):
        out.append(item)
    ordered = sorted({"a", "b", "c"})
    pairs = [x for x in sorted(frozenset(items))]
    text = ",".join(sorted(set(items)))
    n = len(set(items))            # order-insensitive consumers are fine
    top = max(seen)
    return out, ordered, pairs, text, n, top
