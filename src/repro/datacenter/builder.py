"""Data center assembly (Section III, Section VI.B/VI.G).

:class:`DataCenter` is the central container tying together node types,
placed compute nodes, CRAC units and (optionally) a thermal model.  It
precomputes the flat arrays the optimization stages index into — global
core maps, per-node flows and base powers — so that hot paths never loop
over Python objects.

:func:`build_datacenter` reproduces the paper's construction: node types
assigned uniformly at random ("Each node type has an equal probability of
being assigned to a compute node"), homogeneous CRAC units whose total
air flow equals the total node air flow.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.datacenter.coretypes import NodeTypeSpec, paper_node_types
from repro.datacenter.crac import CRACUnit
from repro.datacenter.layout import Layout, build_layout
from repro.datacenter.nodes import ComputeNode
from repro.power.cop import CoPModel, HP_UTILITY_COP
from repro.units import CRAC_REDLINE_C, NODE_REDLINE_C

__all__ = ["DataCenter", "build_datacenter"]


@dataclass
class DataCenter:
    """A fully-specified data center (geometry + hardware, no workload).

    Index conventions follow the paper: units are ordered CRACs first,
    then compute nodes, in all thermal vectors (``T_in``, ``T_out``,
    redlines); cores use a single global index.

    Attributes
    ----------
    node_types:
        Distinct :class:`NodeTypeSpec` objects present in the room.
    nodes / cracs:
        Placed hardware.
    layout:
        Rack/aisle geometry the nodes were placed with.
    node_redline_c / crac_redline_c:
        Redline inlet temperatures (Section VI.F: 25 C and 40 C).
    thermal:
        A :class:`repro.thermal.heatflow.HeatFlowModel`, attached after
        interference-coefficient generation; ``None`` until then.
    """

    node_types: list[NodeTypeSpec]
    nodes: list[ComputeNode]
    cracs: list[CRACUnit]
    layout: Layout
    node_redline_c: float = NODE_REDLINE_C
    crac_redline_c: float = CRAC_REDLINE_C
    thermal: "object | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("data center needs at least one compute node")
        if not self.cracs:
            raise ValueError("data center needs at least one CRAC unit")
        for j, node in enumerate(self.nodes):
            if node.index != j:
                raise ValueError(f"node {j} has inconsistent index {node.index}")
        # flat arrays used by the optimizers ---------------------------
        self.node_type_index = np.asarray(
            [n.type_index for n in self.nodes], dtype=int)
        self.node_flows = np.asarray(
            [n.spec.flow_m3s for n in self.nodes], dtype=float)
        self.node_base_power = np.asarray(
            [n.spec.base_power_kw for n in self.nodes], dtype=float)
        self.crac_flows = np.asarray(
            [c.flow_m3s for c in self.cracs], dtype=float)
        counts = np.asarray([n.n_cores for n in self.nodes], dtype=int)
        firsts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        for node, first in zip(self.nodes, firsts):
            if node.first_core != int(first):
                raise ValueError(
                    f"node {node.index} first_core {node.first_core} != {first}")
        self.core_node = np.repeat(np.arange(len(self.nodes)), counts)
        #: ``CT_k`` — node-type index of each core's node.
        self.core_type = self.node_type_index[self.core_node]

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """``NCN``."""
        return len(self.nodes)

    @property
    def n_crac(self) -> int:
        """``NCRAC``."""
        return len(self.cracs)

    @property
    def n_cores(self) -> int:
        """``NCORES``."""
        return int(self.core_node.size)

    @property
    def n_units(self) -> int:
        """CRACs + nodes — dimension of the thermal vectors."""
        return self.n_crac + self.n_nodes

    @property
    def redline_c(self) -> np.ndarray:
        """``T_redline`` vector, CRACs first then nodes (Eq. 6 order)."""
        return np.concatenate([
            np.full(self.n_crac, self.crac_redline_c),
            np.full(self.n_nodes, self.node_redline_c),
        ])

    @property
    def unit_flows(self) -> np.ndarray:
        """Air flow of every unit, CRACs first then nodes (``F`` of App. B)."""
        return np.concatenate([self.crac_flows, self.node_flows])

    # ------------------------------------------------------------------
    def cores_of_node(self, j: int) -> range:
        """Global core indices belonging to node ``j`` (``cores_j``)."""
        return self.nodes[j].core_indices

    def _validate_pstates(self, core_pstates: np.ndarray) -> np.ndarray:
        """Shape/range-check a global P-state vector (or batch of them)."""
        from repro.kernels.tables import core_power_table

        ps = np.asarray(core_pstates, dtype=int)
        if ps.shape[-1:] != (self.n_cores,):
            raise ValueError(
                f"expected {self.n_cores} core P-states, got shape {ps.shape}")
        eta = core_power_table(self).n_pstates[self.core_type]
        bad = (ps < 0) | (ps >= eta)
        if bad.any():
            t = int(self.core_type[np.nonzero(bad)[-1][0]])
            raise IndexError(
                f"P-state out of range for node type "
                f"{self.node_types[t].name}")
        return ps

    def node_power_kw(self, core_pstates: np.ndarray) -> np.ndarray:
        """Eq. 1 for every node at once (via the active kernel).

        Parameters
        ----------
        core_pstates:
            Global array of P-state indices, one per core.

        Returns
        -------
        numpy.ndarray
            ``PCN_j`` for every node, kW.
        """
        from repro import kernels

        ps = self._validate_pstates(core_pstates)
        if ps.ndim != 1:
            raise ValueError(
                f"expected a flat P-state vector, got shape {ps.shape}")
        return kernels.active().node_power_kw(self, ps)

    def node_power_batch(self, core_pstates: np.ndarray) -> np.ndarray:
        """Eq. 1 for every row of a ``(B, n_cores)`` P-state batch.

        Row ``b`` of the result equals ``node_power_kw(core_pstates[b])``
        bit-for-bit; the batch form exists so callers evaluating many
        candidate assignments (controller epochs, enumeration, property
        tests) avoid per-call Python overhead.
        """
        from repro import kernels

        ps = self._validate_pstates(core_pstates)
        if ps.ndim != 2:
            raise ValueError(
                f"expected a (batch, {self.n_cores}) P-state array, got "
                f"shape {ps.shape}")
        return kernels.active().node_power_batch(self, ps)

    def all_off_pstates(self) -> np.ndarray:
        """Global P-state vector with every core turned off."""
        return np.asarray([self.node_types[t].off_pstate
                           for t in self.core_type], dtype=int)

    def all_p0_pstates(self) -> np.ndarray:
        """Global P-state vector with every core at P-state 0."""
        return np.zeros(self.n_cores, dtype=int)

    def require_thermal(self):
        """Return the attached thermal model or raise a clear error."""
        if self.thermal is None:
            raise RuntimeError(
                "no thermal model attached; generate cross-interference "
                "coefficients first (repro.thermal.attach_thermal_model)")
        return self.thermal

    def with_thermal_backend(self, backend: str) -> "DataCenter":
        """A view of this room whose heat-flow model uses ``backend``.

        Shallow copy: nodes, layout and derived arrays are shared; only
        the ``thermal`` reference differs.  ``"auto"``, no attached
        model, or an already-matching backend return ``self`` unchanged.
        The converted model is memoized on the model itself
        (:meth:`repro.thermal.heatflow.HeatFlowModel.with_backend`), so
        repeated conversions are free.
        """
        if self.thermal is None or backend == "auto":
            return self
        converted = self.thermal.with_backend(backend)
        if converted is self.thermal:
            return self
        clone = copy.copy(self)
        clone.thermal = converted
        return clone

    def with_redline_margin(self, margin_c: float) -> "DataCenter":
        """A view of this room with every redline tightened by ``margin_c``.

        The predictive controller's pre-cool mechanism
        (:mod:`repro.control.mpc`): solving against artificially lower
        redlines makes the first step pick colder CRAC outlets — banking
        thermal headroom *now* — while the committed plan is still
        simulated and verified against the true (untightened) room.
        Shallow copy, same idiom as :meth:`with_thermal_backend`: nodes,
        layout, derived arrays and the thermal model are shared; only the
        two redline scalars differ.  A zero margin returns ``self``.
        """
        if margin_c < 0:
            raise ValueError(f"margin_c must be >= 0, got {margin_c}")
        if margin_c == 0.0:
            return self
        clone = copy.copy(self)
        clone.node_redline_c = self.node_redline_c - margin_c
        clone.crac_redline_c = self.crac_redline_c - margin_c
        return clone

    def restrict(self, node_alive: np.ndarray,
                 cracs: "Sequence[CRACUnit] | None" = None
                 ) -> tuple["DataCenter", np.ndarray, np.ndarray]:
        """Degraded-inventory copy with only the surviving nodes.

        Used by the fault-injection layer (:mod:`repro.faults.inject`):
        crashed nodes disappear from the room — their cores take no
        tasks, their base power is not drawn — while the physical layout
        reference is kept (the chassis are still racked, just dark).
        No thermal model is attached; the caller derives one with
        :meth:`repro.thermal.heatflow.HeatFlowModel.without_nodes` so
        the coupling matches the reduced inventory.

        Parameters
        ----------
        node_alive:
            Boolean mask over this room's nodes; at least one node must
            survive.
        cracs:
            Replacement CRAC list (e.g. derated outlet ranges); defaults
            to this room's CRACs unchanged.  CRACs are never removed —
            a failed CRAC still moves air (see ``faults.inject``).

        Returns
        -------
        (restricted, node_map, core_map):
            The smaller room plus index maps — ``node_map[j']`` is the
            original index of restricted node ``j'``, ``core_map[k']``
            the original index of restricted core ``k'``.
        """
        from dataclasses import replace as dc_replace

        alive = np.asarray(node_alive, dtype=bool)
        if alive.shape != (self.n_nodes,):
            raise ValueError(
                f"node_alive must have {self.n_nodes} entries, got "
                f"{alive.shape}")
        node_map = np.nonzero(alive)[0]
        if node_map.size == 0:
            raise ValueError("cannot restrict away every compute node")
        if node_map.size == self.n_nodes and cracs is None:
            return self, node_map, np.arange(self.n_cores)
        nodes: list[ComputeNode] = []
        core_map_parts: list[np.ndarray] = []
        next_core = 0
        for new_j, old_j in enumerate(node_map):
            old = self.nodes[old_j]
            nodes.append(dc_replace(old, index=new_j, first_core=next_core))
            core_map_parts.append(np.arange(old.first_core,
                                            old.first_core + old.n_cores))
            next_core += old.n_cores
        core_map = np.concatenate(core_map_parts)
        restricted = DataCenter(
            node_types=self.node_types,
            nodes=nodes,
            cracs=list(self.cracs if cracs is None else cracs),
            layout=self.layout,
            node_redline_c=self.node_redline_c,
            crac_redline_c=self.crac_redline_c,
        )
        return restricted, node_map, core_map


def build_datacenter(n_nodes: int,
                     n_crac: int = 3,
                     node_types: Sequence[NodeTypeSpec] | None = None,
                     rng: np.random.Generator | None = None,
                     cop_model: CoPModel = HP_UTILITY_COP,
                     crac_outlet_range_c: tuple[float, float] = (10.0, 25.0),
                     nodes_per_rack: int = 5,
                     crac_flow_weights: Sequence[float] | None = None
                     ) -> DataCenter:
    """Assemble a data center per the paper's simulation setup.

    Parameters
    ----------
    n_nodes:
        Number of compute nodes (paper: 150).
    n_crac:
        Number of CRAC units / hot aisles (paper: 3).
    node_types:
        Node-type catalog; defaults to the two Table I types at 30%
        static power.  Types are assigned to nodes uniformly at random.
    rng:
        Source of randomness for the type assignment; a fresh default
        generator is used when omitted (pass a seeded generator for
        reproducible rooms).
    cop_model / crac_outlet_range_c:
        CRAC efficiency curve and admissible outlet temperatures.
    nodes_per_rack:
        Rack height in nodes (paper/[29]: 5, labels A-E).
    crac_flow_weights:
        Optional per-CRAC share of the total air flow (normalized
        internally).  The paper's units are homogeneous (equal weights,
        the default); heterogeneous weights model mixed CRAC fleets.
    """
    if node_types is None:
        node_types = paper_node_types()
    node_types = list(node_types)
    if not node_types:
        raise ValueError("need at least one node type")
    if rng is None:
        rng = np.random.default_rng()
    layout = build_layout(n_nodes, n_crac, nodes_per_rack)
    type_choice = rng.integers(0, len(node_types), size=n_nodes)
    nodes: list[ComputeNode] = []
    next_core = 0
    for j in range(n_nodes):
        spec = node_types[type_choice[j]]
        nodes.append(ComputeNode(
            index=j,
            spec=spec,
            type_index=int(type_choice[j]),
            rack=int(layout.rack_of_node[j]),
            slot=int(layout.slot_of_node[j]),
            label=layout.label_of_node[j],
            hot_aisle=int(layout.hot_aisle_of_node[j]),
            first_core=next_core,
        ))
        next_core += spec.cores_per_node
    total_flow = float(sum(n.spec.flow_m3s for n in nodes))
    # Section VI.G: CRAC flow set so total CRAC flow == total node flow.
    if crac_flow_weights is None:
        weights = np.full(n_crac, 1.0 / n_crac)
    else:
        weights = np.asarray(crac_flow_weights, dtype=float)
        if weights.shape != (n_crac,):
            raise ValueError(
                f"need {n_crac} CRAC flow weights, got {weights.shape}")
        if np.any(weights <= 0):
            raise ValueError("CRAC flow weights must be positive")
        weights = weights / weights.sum()
    cracs = [CRACUnit(index=i, flow_m3s=total_flow * float(weights[i]),
                      cop_model=cop_model,
                      outlet_range_c=crac_outlet_range_c)
             for i in range(n_crac)]
    return DataCenter(node_types=node_types, nodes=nodes, cracs=cracs,
                      layout=layout)
