"""RL021 bad: mutable default arguments."""


def accumulate(x, acc=[]):                            # line 4
    acc.append(x)
    return acc


def tally(key, counts={}):                            # line 9
    counts[key] = counts.get(key, 0) + 1
    return counts


def visit(node, seen=set()):                          # line 14
    seen.add(node)
    return seen
