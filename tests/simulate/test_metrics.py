"""Tests for repro.simulate.metrics — derived metric arithmetic."""

import numpy as np
import pytest

from repro.simulate.metrics import SimulationMetrics


def make_metrics(**overrides) -> SimulationMetrics:
    defaults = dict(
        duration=10.0,
        total_reward=50.0,
        completed=np.asarray([8, 0]),
        dropped=np.asarray([2, 0]),
        atc=np.asarray([[0.8, 0.0], [0.0, 0.0]]),
        tc=np.asarray([[1.0, 0.0], [0.0, 0.0]]),
        busy_time=np.asarray([5.0, 0.0]),
    )
    defaults.update(overrides)
    return SimulationMetrics(**defaults)


class TestDerived:
    def test_reward_rate(self):
        assert make_metrics().reward_rate == pytest.approx(5.0)

    def test_drop_fraction(self):
        df = make_metrics().drop_fraction
        assert df[0] == pytest.approx(0.2)
        assert df[1] == 0.0  # no arrivals -> zero, not NaN

    def test_utilization(self):
        np.testing.assert_allclose(make_metrics().utilization, [0.5, 0.0])

    def test_tracking_error(self):
        # only the TC>0 entry counts: |0.8 - 1.0| = 0.2
        assert make_metrics().tracking_error() == pytest.approx(0.2)

    def test_tracking_error_no_plan(self):
        m = make_metrics(tc=np.zeros((2, 2)))
        assert m.tracking_error() == 0.0

    def test_rate_ratios(self):
        ratios = make_metrics().rate_ratios()
        np.testing.assert_allclose(ratios, [0.8])
