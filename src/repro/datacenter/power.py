"""Data-center power accounting and power bounds (Eqs. 1, 17, 18).

``total_power`` evaluates the exact (nonlinear) total power of the room
at an operating point — compute nodes via Eq. 1 plus CRAC units via
Eq. 3 at the resolved steady-state inlet temperatures.

``power_bounds`` implements the Section VI.F procedure: the minimum
(all cores off) and maximum (all cores at P-state 0) total power, each
minimized over CRAC outlet temperatures subject to the redlines
(Eq. 17); ``Pconst`` is then their midpoint (Eq. 18).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.builder import DataCenter
from repro.optimize.search import coarse_to_fine_search
from repro.power.crac import crac_power_kw

__all__ = ["PowerBreakdown", "total_power", "power_bounds", "PowerBounds"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Total power of the room at one operating point, kW.

    Attributes
    ----------
    node_kw:
        Per-node power (Eq. 1).
    crac_kw:
        Per-CRAC electric power (Eq. 3) at the steady state.
    """

    node_kw: np.ndarray
    crac_kw: np.ndarray

    @property
    def compute_total(self) -> float:
        return float(self.node_kw.sum())

    @property
    def cooling_total(self) -> float:
        return float(self.crac_kw.sum())

    @property
    def total(self) -> float:
        return self.compute_total + self.cooling_total


def total_power(datacenter: DataCenter, t_crac_out: np.ndarray,
                node_power_kw: np.ndarray) -> PowerBreakdown:
    """Exact total power at fixed node powers and CRAC outlets.

    The CRAC inlet temperatures come from the attached thermal model's
    steady state; each CRAC's power uses its own CoP model.
    """
    model = datacenter.require_thermal()
    p = np.asarray(node_power_kw, dtype=float)
    state = model.steady_state(np.asarray(t_crac_out, dtype=float), p)
    crac_kw = np.asarray([
        crac_power_kw(c.flow_m3s, state.t_in[i], t_crac_out[i],
                      cop_model=c.cop_model)
        for i, c in enumerate(datacenter.cracs)
    ])
    return PowerBreakdown(node_kw=p, crac_kw=crac_kw)


@dataclass(frozen=True)
class PowerBounds:
    """Result of the Eq. 17/18 procedure.

    ``p_min``/``p_max`` are upper bounds on the extreme total powers (the
    search is discretized, hence "upper bound" as the paper notes), and
    ``p_const`` is their midpoint — the power cap used in Section VII.
    """

    p_min: float
    p_max: float
    t_out_min: np.ndarray
    t_out_max: np.ndarray

    @property
    def p_const(self) -> float:
        """Eq. 18: ``(Pmin + Pmax) / 2``."""
        return (self.p_min + self.p_max) / 2.0


def _min_total_over_outlets(datacenter: DataCenter,
                            node_power_kw: np.ndarray,
                            final_step: float) -> tuple[float, np.ndarray]:
    """Minimize total power over CRAC outlet temperatures (Eq. 17)."""
    model = datacenter.require_thermal()
    redline = datacenter.redline_c
    lows = [c.outlet_range_c[0] for c in datacenter.cracs]
    highs = [c.outlet_range_c[1] for c in datacenter.cracs]

    def objective(t_vec: np.ndarray) -> float | None:
        if not model.is_feasible(t_vec, node_power_kw, redline):
            return None
        return total_power(datacenter, t_vec, node_power_kw).total

    try:
        result = coarse_to_fine_search(
            objective, datacenter.n_crac, min(lows), max(highs),
            coarse_step=5.0, final_step=final_step, maximize=False)
    except RuntimeError:
        # The operating point is thermally infeasible at every outlet
        # temperature (possible for all-cores-P0 in rooms with heavy
        # recirculation).  The bound is only used to place Pconst, so
        # report the power at the coldest outlets — still "an upper
        # bound on the extreme power" in the paper's sense.
        t_cold = np.asarray(lows, dtype=float)
        return total_power(datacenter, t_cold, node_power_kw).total, t_cold
    return result.score, result.temperatures


def power_bounds(datacenter: DataCenter,
                 final_step: float = 1.0) -> PowerBounds:
    """Compute ``Pmin``, ``Pmax`` and the derived ``Pconst`` (Section VI.F).

    The two extreme node-power vectors are all-cores-off (base power
    only; nodes are never powered down, Section III.C) and all-cores-P0.
    """
    p_off = datacenter.node_power_kw(datacenter.all_off_pstates())
    p_full = datacenter.node_power_kw(datacenter.all_p0_pstates())
    p_min, t_min = _min_total_over_outlets(datacenter, p_off, final_step)
    p_max, t_max = _min_total_over_outlets(datacenter, p_full, final_step)
    return PowerBounds(p_min=p_min, p_max=p_max,
                       t_out_min=t_min, t_out_max=t_max)
