"""ψ sweep ablation — Section VII.B's discussion, quantified.

The paper evaluates psi = 25 and psi = 50 and observes that the best
choice depends on arrival rates, the power cap, and task/machine
affinity.  This benchmark sweeps psi across the full range on one room
and prints the final (Stage 3) reward next to the relaxed Stage 1
objective, exposing the paper's explanation: small psi overestimates at
Stage 1 (the few "best" types cannot keep cores busy), large psi dilutes
the ARR with poor task types.
"""

from repro.core import three_stage_assignment

PSIS = (12.5, 25.0, 37.5, 50.0, 75.0, 100.0)


def bench_ablation_psi(benchmark, capsys, bench_scenario_set3):
    sc = bench_scenario_set3

    def sweep():
        return {psi: three_stage_assignment(sc.datacenter, sc.workload,
                                            sc.p_const, psi=psi)
                for psi in PSIS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print("psi sweep — ARR aggregation level vs achieved reward")
        print(f"{'psi':>7}{'stage1 obj':>12}{'stage3 reward':>15}"
              f"{'stage1/stage3':>15}")
        for psi in PSIS:
            r = results[psi]
            ratio = r.stage1.objective / r.reward_rate
            print(f"{psi:>7.1f}{r.stage1.objective:>12.1f}"
                  f"{r.reward_rate:>15.1f}{ratio:>15.2f}")
        best_psi = max(results, key=lambda p: results[p].reward_rate)
        print(f"best psi on this room: {best_psi:g} "
              f"({results[best_psi].reward_rate:.1f} reward/s)")

    for r in results.values():
        r.verify(sc.datacenter, sc.p_const)
