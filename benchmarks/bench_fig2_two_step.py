"""Figure 2 — the two-step assignment pipeline, end to end.

Figure 2 is the paper's architecture diagram: the first step assigns
CRAC outlet temperatures, P-states and desired execution rates; the
second step dynamically maps/drops incoming tasks.  This benchmark runs
the entire pipeline (all three stages + DES replay) and prints the
decision summary of each box in the figure.
"""

import numpy as np

from repro.core import three_stage_assignment
from repro.simulate import simulate_trace
from repro.workload import generate_trace


def bench_fig2(benchmark, capsys, bench_scenario, scale):
    sc = bench_scenario
    rng = np.random.default_rng(42)
    trace = generate_trace(sc.workload, scale.des_horizon, rng)

    def pipeline():
        plan = three_stage_assignment(sc.datacenter, sc.workload,
                                      sc.p_const, psi=50.0)
        metrics = simulate_trace(sc.datacenter, sc.workload, plan.tc,
                                 plan.pstates, trace,
                                 duration=scale.des_horizon)
        return plan, metrics

    plan, metrics = benchmark.pedantic(pipeline, rounds=1, iterations=1)

    with capsys.disabled():
        eta = sc.datacenter.node_types[0].n_pstates
        hist = np.bincount(plan.pstates, minlength=eta)
        print()
        print("Figure 2 — two-step assignment pipeline")
        print("first step:")
        print(f"  CRAC outlet temperatures: {plan.t_crac_out} C")
        print(f"  P-states: " + "  ".join(
            f"P{k}:{hist[k]}" for k in range(eta - 1))
            + f"  off:{hist[eta - 1]}")
        print(f"  desired total service rate: {plan.tc.sum():.1f} tasks/s "
              f"(arrivals {sc.workload.arrival_rates.sum():.1f}/s)")
        print("second step (DES replay):")
        print(f"  assigned {metrics.completed.sum()} tasks, dropped "
              f"{metrics.dropped.sum()}")
        print(f"  achieved reward rate {metrics.reward_rate:.1f}/s vs "
              f"planned {plan.reward_rate:.1f}/s "
              f"({100 * metrics.reward_rate / plan.reward_rate:.1f}%)")
    assert metrics.reward_rate > 0.5 * plan.reward_rate
