"""Documentation integrity — the docs must track the code.

DESIGN.md's experiment index, EXPERIMENTS.md's commands and the
equation map all reference concrete files; these tests fail when a
referenced file disappears or a new benchmark is added without being
indexed, keeping the reproduction's paper-to-code map trustworthy.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestDesignDoc:
    def test_every_referenced_benchmark_exists(self):
        text = read("DESIGN.md")
        refs = set(re.findall(r"benchmarks/(bench_\w+\.py)", text))
        assert refs, "DESIGN.md lists no benchmarks?"
        for ref in refs:
            assert (REPO / "benchmarks" / ref).exists(), ref

    def test_every_benchmark_is_indexed(self):
        text = read("DESIGN.md")
        on_disk = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        indexed = set(re.findall(r"bench_\w+\.py", text))
        missing = on_disk - indexed
        assert not missing, f"benchmarks not indexed in DESIGN.md: {missing}"

    def test_every_referenced_module_exists(self):
        text = read("DESIGN.md")
        refs = set(re.findall(r"`repro/([\w/{},.]+?\.py)`", text))
        for ref in refs:
            if "{" in ref:      # brace-set shorthand like {a,b}.py
                stem, names = re.match(r"(.*)\{(.+)\}\.py", ref).groups()
                for n in names.split(","):
                    assert (REPO / "src/repro" / f"{stem}{n}.py").exists(), ref
            else:
                assert (REPO / "src/repro" / ref).exists(), ref


class TestExperimentsDoc:
    def test_every_referenced_benchmark_exists(self):
        text = read("EXPERIMENTS.md")
        refs = set(re.findall(r"bench_\w+\.py", text))
        assert len(refs) >= 15
        for ref in refs:
            assert (REPO / "benchmarks" / ref).exists(), ref

    def test_committed_fig6_results_present(self):
        assert (REPO / "fig6_paper_scale.txt").exists()
        text = read("fig6_paper_scale.txt")
        assert "set3" in text


class TestEquationMap:
    def test_referenced_symbols_resolve(self):
        """Every `function (module.py)` pair in docs/EQUATIONS.md points
        at a real attribute of a real module."""
        import importlib

        text = read("docs/EQUATIONS.md")
        pairs = re.findall(r"`(\w+)` \(`([\w/]+\.py)`\)", text)
        assert len(pairs) >= 10
        for symbol, path in pairs:
            module = "repro." + path[:-3].replace("/", ".")
            mod = importlib.import_module(module)
            assert hasattr(mod, symbol), f"{module}.{symbol}"


class TestReadme:
    def test_quickstart_modules_importable(self):
        """The README's import line must stay valid."""
        from repro import (attach_thermal_model,  # noqa: F401
                           build_datacenter, generate_workload, power_bounds,
                           solve_baseline, three_stage_assignment)
        assert callable(three_stage_assignment)

    def test_examples_listed_exist(self):
        text = read("README.md")
        refs = set(re.findall(r"examples/(\w+\.py)", text))
        assert len(refs) == 6
        for ref in refs:
            assert (REPO / "examples" / ref).exists(), ref


class TestPublicDocstrings:
    def test_every_module_has_a_docstring(self):
        import importlib
        import pkgutil

        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            if info.name == "repro.__main__":
                continue        # importing it runs the CLI
            mod = importlib.import_module(info.name)
            if not (mod.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"
