"""Tests for repro.experiments.chaos — the fault-rate sweep driver."""

import numpy as np
import pytest

from repro.experiments.chaos import (ChaosConfig, ChaosPoint, chaos_table,
                                     run_chaos_point, run_chaos_scenario,
                                     sweep_chaos)
from repro.faults.model import FaultEvent, FaultKind, FaultSchedule

CONFIG = ChaosConfig(n_nodes=6, seed=0, horizon_s=60.0)


def _strip_wall_times(point: ChaosPoint) -> dict:
    """Point payload minus the measured (non-deterministic) wall clocks."""
    doc = point.to_dict()
    doc.pop("mean_replan_s")
    doc["detail"].pop("mean_replan_s")
    for iv in doc["detail"]["intervals"]:
        iv.pop("replan_wall_s")
    return doc


class TestRunChaosPoint:
    def test_factor_zero_matches_plain_simulate(self):
        """Acceptance criterion: the factor-0 control reproduces the
        ``repro simulate`` pipeline bit-identically."""
        from repro.core import three_stage_assignment
        from repro.experiments import (PAPER_SET_1, generate_scenario,
                                       scaled_down)
        from repro.simulate import simulate_trace
        from repro.workload import generate_trace

        point = run_chaos_point(CONFIG, 0.0)
        sc = generate_scenario(scaled_down(PAPER_SET_1, CONFIG.n_nodes),
                               CONFIG.seed)
        plan = three_stage_assignment(sc.datacenter, sc.workload,
                                      sc.p_const, psi=50.0)
        trace = generate_trace(sc.workload, CONFIG.horizon_s,
                               np.random.default_rng(CONFIG.seed + 1))
        metrics = simulate_trace(sc.datacenter, sc.workload, plan.tc,
                                 plan.pstates, trace,
                                 duration=CONFIG.horizon_s)
        assert point.n_fault_events == 0
        assert point.reward_rate == metrics.reward_rate
        assert point.detail["intervals"][0]["metrics"] == metrics.to_dict()

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            run_chaos_point(CONFIG, -1.0)

    def test_point_deterministic(self):
        a = _strip_wall_times(run_chaos_point(CONFIG, 1.0))
        b = _strip_wall_times(run_chaos_point(CONFIG, 1.0))
        assert a == b

    def test_point_round_trips_through_dict(self):
        point = run_chaos_point(CONFIG, 0.5)
        again = ChaosPoint.from_dict(point.to_dict())
        assert again.to_dict() == point.to_dict()


class TestSweep:
    def test_always_includes_control(self, tmp_path):
        points = sweep_chaos(CONFIG, [1.0], cache_dir=str(tmp_path))
        assert [p.factor for p in points] == [0.0, 1.0]
        assert points[0].reward_retained == pytest.approx(1.0)
        assert points[1].reward_retained == pytest.approx(
            points[1].reward_rate / points[0].reward_rate)

    def test_jobs_reproducible(self):
        """Acceptance criterion: identical simulated numbers across
        --jobs (only measured wall clocks may differ)."""
        serial = sweep_chaos(CONFIG, [0.5, 1.0], jobs=1)
        parallel = sweep_chaos(CONFIG, [0.5, 1.0], jobs=2)
        assert [_strip_wall_times(p) for p in serial] == \
            [_strip_wall_times(p) for p in parallel]

    def test_resume_replays_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        first = sweep_chaos(CONFIG, [0.5], cache_dir=cache, resume=False)
        second = sweep_chaos(CONFIG, [0.5], cache_dir=cache, resume=True)
        # the cached replay returns the *identical* payload, wall clocks
        # included — nothing was recomputed
        assert [p.to_dict() for p in first] == [p.to_dict() for p in second]

    def test_cache_key_sensitive_to_config(self, tmp_path):
        cache = str(tmp_path / "cache")
        sweep_chaos(CONFIG, [0.5], cache_dir=cache, resume=False)
        other = ChaosConfig(n_nodes=6, seed=0, horizon_s=60.0,
                            stranded="drop")
        refreshed = sweep_chaos(other, [0.5], cache_dir=cache, resume=True)
        # a different stranded policy must not hit the requeue cache
        assert refreshed[-1].detail["intervals"][0]["metrics"] is not None


class TestScenarioRuns:
    def test_explicit_schedule(self):
        schedule = FaultSchedule.from_events([
            FaultEvent(start_s=20.0, kind=FaultKind.CRAC_OUTAGE, target=0,
                       duration_s=20.0)])
        result = run_chaos_scenario(CONFIG, schedule)
        assert result.n_replans == 2
        assert len(result.intervals) == 3


class TestTable:
    def test_formats_all_points(self):
        points = sweep_chaos(CONFIG, [1.0])
        text = chaos_table(points)
        lines = text.splitlines()
        assert len(lines) == 1 + len(points)
        assert "retained" in lines[0]
        assert "100.0%" in lines[1]
