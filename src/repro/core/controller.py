"""Epoch-based re-assignment controller (deployment extension).

The paper's first step produces one static assignment ("Once a P-state
of a core is assigned, we assume that it is not changed") sized for the
current arrival rates.  Real load drifts, so a deployed system re-runs
the first step periodically.  This controller closes that loop:

* at each epoch boundary it measures the profile's arrival rates,
  rebuilds the workload, and re-solves the three-stage assignment under
  the same power cap;
* before committing a new assignment it simulates the **thermal
  transient** from the previous operating point
  (:mod:`repro.thermal.transient`): a plan whose steady state is feasible
  can still overshoot a redline mid-transition, in which case the
  controller derates the plan (shrinks the power cap) until the
  transition is safe;
* within each epoch the second-step dynamic scheduler replays the
  (non-stationary) task stream against the epoch's plan.

This is precisely the deployment the paper's two-step time-scale
argument sanctions: epochs are long (minutes+) relative to the thermal
settling time, and tasks are short relative to epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro import kernels
from repro.core.api import SolveOptions, SolveRequest, SolveResult, solve
from repro.core.assignment import AssignmentResult, three_stage_assignment
from repro.core.warmstart import SolveState
from repro.datacenter.builder import DataCenter
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate as obs_annotate
from repro.obs.trace import span as obs_span
from repro.simulate.engine import simulate_trace
from repro.simulate.metrics import SimulationMetrics
from repro.thermal.transient import simulate_transient
from repro.workload.profiles import ArrivalProfile, generate_nonstationary_trace
from repro.workload.tasktypes import Workload
from repro.workload.trace import Task

__all__ = ["EpochRecord", "ControllerResult", "EpochController",
           "ShedPlan", "shed_plan", "idle_start_t_out",
           "plan_with_transient_guard"]


@dataclass(frozen=True)
class ShedPlan:
    """Load-shedding fallback when the room admits no feasible plan.

    Quacks like the slice of :class:`AssignmentResult` the control loops
    consume: every core off, zero desired rates, the coldest air each
    (possibly derated) CRAC can still deliver.  Committed when even the
    fully-derated first step is infeasible — the run then measures the
    outage instead of aborting (fault-aware chaos runs, MPC horizons on
    a crippled inventory, shed-all serve ticks).
    """

    t_crac_out: np.ndarray
    pstates: np.ndarray
    tc: np.ndarray
    reward_rate: float = 0.0


def shed_plan(datacenter: DataCenter, n_task_types: int) -> ShedPlan:
    """The all-off, coldest-outlet :class:`ShedPlan` for ``datacenter``."""
    return ShedPlan(
        t_crac_out=np.asarray([c.outlet_range_c[0] for c in datacenter.cracs],
                              dtype=float),
        pstates=datacenter.all_off_pstates(),
        tc=np.zeros((n_task_types, datacenter.n_cores)))


def idle_start_t_out(datacenter: DataCenter) -> np.ndarray:
    """Cold-start room state: the idle room settled at mid-range outlets.

    The convention every controller shares for the state *before* the
    first plan exists: all cores off, each CRAC at the midpoint of its
    outlet range, settled to steady state.
    """
    model = datacenter.require_thermal()
    idle = datacenter.node_power_kw(datacenter.all_off_pstates())
    t_mid = np.full(datacenter.n_crac, float(np.mean(
        [c.outlet_range_c for c in datacenter.cracs])))
    return model.steady_state(t_mid, idle).t_out


def plan_with_transient_guard(datacenter: DataCenter, workload: Workload,
                              p_const: float, t_out_prev: np.ndarray, *,
                              psi: float = 50.0, tau_s: float = 120.0,
                              transient_horizon_s: float | None = None,
                              derate_step: float = 0.05,
                              max_derate: int = 10,
                              on_exhausted: str = "raise",
                              warm_start: SolveState | None = None,
                              warm_seed: bool = False
                              ) -> tuple[SolveResult, int, float]:
    """Solve a first-step plan whose *transition* is transient-safe.

    The derate loop shared by the epoch controller and the fault-aware
    chaos controller: solve the three-stage assignment, simulate the
    thermal transient from ``t_out_prev`` into the new operating point,
    and shrink the power cap by ``derate_step`` until no inlet
    overshoots its redline mid-transition.

    Parameters
    ----------
    t_out_prev:
        Outlet temperatures of the *previous* operating point (the
        state the room transitions from), one per unit of
        ``datacenter``.
    transient_horizon_s:
        How far to integrate the transient; defaults to ``10 * tau_s``
        (well past settling).
    on_exhausted:
        ``"raise"`` — give up loudly after ``max_derate`` steps (the
        epoch controller's behavior: committing an unsafe transition is
        a bug).  ``"best"`` — return the least-overshooting plan found;
        chaos runs use this because after a severe fault *no* admissible
        plan may transition cleanly, and the experiment wants to measure
        the residual exposure rather than abort.
    warm_start / warm_seed:
        Previous solve state to warm the (re-)solves from, and whether
        the heuristic seeded search may engage after a cap change (see
        :class:`repro.core.api.SolveOptions`).  The state chains through
        the derate iterations, so each derated re-solve warm-starts from
        the previous iteration.

    Returns
    -------
    (plan, derated, overshoot_c):
        The committed plan (a :class:`repro.core.api.SolveResult`, whose
        ``.state`` warm-starts the next replan), how many derating steps
        it took, and the worst remaining redline overshoot (<= 0 when
        safe).
    """
    if on_exhausted not in ("raise", "best"):
        raise ValueError(f"on_exhausted must be 'raise' or 'best', got "
                         f"{on_exhausted!r}")
    model = datacenter.require_thermal()
    horizon = 10.0 * tau_s if transient_horizon_s is None \
        else transient_horizon_s
    cap = p_const
    best: tuple[SolveResult, int, float] | None = None
    overshoot = np.inf
    state = warm_start
    options = SolveOptions(psi=psi, warm_seed=warm_seed,
                           kernel=kernels.active_name())
    with obs_span("transient_guard", p_const=p_const):
        for derated in range(max_derate + 1):
            plan = solve(SolveRequest(datacenter, workload, cap,
                                      options=options, warm_start=state))
            state = plan.state
            node_power = datacenter.node_power_kw(plan.pstates)
            with obs_span("transient"):
                result = simulate_transient(model, plan.t_crac_out,
                                            node_power, t_out_prev,
                                            duration_s=horizon, tau_s=tau_s)
            overshoot = result.max_inlet_overshoot(datacenter.redline_c)
            if overshoot <= 1e-6:
                obs_annotate(derated=derated)
                obs_metrics.counter("controller.derates").inc(derated)
                return plan, derated, overshoot
            if best is None or overshoot < best[2]:
                best = (plan, derated, overshoot)
            cap *= 1.0 - derate_step
        obs_annotate(derated=best[1], exhausted=True)
        obs_metrics.counter("controller.derates").inc(max_derate)
        obs_metrics.counter("controller.derate_exhausted").inc()
    if on_exhausted == "best":
        return best
    raise RuntimeError(
        f"transition still overshoots redlines by {overshoot:.2f} C "
        f"after {max_derate} derating steps")


@dataclass
class EpochRecord:
    """One epoch of the controller's run.

    Attributes
    ----------
    start_s / end_s:
        Epoch boundaries.
    rates:
        Arrival rates the plan was sized for (profile at epoch start).
    plan:
        The epoch's first-step assignment (a
        :class:`repro.core.api.SolveResult`).
    derated:
        How many derating steps the transient check forced (0 = the
        initial plan transitioned safely).
    transient_overshoot_c:
        Worst redline overshoot during the transition into this epoch
        (after derating; <= 0 means safe).
    metrics:
        Second-step DES metrics for the epoch's task stream.
    """

    start_s: float
    end_s: float
    rates: np.ndarray
    plan: SolveResult
    derated: int
    transient_overshoot_c: float
    metrics: SimulationMetrics


@dataclass
class ControllerResult:
    """Full controller run output.

    Rate properties follow one convention for degenerate runs: with no
    epochs, or a horizon of zero length (a single instantaneous epoch),
    ``reward_rate`` and ``planned_reward_rate`` are **0.0** — no time
    passed, so no reward *rate* was sustained.  They never raise
    ``IndexError``/``ZeroDivisionError`` (the same latent-degenerate
    class :class:`~repro.experiments.runner.DegenerateBaselineError`
    guards in the experiment layer).
    """

    epochs: list[EpochRecord]

    @property
    def total_reward(self) -> float:
        return float(sum(e.metrics.total_reward for e in self.epochs))

    @property
    def horizon_s(self) -> float:
        """Covered horizon; 0.0 for an empty epoch list."""
        if not self.epochs:
            return 0.0
        return float(self.epochs[-1].end_s - self.epochs[0].start_s)

    @property
    def reward_rate(self) -> float:
        horizon = self.horizon_s
        if horizon <= 0.0:
            return 0.0
        return self.total_reward / horizon

    @property
    def planned_reward_rate(self) -> float:
        """Time-weighted mean of the epochs' first-step predictions."""
        horizon = self.horizon_s
        if horizon <= 0.0:
            return 0.0
        total = sum(e.plan.reward_rate * (e.end_s - e.start_s)
                    for e in self.epochs)
        return float(total / horizon)


class EpochController:
    """Re-runs the first step at fixed epochs over a drifting workload.

    Parameters
    ----------
    datacenter:
        Room with a thermal model attached.
    base_workload:
        Supplies everything except arrival rates (ECS, rewards,
        deadlines); rates are re-measured from the profile per epoch.
    p_const:
        Room power cap, kW.
    epoch_s:
        Re-assignment period, seconds.  Should comfortably exceed the
        thermal settling time (see
        :func:`repro.thermal.transient.time_to_steady_state`).
    psi:
        ARR aggregation level for the three-stage solver.
    tau_s:
        Node thermal time constant used in the transient safety check.
    derate_step:
        Each derating iteration multiplies the plan's power cap by
        ``1 - derate_step`` until the transition is transient-safe.
    max_derate:
        Give up (raise) after this many derating steps.
    """

    def __init__(self, datacenter: DataCenter, base_workload: Workload,
                 p_const: float, epoch_s: float = 1800.0,
                 psi: float = 50.0, tau_s: float = 120.0,
                 derate_step: float = 0.05, max_derate: int = 10):
        if epoch_s <= 0:
            raise ValueError("epoch length must be positive")
        if not 0.0 < derate_step < 1.0:
            raise ValueError("derate_step must be in (0, 1)")
        self.datacenter = datacenter
        self.base_workload = base_workload
        self.p_const = p_const
        self.epoch_s = epoch_s
        self.psi = psi
        self.tau_s = tau_s
        self.derate_step = derate_step
        self.max_derate = max_derate
        # warm-start state chained across epochs: only the arrival-rate
        # vector changes between epochs (and the cap inside the derate
        # loop), so every reuse it engages is value-exact — epoch plans
        # are bit-identical to a cold-solving controller's.
        self._warm: SolveState | None = None

    # ------------------------------------------------------------------
    def _plan_for_rates(self, rates: np.ndarray,
                        p_cap: float) -> AssignmentResult:
        workload = replace(self.base_workload, arrival_rates=rates)
        return three_stage_assignment(self.datacenter, workload, p_cap,
                                      psi=self.psi)

    def _transient_overshoot(self, t_out_prev: np.ndarray,
                             plan: AssignmentResult) -> float:
        model = self.datacenter.require_thermal()
        node_power = self.datacenter.node_power_kw(plan.pstates)
        horizon = min(10.0 * self.tau_s, self.epoch_s)
        result = simulate_transient(model, plan.t_crac_out, node_power,
                                    t_out_prev, duration_s=horizon,
                                    tau_s=self.tau_s)
        return result.max_inlet_overshoot(self.datacenter.redline_c)

    def plan_epoch(self, rates: np.ndarray, t_out_prev: np.ndarray
                   ) -> tuple[SolveResult, int, float]:
        """Solve one epoch's plan with the transient safety loop.

        Warm-starts from the previous epoch's plan (exact reuse only —
        see ``_warm``) and chains the returned state for the next call.
        """
        workload = replace(self.base_workload, arrival_rates=rates)
        plan, derated, overshoot = plan_with_transient_guard(
            self.datacenter, workload, self.p_const, t_out_prev,
            psi=self.psi, tau_s=self.tau_s,
            transient_horizon_s=min(10.0 * self.tau_s, self.epoch_s),
            derate_step=self.derate_step, max_derate=self.max_derate,
            on_exhausted="raise", warm_start=self._warm)
        self._warm = plan.state
        return plan, derated, overshoot

    # ------------------------------------------------------------------
    def run(self, profile: ArrivalProfile, horizon_s: float,
            rng: np.random.Generator) -> ControllerResult:
        """Drive the controller over ``horizon_s`` seconds of load.

        The task stream is drawn from ``profile`` once (one realization)
        and split at epoch boundaries; each epoch's slice replays against
        that epoch's plan.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        dc = self.datacenter
        model = dc.require_thermal()
        trace = generate_nonstationary_trace(self.base_workload, profile,
                                             horizon_s, rng)
        n_epochs = int(np.ceil(horizon_s / self.epoch_s))
        t_out_prev: np.ndarray | None = None
        epochs: list[EpochRecord] = []
        cursor = 0
        for e in range(n_epochs):
            start = e * self.epoch_s
            end = min((e + 1) * self.epoch_s, horizon_s)
            with obs_span("epoch", index=e):
                rates = np.asarray(profile.rates(start), dtype=float)
                if t_out_prev is None:
                    t_out_prev = idle_start_t_out(dc)
                plan, derated, overshoot = self.plan_epoch(rates, t_out_prev)
                # epoch task slice, re-based to epoch-local time
                chunk: list[Task] = []
                while cursor < len(trace) and trace[cursor].arrival < end:
                    t = trace[cursor]
                    chunk.append(Task(arrival=t.arrival - start,
                                      task_type=t.task_type, uid=t.uid,
                                      deadline=t.deadline - start))
                    cursor += 1
                workload = replace(self.base_workload, arrival_rates=rates)
                metrics = simulate_trace(dc, workload, plan.tc,
                                         plan.pstates, chunk,
                                         duration=end - start)
                epochs.append(EpochRecord(
                    start_s=start, end_s=end, rates=rates, plan=plan,
                    derated=derated, transient_overshoot_c=overshoot,
                    metrics=metrics))
                node_power = dc.node_power_kw(plan.pstates)
                t_out_prev = model.steady_state(plan.t_crac_out,
                                                node_power).t_out
            obs_metrics.counter("controller.epochs").inc()
        return ControllerResult(epochs=epochs)
