"""RL040 bad: nondeterministic values reach cache-key sinks."""

import json
import time


def cache_key(payload) -> str:
    return json.dumps(payload, sort_keys=True, default=list)


def stamp():
    return time.time()                       # line 12: wall-clock source


def write_entry(config) -> str:
    payload = {"config": config, "written_at": stamp()}
    return cache_key(payload)                # line 17: reaches the key


def split_cache(psis) -> str:
    payload = {"psis": set(psis)}            # line 21: set-order source
    return cache_key(payload)                # line 22: reaches the key
