"""Shared benchmark configuration.

Every benchmark regenerates one table or figure of the paper and prints
the rows it reports (via ``capsys.disabled()`` so the output is visible
under pytest's default capture).

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable:

* ``small`` (default) — 30-node rooms, few runs; the whole suite stays
  interactive (~2-4 minutes).
* ``paper`` — the full Section VI setup (150 nodes, 3 CRACs, 25 runs
  per simulation set); expect ~20-30 minutes for the Figure 6 bench.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.experiments import generate_scenario, scaled_down
from repro.experiments.config import PAPER_SET_1, PAPER_SET_3, ScenarioConfig


@dataclass(frozen=True)
class BenchScale:
    """Knobs derived from REPRO_BENCH_SCALE."""

    name: str
    n_nodes: int
    n_runs: int
    des_horizon: float

    @property
    def is_paper(self) -> bool:
        return self.name == "paper"


def _scale_from_env() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name == "paper":
        return BenchScale(name="paper", n_nodes=150, n_runs=25,
                          des_horizon=60.0)
    if name == "small":
        return BenchScale(name="small", n_nodes=30, n_runs=5,
                          des_horizon=20.0)
    raise ValueError(
        f"REPRO_BENCH_SCALE must be 'small' or 'paper', got {name!r}")


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return _scale_from_env()


@pytest.fixture(scope="session")
def engine_jobs() -> int:
    """Worker processes for engine-driven benchmarks (REPRO_BENCH_JOBS)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


@pytest.fixture(scope="session")
def bench_config(scale) -> ScenarioConfig:
    """A set-1 config at benchmark scale."""
    return scaled_down(PAPER_SET_1, scale.n_nodes)


@pytest.fixture(scope="session")
def bench_scenario(bench_config):
    """One cached scenario reused by the non-Figure-6 benchmarks."""
    return generate_scenario(bench_config, 1000)


@pytest.fixture(scope="session")
def bench_scenario_set3(scale):
    """A set-3 scenario (where the technique shines)."""
    return generate_scenario(scaled_down(PAPER_SET_3, scale.n_nodes), 1000)
