"""End-to-end integration tests — the paper's pipeline on small rooms.

These cross-module tests exercise the library the way the Figure 6
experiment does (generate -> assign both ways -> verify -> compare) and
assert the *qualitative* claims of the paper hold.
"""

import numpy as np
import pytest

from repro import (generate_trace, simulate_trace, solve_baseline,
                   three_stage_assignment)
from repro.core import best_psi_assignment
from repro.datacenter.power import total_power
from repro.experiments import (PAPER_SET_1, PAPER_SET_3, generate_scenario,
                               run_comparison, scaled_down)


@pytest.fixture(scope="module")
def set3_scenarios():
    """Three small set-3 scenarios (the paper's most favorable setup)."""
    cfg = scaled_down(PAPER_SET_3, 25)
    return [generate_scenario(cfg, seed) for seed in (301, 302, 303)]


class TestHeadlineClaim:
    def test_three_stage_beats_baseline_on_average_set3(self,
                                                        set3_scenarios):
        """The paper's core claim: with 20% static power and V_prop=0.3,
        data-center-level P-state assignment earns notably more reward
        than P0-or-off.  Averaged over scenarios the gain is positive."""
        imps = []
        for sc in set3_scenarios:
            res = run_comparison(sc)
            imps.append(res.improvement_pct(None))
        assert np.mean(imps) > 2.0   # paper reports ~10% at full scale

    def test_both_respect_identical_constraints(self, set3_scenarios):
        sc = set3_scenarios[0]
        dc = sc.datacenter
        ours = three_stage_assignment(dc, sc.workload, sc.p_const)
        base, _ = solve_baseline(dc, sc.workload, sc.p_const)
        for label, t_out, node_power in (
                ("ours", ours.t_crac_out, ours.stage2.node_power_kw),
                ("base", base.t_crac_out, base.node_power_kw)):
            assert dc.thermal.is_feasible(t_out, node_power,
                                          dc.redline_c), label
            total = total_power(dc, t_out, node_power).total
            assert total <= sc.p_const + 1e-6, label


class TestPipelineConsistency:
    def test_stage_rewards_ordering(self, set3_scenarios):
        """Stage 3 on stage-2 P-states cannot beat the all-P0 upper
        bound, and the final reward is positive."""
        sc = set3_scenarios[0]
        res = three_stage_assignment(sc.datacenter, sc.workload,
                                     sc.p_const)
        from repro.core import solve_stage3
        upper = solve_stage3(sc.datacenter, sc.workload,
                             np.zeros(sc.datacenter.n_cores, dtype=int))
        assert 0 < res.reward_rate <= upper.reward_rate + 1e-9

    def test_des_consistent_with_plan(self, set3_scenarios):
        """Second step realizes a large fraction of the first-step plan
        and never grossly exceeds it."""
        sc = set3_scenarios[1]
        res = three_stage_assignment(sc.datacenter, sc.workload,
                                     sc.p_const)
        trace = generate_trace(sc.workload, 15.0,
                               np.random.default_rng(0))
        m = simulate_trace(sc.datacenter, sc.workload, res.tc,
                           res.pstates, trace, duration=15.0)
        assert 0.6 * res.reward_rate <= m.reward_rate \
            <= 1.25 * res.reward_rate

    def test_best_psi_runs_all_levels(self, set3_scenarios):
        sc = set3_scenarios[2]
        best, results = best_psi_assignment(sc.datacenter, sc.workload,
                                            sc.p_const, psis=(25.0, 50.0))
        for res in results.values():
            res.verify(sc.datacenter, sc.p_const)
        assert best.reward_rate == max(r.reward_rate
                                       for r in results.values())


class TestCrossTechniqueDES:
    def test_baseline_plan_replays_through_des(self, set3_scenarios):
        """The DES and scheduler are technique-agnostic: the baseline's
        TC matrix replays cleanly and realizes most of its plan."""
        sc = set3_scenarios[0]
        base, _ = solve_baseline(sc.datacenter, sc.workload, sc.p_const)
        trace = generate_trace(sc.workload, 10.0,
                               np.random.default_rng(2))
        m = simulate_trace(sc.datacenter, sc.workload, base.tc,
                           base.pstates, trace, duration=10.0)
        assert m.reward_rate >= 0.6 * base.reward_rate
        assert np.all(m.utilization <= 1.0 + 1e-9)

    def test_server_level_plan_replays_through_des(self, set3_scenarios):
        from repro.core import solve_server_level

        sc = set3_scenarios[1]
        srv, _ = solve_server_level(sc.datacenter, sc.workload,
                                    sc.p_const)
        trace = generate_trace(sc.workload, 10.0,
                               np.random.default_rng(3))
        m = simulate_trace(sc.datacenter, sc.workload, srv.tc,
                           srv.pstates, trace, duration=10.0)
        assert m.reward_rate >= 0.6 * srv.reward_rate

    def test_validator_accepts_all_techniques(self, set3_scenarios):
        from repro.core import solve_server_level
        from repro.validate import validate_solution

        sc = set3_scenarios[2]
        ours = three_stage_assignment(sc.datacenter, sc.workload,
                                      sc.p_const)
        base, _ = solve_baseline(sc.datacenter, sc.workload, sc.p_const)
        srv, _ = solve_server_level(sc.datacenter, sc.workload,
                                    sc.p_const)
        for label, (t, ps, tc) in {
            "three-stage": (ours.t_crac_out, ours.pstates, ours.tc),
            "baseline": (base.t_crac_out, base.pstates, base.tc),
            "server-level": (srv.t_crac_out, srv.pstates, srv.tc),
        }.items():
            rep = validate_solution(sc.datacenter, sc.workload,
                                    sc.p_const, t, ps, tc)
            assert rep.ok, f"{label}: {rep.violations}"


class TestPowerCapBinds:
    def test_lower_cap_lower_reward(self):
        """Tightening the power constraint must not increase reward."""
        sc = generate_scenario(scaled_down(PAPER_SET_1, 20), 7)
        full = three_stage_assignment(sc.datacenter, sc.workload,
                                      sc.p_const)
        tight = three_stage_assignment(sc.datacenter, sc.workload,
                                       0.8 * sc.p_const)
        assert tight.reward_rate <= full.reward_rate + 1e-6

    def test_generous_cap_recovers_flat_out(self):
        """With a cap above Pmax, (almost) everything runs at P0."""
        sc = generate_scenario(scaled_down(PAPER_SET_1, 20), 8)
        loose = three_stage_assignment(sc.datacenter, sc.workload,
                                       10.0 * sc.bounds.p_max)
        # thermal constraints may still bind a few nodes, but the bulk
        # of cores should be active
        active = (loose.pstates < sc.datacenter.node_types[0].off_pstate)
        assert active.mean() > 0.5
