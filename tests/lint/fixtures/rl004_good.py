"""RL004 good: simulated time from the event queue, durations from
perf_counter (monotonic, never serialized as an absolute instant)."""

import time


def timed_step(sim_clock_s, fn):
    t0 = time.perf_counter()
    result = fn(sim_clock_s)
    return result, time.perf_counter() - t0
