"""Tests for repro.core.stage1 — the relaxed power-assignment LP."""

import numpy as np
import pytest

from repro.core.stage1 import (build_arr_functions, distribute_node_power,
                               solve_stage1, solve_stage1_fixed_temps)
from repro.thermal.constraints import ThermalLinearization


@pytest.fixture(scope="module")
def arrs(scenario):
    return build_arr_functions(scenario.datacenter, scenario.workload, 50.0)


@pytest.fixture(scope="module")
def lin(scenario):
    dc = scenario.datacenter
    return ThermalLinearization.build(
        dc.thermal, np.full(dc.n_crac, 15.0), dc.redline_c)


@pytest.fixture(scope="module")
def fixed_solution(scenario, arrs, lin):
    sol = solve_stage1_fixed_temps(scenario.datacenter, arrs, lin,
                                   scenario.p_const)
    assert sol is not None
    return sol


class TestFixedTemps:
    def test_power_cap_respected(self, scenario, fixed_solution, lin):
        total = fixed_solution.node_power_kw.sum() \
            + lin.crac_power(fixed_solution.node_power_kw)
        assert total <= scenario.p_const + 1e-6

    def test_redlines_respected(self, scenario, fixed_solution):
        dc = scenario.datacenter
        assert dc.thermal.is_feasible(fixed_solution.t_crac_out,
                                      fixed_solution.node_power_kw,
                                      dc.redline_c)

    def test_core_powers_within_domain(self, scenario, fixed_solution):
        dc = scenario.datacenter
        for node in dc.nodes:
            p = fixed_solution.core_power_kw[list(node.core_indices)]
            assert np.all(p >= -1e-12)
            assert np.all(p <= node.spec.p0_power_kw + 1e-12)

    def test_node_power_consistent_with_cores(self, scenario,
                                              fixed_solution):
        dc = scenario.datacenter
        for node in dc.nodes:
            core_sum = fixed_solution.core_power_kw[
                list(node.core_indices)].sum()
            assert fixed_solution.node_power_kw[node.index] \
                == pytest.approx(node.spec.base_power_kw + core_sum)

    def test_objective_matches_arr_of_core_powers(self, scenario, arrs,
                                                  fixed_solution):
        """The LP objective equals sum_k ARR(PCORE_k) after the fill."""
        dc = scenario.datacenter
        total = 0.0
        for node in dc.nodes:
            hull = arrs[node.type_index].concave
            total += hull(fixed_solution.core_power_kw[
                list(node.core_indices)]).sum()
        assert total == pytest.approx(fixed_solution.objective, rel=1e-6)

    def test_uses_the_power_budget(self, scenario, fixed_solution, lin):
        """An oversubscribed room should exhaust the cap (within 1%)."""
        total = fixed_solution.node_power_kw.sum() \
            + lin.crac_power(fixed_solution.node_power_kw)
        assert total >= 0.99 * scenario.p_const

    def test_infeasible_cap_returns_none(self, scenario, arrs, lin):
        sol = solve_stage1_fixed_temps(scenario.datacenter, arrs, lin,
                                       p_const=1.0)
        assert sol is None

    def test_too_hot_outlets_return_none(self, scenario, arrs):
        dc = scenario.datacenter
        hot = ThermalLinearization.build(
            dc.thermal, np.full(dc.n_crac, 45.0), dc.redline_c)
        # even base power overheats node inlets at 45 C outlets
        sol = solve_stage1_fixed_temps(dc, arrs, hot, scenario.p_const)
        assert sol is None


class TestDistribution:
    def test_breakpoint_quantization(self, scenario, arrs, fixed_solution):
        """At most one core per node sits strictly between breakpoints."""
        dc = scenario.datacenter
        for node in dc.nodes:
            hull_x = arrs[node.type_index].concave.x
            powers = fixed_solution.core_power_kw[list(node.core_indices)]
            off_bp = sum(
                1 for p in powers
                if not np.any(np.isclose(p, hull_x, atol=1e-9)))
            assert off_bp <= 1

    def test_distribution_conserves_power(self, scenario, arrs):
        dc = scenario.datacenter
        rng = np.random.default_rng(0)
        budgets = rng.uniform(
            0.0, 0.9 * np.asarray([n.n_cores * n.spec.p0_power_kw
                                   for n in dc.nodes]))
        core_power = distribute_node_power(dc, arrs, budgets)
        for node in dc.nodes:
            got = core_power[list(node.core_indices)].sum()
            assert got == pytest.approx(budgets[node.index], abs=1e-9)

    def test_zero_budget_all_off(self, scenario, arrs):
        dc = scenario.datacenter
        core_power = distribute_node_power(dc, arrs,
                                           np.zeros(dc.n_nodes))
        np.testing.assert_allclose(core_power, 0.0)

    def test_full_budget_all_p0(self, scenario, arrs):
        dc = scenario.datacenter
        budgets = np.asarray([n.n_cores * n.spec.p0_power_kw
                              for n in dc.nodes])
        core_power = distribute_node_power(dc, arrs, budgets)
        for node in dc.nodes:
            np.testing.assert_allclose(
                core_power[list(node.core_indices)],
                node.spec.p0_power_kw, atol=1e-9)


class TestSearch:
    def test_fast_search_returns_feasible(self, scenario):
        sol, trace = solve_stage1(scenario.datacenter, scenario.workload,
                                  p_const=scenario.p_const, psi=50.0,
                                  search="fast")
        assert sol.objective > 0
        assert trace.evaluations >= 16   # at least the uniform scan

    def test_full_search_at_least_as_good_as_uniform_grid(self, scenario):
        fast, _ = solve_stage1(scenario.datacenter, scenario.workload,
                               p_const=scenario.p_const, psi=50.0,
                               search="fast")
        full, _ = solve_stage1(scenario.datacenter, scenario.workload,
                               p_const=scenario.p_const, psi=50.0,
                               search="full")
        # both are heuristics over the same grid; they must land within
        # a few percent of each other and never be wildly different
        assert full.objective == pytest.approx(fast.objective, rel=0.05)

    def test_unknown_mode_rejected(self, scenario):
        with pytest.raises(ValueError, match="search mode"):
            solve_stage1(scenario.datacenter, scenario.workload,
                         p_const=scenario.p_const, psi=50.0,
                         search="bogus")

    def test_impossible_cap_raises(self, scenario):
        with pytest.raises(RuntimeError, match="no feasible"):
            solve_stage1(scenario.datacenter, scenario.workload,
                         p_const=0.1, psi=50.0)
