"""RL050 good: every field reaches the key or is exempt with a reason."""

import hashlib
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class ScenarioKnobs:  # repro-lint: cache-class(make_key)
    n_nodes: int
    p_const: float
    chaos: bool


@dataclass(frozen=True)
class SolveKnobs:  # repro-lint: cache-class(solve_key)
    seed: int
    warm_seed: bool  # repro-lint: cache-exempt(changes the path, not values)


def make_key(config: ScenarioKnobs) -> str:
    return hashlib.sha256(repr(asdict(config)).encode()).hexdigest()


def solve_key(options: SolveKnobs) -> str:
    return hashlib.sha256(str(options.seed).encode()).hexdigest()
