"""Metaheuristic backends: determinism, budgets, repair, warm replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import SolveOptions, SolveRequest, solve
from repro.datacenter.power import total_power
from repro.experiments.config import PAPER_SET_1, scaled_down
from repro.experiments.generator import generate_scenario
from repro.solvers.common import (Candidate, CandidateEvaluator,
                                  seed_candidates)

from tests.conftest import SEED

BACKENDS = ("annealing", "evolution")


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(scaled_down(PAPER_SET_1, 8), SEED)


def _request(scenario, backend, seed=0, max_evals=120):
    return SolveRequest(
        scenario.datacenter, scenario.workload, scenario.p_const,
        options=SolveOptions(backend=backend, seed=seed,
                             max_evals=max_evals))


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackends:
    def test_result_verifies(self, scenario, backend):
        result = solve(_request(scenario, backend))
        result.verify(scenario.datacenter, scenario.p_const)
        assert result.reward_rate >= 0.0

    def test_deterministic_under_fixed_seed(self, scenario, backend):
        a = solve(_request(scenario, backend, seed=3))
        b = solve(_request(scenario, backend, seed=3))
        assert a.to_dict() == b.to_dict()
        assert np.array_equal(a.tc, b.tc)

    def test_seed_changes_search(self, scenario, backend):
        a = solve(_request(scenario, backend, seed=0))
        b = solve(_request(scenario, backend, seed=99))
        # searches differ (pstates or evaluations trajectory), even if
        # they happen to land on equal rewards
        assert a.seed != b.seed

    def test_budget_is_respected_exactly(self, scenario, backend):
        for budget in (40, 90):
            result = solve(_request(scenario, backend, max_evals=budget))
            assert result.evaluations <= budget

    def test_more_budget_never_hurts_incumbent(self, scenario, backend):
        small = solve(_request(scenario, backend, max_evals=60))
        large = solve(_request(scenario, backend, max_evals=240))
        assert large.reward_rate >= small.reward_rate - 1e-9

    def test_outcome_fields(self, scenario, backend):
        result = solve(_request(scenario, backend))
        doc = result.to_dict()
        assert doc["method"] == backend
        assert doc["seed"] == 0
        assert len(doc["pstates"]) == scenario.datacenter.n_cores
        assert len(doc["t_crac_out"]) == scenario.datacenter.n_crac
        power = result.power(scenario.datacenter)
        assert power.total <= scenario.p_const * (1 + 1e-6)

    def test_warm_replay_of_identical_request(self, scenario, backend):
        first = solve(_request(scenario, backend))
        replay_req = SolveRequest(
            scenario.datacenter, scenario.workload, scenario.p_const,
            options=SolveOptions(backend=backend, seed=0, max_evals=120),
            warm_start=first.state)
        replay = solve(replay_req)
        assert replay.to_dict() == first.to_dict()

    def test_seed_splits_warm_digest(self, scenario, backend):
        first = solve(_request(scenario, backend, seed=0))
        other_req = SolveRequest(
            scenario.datacenter, scenario.workload, scenario.p_const,
            options=SolveOptions(backend=backend, seed=1, max_evals=120),
            warm_start=first.state)
        other = solve(other_req)
        # a different seed must re-run the search, not replay seed 0
        fresh = solve(_request(scenario, backend, seed=1))
        assert other.to_dict() == fresh.to_dict()


class TestEvaluator:
    def test_repair_makes_infeasible_candidate_feasible(self, scenario):
        # pick an outlet level where the all-off room is feasible, then
        # set the cap between the all-off and flat-out totals there: the
        # flat-out candidate violates the cap but is repairable because
        # repair can always weaken toward the feasible all-off point
        dc = scenario.datacenter
        probe = CandidateEvaluator(dc, scenario.workload, scenario.p_const)
        level = next(
            lv for lv in range(probe.outlet_levels)
            if probe.is_feasible(Candidate(
                outlet_idx=np.full(probe.n_crac, lv, dtype=int),
                pstates=probe.off.copy())))
        t_vec = probe.outlets(np.full(probe.n_crac, level, dtype=int))
        off_total = total_power(dc, t_vec,
                                dc.node_power_kw(probe.off)).total
        hot_total = total_power(
            dc, t_vec,
            dc.node_power_kw(np.zeros(probe.n_cores, dtype=int))).total
        cap = off_total + 0.3 * (hot_total - off_total)
        ev = CandidateEvaluator(dc, scenario.workload, cap)
        cand = Candidate(
            outlet_idx=np.full(ev.n_crac, level, dtype=int),
            pstates=np.zeros(ev.n_cores, dtype=int))
        assert not ev.is_feasible(cand)
        ev.repair(cand)
        assert ev.is_feasible(cand)

    def test_repair_gives_up_on_unfixable_outlets(self, scenario):
        # at the hottest admissible outlet even the idle room violates
        # a redline — P-state weakening cannot fix it, so repair stops
        # at all-off and evaluate scores the candidate infeasible
        ev = CandidateEvaluator(scenario.datacenter, scenario.workload,
                                scenario.p_const)
        cand = Candidate(
            outlet_idx=np.full(ev.n_crac, ev.outlet_levels - 1, dtype=int),
            pstates=np.zeros(ev.n_cores, dtype=int))
        reward = ev.evaluate(cand)
        if not ev.is_feasible(cand):
            assert reward < 0.0
            assert np.array_equal(cand.pstates, ev.off)

    def test_repair_keeps_feasible_candidate_unchanged(self, scenario):
        ev = CandidateEvaluator(scenario.datacenter, scenario.workload,
                                scenario.p_const)
        cand = Candidate(outlet_idx=np.zeros(ev.n_crac, dtype=int),
                         pstates=ev.off.copy())
        before = cand.pstates.copy()
        ev.repair(cand)
        assert np.array_equal(cand.pstates, before)

    def test_evaluate_counts_and_caches(self, scenario):
        ev = CandidateEvaluator(scenario.datacenter, scenario.workload,
                                scenario.p_const)
        cand = Candidate(outlet_idx=np.zeros(ev.n_crac, dtype=int),
                         pstates=ev.off.copy())
        r1 = ev.evaluate(cand)
        r2 = ev.evaluate(cand.copy())
        assert r1 == pytest.approx(r2)
        assert ev.evaluations == 2

    def test_all_off_rewards_zero(self, scenario):
        ev = CandidateEvaluator(scenario.datacenter, scenario.workload,
                                scenario.p_const)
        cand = Candidate(outlet_idx=np.zeros(ev.n_crac, dtype=int),
                         pstates=ev.off.copy())
        assert ev.evaluate(cand) == pytest.approx(0.0)

    def test_seed_candidates_cover_grid(self, scenario):
        ev = CandidateEvaluator(scenario.datacenter, scenario.workload,
                                scenario.p_const)
        seeds = seed_candidates(ev)
        assert len(seeds) == ev.outlet_levels * (int(ev.off.max()) + 1)
        levels = {int(s.outlet_idx[0]) for s in seeds}
        assert levels == set(range(ev.outlet_levels))

    def test_outlet_levels_validation(self, scenario):
        with pytest.raises(ValueError, match="outlet levels"):
            CandidateEvaluator(scenario.datacenter, scenario.workload,
                               scenario.p_const, outlet_levels=1)
