"""Scalability ablation — solve time of the first-step assignment.

The paper's central engineering argument is that the exact MINLP "is not
scalable with respect to the number of cores", while the three-stage
technique is: its Stage 1 LP has one variable per (node, ARR segment)
— O(NCN) — and Stage 3 collapses to (node type, P-state) classes.  This
benchmark times the full three-stage pipeline as the room grows and
prints the trend (which should be near-linear in nodes, thousands of
cores per second).
"""

import time

import numpy as np

from repro.core import three_stage_assignment
from repro.experiments import ScenarioConfig, generate_scenario


def bench_scalability(benchmark, capsys, scale):
    sizes = [15, 30, 60] if not scale.is_paper else [30, 75, 150, 300]
    rows = []
    scenarios = {}
    for n in sizes:
        scenarios[n] = generate_scenario(
            ScenarioConfig(name=f"scale{n}", n_nodes=n), 500 + n)

    def solve_largest():
        sc = scenarios[sizes[-1]]
        return three_stage_assignment(sc.datacenter, sc.workload,
                                      sc.p_const, psi=50.0)

    result = benchmark.pedantic(solve_largest, rounds=1, iterations=1)
    assert result.reward_rate > 0

    for n in sizes:
        sc = scenarios[n]
        t0 = time.perf_counter()
        res = three_stage_assignment(sc.datacenter, sc.workload,
                                     sc.p_const, psi=50.0)
        dt = time.perf_counter() - t0
        rows.append((n, sc.datacenter.n_cores, dt, res.reward_rate))

    with capsys.disabled():
        print()
        print("scalability — three-stage solve time vs room size")
        print(f"{'nodes':>7}{'cores':>8}{'solve s':>9}{'cores/s':>10}")
        for n, cores, dt, _ in rows:
            print(f"{n:>7}{cores:>8}{dt:>9.2f}{cores / dt:>10.0f}")
        small, large = rows[0], rows[-1]
        growth = (large[2] / small[2]) / (large[0] / small[0])
        print(f"time growth per node-count growth: {growth:.2f}x "
              "(1.0 = perfectly linear)")
