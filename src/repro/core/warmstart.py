"""Warm-start state for incremental re-solves (docs/SERVING.md).

A rolling-horizon controller re-solves the first-step problem every few
seconds, but consecutive problems are nearly identical: usually only the
arrival-rate vector moved (diurnal drift), sometimes only the power cap
(an emergency derate), rarely the room itself (a fault).  This module
gives :func:`repro.core.api.solve` a memory between those solves.

Three content digests grade how much of a previous solve still applies:

``structure``
    The room, the workload's reward structure (``ecs`` / ``rewards`` /
    ``deadline_slack``) and every tuning knob that shapes the solver's
    trajectory.  Stage 1's thermal linearizations and ARR hulls depend
    on nothing else, so they transfer whenever this digest matches.
``stage1``
    ``structure`` plus the power cap.  The Stage 1 LP family is fully
    determined by it — ``ARR`` does not read arrival rates — so an
    equal digest lets every LP replay bit-for-bit and the previous
    outlet vector seed the search *exactly* (it is a fixed point of the
    coordinate descent it produced).
``request``
    ``stage1`` plus the arrival rates: the whole problem.  An equal
    digest replays the previous outcome verbatim.

:class:`SolveState` is the opaque artifact carrying the digests (and a
JSON-serializable seed) across solves; its :attr:`SolveState.runtime`
field holds the in-memory caches and is deliberately never serialized —
a deserialized state still warm-starts, just through the exact seeded
path instead of outright replay.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np
from scipy import sparse

if TYPE_CHECKING:
    from repro.core.api import SolveOptions
    from repro.core.assignment import AssignmentResult
    from repro.core.stage1 import Stage1Solution
    from repro.core.stage2 import Stage2Solution
    from repro.datacenter.builder import DataCenter
    from repro.optimize.linprog import LPSolution
    from repro.workload.tasktypes import Workload

__all__ = ["Digests", "SolveState", "WarmContext", "WarmPool",
           "compute_digests", "prepare_context", "capture_state"]

#: Reuse grades, strongest first (see module docstring).
LEVELS = ("request", "stage1", "structure", "none")

#: Soft cap on cached LP solutions per chained context; the cache only
#: grows when the power cap keeps changing, and eviction affects speed,
#: never values.
_LP_CACHE_LIMIT = 4096


@dataclass(frozen=True)
class Digests:
    """The three content digests of one solve request."""

    structure: str
    stage1: str
    request: str


def _hash_array(h: "hashlib._Hash", arr: np.ndarray) -> None:
    if sparse.issparse(arr):
        # CSR content digest: data + structure.  Canonicalize first so
        # an identical matrix assembled in a different order hashes
        # identically.
        csr = arr.tocsr().sorted_indices()
        for part in (csr.data, csr.indices, csr.indptr):
            h.update(np.ascontiguousarray(part).tobytes())
        return
    h.update(np.ascontiguousarray(arr).tobytes())


def compute_digests(datacenter: DataCenter, workload: Workload,
                    p_const: float, options: SolveOptions,
                    psi: float | None = None) -> Digests:
    """Digest a request at one aggregation level.

    ``psi`` defaults to ``options.psi``; the ``best_psi`` method digests
    each of its per-ψ children separately.  Every option knob that can
    move solver output is folded into the structure digest, so a knob
    change can never silently replay a stale result.
    """
    model = datacenter.require_thermal()
    h = hashlib.sha256()
    _hash_array(h, model.alpha)
    _hash_array(h, model.flows)
    h.update(repr((model.n_crac, model.rho, model.cp)).encode())
    _hash_array(h, datacenter.redline_c)
    _hash_array(h, datacenter.node_base_power)
    _hash_array(h, datacenter.node_type_index)
    _hash_array(h, datacenter.core_type)
    for spec in datacenter.node_types:
        h.update(repr((spec.name, spec.base_power_kw, spec.cores_per_node,
                       spec.frequencies_mhz, spec.voltages_v,
                       spec.pstate_power_kw, spec.flow_m3s,
                       spec.performance_scale,
                       spec.static_fraction_p0)).encode())
    for crac in datacenter.cracs:
        cop = crac.cop_model
        h.update(repr((crac.flow_m3s, crac.outlet_range_c,
                       cop.a2, cop.a1, cop.a0)).encode())
    _hash_array(h, workload.ecs)
    _hash_array(h, workload.rewards)
    _hash_array(h, workload.deadline_slack)
    psi_val = options.psi if psi is None else float(psi)
    h.update(repr((psi_val, tuple(options.psis), options.search,
                   options.coarse_step, options.final_step,
                   options.temp_step, options.max_assignments,
                   options.kernel, options.backend, options.seed,
                   options.max_evals, options.thermal_backend)).encode())
    structure = h.hexdigest()
    stage1 = hashlib.sha256(
        (structure + repr(float(p_const))).encode()).hexdigest()
    req = hashlib.sha256(
        stage1.encode()
        + np.ascontiguousarray(workload.arrival_rates).tobytes()).hexdigest()
    return Digests(structure=structure, stage1=stage1, request=req)


@dataclass
class WarmContext:
    """In-memory caches threaded through one solve (never serialized).

    ``level`` grades what the previous state shares with the current
    request (one of :data:`LEVELS`); the caches below it are only ever
    populated when their validity level is met, so the solver can use
    whatever is present without re-checking digests:

    * ``arrs`` / ``segments`` / ``lin_cache`` — pure functions of the
      structure digest; reuse is value-exact at any level ≥ structure.
    * ``lp_cache`` — keyed by ``stage1_key`` plus the probe temperature,
      so entries self-invalidate when the cap changes; replay is
      bit-exact.
    * ``seed_t`` — starting vector for the coordinate descent.  Exact
      at level ``stage1`` (it is the incumbent optimum of the identical
      search problem); heuristic at level ``structure`` and therefore
      only set there when the caller opted in via ``warm_seed``.
    * ``prev_stage1`` / ``prev_stage2`` — Stage 2 replays when Stage 1
      reproduces its previous output bit-for-bit.
    * ``outcome`` — the full previous result, replayed at ``request``.
    """

    level: str = "none"
    stage1_key: str = ""
    seed_t: np.ndarray | None = None
    arrs: list[Any] | None = None
    segments: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
    lin_cache: dict[bytes, Any] = field(default_factory=dict)
    lp_cache: dict[str, "LPSolution | None"] = field(default_factory=dict)
    prev_stage1: "Stage1Solution | None" = None
    prev_stage2: "Stage2Solution | None" = None
    outcome: "AssignmentResult | None" = None


@dataclass
class SolveState:
    """Opaque, serializable warm-start handle (schema 1).

    Returned with every :class:`repro.core.api.SolveResult` and accepted
    back via ``SolveRequest.warm_start``.  The serializable core is the
    digests plus the previous outlet vector; :attr:`runtime` carries the
    heavyweight caches within a process and is dropped by
    :meth:`to_dict` and by pickling (engine workers ship states across
    processes without the caches).
    """

    method: str
    kernel: str
    search: str
    digests: Digests
    psi: float | None = None
    t_crac_out: tuple[float, ...] | None = None
    objective: float | None = None
    children: dict[str, "SolveState"] = field(default_factory=dict)
    schema: int = 1
    runtime: WarmContext | None = field(default=None, repr=False,
                                        compare=False)

    def __getstate__(self) -> dict[str, Any]:
        state = self.__dict__.copy()
        state["runtime"] = None
        return state

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (round-trips via :meth:`from_dict`)."""
        return {
            "schema": self.schema,
            "method": self.method,
            "kernel": self.kernel,
            "search": self.search,
            "digests": {"structure": self.digests.structure,
                        "stage1": self.digests.stage1,
                        "request": self.digests.request},
            "psi": self.psi,
            "t_crac_out": None if self.t_crac_out is None
            else list(self.t_crac_out),
            "objective": self.objective,
            "children": {key: child.to_dict()
                         for key, child in self.children.items()},
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "SolveState":
        if doc.get("schema") != 1:
            raise ValueError(
                f"unsupported SolveState schema {doc.get('schema')!r}")
        digests = Digests(structure=doc["digests"]["structure"],
                          stage1=doc["digests"]["stage1"],
                          request=doc["digests"]["request"])
        t_out = doc.get("t_crac_out")
        return cls(
            method=doc["method"],
            kernel=doc["kernel"],
            search=doc["search"],
            digests=digests,
            psi=doc.get("psi"),
            t_crac_out=None if t_out is None else tuple(float(t)
                                                        for t in t_out),
            objective=doc.get("objective"),
            children={key: cls.from_dict(child)
                      for key, child in doc.get("children", {}).items()},
        )


class WarmPool:
    """Several warm-start chains keyed by structure digest (LRU).

    Controllers that juggle *multiple* problem structures at once — the
    fault-aware loop (healthy room plus every distinct degraded
    inventory) and the MPC planner (true room plus every pre-cool
    tightening level) — each keep one chain per structure so a recovery
    or a de-escalation warm-starts from the matching past state, never a
    stale one.  Keys are structure digests (:func:`compute_digests`), so
    a wrong lookup can only cause a cold solve, never a wrong value.
    The pool is bounded: chains for structures that stop recurring are
    evicted least-recently-used, which affects speed, never results.
    """

    def __init__(self, limit: int = 16):
        if limit < 1:
            raise ValueError(f"limit must be at least 1, got {limit}")
        self._limit = limit
        self._states: OrderedDict[str, SolveState] = OrderedDict()

    def __len__(self) -> int:
        return len(self._states)

    def get(self, key: str) -> SolveState | None:
        """The most recent state stored under ``key`` (None when cold)."""
        state = self._states.get(key)
        if state is not None:
            self._states.move_to_end(key)
        return state

    def put(self, key: str, state: SolveState) -> None:
        """Store ``state`` as the head of ``key``'s chain."""
        self._states[key] = state
        self._states.move_to_end(key)
        while len(self._states) > self._limit:
            self._states.popitem(last=False)


def prepare_context(state: SolveState | None, digests: Digests, *,
                    method: str, search: str,
                    warm_seed: bool) -> WarmContext:
    """Grade a previous state against the current request.

    Always returns a usable context — a cold solve just gets one with
    empty caches — so the solver plumbing never branches on None.
    """
    ctx = WarmContext(stage1_key=digests.stage1)
    if state is None or state.method != method \
            or state.digests.structure != digests.structure:
        return ctx
    rt = state.runtime
    if rt is not None:
        ctx.arrs = rt.arrs
        ctx.segments = rt.segments
        ctx.lin_cache = rt.lin_cache
        ctx.lp_cache = rt.lp_cache
        if len(ctx.lp_cache) > _LP_CACHE_LIMIT:
            ctx.lp_cache.clear()
    seed = None if state.t_crac_out is None \
        else np.asarray(state.t_crac_out, dtype=float)
    if state.digests.request == digests.request:
        if rt is not None and rt.outcome is not None:
            ctx.level = "request"
            ctx.outcome = rt.outcome
            ctx.prev_stage1 = rt.prev_stage1
            ctx.prev_stage2 = rt.prev_stage2
            return ctx
        # deserialized state: same request, but no outcome to replay —
        # fall through to the exact seeded path
        ctx.level = "stage1"
    elif state.digests.stage1 == digests.stage1:
        ctx.level = "stage1"
    else:
        ctx.level = "structure"
    if rt is not None:
        ctx.prev_stage1 = rt.prev_stage1
        ctx.prev_stage2 = rt.prev_stage2
    if search == "fast" and (ctx.level == "stage1" or warm_seed):
        ctx.seed_t = seed
    return ctx


def capture_state(digests: Digests, ctx: WarmContext, outcome: Any, *,
                  method: str, kernel: str, search: str,
                  psi: float | None) -> SolveState:
    """Package the caches accumulated during a solve into a new state."""
    ctx.outcome = outcome
    t_out = getattr(outcome, "t_crac_out", None)
    stage1 = getattr(outcome, "stage1", None)
    stage2 = getattr(outcome, "stage2", None)
    if stage1 is not None:
        ctx.prev_stage1 = stage1
        ctx.prev_stage2 = stage2
    return SolveState(
        method=method,
        kernel=kernel,
        search=search,
        digests=digests,
        psi=psi,
        t_crac_out=None if t_out is None else tuple(float(t)
                                                    for t in t_out),
        objective=float(outcome.reward_rate),
        runtime=ctx,
    )
