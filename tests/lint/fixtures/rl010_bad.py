"""RL010 bad: physical constants re-typed as bare literals."""


def heat_rate(flow_m3s, rho=1.205):                   # line 4: density
    return rho * flow_m3s


def violates(t_inlet_c, redline_c=25.0):              # line 8: redline
    return t_inlet_c > redline_c


def crac_ok(t_in):
    return t_in <= 40.0                               # line 13: compare
