"""Data behind every figure of the paper (Figures 1-6).

Figures 3-5 are worked examples in Section V.B.2; this module rebuilds
them with the real library machinery (not hard-coded curves) so the
benchmarks can check the library against the paper's printed numbers.
Figure 6 is the headline experiment; :func:`fig6_data` runs it via
:mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import numpy as np

from repro.core.arr import AggregateRewardRate, aggregate_reward_rate
from repro.core.reward import reward_rate_function
from repro.datacenter.coretypes import NodeTypeSpec
from repro.experiments.config import ScenarioConfig, paper_sets
from repro.experiments.runner import SetResult
from repro.optimize.piecewise import PiecewiseLinear
from repro.workload.tasktypes import Workload

__all__ = ["example_node_type", "example_workload", "fig3_rr_function",
           "fig4_rr_function_with_deadline", "fig5_arr_functions",
           "fig6_data", "format_fig6"]


def example_node_type() -> NodeTypeSpec:
    """The Section V.B.2 example core type.

    "Assume a core of type j with 4 P-states.  The power consumption of
    P-states 0, 1, 2, and 3 is 0.15, 0.1, 0.05, and 0 Watts" — the 0 W
    P-state 3 plays the role of the off state.  Frequencies/voltages are
    placeholders (the example never uses them); powers are the paper's.
    """
    return NodeTypeSpec(
        name="paper-example",
        base_power_kw=0.0,
        cores_per_node=2,          # the example's 2-core compute node
        frequencies_mhz=(3000.0, 2000.0, 1000.0),
        voltages_v=(1.3, 1.2, 1.1),
        pstate_power_kw=(0.15, 0.10, 0.05, 0.0),
        flow_m3s=0.07,
        performance_scale=1.0,
        static_fraction_p0=0.3,
    )


def example_workload(deadline_slack: float) -> Workload:
    """One task type with the example's ECS ladder and reward 1.

    "The ECS values for task type i for each of the 4 P-states are 1.2,
    0.9, 0.5, and 0 ... the reward of completing a task of type i by its
    deadline is 1."
    """
    return Workload(
        ecs=np.asarray([[[1.2, 0.9, 0.5, 0.0]]]),
        rewards=np.asarray([1.0]),
        deadline_slack=np.asarray([deadline_slack]),
        arrival_rates=np.asarray([1.0]),
    )


def fig3_rr_function() -> PiecewiseLinear:
    """Figure 3 — RR through (0,0), (0.05,0.5), (0.1,0.9), (0.15,1.2).

    Deadlines are generous enough (``m_i = 10``) that no P-state misses.
    """
    return reward_rate_function(example_workload(10.0), 0,
                                example_node_type(), 0)


def fig4_rr_function_with_deadline() -> PiecewiseLinear:
    """Figure 4 — same RR but ``m_i = 1.5`` zeroes P-state 2.

    P-state 2's execution time is ``1/0.5 = 2 > 1.5``, so its point
    drops to (0.05, 0), denting the curve.
    """
    return reward_rate_function(example_workload(1.5), 0,
                                example_node_type(), 0)


def fig5_arr_functions() -> AggregateRewardRate:
    """Figure 5 — the ARR whose "bad" P-state 2 is ignored.

    With a single task type the raw ARR equals Figure 4's RR; the
    concave majorant removes the (0.05, 0) breakpoint, going straight
    from (0, 0) to (0.1, 0.9).
    """
    return aggregate_reward_rate(example_workload(1.5), example_node_type(),
                                 0, psi=100.0)


def fig6_data(n_runs: int = 25, base_seed: int = 1000,
              configs: list[ScenarioConfig] | None = None,
              progress: bool = False, *, jobs: int = 1,
              cache_dir=None, resume: bool = False,
              reporter=None) -> dict[str, SetResult]:
    """Run the Figure 6 experiment — all simulation sets.

    At paper scale (150 nodes, 25 runs) this takes minutes; benchmarks
    pass smaller configs for interactive use (see DESIGN.md §4).
    ``jobs``/``cache_dir``/``resume`` go straight to the experiment
    engine (see :mod:`repro.experiments.engine`): runs fan out over a
    process pool and finished runs are replayed from the cache on a
    resumed invocation.  Pass a
    :class:`~repro.experiments.progress.ProgressReporter` to observe
    per-run events; ``progress=True`` prints them.
    """
    from repro.experiments.engine import EngineConfig, run_sets
    from repro.experiments.progress import PrintingReporter

    if configs is None:
        configs = paper_sets()
    if reporter is None and progress:
        reporter = PrintingReporter()
    engine = EngineConfig(jobs=jobs, cache_dir=cache_dir, resume=resume)
    return run_sets(configs, n_runs=n_runs, base_seed=base_seed,
                    engine=engine, reporter=reporter)


def format_fig6(results: dict[str, SetResult]) -> str:
    """Render Figure 6 as the text table the benchmarks print."""
    lines = [
        "Figure 6 — average % improvement of the three-stage assignment "
        "over the P0-or-off baseline (95% CI)",
        f"{'set':<8}{'static%':>8}{'V_prop':>8}"
        f"{'psi=25':>18}{'psi=50':>18}{'best':>18}",
    ]
    for name, res in results.items():
        cfg = res.config
        cells = []
        for label in ("psi=25", "psi=50", "best"):
            ci = res.intervals[label]
            cells.append(f"{ci.mean:+6.2f} +/- {ci.half_width:4.2f}")
        lines.append(
            f"{name:<8}{cfg.static_fraction * 100:>7.0f}%"
            f"{cfg.v_prop:>8.1f}{cells[0]:>18}{cells[1]:>18}{cells[2]:>18}")
    return "\n".join(lines)
