#!/usr/bin/env python
"""Second-step dynamic scheduling — replaying a live task stream.

The first step only fixes *desired* execution rates; this example runs
the paper's second step (Section V.C): a Poisson task stream arrives,
the dynamic scheduler maps each task to the core furthest behind its
desired rate (dropping tasks that cannot meet their deadline), and we
check how closely the achieved rates track the plan.

Run:  python examples/dynamic_scheduling.py [horizon_seconds] [seed]
"""

import sys

import numpy as np

from repro import generate_trace, simulate_trace, three_stage_assignment
from repro.experiments import PAPER_SET_1, generate_scenario, scaled_down


def main(horizon: float = 60.0, seed: int = 11) -> None:
    scenario = generate_scenario(scaled_down(PAPER_SET_1, 20), seed)
    dc, wl = scenario.datacenter, scenario.workload

    plan = three_stage_assignment(dc, wl, scenario.p_const, psi=50)
    print(f"first step planned reward rate: {plan.reward_rate:.1f}/s")

    rng = np.random.default_rng(seed + 1)
    trace = generate_trace(wl, horizon, rng)
    print(f"replaying {len(trace)} tasks over {horizon:.0f}s ...")
    metrics = simulate_trace(dc, wl, plan.tc, plan.pstates, trace,
                             duration=horizon)

    print(f"\nachieved reward rate: {metrics.reward_rate:.1f}/s "
          f"({100 * metrics.reward_rate / plan.reward_rate:.1f}% of plan)")
    print(f"tasks completed by deadline: {metrics.completed.sum()}, "
          f"dropped: {metrics.dropped.sum()} "
          "(drops are expected: the room is oversubscribed by design)")
    print("\nper-type drop fraction vs planned service fraction:")
    planned_service = plan.tc.sum(axis=1) / wl.arrival_rates
    for i in range(wl.n_task_types):
        print(f"  type {i}: planned service {planned_service[i]:6.1%}   "
              f"dropped {metrics.drop_fraction[i]:6.1%}   "
              f"reward r={wl.rewards[i]:.2f}")
    ratios = metrics.rate_ratios()
    print(f"\nATC/TC tracking over {ratios.size} (type, core) pairs: "
          f"mean {ratios.mean():.3f}, p5 {np.percentile(ratios, 5):.3f}, "
          f"p95 {np.percentile(ratios, 95):.3f} (goal: close to 1;"
          "\n  spread comes from Poisson burstiness — the fluid plan has no"
          "\n  queueing slack, so short-deadline types drop under bursts)")
    util = metrics.utilization
    print(f"core utilization: mean {util.mean():.1%}, "
          f"max {util.max():.1%} "
          f"(off cores: {(util == 0).sum()}/{util.size})")


if __name__ == "__main__":
    h = float(sys.argv[1]) if len(sys.argv) > 1 else 60.0
    s = int(sys.argv[2]) if len(sys.argv) > 2 else 11
    main(h, s)
