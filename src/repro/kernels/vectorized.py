"""NumPy-vectorized kernels — the default fast path.

Each primitive is an array program over the precomputed lookup tables
of :mod:`repro.kernels.tables`.  The implementations are written to
match :mod:`repro.kernels.reference` *bit-for-bit* wherever the scalar
code's accumulation order can be reproduced (table gathers, ``bincount``
/ ``reduceat`` segment sums, the breakpoint fill's sequential budget
subtraction), and within ``repro.units.approx_eq`` elsewhere (batched
GEMM steady states, whose BLAS summation order differs from a per-row
matvec).  ``docs/KERNELS.md`` records the op-by-op guarantees;
``tests/kernels/`` enforces them.

Inputs are validated by the public call sites before dispatch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.kernels.tables import CachedCoP, core_power_table

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.arr import AggregateRewardRate
    from repro.datacenter.builder import DataCenter
    from repro.power.cop import CoPModel
    from repro.thermal.heatflow import HeatFlowModel

__all__ = ["node_power_kw", "node_power_batch", "steady_state_batch",
           "convert_power_to_pstates", "assemble_segments",
           "distribute_node_power", "wrap_cop"]


# ----------------------------------------------------------------------
# power evaluation (Eq. 1 / Eq. 23)

def node_power_kw(datacenter: "DataCenter",
                  core_pstates: np.ndarray) -> np.ndarray:
    """Eq. 1 via one table gather + ``bincount`` segment sum.

    ``bincount`` accumulates each node's cores in index order — the same
    sequential sum the reference loop performs — so the result is
    bit-identical to the oracle.
    """
    tab = core_power_table(datacenter)
    core_power = tab.power[datacenter.core_type, core_pstates]
    sums = np.bincount(datacenter.core_node, weights=core_power,
                       minlength=datacenter.n_nodes)
    return datacenter.node_base_power + sums


def node_power_batch(datacenter: "DataCenter",
                     core_pstates: np.ndarray) -> np.ndarray:
    """Eq. 1 for a whole ``(B, n_cores)`` batch in two array ops.

    One ``bincount`` over a flattened ``(row, node)`` composite index
    accumulates each row's cores in index order — the same sequential
    sum as :func:`node_power_kw` on that row (``reduceat`` would not:
    its 2-D accumulation order differs by an ulp), so each row is
    bit-identical to the oracle.
    """
    tab = core_power_table(datacenter)
    core_power = tab.power[datacenter.core_type, core_pstates]
    n_rows, n_nodes = core_power.shape[0], datacenter.n_nodes
    flat_node = (np.arange(n_rows)[:, None] * n_nodes
                 + datacenter.core_node[None, :]).ravel()
    sums = np.bincount(flat_node, weights=core_power.ravel(),
                       minlength=n_rows * n_nodes).reshape(n_rows, n_nodes)
    return datacenter.node_base_power[None, :] + sums


# ----------------------------------------------------------------------
# steady-state heat flow (Eqs. 4-5)

def steady_state_batch(model: "HeatFlowModel", t_crac_out: np.ndarray,
                       node_power_kw: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All rows at once through the model's factored affine map.

    The ``(I - A_MM)`` system is factored once per room topology inside
    :class:`~repro.thermal.heatflow.HeatFlowModel`; evaluating a batch
    is then two GEMMs against the affine pieces on the dense backend,
    or multi-right-hand-side triangular solves against the cached
    ``splu`` factorization on the sparse one
    (:meth:`~repro.thermal.heatflow.HeatFlowModel.batch_inlet` — the
    dense expression is unchanged bit-for-bit).  Agrees with the
    per-row reference within float tolerance (BLAS accumulation order).
    """
    n_crac = model.n_crac
    t_in = model.batch_inlet(t_crac_out, node_power_kw)
    t_out = np.empty_like(t_in)
    t_out[:, :n_crac] = t_crac_out
    t_out[:, n_crac:] = t_in[:, n_crac:] \
        + model.node_heat_coeff[None, :] * node_power_kw
    heat = np.maximum(
        model.crac_capacity[None, :]
        * (t_in[:, :n_crac] - t_out[:, :n_crac]),
        0.0)
    return t_in, t_out, heat


# ----------------------------------------------------------------------
# stage 2: integer P-state conversion (Section V.B.3)

def convert_power_to_pstates(datacenter: "DataCenter",
                             core_power_kw: np.ndarray,
                             node_power_budget_kw: np.ndarray) -> np.ndarray:
    """Vectorized round-up, with the trim loop run only where needed.

    Step 1 (round up): per type, count ladder entries with power
    ``>= target - 1e-12``; the ladder is strictly decreasing, so the
    satisfying entries are a prefix and ``count - 1`` is the highest
    (weakest) satisfying index — exactly the reference's
    ``_round_up_pstate``, including its clamps.

    Step 2 (trim): almost no node needs trimming (stage 1 lands cores on
    ladder powers), so nodes are screened with a vectorized segment sum
    and the exact reference while-loop runs only on the screened few.
    The screen keeps a ``1e-7`` safety margin below the reference's
    ``1e-9`` tolerance — far wider than the worst-case difference
    between ``reduceat``'s sequential and ``np.sum``'s pairwise
    accumulation — so no node the reference would trim escapes, and
    false positives are no-ops.  Output is bit-identical to the oracle.
    """
    tab = core_power_table(datacenter)
    core_type = datacenter.core_type
    pstates = np.empty(datacenter.n_cores, dtype=int)
    for t in range(len(datacenter.node_types)):
        mask = core_type == t
        if not mask.any():
            continue
        eta = int(tab.n_pstates[t])
        ladder = tab.power[t, :eta]
        targets = core_power_kw[mask]
        counts = (ladder[None, :] >= targets[:, None] - 1e-12).sum(axis=1)
        pstates[mask] = np.where(
            targets <= 0.0, eta - 1,
            np.where(counts == 0, 0, counts - 1))

    core_budget = node_power_budget_kw - datacenter.node_base_power
    core_vals = tab.power[core_type, pstates]
    sums = np.add.reduceat(core_vals, tab.node_first_core)
    for j in np.nonzero(sums > core_budget + 1e-9 - 1e-7)[0]:
        node = datacenter.nodes[j]
        table = np.asarray(node.spec.pstate_power_kw)
        first = int(tab.node_first_core[j])
        local = pstates[first:first + node.n_cores]
        budget = core_budget[j]
        while table[local].sum() > budget + 1e-9:
            worst = int(np.argmin(local))
            if local[worst] >= node.spec.off_pstate:
                break
            local[worst] += 1
    return pstates


# ----------------------------------------------------------------------
# stage 1: LP assembly and breakpoint fill

def assemble_segments(datacenter: "DataCenter",
                      arrs: "list[AggregateRewardRate]"
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-type segment arrays repeated over nodes — no per-segment loop.

    Capacities multiply the same IEEE doubles the reference multiplies
    (segment length × core count), so all three outputs are
    bit-identical to the oracle.
    """
    tab = core_power_table(datacenter)
    type_index = datacenter.node_type_index
    lengths_by_type = []
    slopes_by_type = []
    for arr in arrs:
        lengths, slps = arr.segments_decreasing_slope()
        lengths_by_type.append(lengths)
        slopes_by_type.append(slps)
    seg_counts = np.asarray([len(ln) for ln in lengths_by_type], dtype=int)
    counts = seg_counts[type_index]
    node_of_var = np.repeat(np.arange(datacenter.n_nodes), counts)
    caps = np.concatenate([lengths_by_type[t] for t in type_index]) \
        * np.repeat(tab.node_n_cores, counts)
    slopes = np.concatenate([slopes_by_type[t] for t in type_index])
    return node_of_var, caps, slopes


def distribute_node_power(datacenter: "DataCenter",
                          arrs: "list[AggregateRewardRate]",
                          node_core_power: np.ndarray) -> np.ndarray:
    """All nodes of a type walk the hull breakpoints together.

    Nodes of one type share the hull, so the reference's per-node
    breakpoint walk becomes one masked elementwise pass per level: nodes
    that can afford the full level subtract the same ``full_cost`` the
    scalar loop subtracts (same operands, same order per node), nodes
    that cannot record their final ``(level, k, partial)`` triple with
    the same floor-divide arithmetic.  Per-core powers are then one
    gather + two ``where``s.  Bit-identical to the oracle.
    """
    tab = core_power_table(datacenter)
    type_index = datacenter.node_type_index
    core_power = np.zeros(datacenter.n_cores)
    for t, arr in enumerate(arrs):
        nodes_t = np.nonzero(type_index == t)[0]
        if nodes_t.size == 0:
            continue
        n = int(tab.node_n_cores[nodes_t[0]])
        hull_x = arr.concave.x
        budgets = np.asarray(node_core_power, dtype=float)[nodes_t].copy()
        k_nodes = nodes_t.size
        active = budgets > 0.0
        base = np.zeros(k_nodes)
        nxt = np.zeros(k_nodes)
        kk = np.zeros(k_nodes, dtype=int)
        partial = np.zeros(k_nodes)
        level = 0.0
        for bp in hull_x[1:]:
            step = bp - level
            full_cost = n * step
            take = active & (budgets >= full_cost - 1e-12)
            fin = active & ~take
            if fin.any():
                quot = np.floor_divide(budgets[fin], step)
                kk[fin] = quot.astype(int)
                base[fin] = level
                nxt[fin] = bp
                partial[fin] = level + (budgets[fin] - quot * step)
            budgets[take] -= full_cost
            active = take
            level = bp
        if active.any():
            # nodes that afforded every level run flat at the hull top
            base[active] = level
            kk[active] = 0
            partial[active] = level
        pos = np.tile(np.arange(n), k_nodes)
        rep = np.repeat(np.arange(k_nodes), n)
        vals = np.where(pos < kk[rep], nxt[rep],
                        np.where(pos == kk[rep], partial[rep], base[rep]))
        cores = (tab.node_first_core[nodes_t][:, None]
                 + np.arange(n)[None, :]).ravel()
        core_power[cores] = vals
    return core_power


# ----------------------------------------------------------------------
# CRAC efficiency

def wrap_cop(cop_model: "CoPModel") -> "Callable[[np.ndarray], np.ndarray]":
    """Vectorized strategy: memoized lookup keyed on the exact input."""
    return CachedCoP(cop_model)
