"""Tests for repro.experiments.control — the MPC-vs-interval sweep."""

import json

import pytest

from repro.experiments.control import (CONTROLLERS, ControlConfig,
                                       ControlPoint, control_table,
                                       run_control_point, sweep_control)

#: Small enough to keep the whole module interactive; the flash crowd
#: and the factor-1 fault draw still exercise both escalation paths.
CONFIG = ControlConfig(n_nodes=6, seed=1, horizon_s=120.0, epoch_s=30.0,
                       burst_start_s=30.0, burst_duration_s=60.0)


def _canonical(points) -> str:
    """The byte representation the CI jobs-diff compares."""
    return json.dumps([p.to_dict() for p in points], sort_keys=True)


class TestRunControlPoint:
    def test_point_is_byte_deterministic(self):
        a = run_control_point(CONFIG, "mpc", 1.0)
        b = run_control_point(CONFIG, "mpc", 1.0)
        assert a.to_dict() == b.to_dict()

    def test_no_wall_clock_fields(self):
        point = run_control_point(CONFIG, "interval", 0.0)
        doc = point.to_dict()
        assert not any("wall" in k or "replan_s" in k for k in doc)

    def test_factor_zero_uses_empty_schedule(self):
        point = run_control_point(CONFIG, "interval", 0.0)
        assert point.n_fault_events == 0
        assert point.sheds == 0

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            run_control_point(CONFIG, "mpc", -1.0)

    def test_unknown_controller_rejected(self):
        with pytest.raises(ValueError, match="controller"):
            run_control_point(CONFIG, "pid", 0.0)

    def test_round_trips_through_dict(self):
        point = run_control_point(CONFIG, "interval", 1.0)
        again = ControlPoint.from_dict(point.to_dict())
        assert again.to_dict() == point.to_dict()


class TestSweepControl:
    def test_jobs_byte_identical(self):
        """The CI gate: worker processes recompute the exact bytes."""
        serial = sweep_control(CONFIG, [1.0], jobs=1)
        parallel = sweep_control(CONFIG, [1.0], jobs=2)
        assert _canonical(serial) == _canonical(parallel)

    def test_arm_order_controller_major(self):
        points = sweep_control(CONFIG, [1.0], jobs=1)
        assert [(p.controller, p.factor) for p in points] == \
            [(c, f) for c in CONTROLLERS for f in (0.0, 1.0)]

    def test_retained_relative_to_own_controller(self):
        points = sweep_control(CONFIG, [1.0], jobs=1)
        by_arm = {(p.controller, p.factor): p for p in points}
        for ctrl in CONTROLLERS:
            base = by_arm[(ctrl, 0.0)]
            assert base.reward_retained == pytest.approx(1.0)
            assert by_arm[(ctrl, 1.0)].reward_retained == pytest.approx(
                by_arm[(ctrl, 1.0)].reward_rate / base.reward_rate)

    def test_cache_round_trip(self, tmp_path):
        first = sweep_control(CONFIG, [1.0], jobs=1,
                              cache_dir=str(tmp_path))
        resumed = sweep_control(CONFIG, [1.0], jobs=1,
                                cache_dir=str(tmp_path), resume=True)
        assert _canonical(first) == _canonical(resumed)

    def test_cache_keyed_on_controller(self, tmp_path):
        """An interval point must never satisfy an MPC cache lookup."""
        sweep_control(CONFIG, [], controllers=("interval",), jobs=1,
                      cache_dir=str(tmp_path))
        points = sweep_control(CONFIG, [], controllers=("mpc",), jobs=1,
                               cache_dir=str(tmp_path), resume=True)
        assert all(p.controller == "mpc" for p in points)

    def test_single_controller_subset(self):
        points = sweep_control(CONFIG, [], controllers=("mpc",), jobs=1)
        assert [(p.controller, p.factor) for p in points] == [("mpc", 0.0)]


class TestControlTable:
    def test_table_lists_every_arm(self):
        points = [
            ControlPoint(controller="interval", factor=0.0,
                         n_fault_events=0, reward_rate=100.0,
                         violation_minutes=0.0, tasks_lost=0, n_replans=0,
                         precools=0, derates=0, sheds=0,
                         reward_retained=1.0),
            ControlPoint(controller="mpc", factor=1.0, n_fault_events=3,
                         reward_rate=90.0, violation_minutes=0.5,
                         tasks_lost=2, n_replans=4, precools=2, derates=1,
                         sheds=0, reward_retained=float("nan")),
        ]
        table = control_table(points)
        lines = table.splitlines()
        assert len(lines) == 3
        assert "interval" in lines[1] and "100.0" in lines[1]
        assert "mpc" in lines[2] and "---" in lines[2]
