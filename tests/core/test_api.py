"""Tests for repro.core.api — the unified solver entry point."""

import pytest

from repro.core.api import (BestPsiOutcome, SolveOptions, SolveOutcome,
                            SolveRequest, available_methods, solve)


@pytest.fixture(scope="module")
def request_for(scenario):
    return SolveRequest(scenario.datacenter, scenario.workload,
                        scenario.p_const)


class TestOptions:
    def test_defaults(self):
        opt = SolveOptions()
        assert opt.psi == 50.0 and opt.psis == (25.0, 50.0)
        assert opt.search == "fast"

    def test_bad_search_rejected(self):
        with pytest.raises(ValueError, match="search mode"):
            SolveOptions(search="bogus")

    def test_empty_psis_rejected(self):
        with pytest.raises(ValueError, match="psi"):
            SolveOptions(psis=())

    def test_with_options(self, request_for):
        changed = request_for.with_options(psi=25.0, search="full")
        assert changed.options.psi == 25.0
        assert changed.options.search == "full"
        assert request_for.options.psi == 50.0   # original untouched
        assert changed.datacenter is request_for.datacenter


class TestSolveDispatch:
    def test_methods_listed(self):
        assert set(available_methods()) \
            == {"three_stage", "best_psi", "baseline", "exact"}

    def test_unknown_method_rejected(self, request_for):
        with pytest.raises(ValueError, match="unknown solve method"):
            solve(request_for, method="simulated-annealing")

    @pytest.mark.parametrize("method", ["three_stage", "best_psi",
                                        "baseline"])
    def test_outcome_protocol(self, request_for, scenario, method):
        outcome = solve(request_for, method=method)
        assert isinstance(outcome, SolveOutcome)
        assert outcome.reward_rate > 0
        outcome.verify(scenario.datacenter, scenario.p_const)
        data = outcome.to_dict()
        assert data["reward_rate"] == pytest.approx(outcome.reward_rate)

    def test_three_stage_matches_legacy(self, request_for, scenario,
                                        assignment):
        outcome = solve(request_for, method="three_stage")
        assert outcome.reward_rate == pytest.approx(assignment.reward_rate)

    def test_baseline_matches_legacy(self, request_for, baseline):
        outcome = solve(request_for, method="baseline")
        assert outcome.reward_rate == pytest.approx(baseline.reward_rate)
        assert outcome.search is not None    # trace attached by the API

    def test_best_psi_outcome(self, request_for, scenario):
        outcome = solve(request_for, method="best_psi")
        assert isinstance(outcome, BestPsiOutcome)
        assert set(outcome.by_psi) == {25.0, 50.0}
        assert outcome.reward_rate \
            == max(outcome.reward_by_psi.values())
        assert outcome.to_dict()["method"] == "best_psi"


class TestDeprecationShims:
    def test_three_stage_positional_psi_warns(self, scenario):
        from repro.core import three_stage_assignment

        with pytest.warns(DeprecationWarning, match="psi"):
            res = three_stage_assignment(
                scenario.datacenter, scenario.workload, scenario.p_const,
                50.0)
        assert res.psi == 50.0

    def test_best_psi_positional_psis_warns(self, scenario):
        from repro.core import best_psi_assignment

        with pytest.warns(DeprecationWarning, match="psis"):
            _, results = best_psi_assignment(
                scenario.datacenter, scenario.workload, scenario.p_const,
                (50.0,))
        assert list(results) == [50.0]

    def test_solve_stage1_legacy_order_warns(self, scenario):
        from repro.core import solve_stage1

        with pytest.warns(DeprecationWarning, match="positionally"):
            legacy, _ = solve_stage1(scenario.datacenter, scenario.workload,
                                     50.0, scenario.p_const)
        modern, _ = solve_stage1(scenario.datacenter, scenario.workload,
                                 p_const=scenario.p_const, psi=50.0)
        assert legacy.objective == pytest.approx(modern.objective)

    def test_solve_stage1_missing_p_const_rejected(self, scenario):
        from repro.core import solve_stage1

        with pytest.raises(TypeError, match="p_const"):
            solve_stage1(scenario.datacenter, scenario.workload)

    def test_solve_stage1_duplicate_p_const_rejected(self, scenario):
        from repro.core import solve_stage1

        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="p_const"):
                solve_stage1(scenario.datacenter, scenario.workload,
                             50.0, 10.0, p_const=10.0)

    def test_too_many_positionals_rejected(self, scenario):
        from repro.core import three_stage_assignment

        with pytest.raises(TypeError, match="positional"):
            three_stage_assignment(scenario.datacenter, scenario.workload,
                                   scenario.p_const, 50.0, "fast")
