"""Shared metaheuristic machinery: candidates, repair, scoring.

Both metaheuristic backends (:mod:`repro.solvers.annealing`,
:mod:`repro.solvers.evolution`) search the same joint space — a
discretized CRAC outlet vector plus a per-core integer P-state vector —
and share one evaluator:

* **Repair** (:meth:`CandidateEvaluator.repair`): a candidate violating
  the power cap or a redline is weakened deterministically — the
  strongest core on the most-implicated node steps one P-state toward
  off — until both constraints hold.  Each step strictly reduces some
  node's power (P-state tables are strictly decreasing), so the loop
  terminates; feasibility checks use the exact same functions and
  tolerances as :meth:`~repro.core.assignment.AssignmentResult.verify`,
  so a repaired candidate passes verification by construction.
* **Scoring** (:meth:`CandidateEvaluator.evaluate`): the Stage 3 LP
  reward (:func:`repro.core.stage3.solve_stage3`) at the repaired
  P-states.  The LP depends on the P-states only through the
  (node type, P-state) class histogram, so rewards are memoized per
  histogram — a mutation that permutes cores within a class costs a
  dict lookup, not an LP solve.

Budgets are counted in **evaluations** (one repaired-and-scored
candidate), never wall-clock seconds, so a backend's output is a pure
function of ``(request, seed, max_evals)`` — bit-identical across
processes, ``--jobs`` values and machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.stage3 import Stage3Solution, solve_stage3
from repro.datacenter.builder import DataCenter
from repro.datacenter.power import PowerBreakdown, total_power
from repro.kernels.tables import core_power_table
from repro.workload.tasktypes import Workload

__all__ = ["Candidate", "CandidateEvaluator", "MetaheuristicOutcome",
           "seed_candidates", "mutate"]

#: Reward assigned to candidates that stay infeasible after repair
#: (possible when the outlet choice alone breaks a constraint).  Any
#: feasible candidate scores >= 0, so these are never selected over one.
INFEASIBLE_REWARD = -1.0

#: Soft cap on memoized Stage 3 rewards; eviction affects speed only.
_REWARD_CACHE_LIMIT = 65536


@dataclass
class Candidate:
    """One point of the joint search space.

    Attributes
    ----------
    outlet_idx:
        Per-CRAC index into the evaluator's outlet grid.
    pstates:
        Per-core integer P-state vector.
    reward:
        Stage 3 reward filled in by
        :meth:`CandidateEvaluator.evaluate`.
    """

    outlet_idx: np.ndarray
    pstates: np.ndarray
    reward: float = float("-inf")

    def copy(self) -> "Candidate":
        return Candidate(outlet_idx=self.outlet_idx.copy(),
                         pstates=self.pstates.copy())

    def key(self) -> bytes:
        """Deterministic tie-break key (content bytes)."""
        return self.outlet_idx.tobytes() + self.pstates.tobytes()


class CandidateEvaluator:
    """Repairs and scores candidates for one ``(room, workload, cap)``.

    Parameters
    ----------
    outlet_levels:
        Grid resolution per CRAC: level 0 is the CRAC's lowest admissible
        outlet temperature, level ``outlet_levels - 1`` its highest.
    tol:
        Constraint tolerance — identical to the ``verify`` default so a
        repaired candidate always verifies.
    """

    def __init__(self, datacenter: DataCenter, workload: Workload,
                 p_const: float, *, outlet_levels: int = 8,
                 tol: float = 1e-6):
        if outlet_levels < 2:
            raise ValueError("need at least 2 outlet levels")
        self.datacenter = datacenter
        self.workload = workload
        self.p_const = float(p_const)
        self.tol = float(tol)
        self.model = datacenter.require_thermal()
        self.redline = datacenter.redline_c
        self.off = datacenter.all_off_pstates()
        self.n_cores = datacenter.n_cores
        self.n_crac = datacenter.n_crac
        lows = np.asarray([c.outlet_range_c[0] for c in datacenter.cracs])
        highs = np.asarray([c.outlet_range_c[1] for c in datacenter.cracs])
        #: shape ``(outlet_levels, n_crac)``.
        self.outlet_grid = np.linspace(lows, highs, outlet_levels)
        self.outlet_levels = int(outlet_levels)
        self.evaluations = 0
        self._eta = workload.n_pstates
        self._n_types = len(datacenter.node_types)
        self._reward_cache: dict[bytes, float] = {}
        table = core_power_table(datacenter)
        self._core_power = table.power
        self._core_node = datacenter.core_node
        self._core_type = datacenter.core_type

    # ------------------------------------------------------------------
    def outlets(self, outlet_idx: np.ndarray) -> np.ndarray:
        """Outlet temperature vector for a grid-index vector."""
        return self.outlet_grid[outlet_idx, np.arange(self.n_crac)]

    def _cap_limit(self) -> float:
        return self.p_const + self.tol * max(1.0, self.p_const)

    def is_feasible(self, cand: Candidate) -> bool:
        """Both constraints at the candidate (same math as ``verify``)."""
        t_vec = self.outlets(cand.outlet_idx)
        node_power = self.datacenter.node_power_kw(cand.pstates)
        margin = self.model.redline_margin(t_vec, node_power, self.redline)
        if margin.min() < -self.tol:
            return False
        breakdown = total_power(self.datacenter, t_vec, node_power)
        return breakdown.total <= self._cap_limit()

    # ------------------------------------------------------------------
    def repair(self, cand: Candidate) -> None:
        """Weaken ``cand`` in place until the cap and redlines hold.

        Each pass measures the most-violating constraint, prices every
        still-reducible core's one-step power drop from the P-state LUT
        (weighted by the worst unit's inlet gain for a redline, raw kW
        for the cap), and weakens just enough cores — largest effect
        first, cumulative sum against the exact deficit — in one
        vectorized sweep.  The steady state is affine in node power, so
        the thermal estimate is exact up to step granularity and the
        loop converges in a handful of passes.  Deterministic: ties
        break by core index (stable sort).  If nothing is reducible the
        loop stops — the all-off point is the weakest reachable state.
        """
        np.clip(cand.pstates, 0, self.off, out=cand.pstates)
        t_vec = self.outlets(cand.outlet_idx)
        dc = self.datacenter
        ct = self._core_type
        while True:
            node_power = dc.node_power_kw(cand.pstates)
            margin = self.model.redline_margin(t_vec, node_power,
                                               self.redline)
            breakdown = total_power(dc, t_vec, node_power)
            thermal_bad = margin.min() < -self.tol
            power_bad = breakdown.total > self._cap_limit()
            if not thermal_bad and not power_bad:
                return
            live = cand.pstates < self.off
            next_ps = np.minimum(cand.pstates + 1, self.off)
            step_kw = np.where(
                live,
                self._core_power[ct, cand.pstates]
                - self._core_power[ct, next_ps], 0.0)
            if thermal_bad:
                worst = int(margin.argmin())
                need = float(-margin[worst])
                weight = (self.model.inlet_gain[worst][self._core_node]
                          * step_kw)
            else:
                need = float(breakdown.total - self._cap_limit())
                weight = step_kw
            order = np.argsort(-weight, kind="stable")
            order = order[weight[order] > 0.0]
            if order.size == 0:
                return
            cum = np.cumsum(weight[order])
            k = min(int(np.searchsorted(cum, need)) + 1, order.size)
            cand.pstates[order[:k]] += 1

    # ------------------------------------------------------------------
    def _class_histogram_key(self, pstates: np.ndarray) -> bytes:
        class_id = self.datacenter.core_type * self._eta + pstates
        counts = np.bincount(class_id,
                             minlength=self._n_types * self._eta)
        return counts.astype(np.int64).tobytes()

    def evaluate(self, cand: Candidate) -> float:
        """Repair, score and stamp ``cand.reward``; counts one eval."""
        self.repair(cand)
        self.evaluations += 1
        if not self.is_feasible(cand):
            cand.reward = INFEASIBLE_REWARD
            return cand.reward
        key = self._class_histogram_key(cand.pstates)
        reward = self._reward_cache.get(key)
        if reward is None:
            reward = solve_stage3(self.datacenter, self.workload,
                                  cand.pstates).reward_rate
            if len(self._reward_cache) > _REWARD_CACHE_LIMIT:
                self._reward_cache.clear()
            self._reward_cache[key] = reward
        cand.reward = float(reward)
        return cand.reward

    def finish(self, cand: Candidate) -> Stage3Solution:
        """Full Stage 3 solution (with ``tc``) for the chosen candidate."""
        return solve_stage3(self.datacenter, self.workload, cand.pstates)


def seed_candidates(evaluator: CandidateEvaluator) -> list[Candidate]:
    """Deterministic constructive starting points (not yet evaluated).

    The full uniform grid — every outlet level crossed with every
    uniform P-state fill (clipped per core to its off state).  The
    repair loop turns each into a feasible candidate, so both searches
    start from the best constructive operating point and spend the rest
    of the budget refining the P-state *mix* around it.
    """
    ev = evaluator
    return [
        Candidate(outlet_idx=np.full(ev.n_crac, level, dtype=int),
                  pstates=np.minimum(
                      np.full(ev.n_cores, fill, dtype=int), ev.off))
        for level in range(ev.outlet_levels)
        for fill in range(int(ev.off.max()) + 1)
    ]


def mutate(cand: Candidate, evaluator: CandidateEvaluator,
           rng: np.random.Generator) -> Candidate:
    """One random neighborhood move (returns a new candidate).

    Moves: nudge one core's P-state by one step, re-draw one core's
    P-state uniformly, or nudge one CRAC's outlet level by one grid
    step.  All randomness comes from ``rng``.
    """
    ev = evaluator
    new = cand.copy()
    kind = int(rng.integers(3))
    if kind == 0:
        core = int(rng.integers(ev.n_cores))
        step = -1 if rng.random() < 0.5 else 1
        new.pstates[core] = int(np.clip(new.pstates[core] + step, 0,
                                        ev.off[core]))
    elif kind == 1:
        core = int(rng.integers(ev.n_cores))
        new.pstates[core] = int(rng.integers(ev.off[core] + 1))
    else:
        crac = int(rng.integers(ev.n_crac))
        step = -1 if rng.random() < 0.5 else 1
        new.outlet_idx[crac] = int(np.clip(new.outlet_idx[crac] + step, 0,
                                           ev.outlet_levels - 1))
    return new


@dataclass
class MetaheuristicOutcome:
    """Result of a metaheuristic backend (``SolveOutcome`` protocol).

    Attributes
    ----------
    method:
        Backend name (``"annealing"`` / ``"evolution"``).
    t_crac_out / pstates / tc:
        The committed operating point — same trio as
        :class:`~repro.core.assignment.AssignmentResult`, so the DES
        second step and the controllers consume it unchanged.
    reward_rate:
        Stage 3 reward at ``pstates`` (the Figure 6 metric).
    evaluations:
        Candidates repaired-and-scored within the budget.
    seed:
        RNG seed the search ran under.
    """

    method: str
    t_crac_out: np.ndarray
    pstates: np.ndarray
    tc: np.ndarray
    reward_rate: float
    evaluations: int
    seed: int
    stage3: Stage3Solution = field(repr=False, default=None)  # type: ignore[assignment]

    def power(self, datacenter: DataCenter) -> PowerBreakdown:
        """Exact total power at this assignment."""
        return total_power(datacenter, self.t_crac_out,
                           datacenter.node_power_kw(self.pstates))

    def verify(self, datacenter: DataCenter, p_const: float,
               tol: float = 1e-6) -> None:
        """Assert the power cap and redlines hold (raises on violation)."""
        model = datacenter.require_thermal()
        node_power = datacenter.node_power_kw(self.pstates)
        margin = model.redline_margin(self.t_crac_out, node_power,
                                      datacenter.redline_c)
        if margin.min() < -tol:
            raise AssertionError(
                f"redline violated by {-margin.min():.4f} C at unit "
                f"{int(margin.argmin())}")
        breakdown = total_power(datacenter, self.t_crac_out, node_power)
        if breakdown.total > p_const + tol * max(1.0, p_const):
            raise AssertionError(
                f"power cap violated: {breakdown.total:.3f} kW > "
                f"{p_const:.3f} kW")

    def to_dict(self) -> dict:
        """JSON-friendly summary (the ``SolveOutcome`` protocol)."""
        return {
            "method": self.method,
            "reward_rate": self.reward_rate,
            "t_crac_out": self.t_crac_out.tolist(),
            "pstates": self.pstates.tolist(),
            "evaluations": self.evaluations,
            "seed": self.seed,
        }


def outcome_from_best(method: str, evaluator: CandidateEvaluator,
                      best: Candidate, seed: int) -> MetaheuristicOutcome:
    """Package the incumbent into a :class:`MetaheuristicOutcome`."""
    stage3 = evaluator.finish(best)
    return MetaheuristicOutcome(
        method=method,
        t_crac_out=evaluator.outlets(best.outlet_idx),
        pstates=best.pstates.copy(),
        tc=stage3.tc,
        reward_rate=stage3.reward_rate,
        evaluations=evaluator.evaluations,
        seed=int(seed),
        stage3=stage3,
    )
