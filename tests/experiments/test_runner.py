"""Tests for repro.experiments.runner — comparison runs and CIs."""

import numpy as np
import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.generator import generate_scenario
from repro.experiments.runner import (DegenerateBaselineError, RunResult,
                                      confidence_interval, run_comparison,
                                      run_simulation_set)

SMALL = ScenarioConfig(name="tiny", n_nodes=15, n_crac=3)


class TestConfidenceInterval:
    def test_known_values(self):
        # n=4, mean 2.5, sd 1.2909..., t(0.975, 3) = 3.1824
        ci = confidence_interval(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert ci.mean == pytest.approx(2.5)
        sem = np.std([1, 2, 3, 4], ddof=1) / 2.0
        assert ci.half_width == pytest.approx(3.1824 * sem, rel=1e-3)

    def test_bounds(self):
        ci = confidence_interval(np.asarray([1.0, 2.0, 3.0]))
        assert ci.low == pytest.approx(ci.mean - ci.half_width)
        assert ci.high == pytest.approx(ci.mean + ci.half_width)

    def test_zero_variance(self):
        ci = confidence_interval(np.asarray([5.0, 5.0, 5.0]))
        assert ci.mean == 5.0
        assert ci.half_width == 0.0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match="two samples"):
            confidence_interval(np.asarray([1.0]))

    def test_wider_level_wider_interval(self):
        data = np.asarray([1.0, 2.0, 3.0, 4.0, 5.0])
        assert confidence_interval(data, 0.99).half_width \
            > confidence_interval(data, 0.95).half_width


class TestRunResult:
    def make(self, rewards, base):
        return RunResult(seed=0, reward_by_psi=rewards,
                         baseline_reward=base, p_const=10.0)

    def test_improvement_pct(self):
        r = self.make({25.0: 110.0, 50.0: 105.0}, 100.0)
        assert r.improvement_pct(25.0) == pytest.approx(10.0)
        assert r.improvement_pct(None) == pytest.approx(10.0)
        assert r.best_reward == 110.0

    def test_negative_improvement_possible(self):
        r = self.make({50.0: 90.0}, 100.0)
        assert r.improvement_pct(50.0) == pytest.approx(-10.0)

    def test_zero_baseline_rejected(self):
        r = self.make({50.0: 90.0}, 0.0)
        assert r.is_degenerate
        with pytest.raises(ValueError, match="seed 0") as excinfo:
            r.improvement_pct(None)
        assert isinstance(excinfo.value, DegenerateBaselineError)
        assert excinfo.value.seed == 0
        assert excinfo.value.p_const == pytest.approx(10.0)

    def test_round_trip_dict(self):
        r = self.make({25.0: 110.0, 50.0: 105.0}, 100.0)
        assert RunResult.from_dict(r.to_dict()) == r


class TestRunComparison:
    def test_one_run(self):
        scenario = generate_scenario(SMALL, 7)
        result = run_comparison(scenario)
        assert set(result.reward_by_psi) == {25.0, 50.0}
        assert result.baseline_reward > 0
        assert np.isfinite(result.improvement_pct(None))

    def test_deterministic_given_seed(self):
        r1 = run_comparison(generate_scenario(SMALL, 11))
        r2 = run_comparison(generate_scenario(SMALL, 11))
        assert r1.reward_by_psi == r2.reward_by_psi
        assert r1.baseline_reward == r2.baseline_reward


class TestRunSet:
    def test_aggregation(self):
        res = run_simulation_set(SMALL, n_runs=3, base_seed=50)
        assert len(res.runs) == 3
        assert set(res.improvements) == {"psi=25", "psi=50", "best"}
        for label, samples in res.improvements.items():
            assert samples.shape == (3,)
            ci = res.intervals[label]
            assert ci.mean == pytest.approx(samples.mean())

    def test_best_dominates_each_psi(self):
        res = run_simulation_set(SMALL, n_runs=3, base_seed=60)
        best = res.improvements["best"]
        assert np.all(best >= res.improvements["psi=25"] - 1e-9)
        assert np.all(best >= res.improvements["psi=50"] - 1e-9)

    def test_needs_two_runs(self):
        with pytest.raises(ValueError, match="two runs"):
            run_simulation_set(SMALL, n_runs=1)
