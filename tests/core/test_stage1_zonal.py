"""Tests for repro.core.stage1_zonal — zonal Stage 1 decomposition.

The decomposition must (a) return plans that are feasible for the
*monolithic* thermal model, (b) match the monolithic LP optimum on the
fig6-style rooms the golden suite pins, and (c) replay in O(1) when
only arrival rates change (the 100x serve-loop contract).
"""

import numpy as np
import pytest

from repro.core.stage1 import build_arr_functions, solve_stage1_fixed_temps
from repro.core.stage1_zonal import ZonalState, solve_stage1_zonal
from repro.datacenter import build_datacenter
from repro.datacenter.power import total_power
from repro.experiments.config import PAPER_SET_1, scaled_down
from repro.experiments.generator import generate_scenario
from repro.optimize.linprog import InfeasibleError
from repro.thermal import attach_zonal_thermal
from repro.thermal.constraints import ThermalLinearization
from repro.workload import generate_workload

from tests.conftest import SEED

#: The monolithic search optimum for the fig6 scenario below — kept
#: fixed so zonal and monolithic are compared at identical outlets.
T_FIXED = np.asarray([18.0, 17.0, 17.0])


@pytest.fixture(scope="module")
def fig6_scenario():
    return generate_scenario(scaled_down(PAPER_SET_1, 30), 1000)


def _monolithic_objective(sc, t):
    arrs = build_arr_functions(sc.datacenter, sc.workload, 50.0)
    lin = ThermalLinearization.build(
        sc.datacenter.require_thermal(), t, sc.datacenter.redline_c,
        sc.datacenter.cracs[0].cop_model)
    sol = solve_stage1_fixed_temps(sc.datacenter, arrs, lin, sc.p_const)
    assert sol is not None
    return sol.objective


class TestAgainstMonolithic:
    def test_matches_monolithic_lp_on_fig6_room(self, fig6_scenario):
        """Dense-alpha (worst-case coupling): the coordination master LP
        must recover the exact monolithic optimum."""
        sc = fig6_scenario
        want = _monolithic_objective(sc, T_FIXED)
        result, _ = solve_stage1_zonal(
            sc.datacenter, sc.workload, p_const=sc.p_const,
            t_crac_out=T_FIXED)
        assert result.objective == pytest.approx(want, rel=1e-6)
        assert result.repair_scale == pytest.approx(1.0)

    def test_plan_feasible_for_full_model(self, fig6_scenario):
        sc = fig6_scenario
        model = sc.datacenter.require_thermal()
        result, _ = solve_stage1_zonal(
            sc.datacenter, sc.workload, p_const=sc.p_const,
            t_crac_out=T_FIXED)
        assert model.is_feasible(T_FIXED, result.node_power_kw,
                                 sc.datacenter.redline_c)
        assert total_power(sc.datacenter, T_FIXED,
                           result.node_power_kw).total \
            <= sc.p_const + 1e-6

    def test_matches_monolithic_on_truly_zonal_room(self):
        """Block-sparse alpha: zone LPs see the whole coupling, so the
        sweeps converge fast and the result is exact as well."""
        rng = np.random.default_rng(5)
        dc = build_datacenter(n_nodes=30, n_crac=3, rng=rng)
        attach_zonal_thermal(dc, backend="sparse")
        workload = generate_workload(dc, np.random.default_rng(6))
        t = np.full(3, 16.0)
        p_off = total_power(dc, t, dc.node_power_kw(
            dc.all_off_pstates())).total
        p_full = total_power(dc, t, dc.node_power_kw(
            dc.all_p0_pstates())).total
        cap = p_off + 0.6 * (p_full - p_off)
        result, _ = solve_stage1_zonal(dc, workload, p_const=cap,
                                       t_crac_out=t)
        arrs = build_arr_functions(dc, workload, 50.0)
        lin = ThermalLinearization.build(
            dc.require_thermal().with_backend("dense"), t, dc.redline_c,
            dc.cracs[0].cop_model)
        mono = solve_stage1_fixed_temps(dc, arrs, lin, cap)
        assert mono is not None
        assert result.objective == pytest.approx(mono.objective, rel=1e-6)
        assert result.sweeps <= 3


class TestWarmReplay:
    def test_identical_inputs_replay_verbatim(self, fig6_scenario):
        from repro import obs

        sc = fig6_scenario
        result, state = solve_stage1_zonal(
            sc.datacenter, sc.workload, p_const=sc.p_const,
            t_crac_out=T_FIXED)
        with obs.capture() as snapshot:
            again, state2 = solve_stage1_zonal(
                sc.datacenter, sc.workload, p_const=sc.p_const,
                t_crac_out=T_FIXED, warm=state)
        assert again is result
        assert state2 is state
        metrics = snapshot()["metrics"]
        assert metrics["stage1.zonal_replays"]["value"] == 1

    def test_rate_only_change_still_replays(self, fig6_scenario):
        """Stage 1 never reads arrival rates — the serve loop's rate
        drift must not invalidate the warm state."""
        from dataclasses import replace

        sc = fig6_scenario
        result, state = solve_stage1_zonal(
            sc.datacenter, sc.workload, p_const=sc.p_const,
            t_crac_out=T_FIXED)
        drifted = replace(
            sc.workload,
            arrival_rates=sc.workload.arrival_rates * 1.7)
        again, _ = solve_stage1_zonal(
            sc.datacenter, drifted, p_const=sc.p_const,
            t_crac_out=T_FIXED, warm=state)
        assert again is result

    def test_cap_change_reuses_structure_but_resolves(self, fig6_scenario):
        sc = fig6_scenario
        result, state = solve_stage1_zonal(
            sc.datacenter, sc.workload, p_const=sc.p_const,
            t_crac_out=T_FIXED)
        blocks = state.blocks
        tighter, state2 = solve_stage1_zonal(
            sc.datacenter, sc.workload, p_const=0.9 * sc.p_const,
            t_crac_out=T_FIXED, warm=state)
        assert tighter is not result
        assert tighter.objective < result.objective
        assert state2 is state
        assert state2.blocks is blocks        # structure caches reused

    def test_fresh_state_built_without_warm(self, fig6_scenario):
        sc = fig6_scenario
        _, state = solve_stage1_zonal(
            sc.datacenter, sc.workload, p_const=sc.p_const,
            t_crac_out=T_FIXED)
        assert isinstance(state, ZonalState)
        assert state.result is not None
        assert state.solve_key is not None


class TestValidationAndInfeasibility:
    def test_wrong_outlet_shape(self, fig6_scenario):
        sc = fig6_scenario
        with pytest.raises(ValueError, match="outlet temperatures"):
            solve_stage1_zonal(sc.datacenter, sc.workload,
                               p_const=sc.p_const,
                               t_crac_out=np.asarray([18.0]))

    def test_cap_below_base_power_infeasible(self, fig6_scenario):
        sc = fig6_scenario
        with pytest.raises(InfeasibleError, match="base power"):
            solve_stage1_zonal(sc.datacenter, sc.workload, p_const=1.0,
                               t_crac_out=T_FIXED)
