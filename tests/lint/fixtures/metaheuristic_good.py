"""Metaheuristic pattern done right: all randomness from a seeded RNG.

The search is a pure function of ``(start, seed, max_evals)`` — the
solver-backend determinism contract — because every draw, including the
acceptance test, flows from the one ``default_rng(seed)`` generator.
"""

import numpy as np


def anneal(evaluate, mutate, start, seed, max_evals):
    rng = np.random.default_rng(seed)
    best = start
    for _ in range(max_evals):
        cand = mutate(best, rng)
        if evaluate(cand) > evaluate(best) or rng.random() < 0.01:
            best = cand
    return best
