"""Tests for repro.core.stage2 — the power -> P-state conversion."""

import numpy as np
import pytest

from repro.core.stage1 import solve_stage1
from repro.core.stage2 import (_round_up_pstate, convert_power_to_pstates,
                               solve_stage2)

TABLE = np.asarray([0.15, 0.10, 0.05, 0.0])  # paper example powers


class TestRoundUp:
    def test_exact_pstate_power_maps_to_itself(self):
        assert _round_up_pstate(TABLE, 0.10) == 1
        assert _round_up_pstate(TABLE, 0.15) == 0

    def test_between_pstates_rounds_up_in_power(self):
        """0.06 W -> P-state 1 (0.10 W), the highest state with >= power."""
        assert _round_up_pstate(TABLE, 0.06) == 1

    def test_zero_power_is_off(self):
        assert _round_up_pstate(TABLE, 0.0) == 3

    def test_tiny_power_rounds_to_lowest_active(self):
        assert _round_up_pstate(TABLE, 0.001) == 2

    def test_above_p0_clamps(self):
        assert _round_up_pstate(TABLE, 0.99) == 0


class TestProcedure:
    def test_stage2_never_exceeds_stage1_node_power(self, scenario):
        sol, _ = solve_stage1(scenario.datacenter, scenario.workload,
                              p_const=scenario.p_const, psi=50.0)
        s2 = solve_stage2(scenario.datacenter, sol)
        assert np.all(s2.node_power_kw <= sol.node_power_kw + 1e-9)

    def test_stage2_stays_close_to_stage1(self, scenario):
        """Breakpoint quantization means the integer assignment loses
        only a sliver of power per node (at most one partial core)."""
        sol, _ = solve_stage1(scenario.datacenter, scenario.workload,
                              p_const=scenario.p_const, psi=50.0)
        s2 = solve_stage2(scenario.datacenter, sol)
        gap = sol.node_power_kw - s2.node_power_kw
        max_core_power = max(t.p0_power_kw
                             for t in scenario.datacenter.node_types)
        assert np.all(gap <= max_core_power + 1e-9)

    def test_valid_pstate_range(self, scenario, assignment):
        dc = scenario.datacenter
        eta = dc.node_types[0].n_pstates
        assert np.all(assignment.pstates >= 0)
        assert np.all(assignment.pstates < eta)

    def test_exact_budget_preserved(self, small_dc):
        """Cores already on P-state powers convert losslessly."""
        dc = small_dc
        pstates = np.ones(dc.n_cores, dtype=int)  # all P1
        node_budget = dc.node_power_kw(pstates)
        core_power = np.empty(dc.n_cores)
        for node in dc.nodes:
            core_power[list(node.core_indices)] = \
                node.spec.pstate_power_kw[1]
        result = convert_power_to_pstates(dc, core_power, node_budget)
        np.testing.assert_array_equal(result.pstates, pstates)

    def test_trimming_when_budget_tight(self, small_dc):
        """Requesting P0 power everywhere under a P1-level budget forces
        the trim loop to weaken cores."""
        dc = small_dc
        core_power = np.empty(dc.n_cores)
        for node in dc.nodes:
            core_power[list(node.core_indices)] = node.spec.p0_power_kw
        budget_ps = np.ones(dc.n_cores, dtype=int)
        node_budget = dc.node_power_kw(budget_ps)
        result = convert_power_to_pstates(dc, core_power, node_budget)
        assert np.all(result.node_power_kw <= node_budget + 1e-9)
        # something must have been weakened below P0
        assert result.pstates.max() > 0

    def test_zero_budget_turns_everything_off(self, small_dc):
        dc = small_dc
        core_power = np.full(dc.n_cores, 0.001)
        budget = dc.node_base_power.copy()  # no core power allowed
        result = convert_power_to_pstates(dc, core_power, budget)
        off = np.asarray([dc.node_types[t].off_pstate
                          for t in dc.core_type])
        np.testing.assert_array_equal(result.pstates, off)

    def test_shape_validation(self, small_dc):
        with pytest.raises(ValueError, match="core powers"):
            convert_power_to_pstates(small_dc, np.zeros(3),
                                     small_dc.node_base_power)
        with pytest.raises(ValueError, match="node budgets"):
            convert_power_to_pstates(small_dc,
                                     np.zeros(small_dc.n_cores),
                                     np.zeros(3))
