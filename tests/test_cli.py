"""Tests for repro.cli — the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_unknown_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])
        capsys.readouterr()

    def test_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.runs == 5 and args.nodes == 30

    def test_compare_set_choices(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--set", "4"])
        capsys.readouterr()


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "0.353" in out

    def test_tables_custom_static(self, capsys):
        assert main(["tables", "--static", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "20%" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--nodes", "15", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "three-stage" in out
        assert "improvement over baseline" in out

    def test_fig6_tiny(self, capsys):
        assert main(["fig6", "--runs", "2", "--nodes", "15",
                     "--seed", "77"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "set3" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "--nodes", "15", "--seed", "2",
                     "--horizon", "5"]) == 0
        out = capsys.readouterr().out
        assert "planned reward rate" in out
        assert "achieved (DES)" in out

    def test_sweep_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        assert main(["sweep", "--nodes", "12", "--seed", "5",
                     "--points", "3", "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "cap kW" in out
        assert csv_path.exists()
        assert "p_const_kw" in csv_path.read_text()

    def test_fig6_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig6.csv"
        assert main(["fig6", "--runs", "2", "--nodes", "12",
                     "--seed", "88", "--csv", str(csv_path)]) == 0
        capsys.readouterr()
        text = csv_path.read_text()
        assert "mean_improvement_pct" in text
        assert "set3" in text
