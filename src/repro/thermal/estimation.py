"""Estimating the heat-flow matrix from sensor measurements (Section IV).

The paper takes the mixing matrix as given: "The values in matrix A can
be estimated using sensor measurements [29]."  This module implements
that estimation, closing the loop between the simulated room and the
calibration a real deployment would run:

* :func:`collect_measurements` plays the role of the sensor network —
  it records (outlet, inlet) temperature pairs at a set of operating
  points, optionally with additive Gaussian sensor noise;
* :func:`estimate_mix_matrix` recovers ``A`` row by row from
  ``T_in = A @ T_out`` via constrained least squares (each row is a
  convex combination: non-negative, summing to 1 — the physical
  constraints of an air-mixing process), solved as a small LP-regularized
  NNLS per row followed by simplex projection;
* :func:`estimation_error` reports how close the recovered matrix is and
  how well it predicts inlets at held-out operating points.

With as many linearly independent operating points as units and modest
noise, recovery is essentially exact — verified in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

from repro.thermal.heatflow import HeatFlowModel

__all__ = ["Measurement", "collect_measurements", "estimate_mix_matrix",
           "estimation_error"]


@dataclass(frozen=True)
class Measurement:
    """One sensor snapshot: all outlet and inlet temperatures, C."""

    t_out: np.ndarray
    t_in: np.ndarray


def collect_measurements(model: HeatFlowModel,
                         rng: np.random.Generator,
                         n_samples: int,
                         outlet_range_c: tuple[float, float] = (10.0, 25.0),
                         max_node_power_kw: float = 1.0,
                         noise_std_c: float = 0.0) -> list[Measurement]:
    """Simulate a sensor-calibration campaign.

    Each sample drives the room to a random operating point (random CRAC
    outlet temperatures and random node powers), waits for steady state,
    and records every unit's outlet and inlet temperature with optional
    i.i.d. Gaussian sensor noise.
    """
    if n_samples <= 0:
        raise ValueError("need at least one sample")
    if noise_std_c < 0:
        raise ValueError("noise std must be non-negative")
    lo, hi = outlet_range_c
    # draws stay in the original per-sample order (t, p, noise, noise) so
    # seeded campaigns reproduce the historical streams; only the solves
    # are batched through the factored system
    t_cracs = np.empty((n_samples, model.n_crac))
    powers = np.empty((n_samples, model.n_nodes))
    noise_out = np.empty((n_samples, model.n_units))
    noise_in = np.empty((n_samples, model.n_units))
    for i in range(n_samples):
        t_cracs[i] = rng.uniform(lo, hi, size=model.n_crac)
        powers[i] = rng.uniform(0.0, max_node_power_kw, size=model.n_nodes)
        noise_out[i] = rng.normal(0.0, noise_std_c, size=model.n_units)
        noise_in[i] = rng.normal(0.0, noise_std_c, size=model.n_units)
    batch = model.steady_state_batch(t_cracs, powers)
    return [Measurement(t_out=batch.t_out[i] + noise_out[i],
                        t_in=batch.t_in[i] + noise_in[i])
            for i in range(n_samples)]


def _project_to_simplex(v: np.ndarray) -> np.ndarray:
    """Euclidean projection onto the probability simplex (Duchi et al.)."""
    n = v.size
    u = np.sort(v)[::-1]
    css = np.cumsum(u)
    rho = np.nonzero(u * np.arange(1, n + 1) > (css - 1.0))[0][-1]
    theta = (css[rho] - 1.0) / (rho + 1.0)
    return np.maximum(v - theta, 0.0)


def estimate_mix_matrix(measurements: list[Measurement]) -> np.ndarray:
    """Recover ``A`` from ``T_in = A @ T_out`` snapshots.

    Per row *j*: non-negative least squares on the stacked outlet
    matrix, then projection onto the unit simplex to enforce the
    row-stochastic constraint exactly (physical air mixing conserves
    flow fractions).  Requires at least ``n_units`` samples for a
    well-posed fit.
    """
    if not measurements:
        raise ValueError("need measurements")
    x = np.stack([m.t_out for m in measurements])   # (S, N)
    y = np.stack([m.t_in for m in measurements])    # (S, N)
    n_units = x.shape[1]
    if x.shape[0] < n_units:
        raise ValueError(
            f"need >= {n_units} samples for {n_units} units, got "
            f"{x.shape[0]}")
    a_hat = np.empty((n_units, n_units))
    for j in range(n_units):
        coeffs, _ = nnls(x, y[:, j])
        a_hat[j] = _project_to_simplex(coeffs)
    return a_hat


def estimation_error(model: HeatFlowModel, a_hat: np.ndarray,
                     rng: np.random.Generator,
                     n_holdout: int = 20,
                     max_node_power_kw: float = 1.0
                     ) -> tuple[float, float]:
    """Matrix error and held-out inlet prediction error.

    Returns ``(max |A - A_hat|, max inlet prediction error in C)`` over
    fresh random operating points.
    """
    matrix_err = float(np.abs(model.mix_dense - a_hat).max())
    t_cracs = np.empty((n_holdout, model.n_crac))
    powers = np.empty((n_holdout, model.n_nodes))
    for i in range(n_holdout):
        t_cracs[i] = rng.uniform(10.0, 25.0, size=model.n_crac)
        powers[i] = rng.uniform(0.0, max_node_power_kw, size=model.n_nodes)
    batch = model.steady_state_batch(t_cracs, powers)
    pred = batch.t_out @ a_hat.T
    worst = float(np.abs(pred - batch.t_in).max())
    return matrix_err, worst
