"""Rule framework: per-file context, lint configuration, visitor base.

A rule is an :class:`ast.NodeVisitor` subclass with a stable code
(``RL0xx``), registered via :func:`register`.  The engine instantiates
every selected rule per file and concatenates their findings; rules
never see each other, so adding one cannot perturb another's output.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import ClassVar, Iterator

from repro.lint.findings import Finding

__all__ = [
    "DEFAULT_CACHE_CONTRACTS",
    "DEFAULT_SPAN_TAXONOMY",
    "CacheContract",
    "FileContext",
    "LintConfig",
    "ProjectRule",
    "RuleVisitor",
    "all_rules",
    "get_rule",
    "load_span_taxonomy",
    "register",
    "rule_catalog",
]

_CODE_RE = re.compile(r"^RL\d{3}$")

#: Span-name segments documented in ``docs/OBSERVABILITY.md`` — the
#: fallback when the doc cannot be located at lint time.  Dotted span
#: paths are validated segment by segment.
DEFAULT_SPAN_TAXONOMY: frozenset[str] = frozenset({
    "three_stage", "stage1", "stage2", "stage3", "lp", "des_replay",
    "epoch", "transient_guard", "transient", "interval", "replan",
})

#: Physical constants that must come from :mod:`repro.units`, keyed by
#: their float value.
PHYSICAL_CONSTANTS: dict[float, str] = {
    1.205: "repro.units.AIR_DENSITY",
    25.0: "repro.units.NODE_REDLINE_C",
    40.0: "repro.units.CRAC_REDLINE_C",
}


@dataclass(frozen=True)
class CacheContract:
    """One cache-key completeness obligation (RL050).

    Every field of ``cls`` must reach one of ``key_fns`` (directly as
    an attribute of a parameter typed as ``cls``, via a blanket
    ``dataclasses.asdict``/``astuple``, or as an attribute access in a
    function that calls a key function) or carry a
    ``# repro-lint: cache-exempt(reason)`` pragma on its definition
    line.
    """

    cls: str                    # fully-qualified dataclass name
    key_fns: tuple[str, ...]    # fully-qualified digest/key functions


#: The repo's cache/digest contracts: the experiment cache key over
#: ``ScenarioConfig`` (the PR-3 bug class) and the warm-start digests
#: over ``SolveOptions``/``SolveRequest`` (the CACHE_SCHEMA_VERSION
#: bump class from PRs 5-8).
DEFAULT_CACHE_CONTRACTS: tuple[CacheContract, ...] = (
    CacheContract(cls="repro.experiments.config.ScenarioConfig",
                  key_fns=("repro.experiments.engine.cache_key",)),
    CacheContract(cls="repro.core.api.SolveOptions",
                  key_fns=("repro.core.warmstart.compute_digests",)),
    CacheContract(cls="repro.core.api.SolveRequest",
                  key_fns=("repro.core.warmstart.compute_digests",)),
)


@dataclass(frozen=True)
class LintConfig:
    """Knobs shared by every rule.

    Attributes
    ----------
    span_taxonomy:
        Allowed span-name segments (RL022).
    wallclock_allow:
        POSIX path fragments where wall-clock reads are legitimate —
        the observability layer measures wall time by design (RL004).
    span_rule_skip:
        POSIX path fragments where RL022 does not apply (the tracer
        implementation itself).
    physical_constants:
        ``float value -> canonical symbol`` map for RL010.
    cache_contracts:
        Dataclasses whose fields must be covered by their cache-key /
        digest functions (RL050).
    taint_source_allow:
        POSIX path fragments whose *sources* the taint analysis
        ignores — the observability layer reads the wall clock by
        design and its outputs are not cache inputs (RL040).
    """

    span_taxonomy: frozenset[str] = DEFAULT_SPAN_TAXONOMY
    wallclock_allow: tuple[str, ...] = ("repro/obs/",)
    span_rule_skip: tuple[str, ...] = ("repro/obs/",)
    physical_constants: dict[float, str] = field(
        default_factory=lambda: dict(PHYSICAL_CONSTANTS))
    cache_contracts: tuple[CacheContract, ...] = DEFAULT_CACHE_CONTRACTS
    taint_source_allow: tuple[str, ...] = ("repro/obs/",)


_SPAN_SECTION_RE = re.compile(
    r"^##\s+Span taxonomy\s*$(.*?)(?:^##\s|\Z)", re.MULTILINE | re.DOTALL)
_SPAN_NAME_RE = re.compile(r"^\|\s*`([a-zA-Z0-9_.]+)`", re.MULTILINE)


def load_span_taxonomy(start: Path) -> frozenset[str]:
    """Parse the span table of ``docs/OBSERVABILITY.md``.

    Walks up from ``start`` looking for ``docs/OBSERVABILITY.md`` and
    collects every backtick-quoted name in the first column of the
    "Span taxonomy" table, split into dot segments.  Falls back to
    :data:`DEFAULT_SPAN_TAXONOMY` when the doc is missing or the
    section cannot be parsed — the lint must not *require* the doc.
    """
    candidate = None
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for ancestor in (node, *node.parents):
        doc = ancestor / "docs" / "OBSERVABILITY.md"
        if doc.is_file():
            candidate = doc
            break
    if candidate is None:
        return DEFAULT_SPAN_TAXONOMY
    try:
        text = candidate.read_text(encoding="utf-8")
    except OSError:
        return DEFAULT_SPAN_TAXONOMY
    section = _SPAN_SECTION_RE.search(text)
    if section is None:
        return DEFAULT_SPAN_TAXONOMY
    segments: set[str] = set()
    for dotted in _SPAN_NAME_RE.findall(section.group(1)):
        segments.update(dotted.split("."))
    return frozenset(segments) if segments else DEFAULT_SPAN_TAXONOMY


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: Path
    rel_path: str          # POSIX, relative to the invocation cwd
    source: str
    lines: list[str]
    tree: ast.Module

    def line_text(self, lineno: int) -> str:
        """Stripped source text of a 1-based line (baseline context)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def path_matches(self, fragments: tuple[str, ...]) -> bool:
        """True when the file's path contains any POSIX fragment."""
        posix = str(PurePosixPath(self.rel_path))
        return any(frag in posix for frag in fragments)


class RuleVisitor(ast.NodeVisitor):
    """Base class for one lint rule.

    Subclasses set the class attributes, implement ``visit_*`` methods
    and call :meth:`report`; :meth:`run` drives the traversal.  A rule
    returning no findings on a file is the common case, so construction
    stays allocation-light.
    """

    code: ClassVar[str] = "RL000"
    name: ClassVar[str] = "abstract-rule"
    category: ClassVar[str] = "none"
    description: ClassVar[str] = ""
    #: Which ``--analysis`` tier runs this rule: per-file AST rules are
    #: ``"ast"``; whole-program dataflow rules are ``"dataflow"``.
    analysis_kind: ClassVar[str] = "ast"

    def __init__(self, ctx: FileContext, config: LintConfig) -> None:
        self.ctx = ctx
        self.config = config
        self.findings: list[Finding] = []

    # -- subclass API --------------------------------------------------
    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding at ``node``'s position."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        self.findings.append(Finding(
            path=self.ctx.rel_path, line=lineno, col=col,
            code=self.code, rule=self.name, message=message,
            context=self.ctx.line_text(lineno)))

    def skip_file(self) -> bool:
        """Override to exempt whole files (e.g. the tracer itself)."""
        return False

    # -- engine API ----------------------------------------------------
    def run(self) -> list[Finding]:
        if not self.skip_file():
            self.visit(self.ctx.tree)
        return self.findings


class ProjectRule:
    """Base class for one whole-program dataflow rule (RL03x-RL05x).

    Where :class:`RuleVisitor` sees one file, a project rule sees the
    :class:`~repro.lint.project.Project` — every linted module parsed
    into a symbol table — and reports findings anywhere in it.
    Subclasses implement :meth:`check`; :meth:`report` anchors findings
    to a module+line and may attach the source→sink ``trace`` chain.
    """

    code: ClassVar[str] = "RL000"
    name: ClassVar[str] = "abstract-project-rule"
    category: ClassVar[str] = "none"
    description: ClassVar[str] = ""
    analysis_kind: ClassVar[str] = "dataflow"

    def __init__(self, project: "object", config: LintConfig) -> None:
        self.project = project
        self.config = config
        self.findings: list[Finding] = []

    def report(self, module: "object", node: ast.AST, message: str,
               trace: tuple[str, ...] = ()) -> None:
        """Record a finding at ``node``'s position in ``module``."""
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        self.findings.append(Finding(
            path=module.rel_path, line=lineno, col=col,      # type: ignore[attr-defined]
            code=self.code, rule=self.name, message=message,
            context=module.line_text(lineno),                # type: ignore[attr-defined]
            trace=trace))

    def check(self) -> None:
        raise NotImplementedError

    def run(self) -> list[Finding]:
        self.check()
        self.findings.sort()
        return self.findings


_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a rule to the global registry.

    Accepts both per-file :class:`RuleVisitor` and whole-program
    :class:`ProjectRule` subclasses; the engine partitions by
    ``analysis_kind``.  Codes are the stable public contract
    (suppressions and baselines refer to them), so duplicates and
    malformed codes are hard errors.
    """
    if not _CODE_RE.match(cls.code):
        raise ValueError(f"rule code {cls.code!r} must match RL0xx")
    if cls.code in _REGISTRY:
        raise ValueError(
            f"duplicate rule code {cls.code}: "
            f"{_REGISTRY[cls.code].__name__} vs {cls.__name__}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[type]:
    """Every registered rule (AST and dataflow), ordered by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> type:
    _ensure_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown rule code {code!r}; known: "
                       f"{', '.join(sorted(_REGISTRY))}") from None


def rule_catalog() -> Iterator[tuple[str, str, str, str]]:
    """(code, name, category, description) rows for docs and --list."""
    for cls in all_rules():
        yield cls.code, cls.name, cls.category, cls.description


def _ensure_loaded() -> None:
    # Importing the rules package executes the @register decorators.
    from repro.lint import rules as _rules  # noqa: F401
