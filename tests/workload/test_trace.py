"""Tests for repro.workload.trace — Poisson task traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.tasktypes import Workload
from repro.workload.trace import Task, generate_trace


def tiny_workload(rates) -> Workload:
    t = len(rates)
    ecs = np.ones((t, 1, 2))
    ecs[:, :, 1] = 0.0
    return Workload(
        ecs=ecs,
        rewards=np.ones(t),
        deadline_slack=np.full(t, 2.5),
        arrival_rates=np.asarray(rates, dtype=float),
    )


class TestGenerateTrace:
    def test_sorted_by_arrival(self):
        trace = generate_trace(tiny_workload([5.0, 3.0]), 50.0,
                               np.random.default_rng(0))
        arrivals = [t.arrival for t in trace]
        assert arrivals == sorted(arrivals)

    def test_arrivals_within_horizon(self):
        trace = generate_trace(tiny_workload([5.0]), 20.0,
                               np.random.default_rng(1))
        assert all(0.0 <= t.arrival < 20.0 for t in trace)

    def test_deadlines_offset_by_slack(self):
        wl = tiny_workload([5.0])
        trace = generate_trace(wl, 20.0, np.random.default_rng(2))
        for t in trace:
            assert t.deadline == pytest.approx(t.arrival + 2.5)

    def test_uids_dense_and_ordered(self):
        trace = generate_trace(tiny_workload([4.0, 4.0]), 30.0,
                               np.random.default_rng(3))
        assert [t.uid for t in trace] == list(range(len(trace)))

    def test_rate_roughly_respected(self):
        wl = tiny_workload([10.0])
        trace = generate_trace(wl, 500.0, np.random.default_rng(4))
        observed = len(trace) / 500.0
        assert observed == pytest.approx(10.0, rel=0.1)

    def test_zero_rate_type_produces_nothing(self):
        wl = tiny_workload([0.0, 5.0])
        trace = generate_trace(wl, 50.0, np.random.default_rng(5))
        assert all(t.task_type == 1 for t in trace)
        assert len(trace) > 0

    def test_bad_duration(self):
        with pytest.raises(ValueError, match="positive"):
            generate_trace(tiny_workload([1.0]), 0.0,
                           np.random.default_rng(0))

    def test_reproducible(self):
        wl = tiny_workload([3.0])
        t1 = generate_trace(wl, 20.0, np.random.default_rng(6))
        t2 = generate_trace(wl, 20.0, np.random.default_rng(6))
        assert t1 == t2

    @given(rate=st.floats(min_value=0.2, max_value=50.0),
           seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_invariants_hold_for_any_rate(self, rate, seed):
        wl = tiny_workload([rate])
        trace = generate_trace(wl, 10.0, np.random.default_rng(seed))
        arrivals = [t.arrival for t in trace]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 10.0 for a in arrivals)


class TestTaskOrdering:
    def test_tasks_order_by_arrival(self):
        a = Task(arrival=1.0, task_type=5, uid=10, deadline=2.0)
        b = Task(arrival=2.0, task_type=0, uid=1, deadline=2.5)
        assert a < b
