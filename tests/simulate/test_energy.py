"""Tests for repro.simulate.energy — measured energy accounting."""

import numpy as np
import pytest

from repro.power.taskpower import TaskPowerModel
from repro.simulate.energy import energy_report
from repro.simulate.engine import simulate_trace
from repro.workload.trace import generate_trace


@pytest.fixture(scope="module")
def run(scenario, assignment):
    rng = np.random.default_rng(12)
    trace = generate_trace(scenario.workload, 10.0, rng)
    metrics = simulate_trace(scenario.datacenter, scenario.workload,
                             assignment.tc, assignment.pstates, trace,
                             duration=10.0)
    return metrics


class TestEnergyReport:
    def test_base_model_within_budget(self, scenario, assignment, run):
        """Base model (always-on cores): measured compute power equals
        the planner's budget exactly — idle cores still draw their
        P-state power."""
        rep = energy_report(scenario.datacenter, scenario.workload, run,
                            assignment.pstates, assignment.t_crac_out)
        # budgeted_kw includes base power via node_power_kw
        assert rep.compute_kw == pytest.approx(rep.budgeted_kw, rel=1e-9)

    def test_idle_saving_reduces_power(self, scenario, assignment, run):
        wl = scenario.workload
        saving = TaskPowerModel(factors=np.ones(wl.n_task_types),
                                idle_fraction=0.4)
        rep = energy_report(scenario.datacenter, wl, run,
                            assignment.pstates, assignment.t_crac_out,
                            task_power=saving)
        base = energy_report(scenario.datacenter, wl, run,
                             assignment.pstates, assignment.t_crac_out)
        assert rep.compute_kw < base.compute_kw
        assert rep.cooling_kw < base.cooling_kw

    def test_energy_arithmetic(self, scenario, assignment, run):
        rep = energy_report(scenario.datacenter, scenario.workload, run,
                            assignment.pstates, assignment.t_crac_out)
        hours = run.duration / 3600.0
        assert rep.energy_kwh == pytest.approx(rep.total_kw * hours)
        assert rep.reward_per_kwh == pytest.approx(
            run.total_reward / rep.energy_kwh)

    def test_requires_busy_by_type(self, scenario, assignment, run):
        from dataclasses import replace

        bad = replace(run, busy_by_type=None)
        with pytest.raises(ValueError, match="busy_by_type"):
            energy_report(scenario.datacenter, scenario.workload, bad,
                          assignment.pstates, assignment.t_crac_out)


class TestLatencyMetrics:
    def test_percentiles_ordered(self, scenario, run):
        for i in range(scenario.workload.n_task_types):
            p = run.response_time_percentiles(i)
            if not np.isnan(p).any():
                assert p[0] <= p[1] <= p[2]

    def test_response_below_deadline_slack(self, scenario, run):
        """Assigned tasks finish by their deadlines, so every response
        time is at most the type's slack."""
        wl = scenario.workload
        for i in range(wl.n_task_types):
            samples = run.response_times[i]
            if samples.size:
                assert samples.max() <= wl.deadline_slack[i] + 1e-9

    def test_slack_utilization_in_unit_range(self, scenario, run):
        wl = scenario.workload
        for i in range(wl.n_task_types):
            s = run.slack_utilization(i, float(wl.deadline_slack[i]))
            if not np.isnan(s):
                assert 0.0 < s <= 1.0 + 1e-9

    def test_latency_collection_optional(self, scenario, assignment):
        trace = generate_trace(scenario.workload, 2.0,
                               np.random.default_rng(0))
        m = simulate_trace(scenario.datacenter, scenario.workload,
                           assignment.tc, assignment.pstates, trace,
                           duration=2.0, collect_latency=False)
        assert m.response_times is None
        with pytest.raises(RuntimeError, match="not collected"):
            m.response_time_percentiles(0)
