"""Rule implementations; importing this package registers every rule.

Codes are grouped by category and never reused:

* ``RL000``           — reserved: file could not be parsed
* ``RL001``-``RL009`` — determinism
* ``RL010``-``RL019`` — physics / units
* ``RL020``-``RL029`` — hygiene
"""

from repro.lint.rules import determinism, hygiene, physics

__all__ = ["determinism", "hygiene", "physics"]
