"""RL001 bad: set iteration order reaching ordered output."""


def leak_order(items):
    seen = set(items)
    out = []
    for item in seen:                          # line 7: for over a set
        out.append(item)
    ordered = list({"a", "b", "c"})            # line 9: list(set literal)
    pairs = [x for x in frozenset(items)]      # line 10: comprehension
    text = ",".join(set(items))                # line 11: join
    return out, ordered, pairs, text
