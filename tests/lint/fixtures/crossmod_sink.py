"""Cross-module taint fixture: the sink side (see crossmod_source)."""

import json


def cache_key(payload) -> str:
    return json.dumps(payload, sort_keys=True, default=list)
