"""Tests for repro.control.mpc — planner ladder, warm chains, controller."""

import json

import numpy as np
import pytest

from repro import obs
from repro.control.mpc import MPCConfig, MPCController, MPCPlanner
from repro.core.controller import EpochController, ShedPlan, idle_start_t_out
from repro.experiments import PAPER_SET_1, generate_scenario, scaled_down
from repro.workload import ConstantProfile, FlashCrowdProfile

from tests.conftest import SEED

N_NODES = 8
STEP_S = 30.0

#: Short prediction tail so unit tests stay fast (the default integrates
#: 10 * tau per terminal step); semantics are unchanged.
FAST = dict(step_s=STEP_S, tau_s=60.0, settle_factor=3.0)


@pytest.fixture(scope="module")
def sc():
    return generate_scenario(scaled_down(PAPER_SET_1, N_NODES), SEED)


@pytest.fixture(scope="module")
def idle_t_out(sc):
    return idle_start_t_out(sc.datacenter)


def _forecast(sc, steps=3):
    return np.tile(sc.workload.arrival_rates, (steps, 1))


class TestConfig:
    def test_defaults_valid(self):
        MPCConfig()

    @pytest.mark.parametrize("kwargs,match", [
        (dict(horizon_steps=0), "horizon_steps"),
        (dict(step_s=0.0), "step_s"),
        (dict(tau_s=-1.0), "tau_s"),
        (dict(precool_step_c=0.0), "precool_step_c"),
        (dict(max_precool=-1), "max_precool"),
        (dict(derate_step=1.0), "derate_step"),
        (dict(max_derate=-2), "max_derate"),
        (dict(settle_factor=0.0), "settle_factor"),
        (dict(on_exhausted="panic"), "on_exhausted"),
        (dict(warm="sometimes"), "warm"),
    ])
    def test_invalid_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            MPCConfig(**kwargs)


class TestPlannerLadder:
    def test_cold_start_commits_first_plan_unguarded(self, sc):
        planner = MPCPlanner(MPCConfig(**FAST))
        decision = planner.plan(sc.datacenter, sc.workload, sc.p_const,
                                None, _forecast(sc))
        assert decision.predicted_overshoot_c is None
        assert decision.precooled == 0 and decision.derated == 0
        assert not decision.shed
        assert decision.lookahead_steps == 3
        assert decision.plan.reward_rate > 0

    def test_clean_transition_commits_level_zero(self, sc, idle_t_out):
        """From the idle (cold) room the as-planned transition is clean:
        no escalation, no predicted violation."""
        planner = MPCPlanner(MPCConfig(**FAST))
        decision = planner.plan(sc.datacenter, sc.workload, sc.p_const,
                                idle_t_out, _forecast(sc))
        assert decision.precooled == 0 and decision.derated == 0
        assert decision.predicted_overshoot_c <= 1e-6
        assert decision.predicted_violation_min == 0.0

    def test_vector_forecast_is_horizon_one(self, sc, idle_t_out):
        planner = MPCPlanner(MPCConfig(**FAST))
        decision = planner.plan(sc.datacenter, sc.workload, sc.p_const,
                                idle_t_out, sc.workload.arrival_rates)
        assert decision.lookahead_steps == 1

    def test_hot_start_escalates_precool_before_derate(self, sc):
        """A room started above its redlines forces the ladder: the
        planner reaches for pre-cool (full cap) before touching derates,
        and commits the least-overshooting candidate."""
        dc = sc.datacenter
        model = dc.require_thermal()
        hot_out = np.full(dc.n_crac, 24.0)
        hot_power = dc.node_power_kw(dc.all_p0_pstates())
        t_hot = model.steady_state(hot_out, hot_power).t_out
        planner = MPCPlanner(MPCConfig(max_precool=2, max_derate=2, **FAST))
        obs.reset()
        obs.enable()
        try:
            decision = planner.plan(dc, sc.workload, sc.p_const, t_hot,
                                    _forecast(sc))
            snap = obs.current_registry().snapshot()
        finally:
            obs.disable()
            obs.reset()
        assert decision.predicted_overshoot_c > 0
        assert snap["mpc.precools"]["value"] >= 1
        assert not decision.shed

    def test_infeasible_cap_degrades_to_shed(self, sc, idle_t_out):
        planner = MPCPlanner(MPCConfig(**FAST))
        decision = planner.plan(sc.datacenter, sc.workload, 1e-3,
                                idle_t_out, _forecast(sc))
        assert decision.shed
        assert isinstance(decision.plan, ShedPlan)
        assert decision.plan.reward_rate == 0.0
        assert decision.warm_level == "shed"
        assert np.all(decision.plan.pstates
                      == sc.datacenter.all_off_pstates())

    def test_infeasible_cap_raises_when_asked(self, sc, idle_t_out):
        planner = MPCPlanner(MPCConfig(on_exhausted="raise", **FAST))
        with pytest.raises(RuntimeError):
            planner.plan(sc.datacenter, sc.workload, 1e-3, idle_t_out,
                         _forecast(sc))

    def test_bad_first_step_rejected(self, sc, idle_t_out):
        planner = MPCPlanner(MPCConfig(**FAST))
        with pytest.raises(ValueError, match="first_step_s"):
            planner.plan(sc.datacenter, sc.workload, sc.p_const,
                         idle_t_out, _forecast(sc), first_step_s=0.0)


class TestWarmChains:
    def test_lookahead_engages_warm_starts(self, sc, idle_t_out):
        """The acceptance criterion: rates-only horizon steps replay the
        warm chain (lp.warm_hits > 0), and repeat decisions reuse the
        pooled state across calls."""
        planner = MPCPlanner(MPCConfig(**FAST))
        obs.reset()
        obs.enable()
        try:
            first = planner.plan(sc.datacenter, sc.workload, sc.p_const,
                                 idle_t_out, _forecast(sc))
            second = planner.plan(sc.datacenter, sc.workload, sc.p_const,
                                  idle_t_out, _forecast(sc))
            snap = obs.current_registry().snapshot()
        finally:
            obs.disable()
            obs.reset()
        warm_hits = sum(v["value"] for name, v in snap.items()
                        if name.startswith("lp.warm_hits"))
        assert warm_hits > 0
        assert first.warm_level == "none"     # pool was empty
        assert second.warm_level in ("stage1", "request")
        assert snap["mpc.lookahead_solves"]["value"] == 6
        assert snap["mpc.decisions"]["value"] == 2

    def test_warm_off_never_pools(self, sc, idle_t_out):
        planner = MPCPlanner(MPCConfig(warm="off", **FAST))
        planner.plan(sc.datacenter, sc.workload, sc.p_const, idle_t_out,
                     _forecast(sc))
        decision = planner.plan(sc.datacenter, sc.workload, sc.p_const,
                                idle_t_out, _forecast(sc))
        assert decision.warm_level == "none"

    def test_warm_replay_plans_match_cold(self, sc, idle_t_out):
        """Warm reuse is value-exact: the committed operating point is
        bit-identical with and without the chain."""
        warm = MPCPlanner(MPCConfig(**FAST))
        warm.plan(sc.datacenter, sc.workload, sc.p_const, idle_t_out,
                  _forecast(sc))
        warm_d = warm.plan(sc.datacenter, sc.workload, sc.p_const,
                           idle_t_out, _forecast(sc))
        cold_d = MPCPlanner(MPCConfig(warm="off", **FAST)).plan(
            sc.datacenter, sc.workload, sc.p_const, idle_t_out,
            _forecast(sc))
        np.testing.assert_array_equal(warm_d.plan.t_crac_out,
                                      cold_d.plan.t_crac_out)
        np.testing.assert_array_equal(warm_d.plan.pstates,
                                      cold_d.plan.pstates)
        assert warm_d.plan.reward_rate == cold_d.plan.reward_rate


class TestController:
    def test_run_over_constant_profile(self, sc):
        profile = ConstantProfile(base_rates=sc.workload.arrival_rates)
        ctrl = MPCController(sc.datacenter, sc.workload, sc.p_const,
                             MPCConfig(**FAST))
        result = ctrl.run(profile, 3 * STEP_S,
                          np.random.default_rng(SEED + 1))
        assert len(result.epochs) == 3
        assert result.total_reward > 0
        assert result.reward_rate > 0
        assert result.epochs[0].warm_level == "none"
        assert all(e.warm_level in ("stage1", "request")
                   for e in result.epochs[1:])
        assert result.shed_epochs == 0

    def test_matches_interval_controller_on_easy_room(self, sc):
        """On a clean constant-rate room neither controller escalates,
        and both replay the same trace through the same DES — the MPC
        run earns at least the memoryless controller's reward."""
        profile = ConstantProfile(base_rates=sc.workload.arrival_rates)

        def rng():
            return np.random.default_rng(SEED + 1)

        mpc = MPCController(sc.datacenter, sc.workload, sc.p_const,
                            MPCConfig(**FAST)).run(
            profile, 2 * STEP_S, rng())
        interval = EpochController(sc.datacenter, sc.workload, sc.p_const,
                                   epoch_s=STEP_S).run(
            profile, 2 * STEP_S, rng())
        assert mpc.total_reward == pytest.approx(interval.total_reward)
        assert mpc.violation_minutes == 0.0

    def test_to_dict_is_json_clean(self, sc):
        profile = FlashCrowdProfile(
            ConstantProfile(base_rates=sc.workload.arrival_rates),
            bursts=((STEP_S, STEP_S, 3.0),))
        ctrl = MPCController(sc.datacenter, sc.workload, sc.p_const,
                             MPCConfig(**FAST))
        result = ctrl.run(profile, 2 * STEP_S,
                          np.random.default_rng(SEED + 1))
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["schema"] == 1
        assert len(doc["epochs"]) == 2
        assert doc["total_reward"] == pytest.approx(result.total_reward)
        for epoch in doc["epochs"]:
            assert "wall" not in " ".join(epoch)

    def test_invalid_inputs_rejected(self, sc):
        with pytest.raises(ValueError, match="power cap"):
            MPCController(sc.datacenter, sc.workload, 0.0)
        with pytest.raises(ValueError, match="forecast"):
            MPCController(sc.datacenter, sc.workload, sc.p_const,
                          forecast="psychic")
        ctrl = MPCController(sc.datacenter, sc.workload, sc.p_const,
                             MPCConfig(**FAST))
        with pytest.raises(ValueError, match="horizon"):
            ctrl.run(ConstantProfile(
                base_rates=sc.workload.arrival_rates), 0.0,
                np.random.default_rng(1))
