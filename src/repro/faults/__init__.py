"""Deterministic fault injection and degraded operation (chaos testing).

The paper's control scheme assumes a fixed, healthy inventory; this
package asks what happens when it isn't:

* :mod:`repro.faults.model` — the fault taxonomy (node crashes, CRAC
  degradation/outage, power-cap drops, ECS drift) and immutable,
  queryable fault timelines;
* :mod:`repro.faults.schedule` — reproducible random timelines from
  ``seed + rates`` and hand-written scenario files;
* :mod:`repro.faults.inject` — functional degraded-room views every
  existing solver/simulator consumes unchanged;
* :mod:`repro.faults.policy` — the reaction loop: re-solve on inventory
  change, transient-check the transition, account for stranded tasks.
"""

from repro.faults.inject import DegradedView, degraded_view, derated_cracs
from repro.faults.model import (FaultEvent, FaultKind, FaultSchedule,
                                InventoryState)
from repro.faults.policy import (ChaosRunResult, FaultAwareController,
                                 IntervalRecord, ReactionPolicy)
from repro.faults.schedule import (FaultRates, demo_rates,
                                   generate_fault_schedule, load_schedule,
                                   schedule_from_dict)

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "InventoryState",
    "FaultRates",
    "demo_rates",
    "generate_fault_schedule",
    "load_schedule",
    "schedule_from_dict",
    "DegradedView",
    "degraded_view",
    "derated_cracs",
    "ReactionPolicy",
    "IntervalRecord",
    "ChaosRunResult",
    "FaultAwareController",
]
