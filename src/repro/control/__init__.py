"""Predictive (receding-horizon) control over the transient thermal model.

``forecast`` projects arrival rates over the lookahead horizon;
``mpc`` plans against those forecasts with warm-chained solves and a
pre-cool-before-derate escalation ladder.  See docs/CONTROL.md.
"""

from repro.control.forecast import (FORECAST_KINDS, ForecastProvider,
                                    NoisyOracleForecast, OracleForecast,
                                    PersistenceForecast, make_forecast)
from repro.control.mpc import (MPCConfig, MPCController, MPCDecision,
                               MPCEpochRecord, MPCPlanner, MPCResult)

__all__ = [
    "FORECAST_KINDS",
    "ForecastProvider",
    "OracleForecast",
    "PersistenceForecast",
    "NoisyOracleForecast",
    "make_forecast",
    "MPCConfig",
    "MPCDecision",
    "MPCPlanner",
    "MPCEpochRecord",
    "MPCResult",
    "MPCController",
]
