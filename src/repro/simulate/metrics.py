"""Metrics collected by the second-step simulation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SimulationMetrics"]


@dataclass
class SimulationMetrics:
    """Outcome of replaying a task trace through the dynamic scheduler.

    Attributes
    ----------
    duration:
        Simulated horizon, seconds.
    total_reward:
        Reward collected from tasks completed by their deadlines.
    completed / dropped:
        Per-task-type counts.  Tasks are only assigned when the target
        core can meet the deadline, so assigned == completed-by-deadline.
    atc:
        Achieved execution-rate matrix ``(T, NCORES)``, tasks/second.
    tc:
        The desired-rate matrix the scheduler was tracking.
    busy_time:
        Per-core cumulative busy seconds.
    """

    duration: float
    total_reward: float
    completed: np.ndarray
    dropped: np.ndarray
    atc: np.ndarray
    tc: np.ndarray
    busy_time: np.ndarray
    #: ``(T, NCORES)`` busy seconds split by task type (energy accounting).
    busy_by_type: np.ndarray | None = None
    #: per-type lists of response times (completion - arrival), seconds.
    response_times: list[np.ndarray] | None = None
    #: per-type tasks stranded by a core outage and re-entered into the
    #: arrival stream (fault injection; ``None`` when no faults ran).
    stranded_requeued: np.ndarray | None = None
    #: per-type tasks stranded by a core outage and discarded.
    stranded_dropped: np.ndarray | None = None
    #: FAULT/RECOVERY events processed during the replay.
    n_fault_events: int = 0

    @property
    def reward_rate(self) -> float:
        """Reward per second — comparable to the Stage 3 prediction.

        0.0 for a degenerate (non-positive) horizon: no time passed, so
        no rate was sustained.
        """
        if self.duration <= 0.0:
            return 0.0
        return self.total_reward / self.duration

    @property
    def drop_fraction(self) -> np.ndarray:
        """Per-type fraction of arrivals that were dropped."""
        arrivals = self.completed + self.dropped
        out = np.zeros_like(arrivals, dtype=float)
        nz = arrivals > 0
        out[nz] = self.dropped[nz] / arrivals[nz]
        return out

    @property
    def utilization(self) -> np.ndarray:
        """Per-core fraction of the horizon spent executing.

        All-zeros for a degenerate (non-positive) horizon.
        """
        if self.duration <= 0.0:
            return np.zeros_like(self.busy_time)
        return self.busy_time / self.duration

    def tracking_error(self) -> float:
        """Mean absolute ``ATC - TC`` over entries with ``TC > 0``.

        The second step's stated goal is to keep ``ATC/TC`` close to 1;
        this reports how well it did, in tasks/second.
        """
        mask = self.tc > 0
        if not mask.any():
            return 0.0
        return float(np.abs(self.atc[mask] - self.tc[mask]).mean())

    def rate_ratios(self) -> np.ndarray:
        """``ATC/TC`` over entries with ``TC > 0`` (flattened)."""
        mask = self.tc > 0
        return self.atc[mask] / self.tc[mask]

    def response_time_percentiles(self, task_type: int,
                                  qs=(50.0, 95.0, 99.0)) -> np.ndarray:
        """Response-time (sojourn) percentiles for one task type, seconds.

        Requires the engine to have collected latencies
        (``collect_latency=True``, the default); raises otherwise.
        Returns NaNs when the type completed no tasks.
        """
        if self.response_times is None:
            raise RuntimeError("latencies were not collected in this run")
        samples = self.response_times[task_type]
        if samples.size == 0:
            return np.full(len(qs), np.nan)
        return np.percentile(samples, qs)

    def to_dict(self) -> dict:
        """JSON-friendly summary (machine-readable, cache-style).

        Scalars plus per-type count vectors; the large per-core matrices
        (``atc``/``tc``/``busy_by_type``) and raw latency samples are
        deliberately omitted — consumers needing those hold the object.
        """
        doc = {
            "schema": 1,
            "duration_s": self.duration,
            "total_reward": self.total_reward,
            "reward_rate": self.reward_rate,
            "completed": self.completed.tolist(),
            "dropped": self.dropped.tolist(),
            "drop_fraction": self.drop_fraction.tolist(),
            "mean_utilization": float(self.utilization.mean()),
            "tracking_error": self.tracking_error(),
            "n_fault_events": int(self.n_fault_events),
            "stranded_requeued": (
                None if self.stranded_requeued is None
                else self.stranded_requeued.tolist()),
            "stranded_dropped": (
                None if self.stranded_dropped is None
                else self.stranded_dropped.tolist()),
        }
        return doc

    def slack_utilization(self, task_type: int,
                          deadline_slack: float) -> float:
        """Mean fraction of the deadline slack actually consumed.

        1.0 would mean every completion landed exactly on its deadline;
        small values mean the scheduler had headroom.  NaN with no
        completions or a non-positive slack.
        """
        if self.response_times is None:
            raise RuntimeError("latencies were not collected in this run")
        samples = self.response_times[task_type]
        if samples.size == 0 or deadline_slack <= 0.0:
            return float("nan")
        return float(samples.mean() / deadline_slack)
