"""RL011 bad: exact float equality on physical quantities."""


def redline_hit(t_inlet_c, redline_c):
    return t_inlet_c == redline_c                     # line 5: both phys


def at_half_load(node_power_kw):
    return node_power_kw == 0.3965                    # line 9: vs literal


def outlet_pinned(t_out):
    return t_out != 15.0                              # line 13
