"""Inline suppression comments.

Two forms, mirroring the usual lint pragmas:

* ``# repro-lint: disable=RL001`` (or ``RL001,RL020``) on the reported
  line suppresses those codes for that line only;
* ``# repro-lint: disable-file=RL004`` anywhere in the file (by
  convention near the top) suppresses the codes for the whole file;
  ``disable-file=all`` silences every rule.

Comments are located with :mod:`tokenize`, so the pragma text inside a
string literal is inert.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppressions", "parse_suppressions"]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"(all|RL\d{3}(?:\s*,\s*RL\d{3})*)")


@dataclass
class Suppressions:
    """Suppression state for one file."""

    line_codes: dict[int, frozenset[str]] = field(default_factory=dict)
    file_codes: frozenset[str] = frozenset()
    file_all: bool = False

    def is_suppressed(self, code: str, line: int) -> bool:
        if self.file_all or code in self.file_codes:
            return True
        return code in self.line_codes.get(line, frozenset())


def parse_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for pragma comments.

    Tokenization errors (the engine lints only files that already
    parsed, but be safe) yield an empty suppression set.
    """
    line_codes: dict[int, set[str]] = {}
    file_codes: set[str] = set()
    file_all = False
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        kind, codes_text = match.groups()
        if codes_text == "all":
            if kind == "disable-file":
                file_all = True
            continue                     # per-line "all" is not a thing
        codes = {c.strip() for c in codes_text.split(",")}
        if kind == "disable-file":
            file_codes.update(codes)
        else:
            line_codes.setdefault(tok.start[0], set()).update(codes)
    return Suppressions(
        line_codes={ln: frozenset(cs) for ln, cs in line_codes.items()},
        file_codes=frozenset(file_codes),
        file_all=file_all)
