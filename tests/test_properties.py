"""Cross-module property-based tests (hypothesis).

These assert the structural invariants the three-stage decomposition's
correctness rests on, over randomized inputs rather than fixed examples:
monotonicity of the thermal map, conservation in the power split,
feasibility preservation in Stage 2, and scheduler safety.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.stage1 import build_arr_functions, distribute_node_power
from repro.core.stage2 import convert_power_to_pstates
from repro.optimize.linprog import LinearProgram
from repro.optimize.piecewise import PiecewiseLinear

# hypothesis shares the session-scoped fixtures; silence the check that
# would otherwise flag them (they are read-only by design).
RELAXED = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.function_scoped_fixture])


class TestThermalMonotonicity:
    @given(data=st.data())
    @RELAXED
    def test_more_power_never_cools_any_inlet(self, small_dc, data):
        model = small_dc.thermal
        n = small_dc.n_nodes
        p = data.draw(hnp.arrays(float, n,
                                 elements=st.floats(0.0, 1.5)))
        bump_idx = data.draw(st.integers(0, n - 1))
        bump = data.draw(st.floats(0.01, 0.5))
        t = np.full(small_dc.n_crac, 15.0)
        before = model.steady_state(t, p).t_in
        p2 = p.copy()
        p2[bump_idx] += bump
        after = model.steady_state(t, p2).t_in
        assert np.all(after >= before - 1e-9)

    @given(data=st.data())
    @RELAXED
    def test_energy_conservation_random_loads(self, small_dc, data):
        model = small_dc.thermal
        p = data.draw(hnp.arrays(float, small_dc.n_nodes,
                                 elements=st.floats(0.0, 2.0)))
        t = np.full(small_dc.n_crac, float(data.draw(st.floats(10.0, 20.0))))
        state = model.steady_state(t, p)
        assert state.crac_heat_kw.sum() == pytest.approx(p.sum(),
                                                         rel=1e-6, abs=1e-9)

    @given(shift=st.floats(0.5, 5.0))
    @RELAXED
    def test_uniform_outlet_shift_shifts_inlets(self, small_dc, shift):
        """Raising every CRAC outlet by d raises every inlet by exactly d
        (the map is affine with row sums 1)."""
        model = small_dc.thermal
        p = np.full(small_dc.n_nodes, 0.6)
        base = model.steady_state(np.full(small_dc.n_crac, 14.0), p).t_in
        moved = model.steady_state(np.full(small_dc.n_crac, 14.0 + shift),
                                   p).t_in
        np.testing.assert_allclose(moved - base, shift, atol=1e-9)


class TestPowerSplitConservation:
    @given(data=st.data())
    @RELAXED
    def test_distribute_conserves_and_bounds(self, small_dc,
                                             small_workload, data):
        arrs = build_arr_functions(small_dc, small_workload, 50.0)
        caps = np.asarray([n.n_cores * n.spec.p0_power_kw
                           for n in small_dc.nodes])
        frac = data.draw(hnp.arrays(float, small_dc.n_nodes,
                                    elements=st.floats(0.0, 1.0)))
        budgets = frac * caps
        core_power = distribute_node_power(small_dc, arrs, budgets)
        assert np.all(core_power >= -1e-12)
        for node in small_dc.nodes:
            sl = list(node.core_indices)
            assert core_power[sl].sum() == pytest.approx(
                budgets[node.index], abs=1e-9)
            assert np.all(core_power[sl] <= node.spec.p0_power_kw + 1e-12)

    @given(data=st.data())
    @RELAXED
    def test_split_achieves_hull_value(self, small_dc, small_workload,
                                       data):
        """sum ARR(p_c) == n * ARR(C/n): the split is optimal."""
        arrs = build_arr_functions(small_dc, small_workload, 50.0)
        node = small_dc.nodes[data.draw(
            st.integers(0, small_dc.n_nodes - 1))]
        cap = node.n_cores * node.spec.p0_power_kw
        budget = data.draw(st.floats(0.0, 1.0)) * cap
        budgets = np.zeros(small_dc.n_nodes)
        budgets[node.index] = budget
        core_power = distribute_node_power(small_dc, arrs, budgets)
        hull = arrs[node.type_index].concave
        got = hull(core_power[list(node.core_indices)]).sum()
        want = node.n_cores * hull(budget / node.n_cores)
        assert got == pytest.approx(want, rel=1e-9, abs=1e-9)


class TestStage2Safety:
    @given(data=st.data())
    @RELAXED
    def test_never_exceeds_budget(self, small_dc, data):
        """For ANY core-power request and ANY achievable budget, the
        conversion respects the budget."""
        n = small_dc.n_cores
        frac = data.draw(hnp.arrays(float, n,
                                    elements=st.floats(0.0, 1.0)))
        p0 = np.asarray([small_dc.node_types[t].p0_power_kw
                         for t in small_dc.core_type])
        core_power = frac * p0
        budget_frac = data.draw(st.floats(0.0, 1.0))
        max_power = small_dc.node_power_kw(small_dc.all_p0_pstates())
        budget = small_dc.node_base_power \
            + budget_frac * (max_power - small_dc.node_base_power)
        result = convert_power_to_pstates(small_dc, core_power, budget)
        assert np.all(result.node_power_kw <= budget + 1e-9)
        eta = small_dc.node_types[0].n_pstates
        assert np.all((result.pstates >= 0) & (result.pstates < eta))


class TestSchedulerSafety:
    @given(data=st.data())
    @RELAXED
    def test_selected_core_always_meets_deadline(self, scenario,
                                                 assignment, data):
        from repro.core.scheduler import DynamicScheduler

        dc, wl = scenario.datacenter, scenario.workload
        sched = DynamicScheduler(dc, wl, assignment.tc, assignment.pstates)
        i = data.draw(st.integers(0, wl.n_task_types - 1))
        now = data.draw(st.floats(0.0, 100.0))
        slack = data.draw(st.floats(0.1, 50.0))
        free = data.draw(hnp.arrays(float, dc.n_cores,
                                    elements=st.floats(0.0, 120.0)))
        deadline = now + slack
        core = sched.select_core(i, deadline, now, free)
        if core is not None:
            start = max(now, free[core])
            assert start + sched.exec_time[i, core] <= deadline + 1e-9
            assert assignment.tc[i, core] > 0


class TestPWLAlgebra:
    @given(
        xs=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=8,
                    unique=True),
        factor=st.floats(0.1, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_scale_linearity(self, xs, factor):
        xs = sorted(xs)
        ys = list(np.cumsum(np.abs(xs)))
        f = PiecewiseLinear(xs, ys)
        g = f.scale(factor)
        grid = np.linspace(xs[0], xs[-1], 17)
        np.testing.assert_allclose(g(grid), factor * f(grid), rtol=1e-12)

    @given(
        ys=st.lists(st.floats(-50, 50), min_size=2, max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_majorant_dominates_everywhere(self, ys):
        """Not just at breakpoints: the hull dominates on a dense grid."""
        xs = np.arange(len(ys), dtype=float)
        f = PiecewiseLinear(xs, ys)
        hull = f.concave_majorant()
        grid = np.linspace(0, len(ys) - 1, 101)
        assert np.all(hull(grid) >= f(grid) - 1e-9)


class TestLPWrapperProperties:
    @given(
        # coefficients rounded away from the solver's ~1e-7 tolerance
        c=st.lists(st.floats(-5, 5).map(lambda x: round(x, 2)),
                   min_size=1, max_size=6),
        ub=st.lists(st.floats(0.1, 10.0), min_size=6, max_size=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_box_lp_solved_exactly(self, c, ub):
        """With only box constraints, maximization picks ub where c > 0."""
        n = len(c)
        lp = LinearProgram(maximize=True)
        lp.add_variables(n, lb=0.0, ub=ub[:n], objective=c)
        sol = lp.solve()
        expect = sum(ci * ui for ci, ui in zip(c, ub[:n]) if ci > 0)
        assert sol.objective == pytest.approx(expect, rel=1e-9, abs=1e-9)
