"""Swappable numeric kernels for the solver's hot loops.

The solver evaluates the same dense linear-algebra primitives thousands
of times per run: steady-state heat flow (Eq. 5), per-node power
(Eq. 1/Eq. 23), the stage-1 LP segment assembly and breakpoint fill, and
the stage-2 integer rounding.  This package provides two interchangeable
implementations of those primitives:

* :mod:`repro.kernels.reference` — scalar, per-core / per-node Python
  loops written to be obviously correct.  The oracle.
* :mod:`repro.kernels.vectorized` — NumPy array programs over
  precomputed lookup tables (:mod:`repro.kernels.tables`).  The default.

Both expose the same module-level functions (the *kernel contract*, see
``docs/KERNELS.md``):

``node_power_kw(dc, pstates)``
    Eq. 1 node powers for one global P-state vector.
``node_power_batch(dc, pstates_2d)``
    Eq. 1 for a whole batch of P-state vectors at once.
``steady_state_batch(model, t_crac_out_2d, node_power_2d)``
    Batched steady-state solves reusing the model's factored
    ``(I - A_MM)`` system; returns ``(t_in, t_out, crac_heat_kw)``.
``convert_power_to_pstates(dc, core_power_kw, node_budget_kw)``
    The stage-2 round-up + trim procedure (Section V.B.3).
``assemble_segments(dc, arrs)``
    Stage-1 LP variable layout ``(node_of_var, caps, slopes)``.
``distribute_node_power(dc, arrs, node_core_power)``
    Stage-1 breakpoint-quantized greedy fill.
``wrap_cop(cop_model)``
    CoP evaluation strategy (identity or memoized lookup).

Callers never import the implementation modules directly — they go
through :func:`active`, and users pick a kernel with ``--kernel`` on the
CLI, ``SolveOptions(kernel=...)`` on the API, or :func:`use_kernel` in
code.  Kernel inputs are validated by the public call sites
(``DataCenter.node_power_kw``, ``stage2.convert_power_to_pstates``, ...)
before dispatch, so kernels may assume well-formed shapes and ranges.

Equivalence contract: integer outputs (P-states, variable layouts) are
bit-identical between kernels; floating-point outputs agree within
``repro.units.approx_eq`` tolerance (most are bit-identical too — see
``docs/KERNELS.md`` for the op-by-op guarantees and the test harness
that enforces them).
"""

from __future__ import annotations

import importlib
from contextlib import contextmanager
from types import ModuleType
from typing import Iterator

__all__ = ["DEFAULT_KERNEL", "available_kernels", "active", "active_name",
           "set_kernel", "use_kernel"]

_KERNEL_NAMES: tuple[str, ...] = ("reference", "vectorized")

#: The kernel used when nothing is selected explicitly.
DEFAULT_KERNEL: str = "vectorized"

_active_name: str = DEFAULT_KERNEL


def available_kernels() -> tuple[str, ...]:
    """Names accepted by :func:`set_kernel` / ``--kernel``."""
    return _KERNEL_NAMES


def active_name() -> str:
    """Name of the currently selected kernel."""
    return _active_name


def active() -> ModuleType:
    """The currently selected kernel implementation module."""
    return importlib.import_module(f"repro.kernels.{_active_name}")


def set_kernel(name: str) -> str:
    """Select a kernel process-wide; returns the previous selection.

    Prefer :func:`use_kernel` (scoped) over calling this directly —
    kernel choice is global state, and un-restored changes leak into
    unrelated code.
    """
    global _active_name
    if name not in _KERNEL_NAMES:
        raise ValueError(
            f"unknown kernel {name!r}; choose from "
            f"{', '.join(_KERNEL_NAMES)}")
    previous = _active_name
    _active_name = name
    return previous


@contextmanager
def use_kernel(name: str | None) -> Iterator[None]:
    """Scoped kernel selection; ``None`` keeps the current kernel.

    Restores the previous selection on exit, so nesting works and
    library code cannot leak a kernel choice into its caller.
    """
    if name is None:
        yield
        return
    previous = set_kernel(name)
    try:
        yield
    finally:
        set_kernel(previous)
