"""Tests for repro.validate — the cross-technique solution auditor."""

import numpy as np
import pytest

from repro.validate import validate_solution


class TestValidSolutions:
    def test_three_stage_passes(self, scenario, assignment):
        rep = validate_solution(
            scenario.datacenter, scenario.workload, scenario.p_const,
            assignment.t_crac_out, assignment.pstates, assignment.tc)
        assert rep.ok, rep.violations
        assert rep.reward_rate == pytest.approx(assignment.reward_rate,
                                                rel=1e-9)
        assert rep.total_power_kw <= scenario.p_const + 1e-6
        rep.raise_if_invalid()  # no-op when ok

    def test_baseline_passes(self, scenario, baseline):
        rep = validate_solution(
            scenario.datacenter, scenario.workload, scenario.p_const,
            baseline.t_crac_out, baseline.pstates, baseline.tc)
        assert rep.ok, rep.violations

    def test_all_off_passes_with_zero_reward(self, scenario):
        dc = scenario.datacenter
        off = dc.all_off_pstates()
        tc = np.zeros((scenario.workload.n_task_types, dc.n_cores))
        rep = validate_solution(dc, scenario.workload, scenario.p_const,
                                np.full(dc.n_crac, 15.0), off, tc)
        assert rep.ok
        assert rep.reward_rate == 0.0


class TestViolationDetection:
    def test_detects_power_cap_violation(self, scenario, assignment):
        rep = validate_solution(
            scenario.datacenter, scenario.workload,
            p_const=1.0,    # impossible cap
            t_crac_out=assignment.t_crac_out,
            pstates=assignment.pstates, tc=assignment.tc)
        assert not rep.ok
        assert any("power cap" in v for v in rep.violations)
        with pytest.raises(AssertionError, match="power cap"):
            rep.raise_if_invalid()

    def test_detects_redline_violation(self, scenario, assignment):
        dc = scenario.datacenter
        hot = np.full(dc.n_crac, 25.0)
        ps = dc.all_p0_pstates()
        tc = np.zeros_like(assignment.tc)
        rep = validate_solution(dc, scenario.workload, 1e9, hot, ps, tc)
        assert any("redline" in v for v in rep.violations)

    def test_detects_overutilization(self, scenario, assignment):
        rep = validate_solution(
            scenario.datacenter, scenario.workload, scenario.p_const,
            assignment.t_crac_out, assignment.pstates,
            assignment.tc * 3.0)
        assert any("over-utilized" in v for v in rep.violations)

    def test_detects_arrival_rate_violation(self, scenario, assignment):
        dc, wl = scenario.datacenter, scenario.workload
        tc = assignment.tc.copy()
        # pour a huge rate of type 0 onto one core that can run it
        i = int(np.argmax(assignment.tc.sum(axis=1) > 0))
        k = int(np.argmax(assignment.tc[i] > 0))
        tc[i, k] += 10 * wl.arrival_rates[i] * 0  # keep util sane
        tc[i] *= 5.0  # exceed lambda while spreading utilization
        rep = validate_solution(dc, wl, 1e9, assignment.t_crac_out,
                                assignment.pstates, tc)
        assert any("arrival rate" in v or "over-utilized" in v
                   for v in rep.violations)

    def test_detects_rate_on_off_core(self, scenario, assignment):
        dc = scenario.datacenter
        off_state = np.asarray([dc.node_types[t].off_pstate
                                for t in dc.core_type])
        off_cores = np.nonzero(assignment.pstates == off_state)[0]
        if off_cores.size == 0:
            pytest.skip("no off cores in this assignment")
        tc = assignment.tc.copy()
        tc[0, off_cores[0]] = 0.5
        rep = validate_solution(dc, scenario.workload, scenario.p_const,
                                assignment.t_crac_out, assignment.pstates,
                                tc)
        assert any("cannot run" in v for v in rep.violations)

    def test_detects_negative_rates(self, scenario, assignment):
        tc = assignment.tc.copy()
        tc[0, 0] = -1.0
        rep = validate_solution(
            scenario.datacenter, scenario.workload, scenario.p_const,
            assignment.t_crac_out, assignment.pstates, tc)
        assert any("negative" in v for v in rep.violations)

    def test_detects_bad_pstate_index(self, scenario, assignment):
        ps = assignment.pstates.copy()
        ps[0] = 99
        rep = validate_solution(
            scenario.datacenter, scenario.workload, scenario.p_const,
            assignment.t_crac_out, ps, assignment.tc)
        assert rep.violations == ["P-state index out of range"]
        assert np.isnan(rep.total_power_kw)

    def test_shape_errors_raise(self, scenario, assignment):
        with pytest.raises(ValueError, match="pstates"):
            validate_solution(
                scenario.datacenter, scenario.workload, scenario.p_const,
                assignment.t_crac_out, assignment.pstates[:5],
                assignment.tc)
