"""Tests for repro.obs.metrics — counters, gauges, histograms, merging."""

import pytest

from repro import obs
from repro.obs.metrics import (_NULL_METRIC, MetricsRegistry, counter,
                               gauge, histogram)


class TestDisabled:
    def test_accessors_return_shared_noop(self):
        assert counter("a") is _NULL_METRIC
        assert gauge("b") is _NULL_METRIC
        assert histogram("c") is _NULL_METRIC

    def test_noop_accepts_all_operations(self):
        counter("a").inc(5)
        gauge("b").set(3.0)
        histogram("c").observe(1.0)
        assert obs.current_registry().snapshot() == {}


class TestKinds:
    def test_counter_accumulates(self):
        obs.enable()
        counter("lp.solves").inc()
        counter("lp.solves").inc(4)
        snap = obs.current_registry().snapshot()
        assert snap["lp.solves"] == {"kind": "counter", "value": 5}

    def test_gauge_last_write_wins(self):
        obs.enable()
        gauge("size").set(10)
        gauge("size").set(3)
        assert obs.current_registry().snapshot()["size"]["value"] == 3.0

    def test_histogram_moments(self):
        obs.enable()
        for v in (2.0, 4.0, 9.0):
            histogram("h").observe(v)
        doc = obs.current_registry().snapshot()["h"]
        assert doc == {"kind": "histogram", "count": 3, "total": 15.0,
                       "min": 2.0, "max": 9.0}
        assert histogram("h").mean == 5.0

    def test_empty_histogram_snapshot_has_null_extremes(self):
        obs.enable()
        obs.current_registry().histogram("empty")
        doc = obs.current_registry().snapshot()["empty"]
        assert doc["count"] == 0
        assert doc["min"] is None and doc["max"] is None

    def test_kind_mismatch_raises(self):
        obs.enable()
        counter("x").inc()
        with pytest.raises(TypeError, match="already registered"):
            histogram("x")


class TestMerge:
    def test_merge_adds_counters_and_moments(self):
        obs.enable()
        counter("c").inc(2)
        histogram("h").observe(1.0)
        worker = MetricsRegistry(enabled=True)
        worker.counter("c").inc(3)
        worker.histogram("h").observe(5.0)
        worker.gauge("g").set(7.0)
        obs.current_registry().merge(worker.snapshot())
        snap = obs.current_registry().snapshot()
        assert snap["c"]["value"] == 5
        assert snap["h"] == {"kind": "histogram", "count": 2, "total": 6.0,
                             "min": 1.0, "max": 5.0}
        assert snap["g"]["value"] == 7.0

    def test_merge_is_order_independent_for_histograms(self):
        parts = []
        for values in ((1.0, 2.0), (9.0,), (0.5, 4.0)):
            reg = MetricsRegistry(enabled=True)
            for v in values:
                reg.histogram("h").observe(v)
            parts.append(reg.snapshot())
        forward = MetricsRegistry(enabled=True)
        backward = MetricsRegistry(enabled=True)
        for p in parts:
            forward.merge(p)
        for p in reversed(parts):
            backward.merge(p)
        assert forward.snapshot() == backward.snapshot()

    def test_merge_empty_histogram_is_identity(self):
        obs.enable()
        histogram("h").observe(2.0)
        worker = MetricsRegistry(enabled=True)
        worker.histogram("h")
        before = obs.current_registry().snapshot()
        obs.current_registry().merge(worker.snapshot())
        assert obs.current_registry().snapshot() == before

    def test_merge_unknown_kind_raises(self):
        obs.enable()
        with pytest.raises(ValueError, match="unknown metric kind"):
            obs.current_registry().merge({"bad": {"kind": "exotic"}})
