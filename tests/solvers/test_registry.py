"""Solver backend registry semantics and ``solve()`` dispatch."""

from __future__ import annotations

import pytest

from repro.core.api import (SolveOptions, SolveRequest, available_methods,
                            solve)
from repro.experiments.config import PAPER_SET_1, scaled_down
from repro.experiments.generator import generate_scenario
from repro.solvers import get_solver, list_solvers, register_solver

from tests.conftest import SEED


@pytest.fixture(scope="module")
def tiny():
    return generate_scenario(scaled_down(PAPER_SET_1, 6), SEED)


class TestRegistry:
    def test_builtins_registered(self):
        names = list_solvers()
        for expected in ("three_stage", "best_psi", "baseline", "exact",
                         "annealing", "evolution"):
            assert expected in names

    def test_sorted_and_stable(self):
        assert list(list_solvers()) == sorted(list_solvers())
        assert list_solvers() == list_solvers()

    def test_available_methods_is_registry(self):
        assert available_methods() == list_solvers()

    def test_get_unknown_raises_with_choices(self):
        with pytest.raises(ValueError, match="three_stage"):
            get_solver("nope")

    def test_duplicate_registration_raises(self):
        def fake(request):
            raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_solver("three_stage", fake)

    def test_replace_and_external_registration(self, tiny):
        calls = []

        def fake(request):
            calls.append(request)
            return solve(request, method="baseline")

        register_solver("test_fake", fake)
        try:
            result = solve(SolveRequest(tiny.datacenter, tiny.workload,
                                        tiny.p_const),
                           method="test_fake")
            assert calls and result.reward_rate >= 0.0
            # replace=True swaps the implementation
            register_solver("test_fake",
                            lambda req: solve(req, method="baseline"),
                            replace=True)
        finally:
            from repro import solvers
            solvers._REGISTRY.pop("test_fake", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_solver("", lambda req: None)


class TestOptionsDispatch:
    def test_backend_option_dispatches(self, tiny):
        request = SolveRequest(
            tiny.datacenter, tiny.workload, tiny.p_const,
            options=SolveOptions(backend="baseline"))
        result = solve(request)
        assert result.to_dict()["method"] == "baseline"

    def test_method_overrides_backend(self, tiny):
        request = SolveRequest(
            tiny.datacenter, tiny.workload, tiny.p_const,
            options=SolveOptions(backend="baseline"))
        result = solve(request, method="three_stage")
        assert result.to_dict()["method"] == "three_stage"

    def test_unknown_backend_rejected_at_options(self):
        with pytest.raises(ValueError, match="unknown solver backend"):
            SolveOptions(backend="nope")

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError, match="max_evals"):
            SolveOptions(max_evals=0)

    def test_default_backend_is_three_stage(self, tiny):
        request = SolveRequest(tiny.datacenter, tiny.workload, tiny.p_const)
        assert request.options.backend == "three_stage"
        assert solve(request).to_dict()["method"] == "three_stage"
