"""Eq. 8 — the HP Utility Data Center CoP curve (supporting data).

Prints CoP over the CRAC operating range and the resulting cost of
removing 1 kW of heat, the trade-off the thermal-aware assignment
exploits (warmer outlets are cheaper but squeeze the redline margins).
"""

import numpy as np

from repro.power.cop import HP_UTILITY_COP


def bench_cop_curve(benchmark, capsys):
    taus = np.linspace(10.0, 30.0, 21)
    cops = benchmark(HP_UTILITY_COP, taus)

    assert np.all(np.diff(cops) > 0)          # monotone on the range
    assert HP_UTILITY_COP(15.0) == 0.0068 * 225 + 0.0008 * 15 + 0.458

    with capsys.disabled():
        print()
        print("Eq. 8 — CoP(tau) = 0.0068 tau^2 + 0.0008 tau + 0.458")
        print(f"{'outlet C':>9}{'CoP':>8}{'kW input per kW heat':>22}")
        for tau in (10.0, 15.0, 20.0, 25.0, 30.0):
            cop = HP_UTILITY_COP(tau)
            print(f"{tau:>9.0f}{cop:>8.3f}{1.0 / cop:>22.3f}")
