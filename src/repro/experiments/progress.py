"""Structured per-run progress reporting for the experiment engine.

Every run the engine finishes — computed, replayed from cache, or failed
— becomes one :class:`RunEvent`.  A :class:`ProgressReporter` collects
them (tests and callers can inspect counts); :class:`PrintingReporter`
additionally prints one line per event, which is what the CLI's
``fig6``/``sweep`` commands show.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import TextIO

__all__ = ["RunEvent", "ProgressReporter", "PrintingReporter"]


@dataclass(frozen=True)
class RunEvent:
    """One engine-level run outcome.

    Attributes
    ----------
    set_name:
        Name of the simulation set (``ScenarioConfig.name``).
    run_index / n_runs:
        Position of the run within its set (0-based) and the set size.
    seed:
        Scenario seed of the run.
    status:
        ``"ok"``, ``"degenerate"`` (zero-reward baseline) or
        ``"failed"``.
    source:
        ``"cache"`` when replayed from the on-disk cache, ``"worker"``
        when computed.
    worker:
        Where the run executed: ``"inline"`` for the serial path,
        ``"pid:<n>"`` for a pool worker, ``"cache"`` for cache hits.
    wall_time_s:
        Wall-clock seconds the run took (0 for cache hits).
    detail:
        Free-form extra (e.g. best improvement, or the failure message).
    """

    set_name: str
    run_index: int
    n_runs: int
    seed: int
    status: str
    source: str
    worker: str
    wall_time_s: float
    detail: str = ""

    @property
    def run_id(self) -> str:
        """Stable identifier, e.g. ``"set1/seed1003"``."""
        return f"{self.set_name}/seed{self.seed}"

    @property
    def cache_hit(self) -> bool:
        return self.source == "cache"

    def format(self) -> str:
        """One human-readable progress line."""
        tag = {"ok": "done", "degenerate": "DEGEN", "failed": "FAIL"}.get(
            self.status, self.status)
        src = "cache hit" if self.cache_hit else self.worker
        line = (f"  [{self.set_name}] run {self.run_index + 1}/"
                f"{self.n_runs} seed={self.seed} {tag:<5} "
                f"({src}, {self.wall_time_s:.2f}s)")
        if self.detail:
            line += f" {self.detail}"
        return line


@dataclass
class ProgressReporter:
    """Collects :class:`RunEvent` objects and keeps running counters."""

    events: list[RunEvent] = field(default_factory=list)

    def emit(self, event: RunEvent) -> None:
        self.events.append(event)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.events if e.cache_hit)

    @property
    def computed(self) -> int:
        return sum(1 for e in self.events if not e.cache_hit)

    @property
    def failed(self) -> int:
        return sum(1 for e in self.events if e.status == "failed")

    @property
    def degenerate(self) -> int:
        return sum(1 for e in self.events if e.status == "degenerate")

    def summary(self) -> str:
        """One line: how much came from cache, how much was computed."""
        parts = [f"{len(self.events)} runs",
                 f"{self.cache_hits} cache hits",
                 f"{self.computed} computed"]
        if self.degenerate:
            parts.append(f"{self.degenerate} degenerate")
        if self.failed:
            parts.append(f"{self.failed} failed")
        return ", ".join(parts)


@dataclass
class PrintingReporter(ProgressReporter):
    """A reporter that also prints one line per run as it lands."""

    stream: TextIO = None  # type: ignore[assignment]

    def emit(self, event: RunEvent) -> None:  # pragma: no cover - console
        super().emit(event)
        print(event.format(), file=self.stream or sys.stdout, flush=True)
