"""Dense/sparse backend equivalence + zonal alpha construction.

The dense backend is the reference oracle (``docs/THERMAL.md``); the
sparse factorization must agree on every public query within the
tolerance policy.  Property-based over operating points so differing
accumulation orders cannot hide behind one lucky example.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.datacenter import build_datacenter
from repro.thermal import (DEFAULT_COUPLING, SPARSE_AUTO_UNITS,
                           HeatFlowModel, ThermalLinearization,
                           attach_zonal_thermal, zonal_block_alpha,
                           zone_partition)

#: Backend agreement tolerance: both paths solve the same well-conditioned
#: linear system; only the factorization/accumulation order differs.
ATOL = 1e-9

RELAXED = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.function_scoped_fixture])


@pytest.fixture(scope="module")
def pair(small_dc):
    """The same room under both backends (dense is the oracle)."""
    dense = small_dc.thermal
    return dense, dense.with_backend("sparse")


class TestBackendAgreement:
    @given(data=st.data())
    @RELAXED
    def test_inlet_affine(self, pair, data):
        dense, sparse = pair
        t = data.draw(hnp.arrays(float, dense.n_crac,
                                 elements=st.floats(10.0, 25.0)))
        const_d, gain_d = dense.inlet_affine(t)
        const_s, gain_s = sparse.inlet_affine(t)
        np.testing.assert_allclose(const_s, const_d, atol=ATOL)
        np.testing.assert_allclose(gain_s, gain_d, atol=ATOL)

    @given(data=st.data())
    @RELAXED
    def test_steady_state_batch(self, pair, data):
        dense, sparse = pair
        rows = data.draw(st.integers(1, 4))
        p = data.draw(hnp.arrays(float, (rows, dense.n_nodes),
                                 elements=st.floats(0.0, 1.5)))
        t = data.draw(hnp.arrays(float, (rows, dense.n_crac),
                                 elements=st.floats(10.0, 25.0)))
        got = sparse.steady_state_batch(t, p)
        want = dense.steady_state_batch(t, p)
        np.testing.assert_allclose(got.t_in, want.t_in, atol=ATOL)
        np.testing.assert_allclose(got.t_out, want.t_out, atol=ATOL)
        np.testing.assert_allclose(got.crac_heat_kw, want.crac_heat_kw,
                                   atol=ATOL)

    @given(data=st.data())
    @RELAXED
    def test_without_nodes(self, pair, data):
        dense, sparse = pair
        dead = data.draw(st.lists(st.integers(0, dense.n_nodes - 1),
                                  min_size=1, max_size=dense.n_nodes - 1,
                                  unique=True))
        red_d = dense.without_nodes(dead)
        red_s = sparse.without_nodes(dead)
        np.testing.assert_allclose(red_s.alpha.toarray(), red_d.alpha,
                                   atol=ATOL)
        t = np.full(dense.n_crac, 15.0)
        p = np.linspace(0.2, 1.0, red_d.n_nodes)
        np.testing.assert_allclose(red_s.steady_state(t, p).t_in,
                                   red_d.steady_state(t, p).t_in,
                                   atol=ATOL)

    @given(data=st.data())
    @RELAXED
    def test_linearization_build(self, pair, small_dc, data):
        dense, sparse = pair
        t = data.draw(hnp.arrays(float, dense.n_crac,
                                 elements=st.floats(10.0, 25.0)))
        lin_d = ThermalLinearization.build(dense, t, small_dc.redline_c)
        lin_s = ThermalLinearization.build(sparse, t, small_dc.redline_c)
        np.testing.assert_allclose(lin_s.inlet_const, lin_d.inlet_const,
                                   atol=ATOL)
        np.testing.assert_allclose(lin_s.inlet_gain, lin_d.inlet_gain,
                                   atol=ATOL)
        np.testing.assert_allclose(lin_s.redline_rhs, lin_d.redline_rhs,
                                   atol=ATOL)
        np.testing.assert_allclose(lin_s.crac_coeff, lin_d.crac_coeff,
                                   atol=ATOL)
        assert lin_s.crac_const == pytest.approx(lin_d.crac_const,
                                                 abs=ATOL)

    def test_gain_rows_and_apply_gain(self, pair):
        dense, sparse = pair
        units = np.asarray([0, 2, dense.n_crac + 1, dense.n_units - 1])
        np.testing.assert_allclose(sparse.gain_rows(units),
                                   dense.inlet_gain[units], atol=ATOL)
        p = np.linspace(0.1, 0.9, dense.n_nodes)
        np.testing.assert_allclose(sparse.apply_gain(p),
                                   dense.apply_gain(p), atol=ATOL)


class TestBackendSelection:
    def test_dense_below_threshold(self, small_dc):
        assert small_dc.n_units < SPARSE_AUTO_UNITS
        assert small_dc.thermal.backend == "dense"

    def test_sparse_alpha_input_selects_sparse(self, small_dc):
        dense = small_dc.thermal
        model = HeatFlowModel(sp.csr_matrix(dense.alpha), dense.flows,
                              dense.n_crac)
        assert model.backend == "sparse"

    def test_with_backend_memoized_and_roundtrips(self, small_dc):
        dense = small_dc.thermal
        sparse = dense.with_backend("sparse")
        assert sparse.backend == "sparse"
        assert dense.with_backend("sparse") is sparse
        assert dense.with_backend("auto") is dense
        assert dense.with_backend("dense") is dense
        np.testing.assert_allclose(sparse.mix_dense, dense.mix,
                                   atol=ATOL)

    def test_unknown_backend_rejected(self, small_dc):
        dense = small_dc.thermal
        with pytest.raises(ValueError, match="unknown thermal backend"):
            HeatFlowModel(dense.alpha, dense.flows, dense.n_crac,
                          backend="banded")


class TestZonalAlpha:
    @pytest.fixture(scope="class")
    def room(self):
        rng = np.random.default_rng(7)
        return build_datacenter(n_nodes=30, n_crac=3, rng=rng)

    def test_partition_covers_every_node_once(self, room):
        zones = zone_partition(room.layout)
        assert len(zones) == room.n_crac
        all_nodes = np.concatenate([z.nodes for z in zones])
        np.testing.assert_array_equal(np.sort(all_nodes),
                                      np.arange(room.n_nodes))

    def test_alpha_row_stochastic_and_flow_conserving(self, room):
        alpha = zonal_block_alpha(room)
        flows = room.unit_flows
        np.testing.assert_allclose(
            np.asarray(alpha.sum(axis=1)).ravel(), 1.0, atol=1e-12)
        np.testing.assert_allclose(np.asarray(alpha.T @ flows).ravel(),
                                   flows, rtol=1e-9)

    def test_zero_coupling_is_block_diagonal(self, room):
        alpha = zonal_block_alpha(room, coupling=0.0).toarray()
        zones = zone_partition(room.layout)
        mask = np.zeros_like(alpha, dtype=bool)
        for z in zones:
            units = z.units(room.n_crac)
            mask[np.ix_(units, units)] = True
        assert np.all(alpha[~mask] == 0.0)

    def test_attach_builds_valid_model(self, room):
        model = attach_zonal_thermal(room, backend="sparse")
        assert room.thermal is model
        assert model.backend == "sparse"
        p = np.full(room.n_nodes, 0.5)
        state = model.steady_state(np.full(room.n_crac, 15.0), p)
        assert state.crac_heat_kw.sum() == pytest.approx(p.sum(), rel=1e-6)

    def test_sparse_matches_dense_on_zonal_room(self, room):
        alpha = zonal_block_alpha(room)
        s = HeatFlowModel(alpha, room.unit_flows, room.n_crac,
                          backend="sparse")
        d = HeatFlowModel(alpha.toarray(), room.unit_flows, room.n_crac,
                          backend="dense")
        t = np.full(room.n_crac, 14.0)
        p = np.linspace(0.2, 1.2, room.n_nodes)
        np.testing.assert_allclose(s.steady_state(t, p).t_in,
                                   d.steady_state(t, p).t_in, atol=ATOL)

    def test_coupling_validation(self, room):
        with pytest.raises(ValueError, match="coupling"):
            zonal_block_alpha(room, coupling=1.0)
        with pytest.raises(ValueError, match="coupling"):
            zonal_block_alpha(room, coupling=-0.1)
        assert 0.0 < DEFAULT_COUPLING < 1.0
