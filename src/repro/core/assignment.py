"""Three-stage assignment facade (Section V.B) and result verification.

``three_stage_assignment`` chains Stage 1 (power + CRAC outlets, with the
discretized temperature search), Stage 2 (integer P-states) and Stage 3
(desired execution rates) and returns everything a caller needs: the
final ``TC`` matrix for the dynamic scheduler, the predicted reward rate
(the Figure 6 metric), and enough intermediate state to audit the
constraints.

``best_psi_assignment`` reproduces the paper's "best of the two"
treatment: run the pipeline at several aggregation levels ψ and keep the
assignment with the highest Stage 3 reward rate.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.stage1 import Stage1Solution, solve_stage1
from repro.core.stage2 import Stage2Solution, solve_stage2
from repro.core.stage3 import Stage3Solution, solve_stage3
from repro.datacenter.builder import DataCenter
from repro.datacenter.power import PowerBreakdown, total_power
from repro.obs.trace import span as obs_span
from repro.optimize.search import SearchResult
from repro.workload.tasktypes import Workload

__all__ = ["AssignmentResult", "three_stage_assignment", "best_psi_assignment"]


@dataclass
class AssignmentResult:
    """Complete output of the paper's first-step assignment.

    Attributes
    ----------
    psi:
        Aggregation level the ARR functions were built with.
    t_crac_out:
        Assigned CRAC outlet temperatures (decision 3 of Eq. 7).
    pstates:
        Per-core integer P-states (decision 1).
    tc:
        Desired execution-rate matrix (decision 2), ``(T, NCORES)``.
    reward_rate:
        Stage 3 objective — the steady-state total reward rate.
    stage1 / stage2 / stage3 / search:
        Intermediate artifacts for auditing and plots.
    """

    psi: float
    t_crac_out: np.ndarray
    pstates: np.ndarray
    tc: np.ndarray
    reward_rate: float
    stage1: Stage1Solution
    stage2: Stage2Solution
    stage3: Stage3Solution
    search: SearchResult

    def power(self, datacenter: DataCenter) -> PowerBreakdown:
        """Exact (nonlinear, clamped) total power at this assignment."""
        return total_power(datacenter, self.t_crac_out,
                           self.stage2.node_power_kw)

    def verify(self, datacenter: DataCenter, p_const: float,
               tol: float = 1e-6) -> None:
        """Assert the power cap and redlines hold at the final assignment.

        Raises ``AssertionError`` with a diagnostic message on violation;
        used by tests and the experiment runner as a safety net.
        """
        model = datacenter.require_thermal()
        margin = model.redline_margin(self.t_crac_out,
                                      self.stage2.node_power_kw,
                                      datacenter.redline_c)
        if margin.min() < -tol:
            raise AssertionError(
                f"redline violated by {-margin.min():.4f} C at unit "
                f"{int(margin.argmin())}")
        breakdown = self.power(datacenter)
        if breakdown.total > p_const + tol * max(1.0, p_const):
            raise AssertionError(
                f"power cap violated: {breakdown.total:.3f} kW > "
                f"{p_const:.3f} kW")

    def to_dict(self) -> dict:
        """JSON-friendly summary (the :class:`SolveOutcome` protocol)."""
        return {
            "method": "three_stage",
            "psi": self.psi,
            "reward_rate": self.reward_rate,
            "t_crac_out": self.t_crac_out.tolist(),
            "pstates": self.pstates.tolist(),
        }


def _legacy_positional(name: str, knob: str, legacy: tuple, current):
    """Deprecation shim: accept one tuning knob passed positionally."""
    if not legacy:
        return current
    if len(legacy) > 1:
        raise TypeError(
            f"{name}() takes at most one positional tuning argument "
            f"({knob}); pass the rest as keywords")
    warnings.warn(
        f"passing {knob} positionally to {name}() is deprecated; "
        f"use {knob}=... (see repro.core.api.SolveRequest for the "
        f"unified API)", DeprecationWarning, stacklevel=3)
    return legacy[0]


def three_stage_assignment(datacenter: DataCenter, workload: Workload,
                           p_const: float, *legacy, psi: float = 50.0,
                           search: str = "fast") -> AssignmentResult:
    """Run the full three-stage technique (Section V.B).

    ``psi`` and ``search`` are keyword-only; passing ``psi``
    positionally still works for one release but warns.  See
    :func:`repro.core.stage1.solve_stage1` for the ``search`` modes.
    """
    psi = _legacy_positional("three_stage_assignment", "psi", legacy, psi)
    with obs_span("three_stage", psi=psi, n_nodes=datacenter.n_nodes,
                  p_const=p_const):
        stage1, trace = solve_stage1(datacenter, workload,
                                     p_const=p_const, psi=psi, search=search)
        with obs_span("stage2"):
            stage2 = solve_stage2(datacenter, stage1)
        stage3 = solve_stage3(datacenter, workload, stage2.pstates)
    return AssignmentResult(
        psi=psi,
        t_crac_out=stage1.t_crac_out,
        pstates=stage2.pstates,
        tc=stage3.tc,
        reward_rate=stage3.reward_rate,
        stage1=stage1,
        stage2=stage2,
        stage3=stage3,
        search=trace,
    )


def best_psi_assignment(datacenter: DataCenter, workload: Workload,
                        p_const: float, *legacy,
                        psis: Sequence[float] = (25.0, 50.0),
                        search: str = "fast"
                        ) -> tuple[AssignmentResult, dict[float, AssignmentResult]]:
    """Run the pipeline for each ψ and keep the best Stage 3 reward.

    Returns ``(best, all_results)`` — the paper reports ψ=25, ψ=50 and
    "best of the two" separately (Figure 6), so callers get both.
    ``psis`` and ``search`` are keyword-only (positional ``psis`` is
    deprecated).
    """
    psis = _legacy_positional("best_psi_assignment", "psis", legacy, psis)
    if not psis:
        raise ValueError("need at least one psi value")
    results = {
        float(psi): three_stage_assignment(datacenter, workload, p_const,
                                           psi=psi, search=search)
        for psi in psis
    }
    best = max(results.values(), key=lambda r: r.reward_rate)
    return best, results
