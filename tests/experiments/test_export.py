"""Tests for repro.experiments.export — CSV series."""

import csv
import io

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.export import capacity_csv, fig6_csv, write_csv
from repro.experiments.runner import RunResult, SetResult
from repro.experiments.sweeps import CapSweepPoint


def tiny_results():
    cfg = ScenarioConfig(name="s1", n_nodes=10)
    runs = [
        RunResult(seed=0, reward_by_psi={25.0: 105.0, 50.0: 110.0},
                  baseline_reward=100.0, p_const=10.0),
        RunResult(seed=1, reward_by_psi={25.0: 103.0, 50.0: 108.0},
                  baseline_reward=100.0, p_const=10.0),
    ]
    return {"s1": SetResult(config=cfg, runs=runs)}


class TestFig6Csv:
    def test_parses_back(self):
        text = fig6_csv(tiny_results())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 3   # psi=25, psi=50, best
        labels = {r["label"] for r in rows}
        assert labels == {"psi=25", "psi=50", "best"}
        for r in rows:
            assert float(r["ci_low"]) <= float(r["mean_improvement_pct"]) \
                <= float(r["ci_high"])
            assert int(r["n_runs"]) == 2

    def test_values_match_intervals(self):
        res = tiny_results()
        text = fig6_csv(res)
        rows = {r["label"]: r
                for r in csv.DictReader(io.StringIO(text))}
        ci = res["s1"].intervals["best"]
        assert float(rows["best"]["mean_improvement_pct"]) \
            == pytest.approx(ci.mean)


class TestCapacityCsv:
    def test_round_trip(self):
        points = [
            CapSweepPoint(p_const=10.0, reward_three_stage=100.0,
                          reward_baseline=90.0, power_used_kw=10.0,
                          marginal_reward_per_kw=5.0),
            CapSweepPoint(p_const=12.0, reward_three_stage=110.0,
                          reward_baseline=105.0, power_used_kw=12.0),
        ]
        rows = list(csv.DictReader(io.StringIO(capacity_csv(points))))
        assert len(rows) == 2
        assert float(rows[0]["p_const_kw"]) == 10.0
        assert float(rows[0]["improvement_pct"]) == pytest.approx(
            100.0 * 10.0 / 90.0)
        assert rows[1]["marginal_reward_per_kw"] == "nan"


class TestWrite:
    def test_write(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv("a,b\n1,2\n", path)
        assert path.read_text() == "a,b\n1,2\n"
