"""ThermalSchedulingEnv: determinism, feasibility, API validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import PAPER_SET_1, scaled_down
from repro.experiments.generator import generate_scenario
from repro.rl import (GreedyPlanPolicy, ThermalSchedulingEnv,
                      make_gymnasium_env)

from tests.conftest import SEED


@pytest.fixture(scope="module")
def scenario():
    return generate_scenario(scaled_down(PAPER_SET_1, 6), SEED)


def _make_env(scenario, **kwargs):
    defaults = dict(epoch_s=30.0, n_epochs=3, outlet_levels=4, tau_s=10.0)
    defaults.update(kwargs)
    return ThermalSchedulingEnv(scenario.datacenter, scenario.workload,
                                scenario.p_const, **defaults)


def _run_episode(env, policy, seed=0):
    """Full trajectory as a nested plain structure (byte-comparable)."""
    obs, info = env.reset(seed=seed)
    trajectory = [(obs.tolist(), info)]
    terminated = False
    while not terminated:
        obs, reward, terminated, truncated, info = env.step(policy(obs))
        trajectory.append((obs.tolist(), reward, terminated, truncated,
                           info))
    return trajectory


class TestDeterminism:
    def test_same_seed_identical_trajectories(self, scenario):
        env_a = _make_env(scenario)
        env_b = _make_env(scenario)
        traj_a = _run_episode(env_a, GreedyPlanPolicy(env_a), seed=7)
        traj_b = _run_episode(env_b, GreedyPlanPolicy(env_b), seed=7)
        assert traj_a == traj_b

    def test_seed_changes_trace(self, scenario):
        env = _make_env(scenario)
        _, info_a = env.reset(seed=0)
        _, info_b = env.reset(seed=123)
        # different seeds draw different Poisson traces (counts differ
        # with overwhelming probability on a multi-epoch horizon)
        assert info_a["seed"] != info_b["seed"]

    def test_reset_restarts_cleanly(self, scenario):
        env = _make_env(scenario)
        policy = GreedyPlanPolicy(env)
        first = _run_episode(env, policy, seed=3)
        second = _run_episode(env, policy, seed=3)
        assert first == second


class TestGreedyEpisode:
    def test_full_episode_without_violations(self, scenario):
        env = _make_env(scenario)
        policy = GreedyPlanPolicy(env)
        obs, info = env.reset(seed=0)
        assert obs.shape == (env.observation_size,)
        assert info["n_tasks"] >= 0
        steps = 0
        terminated = False
        while not terminated:
            obs, reward, terminated, truncated, info = env.step(policy(obs))
            steps += 1
            assert not truncated
            assert info["steady_margin_c"] >= -1e-6
            assert info["violation_minutes"] == pytest.approx(0.0)
            assert info["power_kw"] <= scenario.p_const * (1 + 1e-6)
            assert reward >= 0.0
        assert steps == env.n_epochs

    def test_greedy_beats_all_off(self, scenario):
        env = _make_env(scenario)
        policy = GreedyPlanPolicy(env)
        greedy = sum(r for _, r, *_ in
                     _run_episode(env, policy, seed=0)[1:])
        off_fill = max(spec.n_pstates
                       for spec in scenario.datacenter.node_types) - 1
        n_types = len(scenario.datacenter.node_types)
        idle = sum(r for _, r, *_ in _run_episode(
            env, lambda obs: (0, tuple([off_fill] * n_types)),
            seed=0)[1:])
        assert greedy >= idle

    def test_step_info_audit_fields(self, scenario):
        env = _make_env(scenario)
        obs, _ = env.reset(seed=0)
        action = GreedyPlanPolicy(env)(obs)
        _, _, _, _, info = env.step(action)
        for key in ("predicted_reward_rate", "steady_margin_c",
                    "violation_minutes", "power_kw", "n_tasks", "epoch"):
            assert key in info
        assert info["epoch"] == 0


class TestValidation:
    def test_step_before_reset_raises(self, scenario):
        env = _make_env(scenario)
        with pytest.raises(RuntimeError, match="reset"):
            env.step((0, (0,) * len(scenario.datacenter.node_types)))

    def test_step_past_episode_end_raises(self, scenario):
        env = _make_env(scenario, n_epochs=1)
        obs, _ = env.reset(seed=0)
        action = GreedyPlanPolicy(env)(obs)
        _, _, terminated, _, _ = env.step(action)
        assert terminated
        with pytest.raises(RuntimeError, match="episode over"):
            env.step(action)

    def test_plan_action_validates_level(self, scenario):
        env = _make_env(scenario)
        n_types = len(scenario.datacenter.node_types)
        with pytest.raises(ValueError, match="out of range"):
            env.plan_action((99, (0,) * n_types))

    def test_plan_action_validates_fill_shape(self, scenario):
        env = _make_env(scenario)
        with pytest.raises(ValueError, match="per node type"):
            env.plan_action((0, (0,)))

    def test_constructor_validation(self, scenario):
        with pytest.raises(ValueError, match="epoch length"):
            _make_env(scenario, epoch_s=0.0)
        with pytest.raises(ValueError, match="at least one epoch"):
            _make_env(scenario, n_epochs=0)

    def test_plan_action_always_feasible(self, scenario):
        env = _make_env(scenario)
        spec = env.action_spec()
        n_types = len(spec["pstate_levels"])
        cand, reward = env.plan_action((0, tuple([0] * n_types)))
        if reward >= 0.0:
            assert env.evaluator.is_feasible(cand)


class TestGymnasiumAdapter:
    def test_raises_without_gymnasium(self, scenario):
        try:
            import gymnasium  # noqa: F401
        except ImportError:
            with pytest.raises(RuntimeError, match="gymnasium"):
                make_gymnasium_env(scenario.datacenter, scenario.workload,
                                   scenario.p_const)
        else:  # pragma: no cover - container has no gymnasium
            env = make_gymnasium_env(scenario.datacenter,
                                     scenario.workload, scenario.p_const,
                                     n_epochs=1, epoch_s=20.0)
            obs, info = env.reset(seed=0)
            assert obs.shape == (env.env.observation_size,)
