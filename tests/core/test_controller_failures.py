"""Failure-injection tests for the epoch controller's transient guard."""

import numpy as np
import pytest

from repro.core.controller import EpochController
from repro.experiments import ScenarioConfig, generate_scenario


@pytest.fixture(scope="module")
def setup():
    sc = generate_scenario(ScenarioConfig(name="fi", n_nodes=10), 33)
    ctrl = EpochController(sc.datacenter, sc.workload, sc.p_const,
                           epoch_s=60.0, tau_s=10.0, max_derate=3)
    return sc, ctrl


class TestTransientGuard:
    def test_cool_start_needs_no_derating(self, setup):
        sc, ctrl = setup
        dc = sc.datacenter
        idle = dc.node_power_kw(dc.all_off_pstates())
        cold = dc.thermal.steady_state(
            np.full(dc.n_crac, 15.0), idle).t_out
        plan, derated, overshoot = ctrl.plan_epoch(
            sc.workload.arrival_rates, cold)
        assert derated == 0
        assert overshoot <= 1e-6
        plan.verify(dc, sc.p_const)

    def test_overheated_start_exhausts_derating(self, setup):
        """An initial state already above the redlines cannot be fixed
        by derating the *new* plan — the controller must give up loudly
        rather than commit an unsafe transition."""
        sc, ctrl = setup
        dc = sc.datacenter
        scorching = np.full(dc.n_units, 60.0)
        with pytest.raises(RuntimeError, match="derating"):
            ctrl.plan_epoch(sc.workload.arrival_rates, scorching)

    def test_derating_shrinks_the_plan(self, setup):
        """Direct check of the derate mechanism: each step multiplies
        the cap by (1 - derate_step), so a derated plan draws less."""
        sc, ctrl = setup
        full = ctrl._plan_for_rates(sc.workload.arrival_rates, sc.p_const)
        derated = ctrl._plan_for_rates(sc.workload.arrival_rates,
                                       0.9 * sc.p_const)
        full_power = full.power(sc.datacenter).total
        derated_power = derated.power(sc.datacenter).total
        assert derated_power <= full_power + 1e-6
        assert derated.reward_rate <= full.reward_rate + 1e-6
