"""Fault taxonomy and timelines (chaos-testing extension).

The paper assumes a fixed, healthy inventory: every node, core and CRAC
unit present at assignment time stays available for the lifetime of the
plan.  Physics-grounded data center simulators treat equipment
availability as a first-class simulation input instead; this module
supplies the vocabulary for that — a small closed taxonomy of faults,
each a timestamped event with a duration, plus :class:`FaultSchedule`,
an immutable timeline that can be queried for the *inventory state* at
any instant.

Five fault kinds cover the dominant real-world scenario classes:

=================  =====================================================
kind               effect while active
=================  =====================================================
``NODE_CRASH``     the node executes nothing, draws no power, and is
                   dropped from the thermal cross-interference coupling
                   (its chassis becomes a passive air pass-through);
                   queued tasks are stranded.
``CRAC_DEGRADE``   the CRAC loses ``magnitude`` of its cooling
                   capacity: its admissible outlet-temperature range
                   shrinks from the cold end, shifting every
                   steady-state solve.
``CRAC_OUTAGE``    limit case of a degrade (capacity 0): the unit can
                   only deliver air at the top of its outlet range.
``POWER_CAP_DROP`` emergency cap reduction: the room power budget is
                   multiplied by ``1 - magnitude``.
``ECS_DRIFT``      room-wide slowdown (thermal throttling, degraded
                   firmware): every ECS value is multiplied by
                   ``1 - magnitude``.
=================  =====================================================

Overlapping faults compose: dead counts accumulate per node, CRAC
capacities and room-wide factors multiply.  Because the state at time
``t`` is *derived* from the set of active events (rather than mutated in
place), recovery is exact by construction — when the last fault on a
target expires, the target is back to nominal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

import numpy as np

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule", "InventoryState"]


class FaultKind(str, Enum):
    """Closed taxonomy of injectable faults (values are JSON-stable)."""

    NODE_CRASH = "node_crash"
    CRAC_DEGRADE = "crac_degrade"
    CRAC_OUTAGE = "crac_outage"
    POWER_CAP_DROP = "power_cap_drop"
    ECS_DRIFT = "ecs_drift"

    @property
    def is_targeted(self) -> bool:
        """True when the fault applies to one unit (vs the whole room)."""
        return self in (FaultKind.NODE_CRASH, FaultKind.CRAC_DEGRADE,
                        FaultKind.CRAC_OUTAGE)

    @property
    def uses_magnitude(self) -> bool:
        """True when ``magnitude`` parameterizes the severity."""
        return self in (FaultKind.CRAC_DEGRADE, FaultKind.POWER_CAP_DROP,
                        FaultKind.ECS_DRIFT)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One fault: a kind, a target, a start time and a duration.

    Ordered by ``(start_s, kind, target)`` so sorted schedules are
    deterministic regardless of construction order.

    Attributes
    ----------
    start_s:
        Onset, seconds from the run start.
    kind:
        What breaks (see :class:`FaultKind`).
    target:
        Node index for ``NODE_CRASH``, CRAC index for ``CRAC_*``;
        ``None`` for the room-wide kinds.
    duration_s:
        How long the fault persists; ``inf`` means no recovery within
        the run.
    magnitude:
        Severity in ``(0, 1)`` for the kinds that use it (fraction of
        capacity / cap / speed lost); ignored — conventionally 1 — for
        crash and outage.
    """

    start_s: float
    kind: FaultKind
    target: int | None = None
    duration_s: float = math.inf
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if not self.start_s >= 0.0:
            raise ValueError(f"fault start must be >= 0, got {self.start_s}")
        if not self.duration_s > 0.0:
            raise ValueError(
                f"fault duration must be positive, got {self.duration_s}")
        if self.kind.is_targeted:
            if self.target is None or self.target < 0:
                raise ValueError(
                    f"{self.kind.value} needs a non-negative target index")
        elif self.target is not None:
            raise ValueError(f"{self.kind.value} is room-wide; target must "
                             "be None")
        if self.kind.uses_magnitude and not 0.0 < self.magnitude < 1.0:
            raise ValueError(
                f"{self.kind.value} magnitude must be in (0, 1), got "
                f"{self.magnitude}")

    @property
    def end_s(self) -> float:
        """Recovery instant (``inf`` for permanent faults)."""
        return self.start_s + self.duration_s

    def active_at(self, t: float) -> bool:
        """Active on the half-open interval ``[start_s, end_s)``."""
        return self.start_s <= t < self.end_s

    def to_dict(self) -> dict:
        """JSON-friendly representation (round-trips via ``from_dict``)."""
        return {
            "kind": self.kind.value,
            "start_s": self.start_s,
            "duration_s": (None if math.isinf(self.duration_s)
                           else self.duration_s),
            "target": self.target,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultEvent":
        duration = doc.get("duration_s")
        return cls(
            start_s=float(doc["start_s"]),
            kind=FaultKind(doc["kind"]),
            target=(None if doc.get("target") is None
                    else int(doc["target"])),
            duration_s=math.inf if duration is None else float(duration),
            magnitude=float(doc.get("magnitude", 1.0)),
        )


@dataclass(frozen=True)
class InventoryState:
    """Snapshot of what is (un)available at one instant.

    Attributes
    ----------
    node_dead_count:
        Overlapping-crash counter per node; a node is alive iff its
        count is 0.
    crac_capacity:
        Remaining cooling-capacity fraction per CRAC in ``[0, 1]``
        (product of ``1 - magnitude`` over active degrades, 0 under an
        outage).
    power_cap_factor / ecs_factor:
        Room-wide multipliers in ``(0, 1]``.
    """

    node_dead_count: np.ndarray
    crac_capacity: np.ndarray
    power_cap_factor: float = 1.0
    ecs_factor: float = 1.0

    @property
    def node_alive(self) -> np.ndarray:
        """Boolean mask of surviving nodes."""
        return self.node_dead_count == 0

    @property
    def dead_nodes(self) -> np.ndarray:
        """Indices of crashed nodes (ascending)."""
        return np.nonzero(self.node_dead_count > 0)[0]

    @property
    def is_nominal(self) -> bool:
        """True when nothing is degraded — the healthy-inventory case."""
        return (not np.any(self.node_dead_count > 0)
                and bool(np.all(self.crac_capacity >= 1.0))
                and self.power_cap_factor >= 1.0
                and self.ecs_factor >= 1.0)

    @classmethod
    def nominal(cls, n_nodes: int, n_crac: int) -> "InventoryState":
        return cls(node_dead_count=np.zeros(n_nodes, dtype=int),
                   crac_capacity=np.ones(n_crac))


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, sorted timeline of :class:`FaultEvent` objects."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(sorted(self.events)))

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "FaultSchedule":
        return cls(events=())

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    def validate_for(self, n_nodes: int, n_crac: int) -> None:
        """Raise if any event targets a unit outside the room."""
        for ev in self.events:
            if ev.kind is FaultKind.NODE_CRASH and ev.target >= n_nodes:
                raise ValueError(
                    f"node crash targets node {ev.target} but the room has "
                    f"{n_nodes} nodes")
            if ev.kind in (FaultKind.CRAC_DEGRADE, FaultKind.CRAC_OUTAGE) \
                    and ev.target >= n_crac:
                raise ValueError(
                    f"{ev.kind.value} targets CRAC {ev.target} but the room "
                    f"has {n_crac} CRACs")
    def active_at(self, t: float) -> list[FaultEvent]:
        """Events whose ``[start, end)`` window contains ``t``."""
        return [ev for ev in self.events if ev.active_at(t)]

    def state_at(self, t: float, n_nodes: int, n_crac: int
                 ) -> InventoryState:
        """Derive the inventory state at instant ``t``.

        Overlapping faults compose (counters / products), so the state
        is order-independent and recovery is exact: once every fault on
        a target has expired the target reads nominal again.
        """
        dead = np.zeros(n_nodes, dtype=int)
        capacity = np.ones(n_crac)
        cap_factor = 1.0
        ecs_factor = 1.0
        for ev in self.active_at(t):
            if ev.kind is FaultKind.NODE_CRASH:
                dead[ev.target] += 1
            elif ev.kind is FaultKind.CRAC_DEGRADE:
                capacity[ev.target] *= 1.0 - ev.magnitude
            elif ev.kind is FaultKind.CRAC_OUTAGE:
                capacity[ev.target] = 0.0
            elif ev.kind is FaultKind.POWER_CAP_DROP:
                cap_factor *= 1.0 - ev.magnitude
            elif ev.kind is FaultKind.ECS_DRIFT:
                ecs_factor *= 1.0 - ev.magnitude
        return InventoryState(node_dead_count=dead, crac_capacity=capacity,
                             power_cap_factor=cap_factor,
                             ecs_factor=ecs_factor)

    def boundaries(self, horizon_s: float) -> list[float]:
        """Instants in ``(0, horizon)`` where the inventory state changes.

        Sorted and deduplicated; both fault onsets and recoveries count.
        A controller that re-plans at exactly these instants sees a
        constant inventory within every interval between them.
        """
        times: set[float] = set()
        for ev in self.events:
            for t in (ev.start_s, ev.end_s):
                if 0.0 < t < horizon_s and math.isfinite(t):
                    times.add(float(t))
        return sorted(times)

    def events_starting_at(self, t: float,
                           kind: FaultKind | None = None) -> list[FaultEvent]:
        """Events whose onset is exactly ``t`` (optionally one kind)."""
        return [ev for ev in self.events
                if ev.start_s == t and (kind is None or ev.kind is kind)]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"events": [ev.to_dict() for ev in self.events]}

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultSchedule":
        events = doc.get("events", [])
        if not isinstance(events, (list, tuple)):
            raise ValueError("'events' must be a list of fault dicts")
        return cls(events=tuple(FaultEvent.from_dict(e) for e in events))

    @classmethod
    def from_events(cls, events: Iterable[FaultEvent]) -> "FaultSchedule":
        return cls(events=tuple(events))
