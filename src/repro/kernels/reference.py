"""Scalar reference kernels — the oracle the vectorized path must match.

Every function here is the original per-core / per-node Python-loop
implementation of its primitive, kept deliberately simple: these are the
semantics, and ``tests/kernels/`` asserts the vectorized kernels agree
with them (bit-identically for integer outputs, within
``repro.units.approx_eq`` for floats).

See :mod:`repro.kernels` for the shared contract.  Inputs are validated
by the public call sites before dispatch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.arr import AggregateRewardRate
    from repro.datacenter.builder import DataCenter
    from repro.power.cop import CoPModel
    from repro.thermal.heatflow import HeatFlowModel

__all__ = ["node_power_kw", "node_power_batch", "steady_state_batch",
           "convert_power_to_pstates", "assemble_segments",
           "distribute_node_power", "wrap_cop"]


# ----------------------------------------------------------------------
# power evaluation (Eq. 1 / Eq. 23)

def node_power_kw(datacenter: "DataCenter",
                  core_pstates: np.ndarray) -> np.ndarray:
    """Eq. 1 per node: base power plus the sum of its cores' P-state powers."""
    core_power = np.empty(datacenter.n_cores)
    core_type = datacenter.core_type
    types = datacenter.node_types
    for k in range(datacenter.n_cores):
        core_power[k] = types[core_type[k]].pstate_power_kw[core_pstates[k]]
    sums = np.bincount(datacenter.core_node, weights=core_power,
                       minlength=datacenter.n_nodes)
    return datacenter.node_base_power + sums


def node_power_batch(datacenter: "DataCenter",
                     core_pstates: np.ndarray) -> np.ndarray:
    """Eq. 1 for each row of a ``(B, n_cores)`` P-state batch."""
    return np.stack([node_power_kw(datacenter, row)
                     for row in core_pstates])


# ----------------------------------------------------------------------
# steady-state heat flow (Eqs. 4-5)

def steady_state_batch(model: "HeatFlowModel", t_crac_out: np.ndarray,
                       node_power_kw: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One affine solve per row, exactly as ``HeatFlowModel.steady_state``.

    ``t_crac_out`` and ``node_power_kw`` are ``(B, n_crac)`` and
    ``(B, n_nodes)``; returns ``(t_in, t_out, crac_heat_kw)`` stacked
    the same way.
    """
    n_runs = node_power_kw.shape[0]
    n_crac = model.n_crac
    t_in = np.empty((n_runs, model.n_units))
    t_out = np.empty((n_runs, model.n_units))
    heat = np.empty((n_runs, n_crac))
    for b in range(n_runs):
        const, gain = model.inlet_affine(t_crac_out[b])
        p = node_power_kw[b]
        t_in[b] = const + gain @ p
        t_out[b, :n_crac] = t_crac_out[b]
        t_out[b, n_crac:] = t_in[b, n_crac:] + model.node_heat_coeff * p
        heat[b] = np.maximum(
            model.crac_capacity * (t_in[b, :n_crac] - t_out[b, :n_crac]),
            0.0)
    return t_in, t_out, heat


# ----------------------------------------------------------------------
# stage 2: integer P-state conversion (Section V.B.3)

def convert_power_to_pstates(datacenter: "DataCenter",
                             core_power_kw: np.ndarray,
                             node_power_budget_kw: np.ndarray) -> np.ndarray:
    """Round every core's power up to a P-state, then trim per node."""
    from repro.core.stage2 import _round_up_pstate

    pstates = np.empty(datacenter.n_cores, dtype=int)
    for node in datacenter.nodes:
        table = np.asarray(node.spec.pstate_power_kw)
        first, n = node.first_core, node.n_cores
        local = np.asarray([
            _round_up_pstate(table, core_power_kw[first + c])
            for c in range(n)
        ])
        core_budget = node_power_budget_kw[node.index] \
            - node.spec.base_power_kw
        # step 2: trim while over budget (tolerance absorbs LP round-off)
        while table[local].sum() > core_budget + 1e-9:
            worst = int(np.argmin(local))        # smallest P-state index
            if local[worst] >= node.spec.off_pstate:
                break                            # everything already off
            local[worst] += 1
        pstates[first:first + n] = local
    return pstates


# ----------------------------------------------------------------------
# stage 1: LP assembly and breakpoint fill

def assemble_segments(datacenter: "DataCenter",
                      arrs: "list[AggregateRewardRate]"
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-node hull segments into LP variables.

    Returns ``(node_of_var, capacity, slope)`` — one entry per
    (node, segment) variable; capacity is segment length times the
    node's core count.
    """
    node_ids: list[int] = []
    caps: list[float] = []
    slopes: list[float] = []
    per_type = []
    for arr in arrs:
        lengths, slps = arr.segments_decreasing_slope()
        per_type.append((lengths, slps))
    for node in datacenter.nodes:
        lengths, slps = per_type[node.type_index]
        for length, slope in zip(lengths, slps):
            node_ids.append(node.index)
            caps.append(float(length) * node.n_cores)
            slopes.append(float(slope))
    return (np.asarray(node_ids, dtype=int), np.asarray(caps),
            np.asarray(slopes))


def distribute_node_power(datacenter: "DataCenter",
                          arrs: "list[AggregateRewardRate]",
                          node_core_power: np.ndarray) -> np.ndarray:
    """Split each node's total core power onto its cores.

    Breakpoint-quantized greedy (DESIGN.md §3.1): raise all cores of the
    node through the concave-hull breakpoints in order; within the last
    affordable level, advance as many whole cores as possible and give
    the remainder to a single partial core.
    """
    core_power = np.zeros(datacenter.n_cores)
    for node in datacenter.nodes:
        budget = float(node_core_power[node.index])
        if budget <= 0.0:
            continue
        hull_x = arrs[node.type_index].concave.x
        n = node.n_cores
        powers = np.zeros(n)
        level = 0.0
        for bp in hull_x[1:]:
            step = bp - level
            full_cost = n * step
            if budget >= full_cost - 1e-12:
                powers[:] = bp
                budget -= full_cost
                level = bp
                continue
            k = int(budget // step)
            powers[:k] = bp
            powers[k] = level + (budget - k * step)
            budget = 0.0
            break
        first = node.first_core
        core_power[first:first + n] = powers
    return core_power


# ----------------------------------------------------------------------
# CRAC efficiency

def wrap_cop(cop_model: "CoPModel") -> "Callable[[np.ndarray], np.ndarray]":
    """Reference strategy: evaluate the CoP curve directly every time."""
    return cop_model
