"""Minimal discrete-event kernel used by the data center simulator.

A binary-heap event queue with a tie-breaking sequence number so that
events at equal timestamps pop in insertion order (deterministic runs).
The kernel is deliberately tiny — arrivals and completions are the only
event kinds the paper's second-step evaluation needs — but is kept
separate from the engine so extensions (P-state changes, thermal
transients) have a place to plug in.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(IntEnum):
    """Kinds of simulation events (ordered: arrivals before completions
    at equal time would be wrong — a finishing core should free up first,
    so COMPLETION sorts ahead of ARRIVAL at identical timestamps)."""

    COMPLETION = 0
    ARRIVAL = 1


@dataclass(order=True, frozen=True)
class Event:
    """One scheduled event.

    Sort key is ``(time, kind, seq)``; ``payload`` is excluded from
    ordering.
    """

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Heap-based future event list."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns it (useful for assertions)."""
        if not time >= 0.0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=float(time), kind=kind, seq=next(self._counter),
                      payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Timestamp of the earliest event."""
        if not self._heap:
            raise IndexError("peek on empty event queue")
        return self._heap[0].time

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
