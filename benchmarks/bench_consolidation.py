"""Consolidation extension — powering down dark chassis.

Section II lists blade consolidation as a complementary technique for
future combination with the paper's assignment.  This benchmark runs
the combination: nodes whose cores the optimizer leaves dark are
switched off, and their base power is reinvested through a re-run of the
assignment.  Expected shape: a handful of chassis power down, and the
freed base power (hundreds of watts each — comparable to tens of cores'
worth of P-state power) buys a measurable reward uplift.
"""

import numpy as np

from repro.core.consolidation import consolidate
from repro.experiments import generate_scenario, scaled_down
from repro.experiments.config import PAPER_SET_3


def bench_consolidation(benchmark, capsys, scale):
    seeds = range(3100, 3100 + max(3, scale.n_runs // 2))
    scenarios = [generate_scenario(scaled_down(PAPER_SET_3, scale.n_nodes),
                                   s) for s in seeds]

    def run():
        return [consolidate(sc.datacenter, sc.workload, sc.p_const)
                for sc in scenarios]

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print("consolidation: assignment + chassis power-down loop")
        print(f"{'seed':>6}{'nodes off':>11}{'kW saved':>10}"
              f"{'plain reward':>14}{'consolidated':>14}{'uplift':>9}")
        for seed, res in zip(seeds, results):
            print(f"{seed:>6}{int(res.powered_down.sum()):>11}"
                  f"{res.base_power_saved_kw:>10.2f}"
                  f"{res.baseline_reward:>14.1f}"
                  f"{res.assignment.reward_rate:>14.1f}"
                  f"{res.reward_uplift_pct:>+8.2f}%")
        uplifts = [r.reward_uplift_pct for r in results]
        print(f"mean uplift {np.mean(uplifts):+.2f}% "
              f"(iterations: {[r.iterations for r in results]})")

    for res in results:
        assert res.assignment.reward_rate >= res.baseline_reward - 1e-6
