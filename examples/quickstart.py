#!/usr/bin/env python
"""Quickstart — assign P-states in a small power-constrained data center.

Builds a 30-node, 3-CRAC room with the paper's two server types,
generates a workload, derives the power cap (Eq. 18), runs the paper's
three-stage thermal-aware assignment and prints what it decided.

Run:  python examples/quickstart.py [seed]
"""

import sys

import numpy as np

from repro import (attach_thermal_model, build_datacenter, generate_workload,
                   power_bounds, three_stage_assignment)


def main(seed: int = 42) -> None:
    rng = np.random.default_rng(seed)

    # 1. a room: 30 heterogeneous nodes (Table I types), 3 CRAC units
    dc = build_datacenter(n_nodes=30, n_crac=3, rng=rng)
    print(f"room: {dc.n_nodes} nodes / {dc.n_cores} cores / "
          f"{dc.n_crac} CRACs")

    # 2. air recirculation + heat-flow model (Appendix B / Section IV)
    attach_thermal_model(dc, rng=rng)

    # 3. a workload: 8 task types with rewards, deadlines, arrival rates
    wl = generate_workload(dc, rng)
    print("task arrival rates (tasks/s):",
          np.array2string(wl.arrival_rates, precision=1))

    # 4. power cap: midpoint between idle and flat-out (Eqs. 17-18)
    bounds = power_bounds(dc)
    p_const = bounds.p_const
    print(f"power: idle {bounds.p_min:.1f} kW, flat-out {bounds.p_max:.1f} kW"
          f" -> cap {p_const:.1f} kW (oversubscribed)")

    # 5. the paper's three-stage thermal-aware assignment
    result = three_stage_assignment(dc, wl, p_const, psi=50)
    result.verify(dc, p_const)

    print(f"\nassigned CRAC outlet temperatures: {result.t_crac_out} C")
    eta = dc.node_types[0].n_pstates
    hist = np.bincount(result.pstates, minlength=eta)
    for k in range(eta):
        label = f"P{k}" if k < eta - 1 else "off"
        print(f"  cores in {label:>3}: {hist[k]:4d}")
    breakdown = result.power(dc)
    print(f"power use: {breakdown.compute_total:.1f} kW compute + "
          f"{breakdown.cooling_total:.1f} kW cooling = "
          f"{breakdown.total:.1f} / {p_const:.1f} kW")
    print(f"steady-state reward rate: {result.reward_rate:.1f} reward/s")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
