"""Estimated Computational Speed (ECS) matrix generation (Section VI.C).

``ECS(i, j, k)`` is the number of tasks of type *i* completed per second
by a core of type *j* in P-state *k* (the reciprocal of the estimated
time to compute, ETC).  The paper generates it in two steps:

1. A 2-D P-state-0 matrix: the product of a per-task-type mean (each
   task type is twice as "easy" as the previous one), a per-node-type
   performance scale (0.6 : 1 for the two Table I servers, from their
   SPECpower_ssj2008 throughput ratio), and a uniform variation factor
   ``rand[1-V_ecs, 1+V_ecs]`` that creates task/machine *affinity*.
2. Extension along the P-state axis (Eq. 10): scale by the clock
   frequency ratio and another variation factor
   ``rand[1-V_prop, 1+V_prop]`` so performance is not exactly
   proportional to frequency — re-drawing the factor whenever it would
   make a higher-numbered P-state faster than a lower one.

The turned-off P-state appends a slice of zeros ("when the core is
turned off, the ECS of a task of any type is 0").

The paper pins only ECS *ratios*; we normalize the mean over task types
to 1 task/s, which fixes the time unit (see DESIGN.md §3.4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datacenter.coretypes import NodeTypeSpec

__all__ = ["task_type_means", "generate_p0_ecs", "extend_ecs", "generate_ecs"]

#: Draws allowed when repairing Eq. 10 monotonicity before clamping.
_MAX_REDRAWS = 1000


def task_type_means(n_task_types: int) -> np.ndarray:
    """Mean ECS per task type, doubling each step, normalized to mean 1.

    Section VI.C: "the average ECS over all node types for task type i is
    half that of task type i + 1" — low-index task types are the hard
    (slow) ones.
    """
    if n_task_types <= 0:
        raise ValueError(f"n_task_types must be positive, got {n_task_types}")
    raw = 2.0 ** np.arange(n_task_types)
    return raw / raw.mean()


def generate_p0_ecs(n_task_types: int, node_types: Sequence[NodeTypeSpec],
                    rng: np.random.Generator, v_ecs: float = 0.1
                    ) -> np.ndarray:
    """The 2-D P-state-0 ECS matrix, shape ``(T, NTYPES)``.

    ``v_ecs`` is the paper's ``V_ECS`` (0.1 in all simulation sets); it
    controls how much task/machine affinity the room exhibits.
    """
    if not 0.0 <= v_ecs < 1.0:
        raise ValueError(f"v_ecs must be in [0, 1), got {v_ecs}")
    if not node_types:
        raise ValueError("need at least one node type")
    task_mean = task_type_means(n_task_types)
    node_scale = np.asarray([nt.performance_scale for nt in node_types])
    variation = rng.uniform(1.0 - v_ecs, 1.0 + v_ecs,
                            size=(n_task_types, len(node_types)))
    return task_mean[:, None] * node_scale[None, :] * variation


def extend_ecs(ecs_p0: np.ndarray, node_types: Sequence[NodeTypeSpec],
               rng: np.random.Generator, v_prop: float = 0.1) -> np.ndarray:
    """Extend a P-state-0 matrix along the P-state axis (Eq. 10).

    Returns shape ``(T, NTYPES, eta)`` where ``eta`` includes the
    turned-off state (all-zero slice).  All node types must share the
    same P-state count (true of the paper's two types); heterogeneous
    ladders would need a ragged representation the paper never exercises.

    Monotonicity repair: if a draw makes ``ECS(i, j, k) >=
    ECS(i, j, k-1)``, the variation factor is redrawn (the paper's
    procedure); after ``_MAX_REDRAWS`` failed draws the value is clamped
    just below its predecessor — only reachable with extreme ``v_prop``.
    """
    if not 0.0 <= v_prop < 1.0:
        raise ValueError(f"v_prop must be in [0, 1), got {v_prop}")
    ecs_p0 = np.asarray(ecs_p0, dtype=float)
    n_task_types, n_types = ecs_p0.shape
    if n_types != len(node_types):
        raise ValueError(
            f"ecs_p0 has {n_types} node types, catalog has {len(node_types)}")
    active_counts = sorted({nt.n_active_pstates for nt in node_types})
    if len(active_counts) != 1:
        raise ValueError(
            "all node types must have the same number of P-states, got "
            f"{active_counts}")
    n_active = active_counts[0]
    eta = n_active + 1
    ecs = np.zeros((n_task_types, n_types, eta))
    ecs[:, :, 0] = ecs_p0
    for j, nt in enumerate(node_types):
        freqs = np.asarray(nt.frequencies_mhz)
        for k in range(1, n_active):
            ratio = freqs[k] / freqs[0]
            for i in range(n_task_types):
                prev = ecs[i, j, k - 1]
                for _ in range(_MAX_REDRAWS):
                    factor = rng.uniform(1.0 - v_prop, 1.0 + v_prop)
                    candidate = ecs_p0[i, j] * ratio * factor
                    if candidate < prev:
                        break
                else:  # pragma: no cover - requires pathological v_prop
                    candidate = np.nextafter(prev, 0.0)
                ecs[i, j, k] = candidate
    # slice eta-1 (turned off) stays zero
    return ecs


def generate_ecs(n_task_types: int, node_types: Sequence[NodeTypeSpec],
                 rng: np.random.Generator, v_ecs: float = 0.1,
                 v_prop: float = 0.1) -> np.ndarray:
    """Full ECS tensor ``(T, NTYPES, eta)`` per Section VI.C."""
    p0 = generate_p0_ecs(n_task_types, node_types, rng, v_ecs)
    return extend_ecs(p0, node_types, rng, v_prop)
