"""Tests for repro.faults.schedule — reproducible timeline generation."""

import json

import numpy as np
import pytest

from repro.faults.model import FaultKind
from repro.faults.schedule import (FaultRates, demo_rates,
                                   generate_fault_schedule, load_schedule,
                                   schedule_from_dict)

RATES = FaultRates(node_crash_per_hour=40.0, crac_degrade_per_hour=40.0,
                   crac_outage_per_hour=20.0, cap_drop_per_hour=30.0,
                   ecs_drift_per_hour=30.0, mean_repair_s=60.0)


class TestFaultRates:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="node_crash_per_hour"):
            FaultRates(node_crash_per_hour=-1.0)

    def test_magnitude_range(self):
        with pytest.raises(ValueError, match="degrade_magnitude"):
            FaultRates(degrade_magnitude=1.5)

    def test_scaled(self):
        doubled = RATES.scaled(2.0)
        assert doubled.node_crash_per_hour == 80.0
        assert doubled.mean_repair_s == RATES.mean_repair_s  # severity kept
        with pytest.raises(ValueError):
            RATES.scaled(-1.0)

    def test_demo_rates_target_counts(self):
        rates = demo_rates(600.0, 10, 3)
        hours = 600.0 / 3600.0
        # expected crashes over the horizon across the fleet: ~2
        assert rates.node_crash_per_hour * hours * 10 == pytest.approx(2.0)
        assert rates.crac_degrade_per_hour * hours * 3 == pytest.approx(1.0)
        assert rates.mean_repair_s == pytest.approx(150.0)


class TestGeneration:
    def test_same_seed_same_schedule(self):
        a = generate_fault_schedule(5, 2, 600.0, RATES, 7)
        b = generate_fault_schedule(5, 2, 600.0, RATES, 7)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_fault_schedule(5, 2, 600.0, RATES, 7)
        b = generate_fault_schedule(5, 2, 600.0, RATES, 8)
        assert a != b

    def test_accepts_generator_or_int(self):
        a = generate_fault_schedule(5, 2, 600.0, RATES,
                                    np.random.default_rng(7))
        b = generate_fault_schedule(5, 2, 600.0, RATES, 7)
        assert a == b

    def test_zero_rates_empty(self):
        sched = generate_fault_schedule(5, 2, 600.0, RATES.scaled(0.0), 7)
        assert len(sched) == 0

    def test_events_valid_for_room(self):
        sched = generate_fault_schedule(5, 2, 600.0, RATES, 3)
        assert len(sched) > 0
        sched.validate_for(5, 2)
        for ev in sched:
            assert 0.0 < ev.start_s < 600.0
            assert ev.duration_s > 0

    def test_rate_scaling_monotone_in_expectation(self):
        low = sum(len(generate_fault_schedule(5, 2, 600.0,
                                              RATES.scaled(0.5), s))
                  for s in range(8))
        high = sum(len(generate_fault_schedule(5, 2, 600.0,
                                               RATES.scaled(4.0), s))
                   for s in range(8))
        assert high > low


class TestScenarioFiles:
    def _doc(self):
        return {"events": [
            {"kind": "crac_outage", "start_s": 10.0, "duration_s": 20.0,
             "target": 0},
            {"kind": "node_crash", "start_s": 5.0, "duration_s": None,
             "target": 2},
            {"kind": "power_cap_drop", "start_s": 1.0, "duration_s": 4.0,
             "magnitude": 0.25},
        ]}

    def test_schedule_from_dict(self):
        sched = schedule_from_dict(self._doc())
        assert len(sched) == 3
        assert sched.events[0].kind is FaultKind.POWER_CAP_DROP

    def test_load_json(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(self._doc()))
        assert load_schedule(path) == schedule_from_dict(self._doc())

    def test_load_yaml_when_available(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "scenario.yaml"
        path.write_text(yaml.safe_dump(self._doc()))
        assert load_schedule(path) == schedule_from_dict(self._doc())

    def test_load_rejects_non_mapping(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="mapping"):
            load_schedule(path)

    def test_round_trip_via_to_dict(self, tmp_path):
        sched = generate_fault_schedule(4, 2, 300.0, RATES, 5)
        path = tmp_path / "drawn.json"
        path.write_text(json.dumps(sched.to_dict()))
        assert load_schedule(path) == sched
