"""Time-scale separation — the premise of the two-step split (Section V.A).

"Temperature evolution in the data center is in orders of minutes, while
the execution of a task is in orders of seconds or milliseconds."  This
benchmark measures both sides on a generated room: the thermal settling
time after a first-step reassignment, and the distribution of task
execution times — their ratio is what makes the decomposition sound.
"""

import numpy as np

from repro.core import three_stage_assignment
from repro.thermal.transient import simulate_transient, time_to_steady_state


def bench_transient_timescale(benchmark, capsys, bench_scenario):
    sc = bench_scenario
    dc, wl = sc.datacenter, sc.workload
    model = dc.thermal
    plan = three_stage_assignment(dc, wl, sc.p_const, psi=50.0)
    p_new = dc.node_power_kw(plan.pstates)
    p_old = dc.node_power_kw(dc.all_off_pstates())
    start = model.steady_state(plan.t_crac_out, p_old).t_out

    result = benchmark.pedantic(
        simulate_transient,
        args=(model, plan.t_crac_out, p_new, start, 1800.0),
        rounds=1, iterations=1)

    tts = time_to_steady_state(model, plan.t_crac_out, p_new, start)
    # task execution times at the assigned P-states
    ecs = wl.ecs[:, dc.core_type, plan.pstates]
    exec_times = 1.0 / ecs[ecs > 0]

    with capsys.disabled():
        print()
        print("time-scale separation (Section V.A premise)")
        print(f"  thermal settling after reassignment: {tts:.0f} s "
              f"({tts / 60:.1f} minutes)")
        print(f"  task execution times: median "
              f"{np.median(exec_times):.2f} s, p95 "
              f"{np.percentile(exec_times, 95):.2f} s")
        ratio = tts / np.median(exec_times)
        print(f"  separation factor: {ratio:.0f}x "
              "(thermal step can treat the workload as a fluid)")
    assert tts > 10 * np.median(exec_times)
