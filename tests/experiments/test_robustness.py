"""Tests for repro.experiments.robustness — ECS error sensitivity."""

import numpy as np
import pytest

from repro.experiments.robustness import (evaluate_robustness, perturb_ecs)


class TestPerturbEcs:
    def test_zero_delta_identity(self, small_workload):
        out = perturb_ecs(small_workload, 0.0, np.random.default_rng(0))
        np.testing.assert_allclose(out.ecs, small_workload.ecs)

    def test_bounded_perturbation(self, small_workload):
        out = perturb_ecs(small_workload, 0.2, np.random.default_rng(1))
        active = small_workload.ecs[:, :, :-1]
        # after re-sorting, every value still lies within the perturbed
        # envelope of the original ladder
        assert np.all(out.ecs[:, :, :-1] <= active.max(axis=2,
                                                       keepdims=True) * 1.2)
        assert np.all(out.ecs[:, :, :-1] >= active.min(axis=2,
                                                       keepdims=True) * 0.8)

    def test_monotonicity_restored(self, small_workload):
        out = perturb_ecs(small_workload, 0.3, np.random.default_rng(2))
        active = out.ecs[:, :, :-1]
        assert np.all(np.diff(active, axis=2) <= 1e-12)

    def test_off_state_untouched(self, small_workload):
        out = perturb_ecs(small_workload, 0.3, np.random.default_rng(3))
        np.testing.assert_allclose(out.ecs[:, :, -1], 0.0)

    def test_other_fields_unchanged(self, small_workload):
        out = perturb_ecs(small_workload, 0.3, np.random.default_rng(4))
        np.testing.assert_array_equal(out.rewards, small_workload.rewards)
        np.testing.assert_array_equal(out.arrival_rates,
                                      small_workload.arrival_rates)

    def test_bad_delta(self, small_workload):
        with pytest.raises(ValueError, match="delta"):
            perturb_ecs(small_workload, 1.0, np.random.default_rng(0))


class TestEvaluate:
    def test_zero_delta_is_unity(self, scenario):
        pts = evaluate_robustness(scenario.datacenter, scenario.workload,
                                  scenario.p_const, [0.0], n_trials=2)
        assert pts[0].achieved_fraction == pytest.approx(1.0, abs=1e-9)
        assert pts[0].worst_fraction == pytest.approx(1.0, abs=1e-9)

    def test_plans_reasonably_robust(self, scenario):
        """Frozen P-states lose little even under 20% ECS error —
        the rates adapt via Stage 3 and P-state mixes are broadly
        useful."""
        pts = evaluate_robustness(scenario.datacenter, scenario.workload,
                                  scenario.p_const, [0.2], n_trials=3)
        assert pts[0].achieved_fraction > 0.85

    def test_worst_never_exceeds_mean(self, scenario):
        pts = evaluate_robustness(scenario.datacenter, scenario.workload,
                                  scenario.p_const, [0.1, 0.3],
                                  n_trials=3)
        for p in pts:
            assert p.worst_fraction <= p.achieved_fraction + 1e-12

    def test_trial_validation(self, scenario):
        with pytest.raises(ValueError, match="trial"):
            evaluate_robustness(scenario.datacenter, scenario.workload,
                                scenario.p_const, [0.1], n_trials=0)
