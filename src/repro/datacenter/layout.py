"""Hot-aisle/cold-aisle data center layout (Figure 1, Appendix B).

The paper's room (Figure 1) alternates cold aisles (fed by perforated
floor tiles) and hot aisles (exhaust), with one CRAC unit facing each hot
aisle.  Racks hold a column of compute nodes; following Tang et al. [29],
the vertical slot of a node inside its rack determines its *label*
(A at the bottom through E at the top), and the label determines the
ranges of its exit coefficient (EC — share of its exhaust that reaches
CRAC intakes) and recirculation coefficient (RC — share of its inlet air
that is re-ingested exhaust), reproduced in Table II.

.. note::
   The paper's Appendix B sentence "Node A is at the bottom of the rack
   and node B is at the top of the rack" is an evident typo for *E* at
   the top: Table II and the surrounding text give bottom nodes low
   EC/RC and top nodes high EC/RC, which matches A..E bottom-to-top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RACK_LABELS", "LabelRanges", "TABLE_II_RANGES", "Layout",
           "build_layout", "hot_aisle_split_matrix"]

#: Rack slot labels, bottom of rack to top (Tang et al. [29]).
RACK_LABELS: tuple[str, ...] = ("A", "B", "C", "D", "E")


@dataclass(frozen=True)
class LabelRanges:
    """EC/RC ranges for one rack label (one row of Table II).

    All four values are fractions in [0, 1].
    """

    ec_min: float
    ec_max: float
    rc_min: float
    rc_max: float

    def __post_init__(self) -> None:
        vals = (self.ec_min, self.ec_max, self.rc_min, self.rc_max)
        if not all(0.0 <= v <= 1.0 for v in vals):
            raise ValueError(f"coefficient ranges must be in [0,1]: {vals}")
        if self.ec_min > self.ec_max or self.rc_min > self.rc_max:
            raise ValueError(f"range min exceeds max: {vals}")


#: Table II of the paper: EC/RC ranges by rack label, from the CFD
#: simulations of Tang et al. [29].
TABLE_II_RANGES: dict[str, LabelRanges] = {
    "A": LabelRanges(0.30, 0.40, 0.00, 0.10),
    "B": LabelRanges(0.30, 0.40, 0.00, 0.20),
    "C": LabelRanges(0.40, 0.50, 0.10, 0.30),
    "D": LabelRanges(0.70, 0.80, 0.30, 0.70),
    "E": LabelRanges(0.80, 0.90, 0.40, 0.80),
}


@dataclass(frozen=True)
class Layout:
    """Physical placement of compute nodes relative to hot aisles.

    Attributes
    ----------
    n_crac:
        Number of CRAC units (= number of hot aisles, Figure 1).
    rack_of_node / slot_of_node:
        Rack index and vertical slot (0 = bottom) of each node.
    label_of_node:
        Rack label character per node (slot -> ``RACK_LABELS``).
    hot_aisle_of_node:
        Hot aisle each node exhausts into; CRAC unit *i* faces hot
        aisle *i* (Appendix B).
    """

    n_crac: int
    rack_of_node: np.ndarray
    slot_of_node: np.ndarray
    label_of_node: tuple[str, ...]
    hot_aisle_of_node: np.ndarray

    @property
    def n_nodes(self) -> int:
        return int(self.rack_of_node.size)

    @property
    def n_racks(self) -> int:
        return int(self.rack_of_node.max()) + 1 if self.n_nodes else 0

    def nodes_with_label(self, label: str) -> np.ndarray:
        """Indices of nodes at the rack position ``label``."""
        if label not in RACK_LABELS:
            raise ValueError(f"unknown rack label {label!r}")
        mask = np.asarray([lab == label for lab in self.label_of_node])
        return np.nonzero(mask)[0]


def build_layout(n_nodes: int, n_crac: int,
                 nodes_per_rack: int = len(RACK_LABELS)) -> Layout:
    """Arrange ``n_nodes`` into racks of ``nodes_per_rack`` across hot aisles.

    Racks are filled bottom-up (slot 0 = label A) and dealt to hot aisles
    round-robin so every aisle serves a nearly equal share of the load,
    matching the symmetric room of Figure 1.  The paper's setup is
    150 nodes = 30 racks of 5, over 3 hot aisles.
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if n_crac <= 0:
        raise ValueError(f"n_crac must be positive, got {n_crac}")
    if not 1 <= nodes_per_rack <= len(RACK_LABELS):
        raise ValueError(
            f"nodes_per_rack must be in 1..{len(RACK_LABELS)}, got {nodes_per_rack}")
    idx = np.arange(n_nodes)
    rack = idx // nodes_per_rack
    slot = idx % nodes_per_rack
    labels = tuple(RACK_LABELS[s] for s in slot)
    hot_aisle = rack % n_crac
    return Layout(n_crac=n_crac, rack_of_node=rack, slot_of_node=slot,
                  label_of_node=labels, hot_aisle_of_node=hot_aisle)


def hot_aisle_split_matrix(n_crac: int, facing_share: float = 0.7) -> np.ndarray:
    """The paper's ``M(i, j)`` — share of a hot aisle's CRAC-bound air per CRAC.

    ``M[i, j]`` is the fraction of the exit coefficient of a node in hot
    aisle *i* that reaches CRAC unit *j* (Appendix B).  The paper assumes
    the facing CRAC receives the dominant share; we give it
    ``facing_share`` and split the remainder over the other CRACs in
    inverse proportion to their aisle distance, normalizing rows to 1.

    With a single CRAC the matrix is the 1x1 identity.
    """
    if n_crac <= 0:
        raise ValueError(f"n_crac must be positive, got {n_crac}")
    if not 0.0 < facing_share <= 1.0:
        raise ValueError(f"facing_share must be in (0, 1], got {facing_share}")
    if n_crac == 1:
        return np.ones((1, 1))
    m = np.zeros((n_crac, n_crac))
    for i in range(n_crac):
        weights = np.zeros(n_crac)
        for j in range(n_crac):
            if j != i:
                weights[j] = 1.0 / abs(i - j)
        weights *= (1.0 - facing_share) / weights.sum()
        weights[i] = facing_share
        m[i] = weights
    return m
