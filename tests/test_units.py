"""Tests for repro.units — physical constants and unit helpers."""

import pytest

from repro.units import (AIR_DENSITY, AIR_SPECIFIC_HEAT, NODE_REDLINE_C,
                         TEMP_TOL_C, approx_eq, delta_t_for_power,
                         heat_capacity_rate)


class TestHeatCapacityRate:
    def test_paper_values(self):
        # rho * Cp * F for node type 1
        assert heat_capacity_rate(0.07) == pytest.approx(1.205 * 0.07)

    def test_custom_air_properties(self):
        assert heat_capacity_rate(2.0, rho=1.0, cp=4.0) == pytest.approx(8.0)

    def test_zero_flow_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            heat_capacity_rate(0.0)

    def test_negative_flow_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            heat_capacity_rate(-1.0)


class TestDeltaT:
    def test_paper_sanity_check(self):
        """Appendix A: DL785 at 0.793 kW / 0.07 m^3/s heats air 9.4 C."""
        dt = delta_t_for_power(0.793, 0.07)
        assert dt == pytest.approx(9.4, abs=0.05)

    def test_zero_power_zero_rise(self):
        assert delta_t_for_power(0.0, 0.07) == 0.0

    def test_linear_in_power(self):
        assert delta_t_for_power(2.0, 0.1) == pytest.approx(
            2.0 * delta_t_for_power(1.0, 0.1))

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            delta_t_for_power(-0.1, 0.07)


def test_constants_match_paper():
    assert AIR_DENSITY == 1.205
    assert AIR_SPECIFIC_HEAT == 1.0


class TestApproxEq:
    """Tolerance comparison the RL011 lint rule points at."""

    def test_within_default_tolerance(self):
        assert approx_eq(NODE_REDLINE_C, NODE_REDLINE_C + TEMP_TOL_C / 2)

    def test_outside_default_tolerance(self):
        assert not approx_eq(25.0, 25.0 + 1e-3)

    def test_custom_tolerance(self):
        assert approx_eq(0.793, 0.794, tol=1e-2)
        assert not approx_eq(0.793, 0.794, tol=1e-4)

    def test_relative_component_guards_large_magnitudes(self):
        big = 1e12
        assert approx_eq(big, big * (1 + 1e-10))
