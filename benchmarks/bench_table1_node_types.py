"""Table I — node-type parameters, rederived from the Appendix A model.

The paper's Table I lists datasheet-derived parameters; the per-P-state
powers follow from the CMOS static/dynamic split.  The benchmark times
the derivation and prints the regenerated table next to the paper's
printed values.
"""

from repro.datacenter.coretypes import paper_node_types
from repro.experiments.tables import format_table1, pstate_static_percentages

PAPER_TABLE1 = {
    "base_power_kw": (0.353, 0.418),
    "cores": (32, 32),
    "n_pstates": (4, 4),
    "p0_power_kw": (0.01375, 0.01625),
    "flow_m3s": (0.07, 0.0828),
}


def bench_table1(benchmark, capsys):
    types = benchmark(paper_node_types, 0.3)

    # verify against the paper's printed values
    assert tuple(t.base_power_kw for t in types) \
        == PAPER_TABLE1["base_power_kw"]
    assert tuple(t.cores_per_node for t in types) == PAPER_TABLE1["cores"]
    assert tuple(t.n_active_pstates for t in types) \
        == PAPER_TABLE1["n_pstates"]
    assert tuple(t.p0_power_kw for t in types) == PAPER_TABLE1["p0_power_kw"]
    assert tuple(t.flow_m3s for t in types) == PAPER_TABLE1["flow_m3s"]

    with capsys.disabled():
        print()
        print(format_table1(0.3))
        print("\nderived static power share per P-state "
              "(Figure 6 annotations):")
        for name, fracs in pstate_static_percentages(0.3).items():
            pct = "/".join(f"{f * 100:.0f}%" for f in fracs)
            print(f"  {name}: {pct}")
