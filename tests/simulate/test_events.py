"""Tests for repro.simulate.events — the event-queue kernel."""

import math

import pytest

from repro.simulate.events import CoreOutage, Event, EventKind, EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(3.0, EventKind.ARRIVAL, "c")
        q.push(1.0, EventKind.ARRIVAL, "a")
        q.push(2.0, EventKind.ARRIVAL, "b")
        assert [q.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_completion_before_arrival_at_same_time(self):
        """A core freeing up must be visible to a same-instant arrival."""
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, "task")
        q.push(5.0, EventKind.COMPLETION, "done")
        assert q.pop().kind is EventKind.COMPLETION

    def test_fifo_within_same_time_and_kind(self):
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, "first")
        q.push(1.0, EventKind.ARRIVAL, "second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_same_instant_kind_order_is_deterministic(self):
        """At equal timestamps: completions land first (frees cores),
        then faults, then recoveries, then arrivals — so an arrival
        coinciding with a crash sees the post-crash inventory."""
        q = EventQueue()
        q.push(5.0, EventKind.ARRIVAL, "arrival")
        q.push(5.0, EventKind.RECOVERY, "recovery")
        q.push(5.0, EventKind.FAULT, "fault")
        q.push(5.0, EventKind.COMPLETION, "completion")
        popped = [q.pop().payload for _ in range(4)]
        assert popped == ["completion", "fault", "recovery", "arrival"]

    def test_kind_order_stable_under_insertion_order(self):
        import itertools

        kinds = [EventKind.COMPLETION, EventKind.FAULT,
                 EventKind.RECOVERY, EventKind.ARRIVAL]
        for perm in itertools.permutations(kinds):
            q = EventQueue()
            for kind in perm:
                q.push(1.0, kind, kind.name)
            assert [q.pop().payload for _ in range(4)] == \
                [k.name for k in kinds]


class TestCoreOutage:
    def test_fields_and_defaults(self):
        outage = CoreOutage(start_s=3.0, cores=(0, 2))
        assert math.isinf(outage.end_s)
        assert outage.cores == (0, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreOutage(start_s=-1.0, cores=(0,))
        with pytest.raises(ValueError):
            CoreOutage(start_s=0.0, cores=())
        with pytest.raises(ValueError):
            CoreOutage(start_s=5.0, cores=(0,), end_s=5.0)


class TestQueueBehavior:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1.0, EventKind.ARRIVAL)
        assert q and len(q) == 1

    def test_peek(self):
        q = EventQueue()
        q.push(4.0, EventKind.ARRIVAL)
        q.push(2.0, EventKind.ARRIVAL)
        assert q.peek_time() == 2.0
        assert len(q) == 2  # peek does not pop

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError, match="empty"):
            EventQueue().pop()

    def test_empty_peek_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek_time()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            EventQueue().push(-1.0, EventKind.ARRIVAL)

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(float("nan"), EventKind.ARRIVAL)

    def test_payload_not_compared(self):
        """Events with uncomparable payloads still order fine."""
        q = EventQueue()
        q.push(1.0, EventKind.ARRIVAL, {"dict": 1})
        q.push(1.0, EventKind.ARRIVAL, {"dict": 2})
        assert q.pop().payload == {"dict": 1}
