"""RL022 good: only documented span names."""

from repro.obs.trace import span as obs_span


def solve_with_spans(fn):
    with obs_span("three_stage"):
        with obs_span("stage1", mode="fast"):
            return fn()
