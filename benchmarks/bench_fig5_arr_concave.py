"""Figure 5 — the ARR function with "bad" P-states ignored.

The aggregate reward-rate curve of Figure 4 is non-concave; the paper
drops P-state 2 (whose reward:power ratio, 0, is worse than P-state 1's,
9) to obtain the concave function Stage 1 can optimize as an LP.  The
benchmark also verifies the paper's 2-core compute-node example: with
0.1 W of node power, one core at P-state 1 plus one core off matches the
hull value.
"""

import numpy as np

from repro.experiments.figures import fig5_arr_functions


def bench_fig5(benchmark, capsys):
    arr = benchmark(fig5_arr_functions)
    np.testing.assert_allclose(arr.concave.x, [0.0, 0.10, 0.15])
    np.testing.assert_allclose(arr.concave.y, [0.0, 0.9, 1.2])
    assert arr.concave.is_concave()
    # 2-core example: hull(0.05) * 2 == reward of {P1, off} = 0.9
    assert 2 * arr.concave(0.05) == 0.9

    with capsys.disabled():
        print()
        print("Figure 5 — ARR_j with the bad P-state ignored")
        print("raw breakpoints:     ",
              ", ".join(f"({x:.2f},{y:.2f})"
                        for x, y in zip(arr.raw.x, arr.raw.y)))
        print("concave majorant:    ",
              ", ".join(f"({x:.2f},{y:.2f})"
                        for x, y in zip(arr.concave.x, arr.concave.y)))
        print("2-core node @ 0.1 W: hull total "
              f"{2 * arr.concave(0.05):.2f} == integer optimum "
              "(one core P1, one off) 0.90")
