"""Tests for repro.optimize.search — discretized temperature searches."""

import numpy as np
import pytest

from repro.optimize.search import (coarse_to_fine_search, golden_refine,
                                   temperature_grid,
                                   uniform_then_coordinate_search)


class TestTemperatureGrid:
    def test_inclusive_endpoints(self):
        np.testing.assert_allclose(temperature_grid(10, 25, 5),
                                   [10, 15, 20, 25])

    def test_non_divisible_range(self):
        np.testing.assert_allclose(temperature_grid(10, 24, 5),
                                   [10, 15, 20])

    def test_single_point(self):
        np.testing.assert_allclose(temperature_grid(10, 10, 1), [10])

    def test_bad_step(self):
        with pytest.raises(ValueError, match="positive"):
            temperature_grid(0, 1, 0)

    def test_empty_range(self):
        with pytest.raises(ValueError, match="empty"):
            temperature_grid(5, 4, 1)


def quad_peak(center: np.ndarray):
    """Concave objective peaking at ``center``."""
    def f(t: np.ndarray) -> float:
        return -float(((t - center) ** 2).sum())
    return f


class TestCoarseToFine:
    def test_finds_peak_1d(self):
        res = coarse_to_fine_search(quad_peak(np.asarray([17.0])), 1, 10, 25,
                                    final_step=1.0)
        assert res.temperatures[0] == pytest.approx(17.0)

    def test_finds_peak_2d(self):
        res = coarse_to_fine_search(quad_peak(np.asarray([13.0, 21.0])), 2,
                                    10, 25, final_step=1.0,
                                    uniform_first=False)
        np.testing.assert_allclose(res.temperatures, [13.0, 21.0])

    def test_uniform_first_falls_back_to_grid(self):
        """A peak invisible on the diagonal is still found."""
        def off_diagonal(t):
            # feasible only away from the diagonal
            if abs(t[0] - t[1]) < 4.0:
                return None
            return -abs(t[0] - 10.0) - abs(t[1] - 25.0)
        res = coarse_to_fine_search(off_diagonal, 2, 10, 25,
                                    uniform_first=True, final_step=1.0)
        assert res.score == pytest.approx(0.0)

    def test_all_infeasible_raises(self):
        with pytest.raises(RuntimeError, match="no feasible"):
            coarse_to_fine_search(lambda t: None, 1, 10, 25)

    def test_minimize_sense(self):
        res = coarse_to_fine_search(
            lambda t: float(((t - 20.0) ** 2).sum()), 1, 10, 25,
            final_step=1.0, maximize=False)
        assert res.temperatures[0] == pytest.approx(20.0)

    def test_counts_evaluations(self):
        res = coarse_to_fine_search(quad_peak(np.asarray([15.0])), 1, 10, 25)
        assert res.evaluations > 0

    def test_bad_n_crac(self):
        with pytest.raises(ValueError, match="positive"):
            coarse_to_fine_search(lambda t: 0.0, 0, 10, 25)


class TestUniformCoordinate:
    def test_finds_uniform_peak(self):
        res = uniform_then_coordinate_search(
            quad_peak(np.asarray([18.0, 18.0, 18.0])), 3, 10, 25)
        np.testing.assert_allclose(res.temperatures, 18.0)

    def test_coordinate_descent_moves_off_diagonal(self):
        res = uniform_then_coordinate_search(
            quad_peak(np.asarray([16.0, 19.0])), 2, 10, 25, step=1.0)
        np.testing.assert_allclose(res.temperatures, [16.0, 19.0])

    def test_respects_bounds(self):
        res = uniform_then_coordinate_search(
            quad_peak(np.asarray([30.0])), 1, 10, 25, step=1.0)
        assert res.temperatures[0] == pytest.approx(25.0)

    def test_all_infeasible_raises(self):
        with pytest.raises(RuntimeError, match="no feasible uniform"):
            uniform_then_coordinate_search(lambda t: None, 2, 10, 25)

    def test_minimize(self):
        res = uniform_then_coordinate_search(
            lambda t: float(np.abs(t - 12.0).sum()), 2, 10, 25,
            maximize=False)
        np.testing.assert_allclose(res.temperatures, 12.0)

    def test_partial_feasibility(self):
        """Only warm settings feasible — search stays inside them."""
        def obj(t):
            if np.any(t < 20.0):
                return None
            return -float(t.sum())
        res = uniform_then_coordinate_search(obj, 2, 10, 25, step=1.0)
        np.testing.assert_allclose(res.temperatures, 20.0)


class TestGoldenRefine:
    def test_refines_quadratic(self):
        t, val = golden_refine(lambda x: -(x - 17.3) ** 2, 10, 25, tol=1e-4)
        assert t == pytest.approx(17.3, abs=1e-3)
        assert val == pytest.approx(0.0, abs=1e-6)

    def test_minimize(self):
        t, _ = golden_refine(lambda x: (x - 12.0) ** 2, 10, 25,
                             maximize=False, tol=1e-4)
        assert t == pytest.approx(12.0, abs=1e-3)
