"""Tests for repro.optimize.linprog — the LP wrapper."""

import numpy as np
import pytest

from repro.optimize.linprog import InfeasibleError, LinearProgram


class TestVariables:
    def test_add_returns_range(self):
        lp = LinearProgram()
        r = lp.add_variables(3)
        assert list(r) == [0, 1, 2]
        assert lp.num_variables == 3

    def test_second_block_continues_indices(self):
        lp = LinearProgram()
        lp.add_variables(2)
        r = lp.add_variables(2)
        assert list(r) == [2, 3]

    def test_vector_bounds(self):
        lp = LinearProgram(maximize=True)
        lp.add_variables(2, lb=0.0, ub=[1.0, 2.0], objective=1.0)
        sol = lp.solve()
        assert sol.objective == pytest.approx(3.0)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            LinearProgram().add_variables(0)

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ValueError, match="bound"):
            LinearProgram().add_variables(1, lb=2.0, ub=1.0)

    def test_set_bounds(self):
        lp = LinearProgram(maximize=True)
        x = lp.add_variables(1, ub=10.0, objective=1.0)
        lp.set_bounds(x[0], 0.0, 4.0)
        assert lp.solve().objective == pytest.approx(4.0)

    def test_set_bounds_bad_index(self):
        lp = LinearProgram()
        lp.add_variables(1)
        with pytest.raises(IndexError):
            lp.set_bounds(5, 0.0, 1.0)


class TestConstraints:
    def test_docstring_example(self):
        lp = LinearProgram(name="toy", maximize=True)
        x = lp.add_variables(2, lb=0.0, ub=4.0, objective=[1.0, 2.0])
        lp.add_le_constraint({x[0]: 1.0, x[1]: 1.0}, 5.0)
        assert lp.solve().objective == pytest.approx(9.0)

    def test_ge_constraint(self):
        lp = LinearProgram(maximize=False)
        x = lp.add_variables(1, objective=1.0)
        lp.add_ge_constraint({x[0]: 1.0}, 3.0)
        sol = lp.solve()
        assert sol.x[0] == pytest.approx(3.0)

    def test_eq_constraint(self):
        lp = LinearProgram(maximize=True)
        x = lp.add_variables(2, ub=10.0, objective=[1.0, 1.0])
        lp.add_eq_constraint({x[0]: 1.0, x[1]: 2.0}, 6.0)
        sol = lp.solve()
        assert sol.x[0] + 2 * sol.x[1] == pytest.approx(6.0)

    def test_unknown_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variables(1)
        with pytest.raises(IndexError, match="out of range"):
            lp.add_le_constraint({3: 1.0}, 1.0)

    def test_dense_rows(self):
        lp = LinearProgram(maximize=True)
        lp.add_variables(3, ub=5.0, objective=1.0)
        lp.add_dense_le_rows(np.eye(3) * 2.0, np.asarray([2.0, 4.0, 6.0]))
        sol = lp.solve()
        np.testing.assert_allclose(sol.x, [1.0, 2.0, 3.0])

    def test_dense_rows_shape_check(self):
        lp = LinearProgram()
        lp.add_variables(2)
        with pytest.raises(ValueError, match="width"):
            lp.add_dense_le_rows(np.ones((1, 3)), np.ones(1))
        with pytest.raises(ValueError, match="mismatch"):
            lp.add_dense_le_rows(np.ones((2, 2)), np.ones(1))


class TestSolve:
    def test_infeasible_raises_with_name(self):
        lp = LinearProgram(name="broken")
        x = lp.add_variables(1, lb=0.0, ub=1.0)
        lp.add_ge_constraint({x[0]: 1.0}, 5.0)
        with pytest.raises(InfeasibleError, match="broken"):
            lp.solve()

    def test_infeasible_soft(self):
        lp = LinearProgram()
        x = lp.add_variables(1, lb=0.0, ub=1.0)
        lp.add_ge_constraint({x[0]: 1.0}, 5.0)
        sol = lp.solve(require_feasible=False)
        assert np.isnan(sol.objective)
        assert sol.status != 0

    def test_no_variables_rejected(self):
        with pytest.raises(ValueError, match="no variables"):
            LinearProgram().solve()

    def test_minimize_sense(self):
        lp = LinearProgram(maximize=False)
        lp.add_variables(1, lb=2.0, ub=8.0, objective=1.0)
        assert lp.solve().objective == pytest.approx(2.0)

    def test_transportation_problem(self):
        """2x2 transportation LP with a known optimum."""
        lp = LinearProgram(maximize=False)
        # costs: [[1, 3], [2, 1]]; supply [5, 5]; demand [5, 5]
        x = lp.add_variables(4, objective=[1.0, 3.0, 2.0, 1.0])
        lp.add_eq_constraint({x[0]: 1, x[1]: 1}, 5.0)
        lp.add_eq_constraint({x[2]: 1, x[3]: 1}, 5.0)
        lp.add_eq_constraint({x[0]: 1, x[2]: 1}, 5.0)
        lp.add_eq_constraint({x[1]: 1, x[3]: 1}, 5.0)
        assert lp.solve().objective == pytest.approx(10.0)


class TestWarmStart:
    def _lp(self, ub=2.0):
        from repro.optimize.linprog import LinearProgram

        lp = LinearProgram(maximize=True, name="warmtest")
        lp.add_variables(2, lb=0.0, ub=ub, objective=1.0)
        lp.add_le_constraint({0: 1.0, 1: 1.0}, 3.0)
        return lp

    def test_fingerprint_stable_and_sensitive(self):
        assert self._lp().fingerprint() == self._lp().fingerprint()
        assert self._lp().fingerprint() != self._lp(ub=5.0).fingerprint()

    def test_replay_returns_stored_solution(self):
        from repro.optimize.linprog import LPWarmStart

        first = self._lp().solve()
        warm = LPWarmStart(fingerprint=self._lp().fingerprint(),
                           solution=first)
        again = self._lp().solve(warm_start=warm)
        assert again is first

    def test_mismatched_fingerprint_solves_cold(self):
        from repro.optimize.linprog import LPWarmStart

        first = self._lp().solve()
        warm = LPWarmStart(fingerprint="not-this-lp", solution=first)
        again = self._lp(ub=5.0).solve(warm_start=warm)
        assert again is not first
        assert again.objective == pytest.approx(3.0)

    def test_caller_fingerprint_short_circuits_hashing(self):
        from repro.optimize.linprog import LPWarmStart

        first = self._lp().solve()
        warm = LPWarmStart(fingerprint="cheap-key", solution=first)
        again = self._lp().solve(warm_start=warm, fingerprint="cheap-key")
        assert again is first

    def test_replay_counts_hit_metric(self):
        from repro import obs
        from repro.optimize.linprog import LPWarmStart

        first = self._lp().solve()
        warm = LPWarmStart(fingerprint="k", solution=first)
        obs.reset()
        obs.enable()
        try:
            self._lp().solve(warm_start=warm, fingerprint="k")
            self._lp().solve(warm_start=warm, fingerprint="other")
            snap = obs.current_registry().snapshot()
        finally:
            obs.disable()
            obs.reset()
        assert snap["lp.warm_hits.warmtest"]["value"] == 1
        assert snap["lp.warm_misses.warmtest"]["value"] == 1
        # a replay never counts as a solve
        assert snap.get("lp.solves.warmtest", {"value": 1})["value"] == 1
