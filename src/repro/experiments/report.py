"""Plain-text reporting: ASCII bar charts and markdown experiment tables.

The paper presents Figure 6 as grouped bars with confidence-interval
whiskers; these helpers render the same data in a terminal (ASCII) and
in EXPERIMENTS.md (markdown), so the benchmark harness and the committed
results stay generated from one code path.
"""

from __future__ import annotations

from repro.experiments.runner import SetResult

__all__ = ["ascii_bar_chart", "fig6_bar_chart", "fig6_markdown",
           "comparison_markdown"]


def ascii_bar_chart(labels: list[str], values: list[float],
                    errors: list[float] | None = None,
                    width: int = 50, unit: str = "%") -> str:
    """Horizontal ASCII bars with optional +/- whiskers.

    Bars scale to the largest ``value + error``; negative values render
    with a left-pointing bar so regressions are visually distinct.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if errors is not None and len(errors) != len(values):
        raise ValueError("errors must match values")
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    errs = [0.0] * len(values) if errors is None else list(errors)
    peak = max((abs(v) + e for v, e in zip(values, errs)), default=1.0)
    peak = max(peak, 1e-12)
    label_w = max((len(l) for l in labels), default=0)
    lines = []
    for label, v, e in zip(labels, values, errs):
        n = int(round(abs(v) / peak * width))
        bar = ("#" * n) if v >= 0 else ("<" + "-" * max(n - 1, 0))
        suffix = f" {v:+.2f}{unit}"
        if e:
            suffix += f" +/- {e:.2f}"
        lines.append(f"{label:<{label_w}} |{bar}{suffix}")
    return "\n".join(lines)


def fig6_bar_chart(results: dict[str, SetResult], width: int = 40) -> str:
    """Figure 6 as grouped ASCII bars (one group per simulation set)."""
    labels: list[str] = []
    values: list[float] = []
    errors: list[float] = []
    for name, res in results.items():
        for key in sorted(res.intervals):
            ci = res.intervals[key]
            labels.append(f"{name}/{key}")
            values.append(ci.mean)
            errors.append(ci.half_width)
    return ascii_bar_chart(labels, values, errors, width=width)


def fig6_markdown(results: dict[str, SetResult]) -> str:
    """Figure 6 as a markdown table (used to build EXPERIMENTS.md)."""
    lines = [
        "| set | static % | V_prop | psi=25 | psi=50 | best of |",
        "|---|---|---|---|---|---|",
    ]
    for name, res in results.items():
        cfg = res.config
        cells = []
        for key in ("psi=25", "psi=50", "best"):
            ci = res.intervals[key]
            cells.append(f"{ci.mean:+.2f}% ± {ci.half_width:.2f}")
        lines.append(
            f"| {name} | {cfg.static_fraction * 100:.0f}% | {cfg.v_prop} "
            f"| {cells[0]} | {cells[1]} | {cells[2]} |")
    return "\n".join(lines)


def comparison_markdown(headers: list[str],
                        rows: list[list[str]]) -> str:
    """Generic markdown table builder for benchmark reports."""
    if any(len(r) != len(headers) for r in rows):
        raise ValueError("every row must match the header width")
    out = ["| " + " | ".join(headers) + " |",
           "|" + "---|" * len(headers)]
    out.extend("| " + " | ".join(r) + " |" for r in rows)
    return "\n".join(out)
