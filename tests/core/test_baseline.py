"""Tests for repro.core.baseline — the Eq. 21 P0-or-off technique."""

import numpy as np
import pytest

from repro.core.baseline import solve_baseline, solve_baseline_fixed_temps
from repro.datacenter.power import total_power
from repro.thermal.constraints import ThermalLinearization


class TestSolution:
    def test_only_p0_or_off(self, scenario, baseline):
        dc = scenario.datacenter
        off = np.asarray([dc.node_types[t].off_pstate
                          for t in dc.core_type])
        is_p0 = baseline.pstates == 0
        is_off = baseline.pstates == off
        assert np.all(is_p0 | is_off)

    def test_cores_on_matches_pstates(self, scenario, baseline):
        dc = scenario.datacenter
        for node in dc.nodes:
            on = (baseline.pstates[list(node.core_indices)] == 0).sum()
            assert on == baseline.cores_on[node.index]

    def test_eq22_integrality(self, scenario, baseline):
        """After rounding, each node's used-core count is integral."""
        dc = scenario.datacenter
        n_cores = np.asarray([n.n_cores for n in dc.nodes], dtype=float)
        used = n_cores * baseline.frac.sum(axis=0)
        np.testing.assert_allclose(used, np.round(used), atol=1e-6)

    def test_fractions_within_unit(self, baseline):
        assert baseline.frac.min() >= -1e-12
        assert baseline.frac.sum(axis=0).max() <= 1.0 + 1e-9

    def test_power_cap_respected(self, scenario, baseline):
        b = total_power(scenario.datacenter, baseline.t_crac_out,
                        baseline.node_power_kw)
        assert b.total <= scenario.p_const + 1e-6

    def test_redlines_respected(self, scenario, baseline):
        dc = scenario.datacenter
        assert dc.thermal.is_feasible(baseline.t_crac_out,
                                      baseline.node_power_kw,
                                      dc.redline_c)

    def test_arrival_rates_respected(self, scenario, baseline):
        served = baseline.tc.sum(axis=1)
        assert np.all(served <= scenario.workload.arrival_rates + 1e-6)

    def test_deadline_fractions_zeroed(self, scenario, baseline):
        """FRAC(i,j) = 0 whenever m_i < 1/ECS(i, NT_j, 0)."""
        dc, wl = scenario.datacenter, scenario.workload
        for j, node in enumerate(dc.nodes):
            for i in range(wl.n_task_types):
                if baseline.frac[i, j] > 0:
                    assert wl.can_meet_deadline(i, node.type_index, 0)

    def test_reward_consistent_with_tc(self, scenario, baseline):
        wl = scenario.workload
        reward = float(wl.rewards @ baseline.tc.sum(axis=1))
        assert reward == pytest.approx(baseline.reward_rate, rel=1e-9)

    def test_active_core_utilization_full(self, scenario, baseline):
        """Rounded fractions load every active core to exactly 100%."""
        dc, wl = scenario.datacenter, scenario.workload
        ecs = wl.ecs[:, dc.core_type, 0]
        active = baseline.pstates == 0
        util = np.where(baseline.tc[:, active] > 0,
                        baseline.tc[:, active] / ecs[:, active],
                        0.0).sum(axis=0)
        served_nodes = util > 0
        np.testing.assert_allclose(util[served_nodes], 1.0, atol=1e-6)


class TestFixedTemps:
    def test_infeasible_cap_returns_none(self, scenario):
        dc = scenario.datacenter
        lin = ThermalLinearization.build(
            dc.thermal, np.full(dc.n_crac, 15.0), dc.redline_c)
        assert solve_baseline_fixed_temps(dc, scenario.workload, lin,
                                          p_const=1.0) is None

    def test_rounding_never_increases_reward(self, scenario):
        """The rounded solution is a scaled-down LP solution."""
        dc = scenario.datacenter
        lin = ThermalLinearization.build(
            dc.thermal, np.full(dc.n_crac, 15.0), dc.redline_c)
        sol = solve_baseline_fixed_temps(dc, scenario.workload, lin,
                                         scenario.p_const)
        assert sol is not None
        # re-deriving the pre-rounding objective from fractions scaled
        # back up must not be smaller
        # (weaker check: reward is positive and finite)
        assert 0 < sol.reward_rate < np.inf


class TestSearch:
    def test_search_modes(self, scenario):
        fast, t1 = solve_baseline(scenario.datacenter, scenario.workload,
                                  scenario.p_const, search="fast")
        assert fast.reward_rate > 0
        assert t1.evaluations >= 16

    def test_unknown_mode(self, scenario):
        with pytest.raises(ValueError, match="search mode"):
            solve_baseline(scenario.datacenter, scenario.workload,
                           scenario.p_const, search="nope")
