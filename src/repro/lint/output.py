"""Report renderers: human text, machine JSON, GitHub annotations."""

from __future__ import annotations

import json

from repro.lint.findings import LintReport

__all__ = ["render_github", "render_json", "render_text"]


def render_text(report: LintReport) -> str:
    """Compiler-style ``path:line:col: CODE message`` lines + summary.

    Dataflow findings print their source → propagation → sink chain
    indented under the finding, one hop per line.
    """
    lines: list[str] = []
    for f in report.findings:
        lines.append(
            f"{f.path}:{f.line}:{f.col}: {f.code} {f.message} [{f.rule}]")
        for step in f.trace:
            lines.append(f"    trace: {step}")
    summary = (f"{len(report.findings)} finding"
               f"{'' if len(report.findings) == 1 else 's'} "
               f"({report.files_checked} files checked, "
               f"{len(report.baselined)} baselined, "
               f"{len(report.suppressed)} suppressed)")
    lines.append(summary)
    for entry in report.stale_baseline:
        lines.append(
            f"stale baseline entry (no longer matches): "
            f"{entry['code']} {entry['path']}: {entry['context']!r}")
    for entry in report.baseline_drift:
        lines.append(
            f"baseline drift (matched via whitespace normalization; "
            f"refresh the context): {entry['code']} {entry['path']}: "
            f"{entry['context']!r} -> {entry['found_context']!r}")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """The full report as a schema-versioned JSON document."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def _escape_annotation(text: str) -> str:
    # GitHub workflow-command escaping for the message payload.
    return (text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A"))


def render_github(report: LintReport) -> str:
    """``::error`` workflow commands — inline PR annotations in Actions."""
    lines = []
    for f in report.findings:
        message = f.message
        if f.trace:
            message += "\n" + "\n".join(f"trace: {s}" for s in f.trace)
        lines.append(
            f"::error file={f.path},line={f.line},col={f.col},"
            f"title={f.code} {f.rule}::{_escape_annotation(message)}")
    lines.append(f"{len(lines)} findings / "
                 f"{report.files_checked} files")
    return "\n".join(lines)
