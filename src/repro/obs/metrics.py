"""Process-local metric registry (the counting half of :mod:`repro.obs`).

Three metric kinds, all thread-safe and all free when observability is
disabled (the accessor returns a shared no-op object):

* :class:`Counter` — monotonically increasing event count (LP solves,
  cache hits, replans, shed-load events).
* :class:`Gauge` — last-written value (problem sizes that matter as
  "what was it", not "how often").
* :class:`Histogram` — running ``count/total/min/max`` summary of a
  value stream (LP variable counts, span-free timings).  No buckets:
  the four moments merge across processes without binning decisions,
  which keeps worker → parent merges exact and order-independent.

Snapshots are plain dicts (picklable, JSON-able); merging a snapshot
adds counters, merges histogram moments, and last-writer-wins gauges —
the engine merges worker snapshots in seed order so the result is
deterministic for a deterministic sweep.
"""

from __future__ import annotations

import threading
from typing import TypeVar

_M = TypeVar("_M", "Counter", "Gauge", "Histogram")

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "counter", "gauge", "histogram", "current_registry",
           "swap_registry"]


class Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def to_dict(self) -> dict:
        return {"kind": "counter", "value": self.value}

    def merge(self, doc: dict) -> None:
        self.value += int(doc["value"])


class Gauge:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def to_dict(self) -> dict:
        return {"kind": "gauge", "value": self.value}

    def merge(self, doc: dict) -> None:
        self.value = float(doc["value"])


class Histogram:
    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {"kind": "histogram", "count": self.count,
                "total": self.total,
                "min": None if self.count == 0 else self.min,
                "max": None if self.count == 0 else self.max}

    def merge(self, doc: dict) -> None:
        n = int(doc["count"])
        if n == 0:
            return
        self.count += n
        self.total += float(doc["total"])
        self.min = min(self.min, float(doc["min"]))
        self.max = max(self.max, float(doc["max"]))


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _NullMetric:
    """Accepts every metric operation and records nothing."""

    __slots__ = ()
    value = 0
    count = 0
    total = 0.0
    mean = 0.0

    def inc(self, n: int = 1) -> None:
        return None

    def set(self, v: float) -> None:
        return None

    def observe(self, v: float) -> None:
        return None


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Name → metric map for one process (or one scoped capture)."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls: type[_M]) -> _M:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.setdefault(name, cls())
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """Picklable/JSON-able copy: ``{name: metric.to_dict()}``."""
        with self._lock:
            return {name: m.to_dict()
                    for name, m in sorted(self._metrics.items())}

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one."""
        for name, doc in sorted(snapshot.items()):
            cls = _KINDS.get(doc.get("kind"))
            if cls is None:
                raise ValueError(f"unknown metric kind in snapshot: {doc!r}")
            self._get(name, cls).merge(doc)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry(enabled=False)


def current_registry() -> MetricsRegistry:
    return _REGISTRY


def swap_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous one."""
    global _REGISTRY
    old = _REGISTRY
    _REGISTRY = registry
    return old


def counter(name: str) -> Counter:
    """The named global counter (a shared no-op when obs is disabled)."""
    reg = _REGISTRY
    if not reg.enabled:
        return _NULL_METRIC  # type: ignore[return-value]
    return reg.counter(name)


def gauge(name: str) -> Gauge:
    reg = _REGISTRY
    if not reg.enabled:
        return _NULL_METRIC  # type: ignore[return-value]
    return reg.gauge(name)


def histogram(name: str) -> Histogram:
    reg = _REGISTRY
    if not reg.enabled:
        return _NULL_METRIC  # type: ignore[return-value]
    return reg.histogram(name)
