"""Physics / units rules (RL010-RL019).

The paper's unit system lives in :mod:`repro.units`; these rules keep
physical quantities flowing through it instead of re-materializing as
magic float literals, and keep float comparisons on physical values
tolerance-based.
"""

from __future__ import annotations

import ast
import re

from repro.lint.base import RuleVisitor, register
from repro.lint.rules.common import walk_identifiers

__all__ = ["FloatEquality", "PhysicalLiteral"]

#: Identifier shapes that denote a physical quantity: temperatures,
#: redlines, inlet/outlet, power, and the repo's ``_kw`` / ``_c`` unit
#: suffixes.
_PHYSICS_NAME_RE = re.compile(
    r"(?:^|_)(?:redline|inlet|outlet|temp|power)(?:$|_)"
    r"|(?:^|_)t_(?:in|out)(?:$|_)"
    r"|_kw$|_c$")

#: Parameter names whose float defaults must come from repro.units.
_PHYSICS_PARAM_RE = re.compile(
    r"(?:^|_)(?:redline|rho|density)(?:$|_)|^cp$|(?:^|_)t_redline(?:$|_)")


def _physics_named(node: ast.expr) -> bool:
    return any(_PHYSICS_NAME_RE.search(name)
               for name in walk_identifiers(node))


@register
class PhysicalLiteral(RuleVisitor):
    """Known physical constants re-typed as bare float literals."""

    code = "RL010"
    name = "physical-literal"
    category = "physics"
    description = (
        "a float literal equal to a physical constant (air density "
        "1.205, node redline 25.0 C, CRAC redline 40.0 C) used as a "
        "physics parameter default or compared against a physical "
        "quantity; import the symbol from repro.units so a constant "
        "change propagates everywhere")

    def _constant_symbol(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return self.config.physical_constants.get(node.value)
        return None

    def _check_defaults(self, args: ast.arguments) -> None:
        named = list(args.posonlyargs) + list(args.args)
        defaults = list(args.defaults)
        for arg, default in zip(named[len(named) - len(defaults):],
                                defaults):
            self._check_param(arg, default)
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                self._check_param(arg, kw_default)

    def _check_param(self, arg: ast.arg, default: ast.expr) -> None:
        symbol = self._constant_symbol(default)
        if symbol is not None and _PHYSICS_PARAM_RE.search(arg.arg):
            self.report(
                default,
                f"parameter {arg.arg!r} defaults to the bare literal "
                f"for {symbol}; use the named constant")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, operand in enumerate(operands):
            symbol = self._constant_symbol(operand)
            if symbol is None:
                continue
            others = operands[:i] + operands[i + 1:]
            if any(_physics_named(o) for o in others):
                self.report(
                    operand,
                    f"comparison against the bare literal for {symbol}; "
                    "use the named constant from repro.units")
        self.generic_visit(node)


@register
class FloatEquality(RuleVisitor):
    """``==`` / ``!=`` between physical float quantities."""

    code = "RL011"
    name = "float-equality"
    category = "physics"
    description = (
        "exact ==/!= between a physical quantity (temperature, "
        "redline, power, *_kw/*_c) and a non-zero float — rounding in "
        "the thermal algebra makes exact equality brittle; use "
        "repro.units.approx_eq / math.isclose with an explicit "
        "tolerance (comparisons against exactly 0.0 are allowed as "
        "structural emptiness checks)")

    @staticmethod
    def _nonzero_float(node: ast.expr) -> bool:
        return (isinstance(node, ast.Constant)
                and isinstance(node.value, float)
                and node.value != 0.0)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            physical = [e for e in pair if _physics_named(e)]
            if not physical:
                continue
            if any(self._nonzero_float(e) for e in pair) \
                    or all(_physics_named(e) for e in pair):
                self.report(
                    node,
                    "exact float equality on a physical quantity; "
                    "compare with repro.units.approx_eq (or "
                    "math.isclose) and an explicit tolerance")
        self.generic_visit(node)
