"""Tests for repro.thermal.transient — first-order room dynamics."""

import numpy as np
import pytest

from repro.thermal.transient import simulate_transient, time_to_steady_state


@pytest.fixture(scope="module")
def setup(small_dc):
    model = small_dc.thermal
    t_out = np.full(small_dc.n_crac, 15.0)
    p_hot = small_dc.node_power_kw(small_dc.all_p0_pstates())
    p_cold = small_dc.node_power_kw(small_dc.all_off_pstates())
    return model, t_out, p_hot, p_cold


class TestConvergence:
    def test_converges_to_steady_state(self, setup):
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        target = model.steady_state(t_out, p_hot)
        res = simulate_transient(model, t_out, p_hot, start,
                                 duration_s=1800.0, tau_s=120.0)
        assert np.abs(res.t_out[-1] - target.t_out).max() < 0.05
        assert np.abs(res.t_in[-1] - target.t_in).max() < 0.05

    def test_steady_start_stays_steady(self, setup):
        """The steady state is a fixed point of the dynamics."""
        model, t_out, p_hot, _ = setup
        ss = model.steady_state(t_out, p_hot)
        res = simulate_transient(model, t_out, p_hot, ss.t_out,
                                 duration_s=300.0)
        assert np.abs(res.t_out - ss.t_out[None, :]).max() < 1e-6

    def test_monotone_approach_from_below(self, setup):
        """Heating up: outlet temperatures rise monotonically."""
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        res = simulate_transient(model, t_out, p_hot, start,
                                 duration_s=600.0)
        nodes = res.t_out[:, model.n_crac:]
        assert np.all(np.diff(nodes, axis=0) >= -1e-9)

    def test_timescale_orders_of_minutes(self, setup):
        """The Section V.A claim: settling takes minutes, not seconds."""
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        tts = time_to_steady_state(model, t_out, p_hot, start,
                                   tolerance_c=0.1, tau_s=120.0)
        assert 60.0 < tts < 3600.0

    def test_faster_tau_settles_sooner(self, setup):
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        fast = time_to_steady_state(model, t_out, p_hot, start, tau_s=30.0)
        slow = time_to_steady_state(model, t_out, p_hot, start, tau_s=240.0)
        assert fast < slow


class TestOvershootDiagnostics:
    def test_no_overshoot_when_heating_to_feasible(self, setup, small_dc):
        """Monotone heating toward a feasible point never breaks
        redlines mid-transient."""
        model, t_out, _, p_cold = setup
        p_mid = 0.5 * (p_cold + small_dc.node_power_kw(
            small_dc.all_p0_pstates()))
        start = model.steady_state(t_out, p_cold).t_out
        if model.is_feasible(t_out, p_mid, small_dc.redline_c):
            res = simulate_transient(model, t_out, p_mid, start, 1200.0)
            assert res.max_inlet_overshoot(small_dc.redline_c) <= 1e-6


class TestValidation:
    def test_bad_step(self, setup):
        model, t_out, p_hot, _ = setup
        with pytest.raises(ValueError, match="too coarse"):
            simulate_transient(model, t_out, p_hot,
                               np.full(model.n_units, 15.0),
                               duration_s=10.0, tau_s=10.0, dt_s=5.0)

    def test_bad_duration(self, setup):
        model, t_out, p_hot, _ = setup
        with pytest.raises(ValueError, match="positive"):
            simulate_transient(model, t_out, p_hot,
                               np.full(model.n_units, 15.0),
                               duration_s=0.0)

    def test_bad_initial_shape(self, setup):
        model, t_out, p_hot, _ = setup
        with pytest.raises(ValueError, match="initial state"):
            simulate_transient(model, t_out, p_hot, np.zeros(3), 10.0)
