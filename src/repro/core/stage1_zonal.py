"""Stage 1 by hot-aisle zonal decomposition (100x rooms, DESIGN goal).

The monolithic Stage 1 LP couples every node to every other through the
dense inlet-gain matrix — ``O(n_units * n_nodes)`` non-zeros per probe,
which is the scaling wall at the ROADMAP's 100x-fig6 target.  Real
cross-interference is block-sparse by hot aisle (Figure 1, Appendix B;
:mod:`repro.thermal.sparse`), and Van Damme et al. (PAPERS.md) show a
zonal decomposition with boundary coupling recovers near-optimal
control.  This module implements that decomposition for *fixed* CRAC
outlet temperatures:

1. Partition nodes by the hot aisle they exhaust into (zone *z* =
   CRAC *z* plus aisle-*z* nodes, :func:`repro.thermal.sparse.zone_partition`).
2. Per zone, solve the Stage 1 LP restricted to the zone's segment
   variables with the out-of-zone world *frozen*: node redlines use the
   zone-local gain ``W_z = (I - A_zz)^-1`` against a boundary-coupling
   constant, CRAC redlines and the power cap use the exact monolithic
   gain rows for the CRAC units (cheap to cache: ``n_crac`` transpose
   solves of the sparse factorization), and the global power budget is
   what the frozen other zones leave over.
3. Reconcile with a Gauss-Seidel fixed-point loop — each zone's solve
   immediately updates the frozen boundary seen by the next — until the
   largest per-node core-power change drops below tolerance.
4. Verify against the *full* model and, if the decomposition left a
   residual redline/cap violation, shrink all core powers by a common
   factor (bisection; monotone because gains are non-negative) so the
   returned plan is always feasible for the monolithic model.

On rooms whose interference really is zonal (block alpha) the loop
converges in one or two sweeps and matches the monolithic solve to
solver tolerance; on the paper's fig6 room (dense LP-generated alpha)
the golden tests pin the gap to a small fraction of the monolithic
objective (``tests/core/test_stage1_zonal.py``).

Warm replay: Stage 1 never reads arrival rates, so a rolling-horizon
controller whose rates drift replays a :class:`ZonalState` verbatim —
the sub-second 100x replan benchmarked by ``benchmarks/bench_sparse.py``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro import kernels
from repro.core.arr import AggregateRewardRate
from repro.core.stage1 import build_arr_functions, distribute_node_power
from repro.datacenter.builder import DataCenter
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate as obs_annotate
from repro.obs.trace import span as obs_span
from repro.optimize.linprog import InfeasibleError, LinearProgram
from repro.thermal.sparse import Zone, zone_partition
from repro.workload.tasktypes import Workload

__all__ = ["ZonalStage1Result", "ZonalState", "solve_stage1_zonal"]

#: Stop sweeping when no node's core power moved more than this, kW.
DEFAULT_TOL_KW: float = 1e-6

#: Sweep cap — on zonal rooms the loop converges in 1-2 sweeps; the cap
#: only bites for strongly coupled (dense-alpha) rooms where the final
#: verify-and-shrink step guarantees feasibility anyway.
DEFAULT_MAX_SWEEPS: int = 10

#: Under-relaxation factor for sweeps after the first (see the damped
#: update in :func:`solve_stage1_zonal`).
RELAXATION: float = 0.5

#: Cutting-plane rounds of the coordination master LP; each round adds
#: every node redline the exact model flags, so rounds are few.
MAX_CUT_ROUNDS: int = 25


@dataclass
class ZonalStage1Result:
    """Feasible Stage 1 plan produced by the zonal decomposition.

    Attributes
    ----------
    t_crac_out:
        The (fixed) CRAC outlet temperatures the plan was solved at.
    core_power_kw / node_power_kw:
        Relaxed per-core powers and total node powers, as in
        :class:`repro.core.stage1.Stage1Solution`.
    objective:
        Aggregate reward rate of the plan (sum of per-node concave ARR).
    sweeps:
        Gauss-Seidel sweeps executed (0 when replayed from warm state).
    max_delta_kw:
        Largest per-node core-power change in the final sweep.
    repair_scale:
        Common core-power factor applied by the monolithic
        verify-and-shrink step; ``1.0`` means the decomposed plan was
        already feasible for the full model.
    """

    t_crac_out: np.ndarray
    core_power_kw: np.ndarray
    node_power_kw: np.ndarray
    objective: float
    sweeps: int
    max_delta_kw: float
    repair_scale: float


@dataclass
class _ZoneBlock:
    """Temperature-independent LP ingredients for one zone."""

    zone: Zone
    var_idx: np.ndarray         # indices into the global segment arrays
    var_loc: np.ndarray         # in-zone node position of each variable
    a_zz: np.ndarray            # (k, k) dense in-zone mixing block
    a_rows: object              # (k, n_nodes) rows of A_MM, native backend
    a_mc_z: np.ndarray          # (k, n_crac) dense CRAC->zone mixing
    g_loc: np.ndarray           # (k, k) W_z @ A_zz @ diag(coeff_z)
    w_z: np.ndarray             # (k, k) dense (I - A_zz)^-1


@dataclass
class ZonalState:
    """Warm handle for :func:`solve_stage1_zonal` (never serialized).

    ``struct_key`` guards the temperature-independent caches (zone
    blocks, CRAC gain rows, ARR hulls, segments); ``solve_key`` adds
    the outlet vector and power cap and guards verbatim result replay.
    Arrival rates are deliberately absent from both — Stage 1 does not
    read them — which is what makes rate-only replans O(1).
    """

    struct_key: str
    solve_key: str | None = None
    arrs: list[AggregateRewardRate] = field(default_factory=list)
    segments: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
    blocks: list[_ZoneBlock] = field(default_factory=list)
    crac_gain: np.ndarray | None = None
    seed_core: np.ndarray | None = None
    result: ZonalStage1Result | None = None


def _hash_matrix(h: "hashlib._Hash", mat) -> None:
    """Feed a dense array or CSR matrix into a digest, content-exactly."""
    if sp.issparse(mat):
        csr = mat.tocsr()
        for part in (csr.data, csr.indices, csr.indptr):
            h.update(np.ascontiguousarray(part).tobytes())
    else:
        h.update(np.ascontiguousarray(mat).tobytes())


def _struct_key(datacenter: DataCenter, workload: Workload,
                psi: float) -> str:
    """Digest of everything the zonal caches depend on except (t, cap)."""
    model = datacenter.require_thermal()
    h = hashlib.sha256()
    _hash_matrix(h, model.alpha)
    _hash_matrix(h, model.flows)
    h.update(repr((model.n_crac, model.rho, model.cp,
                   model.backend)).encode())
    _hash_matrix(h, datacenter.redline_c)
    _hash_matrix(h, datacenter.node_base_power)
    _hash_matrix(h, datacenter.node_type_index)
    _hash_matrix(h, datacenter.layout.hot_aisle_of_node)
    for spec in datacenter.node_types:
        h.update(repr((spec.name, spec.base_power_kw, spec.cores_per_node,
                       spec.pstate_power_kw, spec.frequencies_mhz,
                       spec.performance_scale)).encode())
    for crac in datacenter.cracs:
        cop = crac.cop_model
        h.update(repr((crac.flow_m3s, cop.a2, cop.a1, cop.a0)).encode())
    _hash_matrix(h, workload.ecs)
    _hash_matrix(h, workload.rewards)
    _hash_matrix(h, workload.deadline_slack)
    h.update(repr(float(psi)).encode())
    return h.hexdigest()


def _block(mat, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Dense sub-block of a dense or sparse matrix."""
    if sp.issparse(mat):
        return mat[rows][:, cols].toarray()
    return mat[np.ix_(rows, cols)]


def _build_blocks(datacenter: DataCenter,
                  segments: tuple[np.ndarray, np.ndarray, np.ndarray]
                  ) -> list[_ZoneBlock]:
    """Assemble the temperature-independent per-zone LP ingredients."""
    model = datacenter.require_thermal()
    nc = model.n_crac
    a_mm = model.mix[nc:, nc:]
    a_mc = model.mix[nc:, :nc]
    coeff = model.node_heat_coeff
    node_of_var = segments[0]
    blocks = []
    for zone in zone_partition(datacenter.layout):
        nodes = zone.nodes
        if nodes.size == 0:
            continue
        in_zone = np.zeros(datacenter.n_nodes, dtype=bool)
        in_zone[nodes] = True
        var_idx = np.nonzero(in_zone[node_of_var])[0]
        loc = np.full(datacenter.n_nodes, -1)
        loc[nodes] = np.arange(nodes.size)
        a_zz = _block(a_mm, nodes, nodes)
        eye = np.eye(nodes.size)
        w_z = np.linalg.solve(eye - a_zz, eye)
        g_loc = w_z @ a_zz @ np.diag(coeff[nodes])
        a_mc_z = a_mc[nodes].toarray() if sp.issparse(a_mc) \
            else a_mc[nodes]
        blocks.append(_ZoneBlock(
            zone=zone,
            var_idx=var_idx,
            var_loc=loc[node_of_var[var_idx]],
            a_zz=a_zz,
            a_rows=a_mm[nodes],
            a_mc_z=a_mc_z,
            g_loc=g_loc,
            w_z=w_z,
        ))
    return blocks


def _objective(datacenter: DataCenter, arrs: list[AggregateRewardRate],
               core_sums: np.ndarray) -> float:
    """Aggregate reward rate of per-node core-power totals.

    Cores in a node are identical and the per-core ARR is concave, so
    the node's best reward from total core power ``C`` is
    ``n_cores * concave(C / n_cores)`` (equal split).
    """
    total = 0.0
    type_idx = datacenter.node_type_index
    for t, spec in enumerate(datacenter.node_types):
        nodes = np.nonzero(type_idx == t)[0]
        if nodes.size == 0:
            continue
        n_cores = spec.cores_per_node
        total += float(n_cores
                       * arrs[t].concave(core_sums[nodes] / n_cores).sum())
    return total


def solve_stage1_zonal(datacenter: DataCenter, workload: Workload, *,
                       p_const: float, t_crac_out: np.ndarray,
                       psi: float = 50.0,
                       max_sweeps: int = DEFAULT_MAX_SWEEPS,
                       tol_kw: float = DEFAULT_TOL_KW,
                       warm: ZonalState | None = None
                       ) -> tuple[ZonalStage1Result, ZonalState]:
    """Zonal Stage 1 at fixed CRAC outlet temperatures.

    Parameters mirror :func:`repro.core.stage1.solve_stage1_fixed_temps`
    with the outlet vector supplied by the caller (the 100x serve loop
    holds outlets fixed between room changes; the golden tests drive
    this with the monolithic search's optimum).

    Returns ``(result, state)``; pass ``state`` back as ``warm`` on the
    next call.  When nothing but arrival rates changed the previous
    result replays verbatim (``sweeps == 0``); when only ``t_crac_out``
    or ``p_const`` moved, the cached zone blocks and hulls are reused
    and the sweep is seeded from the previous core powers.

    Raises :class:`repro.optimize.linprog.InfeasibleError` when even
    all-cores-off violates a redline or the power cap.
    """
    model = datacenter.require_thermal()
    t = np.asarray(t_crac_out, dtype=float)
    if t.shape != (model.n_crac,):
        raise ValueError(
            f"need {model.n_crac} CRAC outlet temperatures, got {t.shape}")

    if warm is not None and warm.struct_key:
        struct_key = warm.struct_key
        fresh_struct = False
    else:
        struct_key = _struct_key(datacenter, workload, psi)
        fresh_struct = True
    solve_key = hashlib.sha256(
        (struct_key + repr(float(p_const))).encode()
        + t.tobytes()).hexdigest()
    if (warm is not None and not fresh_struct
            and warm.solve_key == solve_key and warm.result is not None):
        obs_metrics.counter("stage1.zonal_replays").inc()
        return warm.result, warm

    state = warm if (warm is not None and not fresh_struct) \
        else ZonalState(struct_key=struct_key)
    with obs_span("stage1_zonal", n_crac=model.n_crac,
                  n_nodes=datacenter.n_nodes):
        result = _solve(datacenter, workload, model, t, p_const, psi,
                        max_sweeps, tol_kw, state)
    state.solve_key = solve_key
    state.result = result
    return result, state


def _solve(datacenter: DataCenter, workload: Workload, model, t: np.ndarray,
           p_const: float, psi: float, max_sweeps: int, tol_kw: float,
           state: ZonalState) -> ZonalStage1Result:
    nc = model.n_crac
    n_nodes = datacenter.n_nodes
    base = datacenter.node_base_power
    redline = datacenter.redline_c
    coeff = model.node_heat_coeff

    # ---- temperature-independent caches (struct-level, reusable) ----
    if not state.arrs:
        state.arrs = build_arr_functions(datacenter, workload, psi)
    arrs = state.arrs
    if state.segments is None:
        state.segments = kernels.active().assemble_segments(datacenter, arrs)
    node_of_var, caps, slopes = state.segments
    if not state.blocks:
        state.blocks = _build_blocks(datacenter, state.segments)
    blocks = state.blocks
    if state.crac_gain is None:
        state.crac_gain = model.gain_rows(np.arange(nc))
    crac_gain = state.crac_gain                  # (n_crac, n_nodes), exact

    # ---- temperature-dependent affine pieces (exact, monolithic) ----
    cop_model = kernels.active().wrap_cop(datacenter.cracs[0].cop_model)
    cop = np.asarray(cop_model(t), dtype=float)
    weight = model.crac_capacity / cop           # kW per Kelvin of lift
    crac_coeff = weight @ crac_gain              # (n_nodes,)
    const_c = model.inlet_base[:nc] @ t          # CRAC inlet constants
    crac_const = float(weight @ (const_c - t))
    base_total = float(base.sum()) + crac_const + float(crac_coeff @ base)
    if base_total > p_const + 1e-9:
        raise InfeasibleError(
            f"base power {base_total:.1f} kW exceeds cap {p_const:.1f} kW")

    # ---- state of the Gauss-Seidel sweep ----
    core = np.zeros(n_nodes)
    if state.seed_core is not None and state.seed_core.shape == core.shape:
        core = state.seed_core.copy()
    st0 = model.steady_state(t, base + core)
    x = st0.t_in[nc:].copy()                     # node inlet temperatures
    y = x + coeff * (base + core)                # node outlet temperatures
    weighted_core = float((1.0 + crac_coeff) @ core)

    # Constraint generation for cross-zone redlines: a zone LP only
    # models its *own* nodes' redlines, so on strongly coupled rooms a
    # zone can heat a neighbor's nodes past redline without noticing.
    # After each sweep the exact model flags violated nodes; their
    # exact monolithic gain rows (cheap transpose solves on the sparse
    # backend) are added to every zone LP from then on.  On truly zonal
    # rooms the cross-zone node gain is zero and this set stays empty.
    active_nodes = np.empty(0, dtype=int)
    active_gain = np.empty((0, n_nodes))
    active_const = np.empty(0)

    sweeps = 0
    max_delta = float("inf")
    for sweep in range(max_sweeps):
        max_delta = 0.0
        for blk in blocks:
            nodes = blk.zone.nodes
            # Frozen boundary coupling: everything the zone's nodes
            # inhale from outside the zone at the current iterate.
            r_z = np.asarray(blk.a_rows @ y).ravel() - blk.a_zz @ y[nodes]
            const_z = blk.w_z @ (blk.a_mc_z @ t + r_z
                                 + blk.a_zz @ (coeff[nodes] * base[nodes]))
            # Node redlines: const_z + g_loc @ C_z <= redline (in-zone).
            rows_n = blk.g_loc[:, blk.var_loc]
            rhs_n = redline[nc + nodes] - const_z
            # CRAC redlines: exact monolithic gain, others frozen.
            frozen_c = const_c + crac_gain @ (base + core) \
                - crac_gain[:, nodes] @ core[nodes]
            rows_c_full = crac_gain[:, nodes]
            live = np.abs(rows_c_full).max(axis=1) > 1e-15
            rows_c = rows_c_full[live][:, blk.var_loc]
            rhs_c = redline[:nc][live] - frozen_c[live]
            # Power cap: what the frozen other zones leave over.
            in_zone_use = float((1.0 + crac_coeff[nodes]) @ core[nodes])
            budget = p_const - base_total - (weighted_core - in_zone_use)
            if sweep == 0 and not core.any() and (
                    np.any(rhs_n < -1e-9) or np.any(rhs_c < -1e-9)):
                # Cold start at base power: the frozen boundary IS the
                # exact steady state, so a negative slack means even
                # all-cores-off violates a redline.
                raise InfeasibleError(
                    f"zone {blk.zone.index}: all-cores-off violates a "
                    "redline at these CRAC outlet temperatures")
            # Mid-iteration a neighbor's interim fill can transiently
            # eat this zone's slack; clamp instead of failing — the
            # relaxed update backs both zones off and the loop
            # re-balances (the final monolithic verify guarantees
            # feasibility regardless).
            rhs_n = np.maximum(rhs_n, 0.0)
            rhs_c = np.maximum(rhs_c, 0.0)
            # Generated cross-zone redline rows (exact affine, others
            # frozen at the current iterate).
            if active_nodes.size:
                g_act = active_gain[:, nodes]
                rhs_a = (redline[nc + active_nodes] - active_const
                         - active_gain @ base
                         - (active_gain @ core - g_act @ core[nodes]))
                live_a = np.abs(g_act).max(axis=1) > 1e-15
                rows_a = g_act[live_a][:, blk.var_loc]
                rhs_a = np.maximum(rhs_a[live_a], 0.0)
            else:
                rows_a = np.empty((0, blk.var_idx.size))
                rhs_a = np.empty(0)
            lp = LinearProgram(name="stage1_zone", maximize=True)
            lp.add_variables(blk.var_idx.size, lb=0.0,
                             ub=caps[blk.var_idx],
                             objective=slopes[blk.var_idx])
            lp.add_dense_le_rows(np.vstack([rows_n, rows_c, rows_a]),
                                 np.concatenate([rhs_n, rhs_c, rhs_a]))
            power_row = (1.0 + crac_coeff[nodes])[blk.var_loc]
            lp.add_dense_le_rows(power_row[None, :],
                                 np.asarray([max(budget, 0.0)]))
            sol = lp.solve()
            lp_core = np.bincount(blk.var_loc, weights=sol.x,
                                  minlength=nodes.size)
            # Damped update after the first sweep: full Gauss-Seidel
            # steps oscillate on strongly coupled (dense-alpha) rooms
            # because each zone re-grabs the headroom its neighbor just
            # released; under-relaxation restores convergence there and
            # costs nothing on weakly coupled zonal rooms (the LP
            # optimum stops moving after sweep one).
            relax = 1.0 if sweep == 0 else RELAXATION
            new_core = core[nodes] + relax * (lp_core - core[nodes])
            max_delta = max(max_delta,
                            float(np.abs(new_core - core[nodes]).max()))
            core[nodes] = new_core
            weighted_core += float((1.0 + crac_coeff[nodes]) @ new_core) \
                - in_zone_use
            # Gauss-Seidel: the next zone sees this zone's new outlets.
            x[nodes] = const_z + blk.g_loc @ new_core
            y[nodes] = x[nodes] + coeff[nodes] * (base[nodes] + new_core)
        sweeps = sweep + 1
        # Refresh the frozen boundary from the exact model (one sparse
        # solve — the zone-local affine predictions are exact only at
        # the fixed point) and grow the generated-constraint set.
        st = model.steady_state(t, base + core)
        x = st.t_in[nc:].copy()
        y = x + coeff * (base + core)
        weighted_core = float((1.0 + crac_coeff) @ core)
        fresh = np.nonzero(st.t_in[nc:] - redline[nc:] > 1e-7)[0]
        fresh = np.setdiff1d(fresh, active_nodes)
        if fresh.size:
            active_nodes = np.concatenate([active_nodes, fresh])
            active_gain = np.vstack([active_gain,
                                     model.gain_rows(nc + fresh)])
            active_const = np.concatenate([
                active_const, model.inlet_base[nc + fresh] @ t])
            continue    # re-sweep with the new rows before convergence test
        if max_delta <= tol_kw:
            break

    # ---- coordination: restricted master LP on the discovered rows ----
    # The per-zone solves split the shared power budget greedily (each
    # zone only sees what the frozen others left over), which converges
    # but can land at an order-dependent equilibrium below the true LP
    # optimum on strongly coupled rooms.  The sweeps' durable product
    # is the *active set* — which node redlines bind.  A restricted
    # master LP over all segment variables (power cap, CRAC redlines
    # and the generated node rows; all exact, all sparse) then splits
    # the shared budget optimally, and cutting-plane rounds add any
    # node redline the exact model still flags — rarely more than one
    # round, because the sweeps already discovered the binding set.
    n_vars = caps.size
    expand = sp.csr_matrix(
        (np.ones(n_vars), (node_of_var, np.arange(n_vars))),
        shape=(n_nodes, n_vars))

    def sparse_rows(gain: np.ndarray) -> sp.csr_matrix:
        gain = np.where(np.abs(gain) > 1e-15, gain, 0.0)
        return sp.csr_matrix(gain) @ expand

    master = LinearProgram(name="stage1_zonal_master", maximize=True)
    master.add_variables(n_vars, lb=0.0, ub=caps, objective=slopes)
    master.add_dense_le_rows((1.0 + crac_coeff)[node_of_var][None, :],
                             np.asarray([p_const - base_total]))
    master.add_sparse_le_rows(sparse_rows(crac_gain),
                              redline[:nc] - const_c - crac_gain @ base)
    if active_nodes.size:
        master.add_sparse_le_rows(
            sparse_rows(active_gain),
            redline[nc + active_nodes] - active_const - active_gain @ base)
    cuts = 0
    for _ in range(MAX_CUT_ROUNDS):
        sol = master.solve()
        core = np.bincount(node_of_var, weights=sol.x, minlength=n_nodes)
        st = model.steady_state(t, base + core)
        fresh = np.nonzero(st.t_in[nc:] - redline[nc:] > 1e-7)[0]
        fresh = np.setdiff1d(fresh, active_nodes)
        if fresh.size == 0:
            break
        cuts += 1
        gain_f = model.gain_rows(nc + fresh)
        const_f = model.inlet_base[nc + fresh] @ t
        master.add_sparse_le_rows(
            sparse_rows(gain_f),
            redline[nc + fresh] - const_f - gain_f @ base)
        active_nodes = np.concatenate([active_nodes, fresh])
        active_gain = np.vstack([active_gain, gain_f])
        active_const = np.concatenate([active_const, const_f])
    obs_metrics.counter("stage1.zonal_cuts").inc(cuts)

    # ---- monolithic verify and conservative repair ----
    def feasible(scale: float) -> bool:
        p = base + scale * core
        t_in = model.steady_state(t, p).t_in
        if np.any(t_in > redline + 1e-7):
            return False
        if np.any(t_in[:nc] < t - 1e-6):
            return False        # CRAC clamp: linearized power invalid
        total = base_total + float((1.0 + crac_coeff) @ (scale * core))
        return total <= p_const + 1e-7

    repair_scale = 1.0
    if not feasible(1.0):
        lo, hi = 0.0, 1.0
        if not feasible(0.0):
            raise InfeasibleError(
                "all-cores-off is infeasible for the full thermal model "
                "at these CRAC outlet temperatures")
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if feasible(mid):
                lo = mid
            else:
                hi = mid
        repair_scale = lo
        core = repair_scale * core

    node_power = base + core
    core_power = distribute_node_power(datacenter, arrs, core)
    objective = _objective(datacenter, arrs, core)
    obs_metrics.counter("stage1.zonal_sweeps").inc(sweeps)
    obs_annotate(sweeps=sweeps, max_delta_kw=max_delta,
                 repair_scale=repair_scale)
    state.seed_core = core.copy()
    return ZonalStage1Result(
        t_crac_out=t.copy(),
        core_power_kw=core_power,
        node_power_kw=node_power,
        objective=objective,
        sweeps=sweeps,
        max_delta_kw=max_delta,
        repair_scale=repair_scale,
    )
