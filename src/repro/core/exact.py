"""Exact (brute-force) solution of the first-step MINLP on tiny rooms.

The paper validates its heuristic the same way: "tests on smaller
problems, i.e., 2 CRAC units, 40 compute nodes, and 8 task types, have
shown no improvement" over the heuristic solutions.  This module makes
that check reproducible: it enumerates *every* integer P-state
assignment and every discretized CRAC outlet vector, solves the Stage 3
LP for each feasible combination, and returns the true optimum of the
discretized problem.

Complexity is combinatorial — per node the cores are interchangeable, so
node assignments are multisets (``C(n_cores + eta - 1, eta - 1)`` each),
and the cross product over nodes is taken.  Two prunings keep tiny
instances tractable:

* thermal/power feasibility is checked before any LP (cheap affine
  algebra), and
* the Stage 3 reward depends only on the *histogram* of (node type,
  P-state) classes, so LP results are memoized by histogram.

Intended for rooms of a handful of nodes with a few cores each;
:func:`solve_exact` refuses anything whose enumeration would exceed
``max_assignments``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.stage3 import solve_stage3
from repro.datacenter.builder import DataCenter
from repro.thermal.constraints import ThermalLinearization
from repro.optimize.search import temperature_grid
from repro.workload.tasktypes import Workload

__all__ = ["ExactResult", "solve_exact", "count_assignments"]


@dataclass
class ExactResult:
    """The discretized-MINLP optimum.

    Attributes
    ----------
    reward_rate:
        Best achievable steady-state reward rate.
    pstates / t_crac_out / tc:
        The optimizing decisions (same conventions as the heuristics).
    assignments_checked:
        Number of (P-state assignment, outlet vector) pairs enumerated.
    lp_solves:
        Stage 3 LPs actually solved (after histogram memoization).
    """

    reward_rate: float
    pstates: np.ndarray
    t_crac_out: np.ndarray
    tc: np.ndarray
    assignments_checked: int
    lp_solves: int

    def verify(self, datacenter: DataCenter, p_const: float,
               tol: float = 1e-6) -> None:
        """Assert the cap and redlines hold (the shared result protocol)."""
        from repro.datacenter.power import total_power

        model = datacenter.require_thermal()
        node_power = datacenter.node_power_kw(self.pstates)
        margin = model.redline_margin(self.t_crac_out, node_power,
                                      datacenter.redline_c)
        if margin.min() < -tol:
            raise AssertionError(
                f"redline violated by {-margin.min():.4f} C at unit "
                f"{int(margin.argmin())}")
        breakdown = total_power(datacenter, self.t_crac_out, node_power)
        if breakdown.total > p_const + tol * max(1.0, p_const):
            raise AssertionError(
                f"power cap violated: {breakdown.total:.3f} kW > "
                f"{p_const:.3f} kW")

    def to_dict(self) -> dict:
        """JSON-friendly summary (the :class:`SolveOutcome` protocol)."""
        return {
            "method": "exact",
            "reward_rate": self.reward_rate,
            "t_crac_out": self.t_crac_out.tolist(),
            "pstates": self.pstates.tolist(),
            "assignments_checked": self.assignments_checked,
            "lp_solves": self.lp_solves,
        }


def count_assignments(datacenter: DataCenter) -> int:
    """Size of the P-state assignment space (before outlet choices)."""
    total = 1
    for node in datacenter.nodes:
        eta = node.spec.n_pstates
        n = node.n_cores
        # multisets of size n from eta states
        from math import comb

        total *= comb(n + eta - 1, eta - 1)
    return total


def _node_options(datacenter: DataCenter
                  ) -> list[list[tuple[tuple[int, ...], float]]]:
    """Per node: every core-P-state multiset and its Eq. 1 node power."""
    options = []
    for node in datacenter.nodes:
        eta = node.spec.n_pstates
        table = np.asarray(node.spec.pstate_power_kw)
        opts = []
        for combo in itertools.combinations_with_replacement(
                range(eta), node.n_cores):
            power = node.spec.base_power_kw + float(table[list(combo)].sum())
            opts.append((combo, power))
        options.append(opts)
    return options


def solve_exact(datacenter: DataCenter, workload: Workload, p_const: float,
                *, temp_step: float = 3.0,
                max_assignments: int = 200_000) -> ExactResult:
    """Brute-force the discretized first-step problem.

    Parameters
    ----------
    temp_step:
        Granularity of the CRAC outlet grid (the full product grid is
        enumerated, so coarser steps keep small rooms fast).
    max_assignments:
        Refuse rooms whose P-state space alone exceeds this bound.

    Raises
    ------
    ValueError
        If the enumeration would be too large.
    RuntimeError
        If no feasible (assignment, outlets) pair exists.
    """
    space = count_assignments(datacenter)
    if space > max_assignments:
        raise ValueError(
            f"P-state space has {space} assignments; exact enumeration is "
            f"only sensible for tiny rooms (limit {max_assignments})")
    model = datacenter.require_thermal()
    redline = datacenter.redline_c
    cop_model = datacenter.cracs[0].cop_model
    options = _node_options(datacenter)
    eta = workload.n_pstates

    lows = [c.outlet_range_c[0] for c in datacenter.cracs]
    highs = [c.outlet_range_c[1] for c in datacenter.cracs]
    axis = temperature_grid(min(lows), max(highs), temp_step)

    best_reward = -np.inf
    best = None
    checked = 0
    lp_cache: dict[bytes, float] = {}
    lp_solves = 0

    for t_combo in itertools.product(axis, repeat=datacenter.n_crac):
        t_vec = np.asarray(t_combo)
        lin = ThermalLinearization.build(model, t_vec, redline, cop_model)
        for combo in itertools.product(*options):
            checked += 1
            node_power = np.asarray([power for _, power in combo])
            # feasibility: redlines (exact — the affine map is the model)
            if np.any(lin.inlet_gain @ node_power
                      > lin.redline_rhs + 1e-9):
                continue
            # exact power cap with Eq. 3 clamping: heat removed at each
            # CRAC is max(0, rho*Cp*F*(T_in - t)), unlike the heuristics'
            # linearization this never under-counts
            t_in = lin.inlet_temperatures(node_power)
            lift = np.maximum(t_in[:datacenter.n_crac] - t_vec, 0.0)
            cop = np.asarray(cop_model(t_vec), dtype=float)
            crac_kw = float((model.crac_capacity * lift / cop).sum())
            if node_power.sum() + crac_kw > p_const + 1e-9:
                continue
            # build global P-state vector + class histogram
            pstates = np.concatenate(
                [np.asarray(states, dtype=int) for states, _ in combo])
            class_id = datacenter.core_type * eta + pstates
            hist = np.bincount(class_id,
                               minlength=len(datacenter.node_types) * eta)
            key = hist.tobytes()
            if key in lp_cache:
                reward = lp_cache[key]
            else:
                reward = solve_stage3(datacenter, workload,
                                      pstates).reward_rate
                lp_cache[key] = reward
                lp_solves += 1
            if reward > best_reward:
                best_reward = reward
                best = (pstates, t_vec.copy())

    if best is None:
        raise RuntimeError("no feasible assignment exists at this "
                           "power cap / outlet grid")
    pstates, t_vec = best
    stage3 = solve_stage3(datacenter, workload, pstates)
    return ExactResult(
        reward_rate=stage3.reward_rate,
        pstates=pstates,
        t_crac_out=t_vec,
        tc=stage3.tc,
        assignments_checked=checked,
        lp_solves=lp_solves,
    )
