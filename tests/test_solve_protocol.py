"""Frozen ``SolveOutcome`` protocol across every registered backend.

The protocol — ``reward_rate`` (float), ``verify()`` (raises on
violation), ``to_dict()`` (JSON-able) — is the contract the experiment
engine, the serve loop and downstream consumers rely on.  This suite
solves one tiny room with **every** registered backend and checks each
result (and its wrapped outcome) against the contract, so a new backend
cannot ship with a divergent result type.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.api import (SolveOptions, SolveRequest, SolveOutcome,
                            SolveResult, solve)
from repro.datacenter import build_datacenter, power_bounds
from repro.datacenter.coretypes import shrunken_node_types
from repro.solvers import list_solvers
from repro.thermal import attach_thermal_model
from repro.workload import generate_workload

from tests.conftest import SEED


@dataclass(frozen=True)
class _Tiny:
    datacenter: object
    workload: object
    p_const: float


@pytest.fixture(scope="module")
def tiny():
    # small enough that the "exact" brute-force backend stays cheap
    rng = np.random.default_rng(SEED)
    dc = build_datacenter(n_nodes=3, n_crac=2,
                          node_types=shrunken_node_types(2), rng=rng,
                          nodes_per_rack=3)
    attach_thermal_model(dc, rng=rng)
    wl = generate_workload(dc, rng, n_task_types=4)
    return _Tiny(dc, wl, power_bounds(dc).p_const)


def _solve_with(tiny, backend):
    options = SolveOptions(backend=backend, seed=0, max_evals=60,
                           temp_step=6.0)
    return solve(SolveRequest(tiny.datacenter, tiny.workload,
                              tiny.p_const, options=options))


@pytest.fixture(scope="module", params=sorted(list_solvers()))
def result(request, tiny):
    return _solve_with(tiny, request.param)


class TestProtocol:
    def test_every_backend_is_exercised(self):
        # the param list is the live registry — a new backend is pulled
        # into this suite automatically
        assert len(list_solvers()) >= 6

    def test_satisfies_runtime_protocol(self, result):
        assert isinstance(result, SolveOutcome)
        assert isinstance(result.outcome, SolveOutcome)

    def test_reward_rate_is_float(self, result):
        assert isinstance(result.reward_rate, float)
        assert result.reward_rate >= 0.0

    def test_verify_passes(self, tiny, result):
        result.verify(tiny.datacenter, tiny.p_const)

    def test_verify_raises_on_impossible_cap(self, tiny, result):
        # base + CRAC power are nonzero for any committed plan, so a
        # zero cap must always trip the power check
        with pytest.raises(AssertionError):
            result.verify(tiny.datacenter, 0.0)

    def test_to_dict_is_json_able(self, result):
        doc = result.to_dict()
        assert isinstance(doc, dict)
        assert "method" in doc and "reward_rate" in doc
        json.dumps(doc)  # raises on non-serializable leaves

    def test_wrapper_forwards_attributes(self, result):
        assert isinstance(result, SolveResult)
        # forwarded attribute reads hit the wrapped outcome
        assert result.reward_rate == result.outcome.reward_rate
        assert result.to_dict() == result.outcome.to_dict()

    def test_wrapper_rejects_dunder_forwarding(self, result):
        with pytest.raises(AttributeError):
            result.__missing_dunder__

    def test_unknown_attribute_raises(self, result):
        with pytest.raises(AttributeError):
            result.not_a_real_attribute
