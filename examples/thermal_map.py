#!/usr/bin/env python
"""Exploring the thermal substrate: recirculation, redlines, CRAC economics.

Shows the physics that makes the assignment problem thermal-aware:

* the steady-state temperature field produced by the cross-interference
  model at different CRAC outlet settings;
* which rack positions (labels A-E) run hottest, and the redline margin;
* the CRAC power / outlet-temperature trade-off of Eqs. 3+8 — warmer
  outlets are cheaper to produce but push inlets toward the redlines.

Run:  python examples/thermal_map.py [seed]
"""

import sys

import numpy as np

from repro import attach_thermal_model, build_datacenter, total_power
from repro.datacenter import RACK_LABELS


def main(seed: int = 3) -> None:
    rng = np.random.default_rng(seed)
    dc = build_datacenter(n_nodes=30, n_crac=3, rng=rng)
    model = attach_thermal_model(dc, rng=rng)

    # run every core at P-state 1 (a mid-power operating point)
    pstates = np.ones(dc.n_cores, dtype=int)
    node_power = dc.node_power_kw(pstates)
    print(f"operating point: all cores at P1, node power total "
          f"{node_power.sum():.1f} kW\n")

    print("CRAC outlet sweep (uniform setting):")
    print(f"{'outlet C':>9}{'max node inlet':>16}{'max CRAC inlet':>16}"
          f"{'cooling kW':>12}{'total kW':>10}  redline?")
    for t in (12.0, 16.0, 20.0, 24.0):
        t_vec = np.full(dc.n_crac, t)
        state = model.steady_state(t_vec, node_power)
        node_in = state.t_in[dc.n_crac:]
        crac_in = state.t_in[:dc.n_crac]
        breakdown = total_power(dc, t_vec, node_power)
        ok = model.is_feasible(t_vec, node_power, dc.redline_c)
        print(f"{t:>9.0f}{node_in.max():>16.2f}{crac_in.max():>16.2f}"
              f"{breakdown.cooling_total:>12.2f}{breakdown.total:>10.2f}"
              f"  {'OK' if ok else 'VIOLATED'}")

    # hottest positions by rack label at the warmest feasible setting
    t_vec = np.full(dc.n_crac, 16.0)
    state = model.steady_state(t_vec, node_power)
    print(f"\nnode inlet temperature by rack label (outlets at 16 C, "
          f"redline {dc.node_redline_c:.0f} C):")
    for label in RACK_LABELS:
        idx = dc.layout.nodes_with_label(label)
        if idx.size == 0:
            continue
        temps = state.t_in[dc.n_crac + idx]
        print(f"  {label} (slot {RACK_LABELS.index(label)}): "
              f"mean {temps.mean():5.2f} C   max {temps.max():5.2f} C")
    print("\ntop-of-rack nodes (D/E) recirculate the most exhaust and sit"
          "\nclosest to the redline — they bound how warm the CRACs may run.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
