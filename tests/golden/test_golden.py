"""Golden-value regression suite.

Each test runs one headline pipeline at a fixed seed under the default
(vectorized) kernel and pins its observable outputs — reward rates,
per-core P-states, CRAC outlets, inlet temperatures, CRAC powers — to a
committed JSON baseline.  Wall-clock measurements are deliberately
excluded (they are the only nondeterministic outputs).

The suite is the repo's early-warning system for silent numeric drift:
a kernel change, an LP-tie flip or a generator reordering shows up here
as a per-path diff long before it would move a paper figure.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import SolveOptions, SolveRequest, solve
from repro.experiments.chaos import ChaosConfig, sweep_chaos
from repro.experiments.config import PAPER_SET_1, paper_sets, scaled_down
from repro.experiments.figures import fig6_data
from repro.experiments.generator import generate_scenario
from repro.experiments.sweeps import sweep_power_cap
from repro.experiments.tournament import TournamentConfig, sweep_tournament

from tests.conftest import SEED


def test_solver_detail_golden(golden):
    """Full three-stage output on one room, down to per-core P-states."""
    sc = generate_scenario(scaled_down(PAPER_SET_1, 12), SEED)
    result = solve(SolveRequest(sc.datacenter, sc.workload, sc.p_const,
                                options=SolveOptions(psi=50.0)))
    result.verify(sc.datacenter, sc.p_const)
    power = result.power(sc.datacenter)
    steady = sc.datacenter.require_thermal().steady_state(
        result.t_crac_out, result.stage2.node_power_kw)
    golden("solver_detail", {
        "p_const_kw": float(sc.p_const),
        "reward_rate": float(result.reward_rate),
        "stage1_objective": float(result.stage1.objective),
        "t_crac_out_c": result.t_crac_out.tolist(),
        "pstates": [int(p) for p in result.pstates],
        "node_power_kw": result.stage2.node_power_kw.tolist(),
        "crac_power_kw": power.crac_kw.tolist(),
        "inlet_temperatures_c": steady.t_in.tolist(),
    })


def test_fig6_golden(golden):
    """The headline experiment, shrunk: 2 runs x 10 nodes x 3 sets."""
    configs = [scaled_down(c, 10) for c in paper_sets()]
    results = fig6_data(n_runs=2, base_seed=1000, configs=configs)
    document = {}
    for name, set_result in results.items():
        document[name] = {
            "runs": [r.to_dict() for r in set_result.runs],
            "improvement_means": {
                label: float(ci.mean)
                for label, ci in set_result.intervals.items()},
            "n_degenerate": len(set_result.degenerate),
            "n_failed": len(set_result.failures),
        }
    golden("fig6_small", document)


def test_capacity_sweep_golden(golden):
    """Reward-vs-cap curve at three caps on one 10-node room."""
    sc = generate_scenario(scaled_down(PAPER_SET_1, 10), SEED)
    caps = np.linspace(sc.bounds.p_min * 1.05, sc.bounds.p_max, 3)
    points = sweep_power_cap(sc.datacenter, sc.workload, caps)
    golden("capacity_sweep", {
        "points": [{
            "p_const_kw": p.p_const,
            "reward_three_stage": p.reward_three_stage,
            "reward_baseline": p.reward_baseline,
            "power_used_kw": p.power_used_kw,
        } for p in points],
    })


def test_tournament_golden(golden):
    """Each backend's seeded output on one small room.

    Pins every backend's full operating point — reward, outlets,
    P-states, evaluation counts — so a metaheuristic RNG/repair change
    can't silently drift the tournament results.
    """
    config = TournamentConfig(n_nodes=10, seed=SEED, sets=(1,),
                              backends=("three_stage", "annealing",
                                        "evolution"),
                              backend_seed=0, max_evals=200)
    points = sweep_tournament(config)
    from repro.core.api import SolveRequest as _Req
    from repro.experiments.generator import generate_scenario as _gen
    sc = _gen(scaled_down(PAPER_SET_1, 10), SEED)
    details = {}
    for backend in ("annealing", "evolution"):
        result = solve(_Req(sc.datacenter, sc.workload, sc.p_const,
                            options=SolveOptions(backend=backend, seed=0,
                                                 max_evals=200)))
        details[backend] = result.to_dict()
    golden("tournament", {
        "points": [p.to_dict() for p in points],
        "details": details,
    })


def test_stage1_zonal_golden(golden):
    """Zonal Stage 1 vs the monolithic LP on the shrunken fig6 room.

    Pins the decomposition's objective (equal to the monolithic optimum
    at the same fixed outlets), the per-node power plan and the
    reconciliation diagnostics, so a sweep/coordination change that
    degrades the decomposition shows up as a baseline diff.
    """
    from repro.core.stage1 import (build_arr_functions,
                                   solve_stage1_fixed_temps)
    from repro.core.stage1_zonal import solve_stage1_zonal
    from repro.thermal.constraints import ThermalLinearization

    sc = generate_scenario(scaled_down(PAPER_SET_1, 30), 1000)
    t_fixed = np.asarray([18.0, 17.0, 17.0])
    result, _ = solve_stage1_zonal(sc.datacenter, sc.workload,
                                   p_const=sc.p_const, t_crac_out=t_fixed)
    arrs = build_arr_functions(sc.datacenter, sc.workload, 50.0)
    lin = ThermalLinearization.build(
        sc.datacenter.require_thermal(), t_fixed, sc.datacenter.redline_c,
        sc.datacenter.cracs[0].cop_model)
    mono = solve_stage1_fixed_temps(sc.datacenter, arrs, lin, sc.p_const)
    golden("stage1_zonal", {
        "p_const_kw": float(sc.p_const),
        "t_crac_out_c": t_fixed.tolist(),
        "objective": float(result.objective),
        "monolithic_objective": float(mono.objective),
        "node_power_kw": result.node_power_kw.tolist(),
        "sweeps": int(result.sweeps),
        "repair_scale": float(result.repair_scale),
    })


def test_mpc_trajectory_golden(golden):
    """One MPC controller run, epoch by epoch, on a flash-crowd trace.

    Pins the committed operating points (CRAC outlets, reward rates),
    the escalation ladder (pre-cool/derate levels) and the measured
    transition diagnostics, so a planner/predictor change that moves
    any decision shows up as a per-epoch diff.
    """
    from repro.control.mpc import MPCConfig, MPCController
    from repro.workload import ConstantProfile, FlashCrowdProfile

    sc = generate_scenario(scaled_down(PAPER_SET_1, 10), SEED)
    profile = FlashCrowdProfile(
        ConstantProfile(base_rates=sc.workload.arrival_rates),
        bursts=((30.0, 30.0, 3.0),))
    controller = MPCController(
        sc.datacenter, sc.workload, sc.p_const,
        MPCConfig(horizon_steps=3, step_s=30.0, tau_s=60.0,
                  settle_factor=3.0))
    result = controller.run(profile, 90.0, np.random.default_rng(SEED + 1))
    golden("mpc_trajectory", {
        "reward_rate": result.reward_rate,
        "total_reward": result.total_reward,
        "violation_minutes": result.violation_minutes,
        "precools": result.precools,
        "derates": result.derates,
        "shed_epochs": result.shed_epochs,
        "epochs": [{
            "start_s": e.start_s,
            "end_s": e.end_s,
            "rates": [float(r) for r in e.rates],
            "plan_reward_rate": float(e.plan.reward_rate),
            "t_crac_out_c": [float(t) for t in e.plan.t_crac_out],
            "precooled": e.precooled,
            "derated": e.derated,
            "predicted_overshoot_c": e.predicted_overshoot_c,
            "transient_overshoot_c": e.transient_overshoot_c,
            "violation_minutes": e.violation_minutes,
            "warm_level": e.warm_level,
            "shed": e.shed,
        } for e in result.epochs],
    })


def test_control_sweep_golden(golden):
    """MPC vs interval on one faulted flash-crowd room.

    Control points carry no wall-clock fields by design, so the whole
    point payload is pinned verbatim — including the escalation counts
    that tell the two control laws apart.
    """
    from repro.experiments.control import ControlConfig, sweep_control

    config = ControlConfig(n_nodes=6, seed=SEED, horizon_s=120.0,
                           epoch_s=30.0, burst_start_s=30.0,
                           burst_duration_s=60.0)
    points = sweep_control(config, [0.0, 1.0])
    golden("control_sweep", {
        "points": [p.to_dict() for p in points],
    })


def test_chaos_golden(golden):
    """Fault-injection sweep: healthy control plus factor 1.

    ``mean_replan_s`` (measured wall time) is the one nondeterministic
    field of a chaos point; everything else is pure in (config, factor).
    """
    config = ChaosConfig(n_nodes=6, seed=SEED, horizon_s=20.0)
    points = sweep_chaos(config, [0.0, 1.0])
    golden("chaos_sweep", {
        "points": [{
            "factor": p.factor,
            "n_fault_events": p.n_fault_events,
            "reward_rate": p.reward_rate,
            "violation_minutes": p.violation_minutes,
            "tasks_lost": p.tasks_lost,
            "tasks_requeued": p.tasks_requeued,
            "n_replans": p.n_replans,
            "reward_retained": p.reward_retained,
        } for p in points],
    })
