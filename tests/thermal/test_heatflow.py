"""Tests for repro.thermal.heatflow — the Eq. 4-6 steady-state model."""

import numpy as np
import pytest

from repro.thermal.heatflow import HeatFlowModel
from repro.units import AIR_DENSITY


def two_unit_model() -> HeatFlowModel:
    """One CRAC and one node exchanging all their air.

    alpha = [[0, 1], [1, 0]]: CRAC output feeds the node, node exhaust
    returns to the CRAC — a closed loop with hand-checkable temperatures.
    """
    alpha = np.asarray([[0.0, 1.0], [1.0, 0.0]])
    flows = np.asarray([0.5, 0.5])
    return HeatFlowModel(alpha, flows, n_crac=1)


class TestClosedLoop:
    def test_steady_state_by_hand(self):
        model = two_unit_model()
        p = np.asarray([2.0])      # kW at the node
        t = np.asarray([15.0])     # CRAC outlet
        state = model.steady_state(t, p)
        # node inlet = CRAC outlet; node outlet = inlet + P/(rho Cp F)
        rise = 2.0 / (AIR_DENSITY * 1.0 * 0.5)
        assert state.t_in[1] == pytest.approx(15.0)
        assert state.t_out[1] == pytest.approx(15.0 + rise)
        # CRAC inlet = node outlet
        assert state.t_in[0] == pytest.approx(15.0 + rise)

    def test_energy_conservation(self):
        model = two_unit_model()
        state = model.steady_state(np.asarray([15.0]), np.asarray([3.7]))
        assert state.crac_heat_kw.sum() == pytest.approx(3.7)

    def test_zero_power_isothermal(self):
        model = two_unit_model()
        state = model.steady_state(np.asarray([18.0]), np.asarray([0.0]))
        np.testing.assert_allclose(state.t_in, 18.0)
        np.testing.assert_allclose(state.t_out, 18.0)
        assert state.crac_heat_kw.sum() == pytest.approx(0.0)


class TestRecirculationLoop:
    def test_self_recirculation_amplifies(self):
        """A node re-ingesting its own exhaust runs hotter than one fed
        purely by the CRAC."""
        # 30% of node exhaust loops straight back into the node
        alpha = np.asarray([[0.0, 1.0], [0.7, 0.3]])
        # flow conservation: inflows must match flows
        flows = np.asarray([0.7, 1.0])
        model = HeatFlowModel(alpha, flows, n_crac=1)
        clean = two_unit_model()
        p = np.asarray([2.0])
        t = np.asarray([15.0])
        hot = model.steady_state(t, p)
        cold = clean.steady_state(t, p)
        assert hot.t_in[1] > cold.t_in[1]

    def test_energy_conserved_with_recirculation(self):
        alpha = np.asarray([[0.0, 1.0], [0.7, 0.3]])
        flows = np.asarray([0.7, 1.0])
        model = HeatFlowModel(alpha, flows, n_crac=1)
        state = model.steady_state(np.asarray([15.0]), np.asarray([2.0]))
        assert state.crac_heat_kw.sum() == pytest.approx(2.0)


class TestGeneratedRooms:
    def test_energy_conservation(self, small_dc):
        """sum of CRAC heat removed == sum of node power, any load."""
        model = small_dc.thermal
        rng = np.random.default_rng(9)
        for _ in range(5):
            p = rng.uniform(0.3, 1.0, size=small_dc.n_nodes)
            state = model.steady_state(
                np.full(small_dc.n_crac, 15.0), p)
            assert state.crac_heat_kw.sum() == pytest.approx(
                p.sum(), rel=1e-6)

    def test_mix_rows_sum_to_one(self, small_dc):
        np.testing.assert_allclose(small_dc.thermal.mix.sum(axis=1), 1.0,
                                   atol=1e-6)

    def test_inlet_monotone_in_power(self, small_dc):
        """More node power never cools any inlet (gain matrix >= 0)."""
        assert np.all(small_dc.thermal.inlet_gain >= -1e-12)

    def test_affine_map_matches_steady_state(self, small_dc):
        model = small_dc.thermal
        t = np.full(small_dc.n_crac, 14.0)
        p = np.linspace(0.3, 0.9, small_dc.n_nodes)
        const, gain = model.inlet_affine(t)
        np.testing.assert_allclose(const + gain @ p,
                                   model.steady_state(t, p).t_in)

    def test_inlets_above_coldest_outlet(self, small_dc):
        """No inlet can be colder than the coldest air in the room."""
        model = small_dc.thermal
        state = model.steady_state(np.asarray([12.0, 14.0, 16.0]),
                                   np.full(small_dc.n_nodes, 0.5))
        assert state.t_in.min() >= 12.0 - 1e-9

    def test_redline_margin_and_feasibility(self, small_dc):
        model = small_dc.thermal
        t = np.full(small_dc.n_crac, 13.0)
        p_lo = small_dc.node_power_kw(small_dc.all_off_pstates())
        margin = model.redline_margin(t, p_lo, small_dc.redline_c)
        assert margin.shape == (small_dc.n_units,)
        assert model.is_feasible(t, p_lo, small_dc.redline_c) \
            == bool((margin >= -1e-6).all())


class TestValidation:
    def test_rejects_bad_row_sums(self):
        alpha = np.asarray([[0.5, 0.2], [1.0, 0.0]])
        with pytest.raises(ValueError, match="sum to 1"):
            HeatFlowModel(alpha, np.asarray([1.0, 1.0]), 1)

    def test_rejects_flow_nonconservation(self):
        alpha = np.asarray([[0.5, 0.5], [1.0, 0.0]])
        with pytest.raises(ValueError, match="not conserved"):
            HeatFlowModel(alpha, np.asarray([1.0, 2.0]), 1)

    def test_rejects_negative_alpha(self):
        alpha = np.asarray([[1.5, -0.5], [1.0, 0.0]])
        with pytest.raises(ValueError, match=">= 0"):
            HeatFlowModel(alpha, np.asarray([1.0, 1.0]), 1)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="shape"):
            HeatFlowModel(np.eye(3), np.asarray([1.0, 1.0]), 1)

    def test_rejects_bad_ncrac(self):
        alpha = np.asarray([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="n_crac"):
            HeatFlowModel(alpha, np.asarray([1.0, 1.0]), 2)

    def test_rejects_negative_power(self):
        model = two_unit_model()
        with pytest.raises(ValueError, match="non-negative"):
            model.steady_state(np.asarray([15.0]), np.asarray([-1.0]))

    def test_rejects_wrong_power_shape(self):
        model = two_unit_model()
        with pytest.raises(ValueError, match="node powers"):
            model.steady_state(np.asarray([15.0]), np.asarray([1.0, 2.0]))

    def test_rejects_wrong_outlet_shape(self):
        model = two_unit_model()
        with pytest.raises(ValueError, match="outlet temps"):
            model.inlet_affine(np.asarray([15.0, 16.0]))


class TestAlphaNegativeClamp:
    """Round-off negatives in ``[-ALPHA_NEG_TOL, 0)`` (LP vertices,
    censoring algebra) are clamped to 0; anything more negative is still
    a modeling error and rejected."""

    TINY = 5e-10    # inside the clamp band (ALPHA_NEG_TOL = 1e-9)

    def _noisy_alpha(self, eps):
        # the closed two-unit loop, with round-off pushed onto the
        # diagonal; rows still sum to 1 and flow is still conserved
        return np.asarray([[-eps, 1.0 + eps], [1.0 + eps, -eps]])

    def test_tiny_negative_clamped_dense(self):
        model = HeatFlowModel(self._noisy_alpha(self.TINY),
                              np.asarray([0.5, 0.5]), 1)
        assert float(model.alpha.min()) == 0.0
        assert float(model.mix.min()) >= 0.0
        clean = two_unit_model()
        state = model.steady_state(np.asarray([15.0]), np.asarray([2.0]))
        want = clean.steady_state(np.asarray([15.0]), np.asarray([2.0]))
        np.testing.assert_allclose(state.t_in, want.t_in, atol=1e-8)

    def test_tiny_negative_clamped_sparse(self):
        import scipy.sparse as sp

        alpha = sp.csr_matrix(self._noisy_alpha(self.TINY))
        model = HeatFlowModel(alpha, np.asarray([0.5, 0.5]), 1)
        assert model.backend == "sparse"
        assert float(model.alpha.data.min()) >= 0.0
        assert float(model.mix.data.min()) >= 0.0

    def test_below_tolerance_still_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            HeatFlowModel(self._noisy_alpha(1e-8),
                          np.asarray([0.5, 0.5]), 1)

    def test_clamp_does_not_mutate_caller_array(self):
        alpha = self._noisy_alpha(self.TINY)
        keep = alpha.copy()
        HeatFlowModel(alpha, np.asarray([0.5, 0.5]), 1)
        np.testing.assert_array_equal(alpha, keep)


class TestCensoredCache:
    """``without_nodes`` memoizes per dead-node set (satellite 3 of the
    kernels PR): fault sweeps re-censor the same inventory every replan,
    and re-factoring ``(I - A_MM)`` each time dominated chaos runs."""

    def test_repeat_call_returns_same_object(self, small_dc):
        model = small_dc.thermal
        first = model.without_nodes([1, 3])
        again = model.without_nodes([3, 1])       # order-insensitive key
        assert again is first

    def test_distinct_dead_sets_distinct_models(self, small_dc):
        model = small_dc.thermal
        assert model.without_nodes([1, 3]) is not model.without_nodes([2])

    def test_cached_model_matches_fresh_build(self, small_dc):
        from repro.thermal.heatflow import HeatFlowModel

        model = small_dc.thermal
        cached = model.without_nodes([0, 5])
        model._censored.clear()
        fresh = model.without_nodes([0, 5])
        assert fresh is not cached
        assert np.array_equal(fresh.alpha, cached.alpha)
        assert np.array_equal(fresh.flows, cached.flows)
        assert isinstance(fresh, HeatFlowModel)

    def test_hit_and_rebuild_counters(self, small_dc):
        from repro import obs

        model = small_dc.thermal
        model._censored.clear()
        with obs.capture() as snapshot:
            model.without_nodes([2, 4])
            model.without_nodes([2, 4])
            model.without_nodes([2, 4])
        metrics = snapshot()["metrics"]
        assert metrics["thermal.censored_rebuilds"]["value"] == 1
        assert metrics["thermal.censored_cache_hits"]["value"] == 2

    def test_empty_dead_set_is_identity_not_cached(self, small_dc):
        model = small_dc.thermal
        assert model.without_nodes([]) is model

    def test_invalid_indices_still_raise(self, small_dc):
        model = small_dc.thermal
        with pytest.raises(ValueError, match="dead node indices"):
            model.without_nodes([small_dc.n_nodes])
        with pytest.raises(ValueError, match="every compute node"):
            model.without_nodes(list(range(small_dc.n_nodes)))

    def test_censored_alpha_path_not_stale_after_eviction(self, small_dc):
        """Eviction at 64 entries must rebuild, not misread."""
        model = small_dc.thermal
        model._censored.clear()
        keep = model.without_nodes([0])
        alpha_before = keep.alpha.copy()
        for j in range(1, 65):
            model.without_nodes([j % (small_dc.n_nodes - 1) + 1, j // 60])
        rebuilt = model.without_nodes([0])
        assert np.array_equal(rebuilt.alpha, alpha_before)

    def test_eviction_is_lru_not_fifo(self, small_dc):
        """A hot inventory re-hit between inserts must survive eviction
        pressure (the memo refreshes recency on every hit; plain FIFO
        would evict the oldest *inserted* key — the hot one)."""
        import itertools

        model = small_dc.thermal
        model._censored.clear()
        hot = model.without_nodes([0])
        fillers = itertools.islice(
            itertools.combinations(range(1, small_dc.n_nodes), 2), 65)
        for pair in fillers:
            model.without_nodes(list(pair))
            # touch the hot inventory so it is always the most recent
            assert model.without_nodes([0]) is hot
        assert len(model._censored) <= 64

    def test_eviction_removes_least_recently_used(self, small_dc):
        """Filling to capacity, re-touching the oldest insert, then
        overflowing must evict the second-oldest instead."""
        import itertools

        model = small_dc.thermal
        model._censored.clear()
        oldest = model.without_nodes([0])
        second = model.without_nodes([1])
        fillers = list(itertools.islice(
            itertools.combinations(range(2, small_dc.n_nodes), 2), 62))
        for pair in fillers:
            model.without_nodes(list(pair))
        assert len(model._censored) == 64
        assert model.without_nodes([0]) is oldest    # refresh the oldest
        model.without_nodes([2])                     # overflow: evicts [1]
        assert model.without_nodes([0]) is oldest    # survived
        before = model.censored_rebuilds
        assert model.without_nodes([1]) is not second
        assert model.censored_rebuilds == before + 1  # a genuine rebuild


class TestCensoredMemoGauges:
    """Instance counters + gauges for the ``without_nodes`` memo."""

    def test_instance_counters_track_lifetime(self, small_dc):
        model = small_dc.thermal
        model._censored.clear()
        rebuilds0 = model.censored_rebuilds
        hits0 = model.censored_cache_hits
        model.without_nodes([1, 2])
        model.without_nodes([1, 2])
        model.without_nodes([3])
        assert model.censored_rebuilds == rebuilds0 + 2
        assert model.censored_cache_hits == hits0 + 1

    def test_gauges_exported(self, small_dc):
        from repro import obs

        model = small_dc.thermal
        model._censored.clear()
        with obs.capture() as snapshot:
            model.without_nodes([1, 4])
            model.without_nodes([1, 4])
        metrics = snapshot()["metrics"]
        assert metrics["thermal.censored_memo_rebuilds"]["value"] \
            == float(model.censored_rebuilds)
        assert metrics["thermal.censored_memo_hits"]["value"] \
            == float(model.censored_cache_hits)
        assert metrics["thermal.censored_memo_size"]["value"] \
            == float(len(model._censored))
