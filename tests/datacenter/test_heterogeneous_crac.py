"""Tests for heterogeneous CRAC fleets (unequal flow weights)."""

import numpy as np
import pytest

from repro.core import three_stage_assignment
from repro.datacenter import build_datacenter, power_bounds
from repro.thermal import attach_thermal_model
from repro.workload import generate_workload


@pytest.fixture(scope="module")
def uneven_room():
    rng = np.random.default_rng(77)
    dc = build_datacenter(n_nodes=15, n_crac=3, rng=rng,
                          crac_flow_weights=(3.0, 2.0, 1.0))
    attach_thermal_model(dc, rng=rng)
    return dc


class TestHeterogeneousCracs:
    def test_flow_split_respects_weights(self, uneven_room):
        flows = uneven_room.crac_flows
        assert flows[0] / flows[2] == pytest.approx(3.0)
        assert flows[1] / flows[2] == pytest.approx(2.0)
        assert flows.sum() == pytest.approx(uneven_room.node_flows.sum())

    def test_energy_conservation_holds(self, uneven_room):
        model = uneven_room.thermal
        p = uneven_room.node_power_kw(uneven_room.all_p0_pstates())
        state = model.steady_state(np.full(3, 15.0), p)
        assert state.crac_heat_kw.sum() == pytest.approx(p.sum(), rel=1e-6)

    def test_pipeline_runs_end_to_end(self, uneven_room):
        rng = np.random.default_rng(78)
        wl = generate_workload(uneven_room, rng)
        pc = power_bounds(uneven_room).p_const
        res = three_stage_assignment(uneven_room, wl, pc, psi=50.0)
        res.verify(uneven_room, pc)
        assert res.reward_rate > 0

    def test_small_crac_removes_less_heat(self, uneven_room):
        """At a uniform outlet setting, heat removal splits roughly with
        the flow weights (bigger units ingest more hot air)."""
        model = uneven_room.thermal
        p = uneven_room.node_power_kw(uneven_room.all_p0_pstates())
        state = model.steady_state(np.full(3, 15.0), p)
        assert state.crac_heat_kw[0] > state.crac_heat_kw[2]

    def test_weight_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="weights"):
            build_datacenter(10, 3, rng=rng, crac_flow_weights=(1.0, 2.0))
        with pytest.raises(ValueError, match="positive"):
            build_datacenter(10, 2, rng=rng, crac_flow_weights=(1.0, 0.0))
