"""Tests for repro.power.cop — the Eq. 8 CoP curve."""

import numpy as np
import pytest

from repro.power.cop import HP_UTILITY_COP, CoPModel


class TestEq8:
    def test_paper_coefficients(self):
        assert HP_UTILITY_COP.a2 == 0.0068
        assert HP_UTILITY_COP.a1 == 0.0008
        assert HP_UTILITY_COP.a0 == 0.458

    @pytest.mark.parametrize("tau,expected", [
        (0.0, 0.458),
        (15.0, 0.0068 * 225 + 0.0008 * 15 + 0.458),
        (25.0, 0.0068 * 625 + 0.0008 * 25 + 0.458),
    ])
    def test_values(self, tau, expected):
        assert HP_UTILITY_COP(tau) == pytest.approx(expected)

    def test_monotone_increasing_on_operating_range(self):
        taus = np.linspace(5.0, 35.0, 50)
        cops = HP_UTILITY_COP(taus)
        assert np.all(np.diff(cops) > 0)

    def test_vectorized(self):
        out = HP_UTILITY_COP(np.asarray([10.0, 20.0]))
        assert out.shape == (2,)

    def test_scalar_returns_float(self):
        assert isinstance(HP_UTILITY_COP(15.0), float)


class TestCustomModel:
    def test_callable(self):
        model = CoPModel(a2=0.0, a1=0.0, a0=2.0)
        assert model(100.0) == pytest.approx(2.0)

    def test_nonpositive_cop_rejected(self):
        model = CoPModel(a2=0.0, a1=0.0, a0=-1.0)
        with pytest.raises(ValueError, match="non-positive"):
            model(10.0)
