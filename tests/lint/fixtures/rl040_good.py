"""RL040 good: deterministic inputs and canonicalized payloads."""

import json


def canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def cache_key(payload) -> str:
    return canonical_json(payload)


def write_entry(config, seed: int, psis) -> str:
    payload = {"config": config, "seed": int(seed),
               "psis": sorted(set(psis))}
    return cache_key(payload)
