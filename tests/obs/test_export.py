"""Tests for repro.obs.export — profile tree, JSONL round-trip, render."""

import json

import pytest

from repro import obs
from repro.obs import (build_profile, profile_from_snapshot,
                       profile_to_dict, read_events_jsonl, render_metrics,
                       render_profile, write_events_jsonl)
from repro.obs.trace import span


def _rec(path, dur):
    name = path.rsplit(".", 1)[-1]
    return {"path": path, "name": name, "t0": 0.0, "dur": dur, "attrs": {}}


class TestBuildProfile:
    def test_aggregates_by_path(self):
        root = build_profile([_rec("a.b", 1.0), _rec("a.b", 3.0),
                              _rec("a", 5.0)])
        a = root.children["a"]
        b = a.children["b"]
        assert b.count == 2 and b.total_s == 4.0
        assert b.min_s == 1.0 and b.max_s == 3.0
        assert a.count == 1 and a.total_s == 5.0

    def test_self_time_excludes_children(self):
        root = build_profile([_rec("a.b", 4.0), _rec("a", 5.0)])
        assert root.children["a"].self_s == 1.0

    def test_self_time_clamped_at_zero(self):
        # child totals can exceed the parent by clock granularity
        root = build_profile([_rec("a.b", 5.1), _rec("a", 5.0)])
        assert root.children["a"].self_s == 0.0

    def test_parent_seen_only_via_children_has_zero_count(self):
        root = build_profile([_rec("a.b", 1.0)])
        assert root.children["a"].count == 0
        assert root.children["a"].children["b"].count == 1

    def test_root_spans_top_level_children(self):
        root = build_profile([_rec("a", 1.0), _rec("b", 2.0)])
        assert root.name == "total"
        assert root.count == 2
        assert root.total_s == 3.0

    def test_structure_is_timing_free_and_sorted(self):
        s1 = build_profile([_rec("a", 1.0), _rec("b.c", 2.0)]).structure()
        s2 = build_profile([_rec("b.c", 9.0), _rec("a", 0.1)]).structure()
        assert s1 == s2
        assert list(s1["children"]) == ["a", "b"]

    def test_profile_to_dict_round_trips_json(self):
        root = build_profile([_rec("a.b", 1.0), _rec("a", 2.0)])
        doc = json.loads(json.dumps(profile_to_dict(root)))
        assert doc["children"]["a"]["children"]["b"]["count"] == 1
        assert doc["children"]["a"]["total_s"] == 2.0


class TestJsonlRoundTrip:
    def test_write_then_read_is_identity(self, tmp_path):
        obs.enable()
        with span("solve", psi=50.0):
            with span("lp"):
                pass
        obs.current_registry().counter("lp.solves").inc(2)
        path = tmp_path / "events.jsonl"
        n = write_events_jsonl(path, meta={"command": "test"})
        assert n == 2
        back = obs.obs_snapshot()
        parsed = read_events_jsonl(path)
        assert parsed["spans"] == back["spans"]
        assert parsed["metrics"] == back["metrics"]
        assert parsed["meta"]["command"] == "test"

    def test_every_line_is_json(self, tmp_path):
        obs.enable()
        with span("x"):
            pass
        path = tmp_path / "events.jsonl"
        write_events_jsonl(path)
        kinds = [json.loads(line)["kind"]
                 for line in path.read_text().splitlines()]
        assert kinds == ["meta", "span", "metrics"]

    def test_corrupt_line_reported_with_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "schema": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_events_jsonl(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown event kind"):
            read_events_jsonl(path)


class TestRender:
    def test_render_profile_lists_all_paths(self):
        root = build_profile([_rec("solve.lp", 0.5), _rec("solve", 1.0)])
        text = render_profile(root)
        assert "total" in text and "solve" in text and "lp" in text

    def test_render_profile_min_total_hides_small_spans(self):
        root = build_profile([_rec("big", 5.0), _rec("tiny", 0.001)])
        text = render_profile(root, min_total_s=0.1)
        assert "big" in text
        assert "tiny" not in text

    def test_render_metrics_empty(self):
        assert "no metrics" in render_metrics({})

    def test_render_metrics_lists_all_names(self):
        obs.enable()
        obs.current_registry().counter("a.count").inc()
        obs.current_registry().histogram("b.sizes").observe(3.0)
        text = render_metrics(obs.current_registry().snapshot())
        assert "a.count" in text and "b.sizes" in text

    def test_profile_from_snapshot_accepts_parsed_log(self, tmp_path):
        obs.enable()
        with span("s"):
            pass
        path = tmp_path / "e.jsonl"
        write_events_jsonl(path)
        root = profile_from_snapshot(read_events_jsonl(path))
        assert "s" in root.children
