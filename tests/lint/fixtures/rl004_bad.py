"""RL004 bad: host wall clock read inside a deterministic path."""

import time
from datetime import datetime


def cache_entry(payload):
    return {"payload": payload,
            "written_at": time.time(),       # line 9
            "day": datetime.now()}           # line 10
