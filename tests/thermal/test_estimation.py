"""Tests for repro.thermal.estimation — sensor-based A recovery."""

import numpy as np
import pytest

from repro.thermal.estimation import (collect_measurements,
                                      estimate_mix_matrix, estimation_error,
                                      _project_to_simplex)


class TestSimplexProjection:
    def test_already_on_simplex(self):
        v = np.asarray([0.2, 0.3, 0.5])
        np.testing.assert_allclose(_project_to_simplex(v), v)

    def test_projects_to_valid_point(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            v = rng.normal(0, 2, size=6)
            p = _project_to_simplex(v)
            assert p.min() >= 0
            assert p.sum() == pytest.approx(1.0)

    def test_single_component(self):
        p = _project_to_simplex(np.asarray([5.0]))
        np.testing.assert_allclose(p, [1.0])


class TestRecovery:
    def test_noise_free_recovery_is_exact(self, small_dc):
        model = small_dc.thermal
        rng = np.random.default_rng(1)
        meas = collect_measurements(model, rng,
                                    n_samples=model.n_units + 10)
        a_hat = estimate_mix_matrix(meas)
        matrix_err, pred_err = estimation_error(model, a_hat,
                                                np.random.default_rng(2))
        assert matrix_err < 1e-5
        assert pred_err < 1e-5

    def test_noisy_recovery_still_predicts(self, small_dc):
        """0.1 C sensor noise: the matrix may differ but inlet
        predictions stay within a fraction of a degree."""
        model = small_dc.thermal
        rng = np.random.default_rng(3)
        meas = collect_measurements(model, rng,
                                    n_samples=4 * model.n_units,
                                    noise_std_c=0.1)
        a_hat = estimate_mix_matrix(meas)
        _, pred_err = estimation_error(model, a_hat,
                                       np.random.default_rng(4))
        assert pred_err < 0.5

    def test_estimate_is_row_stochastic(self, small_dc):
        model = small_dc.thermal
        rng = np.random.default_rng(5)
        meas = collect_measurements(model, rng,
                                    n_samples=model.n_units + 5,
                                    noise_std_c=0.05)
        a_hat = estimate_mix_matrix(meas)
        np.testing.assert_allclose(a_hat.sum(axis=1), 1.0, atol=1e-9)
        assert a_hat.min() >= 0.0

    def test_underdetermined_rejected(self, small_dc):
        model = small_dc.thermal
        rng = np.random.default_rng(6)
        meas = collect_measurements(model, rng, n_samples=3)
        with pytest.raises(ValueError, match="samples"):
            estimate_mix_matrix(meas)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="measurements"):
            estimate_mix_matrix([])


class TestCollection:
    def test_shapes_and_count(self, small_dc):
        model = small_dc.thermal
        meas = collect_measurements(model, np.random.default_rng(7), 5)
        assert len(meas) == 5
        for m in meas:
            assert m.t_out.shape == (model.n_units,)
            assert m.t_in.shape == (model.n_units,)

    def test_validation(self, small_dc):
        model = small_dc.thermal
        with pytest.raises(ValueError, match="sample"):
            collect_measurements(model, np.random.default_rng(0), 0)
        with pytest.raises(ValueError, match="noise"):
            collect_measurements(model, np.random.default_rng(0), 1,
                                 noise_std_c=-1.0)
