"""Regression fixture: the PR-3 cache-split bug, preserved in shape.

``json.dumps(..., default=list)`` serialized ``set`` members in
iteration order, so equal configs hashed to different cache keys under
different ``PYTHONHASHSEED`` values — silently splitting the experiment
cache across processes.  RL040 must flag the set reaching the digest;
CI runs this fixture as a permanent regression check.
"""

import hashlib
import json


def cache_key(config, seed: int) -> str:
    payload = {
        "config": config,
        "psis": set(config.get("psis", [])),        # the unordered culprit
        "seed": seed,
    }
    blob = json.dumps(payload, sort_keys=True, default=list)
    return hashlib.sha256(blob.encode()).hexdigest()
