"""Tests for repro.core.scheduler — the second-step dynamic scheduler."""

import numpy as np
import pytest

from repro.core.scheduler import DynamicScheduler


@pytest.fixture()
def sched(scenario, assignment):
    return DynamicScheduler(scenario.datacenter, scenario.workload,
                            assignment.tc, assignment.pstates)


class TestSelection:
    def test_never_selects_zero_tc_core(self, scenario, assignment, sched):
        """Cores outside the plan for a type are never chosen."""
        wl = scenario.workload
        free = np.zeros(scenario.datacenter.n_cores)
        for i in range(wl.n_task_types):
            core = sched.select_core(i, deadline=1e9, now=0.0,
                                     core_free_time=free)
            if core is not None:
                assert assignment.tc[i, core] > 0

    def test_deadline_respected(self, scenario, sched):
        """A deadline in the past drops the task."""
        free = np.zeros(scenario.datacenter.n_cores)
        assert sched.select_core(0, deadline=-1.0, now=0.0,
                                 core_free_time=free) is None

    def test_busy_cores_excluded_by_deadline(self, scenario, assignment,
                                             sched):
        """If every eligible core's queue runs past the deadline, drop."""
        wl = scenario.workload
        i = int(np.argmax(assignment.tc.sum(axis=1) > 0))
        free = np.full(scenario.datacenter.n_cores, 1e9)
        assert sched.select_core(i, deadline=100.0, now=0.0,
                                 core_free_time=free) is None

    def test_picks_min_ratio(self, scenario, assignment, sched):
        """After loading one core, the scheduler prefers others."""
        wl = scenario.workload
        i = int(np.argmax(assignment.tc.sum(axis=1) > 0))
        free = np.zeros(scenario.datacenter.n_cores)
        first = sched.select_core(i, 1e9, 1.0, free)
        assert first is not None
        for _ in range(3):
            sched.record_assignment(i, first)
        second = sched.select_core(i, 1e9, 1.0, free)
        assert second is not None and second != first

    def test_ratio_cap_excludes_overloaded(self, scenario, assignment,
                                           sched):
        """A core already above ATC/TC = 1 is not eligible."""
        i = int(np.argmax(assignment.tc.sum(axis=1) > 0))
        eligible = np.nonzero(assignment.tc[i] > 0)[0]
        now = 10.0
        # overload all eligible cores way past their desired counts
        for k in eligible:
            need = int(np.ceil(assignment.tc[i, k] * now)) + 5
            for _ in range(need):
                sched.record_assignment(i, int(k))
        free = np.zeros(scenario.datacenter.n_cores)
        assert sched.select_core(i, 1e9, now, free) is None


class TestRatios:
    def test_zero_time_all_zero(self, scenario, assignment, sched):
        i = int(np.argmax(assignment.tc.sum(axis=1) > 0))
        r = sched.ratios(i, 0.0)
        eligible = assignment.tc[i] > 0
        np.testing.assert_allclose(r[eligible], 0.0)
        assert np.all(np.isinf(r[~eligible]))

    def test_ratio_arithmetic(self, scenario, assignment, sched):
        i = int(np.argmax(assignment.tc.sum(axis=1) > 0))
        k = int(np.nonzero(assignment.tc[i] > 0)[0][0])
        sched.record_assignment(i, k)
        r = sched.ratios(i, now=2.0)
        assert r[k] == pytest.approx(1.0 / (assignment.tc[i, k] * 2.0))

    def test_atc_matrix(self, scenario, assignment, sched):
        i = int(np.argmax(assignment.tc.sum(axis=1) > 0))
        k = int(np.nonzero(assignment.tc[i] > 0)[0][0])
        for _ in range(4):
            sched.record_assignment(i, k)
        atc = sched.atc(elapsed=2.0)
        assert atc[i, k] == pytest.approx(2.0)

    def test_atc_requires_positive_elapsed(self, sched):
        with pytest.raises(ValueError, match="positive"):
            sched.atc(0.0)


class TestValidation:
    def test_shape_checks(self, scenario, assignment):
        dc, wl = scenario.datacenter, scenario.workload
        with pytest.raises(ValueError, match="tc must be"):
            DynamicScheduler(dc, wl, assignment.tc[:, :5],
                             assignment.pstates)
        with pytest.raises(ValueError, match="pstates"):
            DynamicScheduler(dc, wl, assignment.tc,
                             assignment.pstates[:5])

    def test_exec_time_infinite_for_off_cores(self, scenario, assignment,
                                              sched):
        dc = scenario.datacenter
        off = np.asarray([dc.node_types[t].off_pstate
                          for t in dc.core_type])
        off_mask = assignment.pstates == off
        if off_mask.any():
            assert np.all(np.isinf(sched.exec_time[:, off_mask]))
