"""Project-level dataflow analyses: interprocedural traces, the PR-3
regression shape, cache-key completeness acceptance, and the engine's
changed-files restriction."""

import ast
import textwrap
from pathlib import Path

from repro.lint import (LintConfig, build_project, lint_paths,
                        select_rules)
from repro.lint.callgraph import build_callgraph
from repro.lint.engine import _parse_file

FIXTURES = Path(__file__).parent / "fixtures"


def _lint(paths, codes, config=None):
    return lint_paths([Path(p) for p in paths],
                      rules=select_rules(select=codes),
                      config=config or LintConfig())


class TestTraces:
    """Taint findings carry a full source-to-sink chain."""

    def test_wallclock_through_helper_has_three_steps(self):
        report = _lint([FIXTURES / "rl040_bad.py"], ["RL040"])
        finding = next(f for f in report.findings
                       if f.line == 17 and "wall-clock" in f.message)
        assert len(finding.trace) == 3
        assert "wall-clock source time()" in finding.trace[0]
        assert ":12:" in finding.trace[0]
        assert "returned by stamp()" in finding.trace[1]
        assert "cache_key()" in finding.trace[2]

    def test_every_taint_finding_has_a_trace(self):
        report = _lint([FIXTURES / "rl040_bad.py"], ["RL040"])
        assert report.findings
        for finding in report.findings:
            assert finding.trace, finding.message
            assert "source" in finding.trace[0] \
                or "constructed" in finding.trace[0]
            assert "flows into" in finding.trace[-1]

    def test_unit_finding_traces_name_both_operands(self):
        report = _lint([FIXTURES / "rl030_bad.py"], ["RL030"])
        finding = next(f for f in report.findings if f.line == 9)
        assert any("temperature" in step for step in finding.trace)
        assert any("power" in step for step in finding.trace)

    def test_unit_dimension_crosses_call_boundary(self):
        # line 12 subtracts the *return value* of cooling_power_kw();
        # only an interprocedural summary can know its dimension
        report = _lint([FIXTURES / "rl030_bad.py"], ["RL030"])
        finding = next(f for f in report.findings if f.line == 12)
        assert any("return of rl030_bad.cooling_power_kw()" in step
                   for step in finding.trace)


class TestCrossModule:
    def test_trace_spans_both_files(self):
        report = _lint([FIXTURES / "crossmod_source.py",
                        FIXTURES / "crossmod_sink.py"], ["RL040"])
        assert len(report.findings) == 2
        for finding in report.findings:
            assert finding.path.endswith("crossmod_source.py")
            assert finding.line == 9
        json_finding = next(f for f in report.findings
                            if "JSON" in f.message)
        assert any("crossmod_sink.py:7" in step
                   for step in json_finding.trace)

    def test_sink_file_alone_is_clean(self):
        # the sink function is only dangerous when fed a set
        report = _lint([FIXTURES / "crossmod_sink.py"], ["RL040"])
        assert report.findings == []


class TestPr3Regression:
    """The PR-3 cache-split defect — a set serialized with
    ``json.dumps(..., default=list)`` feeding a digest — must stay
    flagged by the taint analysis."""

    def test_cache_split_fixture_is_flagged(self):
        report = _lint([FIXTURES / "pr3_cache_split.py"], ["RL040"])
        lines = sorted(f.line for f in report.findings)
        assert lines == [20, 21]

    def test_both_sinks_blame_the_set_construction(self):
        report = _lint([FIXTURES / "pr3_cache_split.py"], ["RL040"])
        for finding in report.findings:
            assert "set-order" in finding.message
            assert any(":17:" in step and "set constructed" in step
                       for step in finding.trace)


class TestCacheKeyAcceptance:
    """RL050 end-to-end against the real contract wiring: a field
    dropped from the key function is caught; full coverage is clean."""

    def _tree(self, tmp_path, engine_body):
        pkg = tmp_path / "repro" / "experiments"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "config.py").write_text(textwrap.dedent("""\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class ScenarioConfig:
                n_nodes: int
                p_const_kw: float
                seed: int
            """))
        (pkg / "engine.py").write_text(textwrap.dedent(engine_body))
        return [pkg / "config.py", pkg / "engine.py"]

    def test_deleted_field_is_caught(self, tmp_path):
        paths = self._tree(tmp_path, """\
            import hashlib

            from repro.experiments.config import ScenarioConfig


            def cache_key(config: ScenarioConfig) -> str:
                text = f"{config.n_nodes}|{config.p_const_kw}"
                return hashlib.sha256(text.encode()).hexdigest()
            """)
        report = _lint(paths, ["RL050"])
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert "'seed'" in finding.message
        assert finding.path.endswith("config.py")
        assert finding.line == 8          # the seed field's line

    def test_full_enumeration_is_clean(self, tmp_path):
        paths = self._tree(tmp_path, """\
            import hashlib

            from repro.experiments.config import ScenarioConfig


            def cache_key(config: ScenarioConfig) -> str:
                text = f"{config.n_nodes}|{config.p_const_kw}|{config.seed}"
                return hashlib.sha256(text.encode()).hexdigest()
            """)
        assert _lint(paths, ["RL050"]).findings == []

    def test_blanket_asdict_is_clean(self, tmp_path):
        paths = self._tree(tmp_path, """\
            import hashlib
            from dataclasses import asdict

            from repro.experiments.config import ScenarioConfig


            def cache_key(config: ScenarioConfig) -> str:
                return hashlib.sha256(
                    repr(asdict(config)).encode()).hexdigest()
            """)
        assert _lint(paths, ["RL050"]).findings == []

    def test_missing_key_function_reports_broken_contract(self,
                                                          tmp_path):
        paths = self._tree(tmp_path, """\
            # cache_key was deleted; the contract must complain loudly
            """)
        report = _lint(paths, ["RL050"])
        assert len(report.findings) == 1
        assert "contract" in report.findings[0].message
        assert report.findings[0].path.endswith("config.py")

    def test_exempt_pragma_needs_a_reason(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(textwrap.dedent("""\
            import hashlib
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Knobs:  # repro-lint: cache-class(key_of)
                a: int
                b: int  # repro-lint: cache-exempt()


            def key_of(knobs: Knobs) -> str:
                return hashlib.sha256(str(knobs.a).encode()).hexdigest()
            """))
        report = _lint([mod], ["RL050"])
        assert len(report.findings) == 1
        assert "reason" in report.findings[0].message

    def test_stale_exempt_pragma_on_covered_field_is_flagged(self,
                                                             tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(textwrap.dedent("""\
            import hashlib
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class Knobs:  # repro-lint: cache-class(key_of)
                a: int  # repro-lint: cache-exempt(not needed, honest)


            def key_of(knobs: Knobs) -> str:
                return hashlib.sha256(str(knobs.a).encode()).hexdigest()
            """))
        report = _lint([mod], ["RL050"])
        assert len(report.findings) == 1
        assert "stale" in report.findings[0].message

    def test_real_contracts_over_src_are_clean(self):
        root = Path(__file__).parents[2] / "src" / "repro"
        paths = [root / "experiments" / "config.py",
                 root / "experiments" / "engine.py",
                 root / "core" / "api.py",
                 root / "core" / "warmstart.py"]
        report = _lint(paths, ["RL050"])
        assert report.findings == []


class TestProjectAndCallGraph:
    def _project(self, tmp_path, sources):
        paths = []
        for name, text in sources.items():
            p = tmp_path / name
            p.write_text(textwrap.dedent(text))
            paths.append(p)
        contexts = [_parse_file(p)[0] for p in paths]
        return build_project([c for c in contexts if c is not None])

    def test_resolution_follows_from_imports(self, tmp_path):
        project = self._project(tmp_path, {
            "a.py": "def helper():\n    return 1\n",
            "b.py": "from a import helper\n\n"
                    "def caller():\n    return helper()\n",
        })
        assert "a.helper" in project.functions
        b = project.modules["b"]
        name = ast.parse("helper", mode="eval").body
        assert project.resolve(b, name) == "a.helper"

    def test_call_graph_orders_callees_first(self, tmp_path):
        project = self._project(tmp_path, {
            "chain.py": "def low():\n    return 1\n\n"
                        "def mid():\n    return low()\n\n"
                        "def high():\n    return mid()\n",
        })
        graph = build_callgraph(project)
        order = [f.qualname for f in graph.bottom_up(project)
                 if f.qualname.startswith("chain.")]
        assert order.index("chain.low") < order.index("chain.mid")
        assert order.index("chain.mid") < order.index("chain.high")

    def test_recursion_does_not_hang(self, tmp_path):
        project = self._project(tmp_path, {
            "rec.py": "def ping():\n    return pong()\n\n"
                      "def pong():\n    return ping()\n",
        })
        graph = build_callgraph(project)
        order = [f.qualname for f in graph.bottom_up(project)]
        assert "rec.ping" in order and "rec.pong" in order


class TestRestrictTo:
    """Engine plumbing for ``--since``: the project still sees every
    file, but findings are reported only for the changed set."""

    def test_findings_limited_to_restricted_files(self, tmp_path):
        changed = tmp_path / "changed.py"
        unchanged = tmp_path / "unchanged.py"
        changed.write_text("import time\nA = time.time()\n")
        unchanged.write_text("import time\nB = time.time()\n")
        report = lint_paths(
            [changed, unchanged],
            rules=select_rules(select=["RL004"]),
            config=LintConfig(),
            restrict_to={changed.resolve().as_posix()})
        assert [f.path for f in report.findings] == \
            [changed.resolve().as_posix()]
        assert report.files_checked == 1

    def test_restricted_run_reports_no_stale_entries(self, tmp_path):
        # entries for files outside the changed set are unjudgeable,
        # not stale: a --since run must not cry wolf about them
        from repro.lint import Baseline
        changed = tmp_path / "changed.py"
        unchanged = tmp_path / "unchanged.py"
        changed.write_text("x = 1\n")
        unchanged.write_text("import time\nB = time.time()\n")
        base = Baseline([{"code": "RL004",
                          "path": unchanged.resolve().as_posix(),
                          "context": "B = time.time()",
                          "reason": "legacy"}])
        report = lint_paths(
            [changed, unchanged],
            rules=select_rules(select=["RL004"]),
            config=LintConfig(), baseline=base,
            restrict_to={changed.resolve().as_posix()})
        assert report.ok
        assert report.stale_baseline == []

    def test_dataflow_still_sees_excluded_files(self, tmp_path):
        # the source module changed; the sink module did not.  The
        # cross-module trace must still resolve through the sink.
        source = tmp_path / "srcmod.py"
        sink = tmp_path / "sinkmod.py"
        source.write_text(
            "from sinkmod import cache_key\n\n\n"
            "def write_key(members):\n"
            "    payload = {'m': set(members)}\n"
            "    return cache_key(payload)\n")
        sink.write_text(
            "import json\n\n\n"
            "def cache_key(payload):\n"
            "    return json.dumps(payload, default=list)\n")
        report = lint_paths(
            [source, sink],
            rules=select_rules(select=["RL040"]),
            config=LintConfig(),
            restrict_to={source.resolve().as_posix()})
        assert report.findings
        assert all(f.path.endswith("srcmod.py")
                   for f in report.findings)
        assert any("sinkmod.py" in step
                   for f in report.findings for step in f.trace)
