"""Stage 2 — converting relaxed core powers into integer P-states
(Section V.B.3).

The paper's procedure, implemented verbatim:

1. give each core the *highest* (least power) P-state whose power is at
   least its Stage 1 allocation ``PCORE_k`` — i.e. round the power *up*
   to the nearest P-state;
2. per compute node, while the Eq. 1 node power exceeds the Stage 1 node
   power, increment (weaken) the P-state of the core currently holding
   the *smallest* (most powerful) P-state.

Step 2 terminates because every increment strictly reduces node power
and the all-off assignment costs 0 core power.  Because Stage 1's
breakpoint-quantized split already lands almost every core exactly on a
P-state power, step 2 usually touches at most one core per node.

The result is guaranteed to satisfy the thermal and power constraints:
node powers never exceed the Stage 1 powers, and the inlet-temperature
map is monotone in node powers (all mixing coefficients are
non-negative).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.core.stage1 import Stage1Solution
from repro.datacenter.builder import DataCenter

__all__ = ["Stage2Solution", "convert_power_to_pstates", "solve_stage2"]


@dataclass(frozen=True)
class Stage2Solution:
    """Integer P-state assignment derived from a Stage 1 solution.

    Attributes
    ----------
    pstates:
        Global per-core P-state indices (``PS_k``).
    node_power_kw:
        Eq. 1 node powers under ``pstates`` — elementwise at or below the
        Stage 1 node powers.
    """

    pstates: np.ndarray
    node_power_kw: np.ndarray


def _round_up_pstate(power_table: np.ndarray, target: float) -> int:
    """Highest P-state index with power >= ``target`` (step 1).

    ``power_table`` is strictly decreasing with a trailing 0 (off).  A
    target above P-state 0 power clamps to P-state 0 (cannot happen for
    Stage 1 outputs, which are bounded by the hull domain, but keeps the
    function total).
    """
    if target <= 0.0:
        return power_table.size - 1
    candidates = np.nonzero(power_table >= target - 1e-12)[0]
    if candidates.size == 0:
        return 0
    return int(candidates[-1])


def convert_power_to_pstates(datacenter: DataCenter,
                             core_power_kw: np.ndarray,
                             node_power_budget_kw: np.ndarray
                             ) -> Stage2Solution:
    """Run the Section V.B.3 procedure for every node.

    Parameters
    ----------
    core_power_kw:
        Relaxed per-core powers (``PCORE_k``), kW.
    node_power_budget_kw:
        Per-node total power the assignment must not exceed (the Stage 1
        node powers, including base power).
    """
    core_power_kw = np.asarray(core_power_kw, dtype=float)
    if core_power_kw.shape != (datacenter.n_cores,):
        raise ValueError(
            f"expected {datacenter.n_cores} core powers, got "
            f"{core_power_kw.shape}")
    budget = np.asarray(node_power_budget_kw, dtype=float)
    if budget.shape != (datacenter.n_nodes,):
        raise ValueError(
            f"expected {datacenter.n_nodes} node budgets, got {budget.shape}")
    pstates = kernels.active().convert_power_to_pstates(
        datacenter, core_power_kw, budget)
    node_power = datacenter.node_power_kw(pstates)
    return Stage2Solution(pstates=pstates, node_power_kw=node_power)


def solve_stage2(datacenter: DataCenter,
                 stage1: Stage1Solution) -> Stage2Solution:
    """Stage 2 on a Stage 1 solution (budget = Stage 1 node powers)."""
    result = convert_power_to_pstates(datacenter, stage1.core_power_kw,
                                      stage1.node_power_kw)
    over = result.node_power_kw - stage1.node_power_kw
    if np.any(over > 1e-6):
        raise AssertionError(
            "stage 2 produced a node above its stage-1 power budget "
            f"(max overshoot {over.max():.3e} kW)")
    return result
