"""Tests for repro.experiments.engine — workers, caching, fault tolerance."""

import json

import numpy as np
import pytest

from repro.experiments import engine as engine_mod
from repro.experiments.config import ScenarioConfig
from repro.experiments.engine import (EngineConfig, EngineError, cache_key,
                                      cache_path, parallel_map, run_set,
                                      run_sets)
from repro.experiments.progress import ProgressReporter
from repro.experiments.runner import RunResult
from repro.optimize.linprog import InfeasibleError

TINY = ScenarioConfig(name="engine-tiny", n_nodes=10, n_crac=3)


def _fake_run(scenario, baseline=100.0):
    return RunResult(seed=scenario.seed,
                     reward_by_psi={25.0: 110.0, 50.0: 120.0},
                     baseline_reward=baseline, p_const=scenario.p_const)


def _double(x):
    return 2 * x


class TestCacheKey:
    def test_deterministic(self):
        assert cache_key(TINY, 7) == cache_key(TINY, 7)

    def test_seed_changes_key(self):
        assert cache_key(TINY, 7) != cache_key(TINY, 8)

    def test_config_changes_key(self):
        from dataclasses import replace

        other = replace(TINY, psis=(25.0, 50.0, 75.0))
        assert cache_key(TINY, 7) != cache_key(other, 7)

    def test_path_is_readable(self, tmp_path):
        path = cache_path(tmp_path, TINY, 42)
        assert path.name.startswith("engine-tiny-seed42-")
        assert path.suffix == ".json"

    def test_frozenset_and_nested_tuple_round_trip(self):
        """The PR-3 postmortem footgun: only ``set`` was regression-
        tested through ``cache_key``.  A config carrying a frozenset
        (inside a nested tuple) must key identically regardless of the
        frozenset's construction order — and must not raise."""
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class FrozenConfig:
            name: str = "frozen-tiny"
            psis: tuple = (25.0, (50.0, 75.0))
            tags: frozenset = frozenset()

        a = FrozenConfig(tags=frozenset({"slow", "hot", "big"}))
        b = FrozenConfig(tags=frozenset({"big", "hot", "slow"}))
        assert cache_key(a, 7) == cache_key(b, 7)
        assert cache_key(a, 7) != cache_key(FrozenConfig(), 7)

    def test_frozenset_digest_stable_across_hash_seeds(self):
        """Subprocess check: frozenset-bearing keys are
        PYTHONHASHSEED-proof end to end (sets were already covered)."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(engine_mod.__file__).parents[2])
        code = (
            "from dataclasses import dataclass\n"
            "from repro.experiments.engine import cache_key\n"
            "@dataclass(frozen=True)\n"
            "class C:\n"
            "    name: str = 'fs'\n"
            "    tags: frozenset = frozenset('abcdefgh')\n"
            "    nested: tuple = ((1.0, 2.0), (3.0,))\n"
            "print(cache_key(C(), 3))\n")
        digests = set()
        for seed in ("0", "7", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src)
            out = subprocess.run([sys.executable, "-c", code], env=env,
                                 capture_output=True, text=True,
                                 check=True)
            digests.add(out.stdout.strip())
        assert len(digests) == 1


class TestEngineConfig:
    def test_rejects_zero_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            EngineConfig(jobs=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            EngineConfig(retries=-1)


class TestSerialParallelCache:
    """The acceptance triangle: serial == parallel == cached replay."""

    def test_equality_and_resume(self, tmp_path, monkeypatch):
        n_runs, base_seed = 3, 100
        serial = run_set(TINY, n_runs=n_runs, base_seed=base_seed,
                         engine=EngineConfig(jobs=1, cache_dir=tmp_path))
        parallel = run_set(TINY, n_runs=n_runs, base_seed=base_seed,
                           engine=EngineConfig(jobs=2))
        assert serial.runs == parallel.runs
        for label in serial.improvements:
            np.testing.assert_array_equal(serial.improvements[label],
                                          parallel.improvements[label])

        # resume must replay the cache without any recomputation
        def forbid(*args, **kwargs):
            raise AssertionError("resume recomputed a cached run")

        monkeypatch.setattr(engine_mod, "_execute_comparison", forbid)
        reporter = ProgressReporter()
        resumed = run_set(TINY, n_runs=n_runs, base_seed=base_seed,
                          engine=EngineConfig(jobs=1, cache_dir=tmp_path,
                                              resume=True),
                          reporter=reporter)
        assert resumed.runs == serial.runs
        assert reporter.cache_hits == n_runs
        assert reporter.computed == 0
        assert all(e.cache_hit for e in reporter.events)

    def test_stale_code_version_recomputes(self, tmp_path, monkeypatch):
        calls = []

        def fake(scenario):
            calls.append(scenario.seed)
            return _fake_run(scenario)

        monkeypatch.setattr(engine_mod, "run_comparison", fake)
        run_set(TINY, n_runs=2, base_seed=300,
                engine=EngineConfig(cache_dir=tmp_path))
        # corrupt one entry's version stamp; resume must recompute it
        path = cache_path(tmp_path, TINY, 300)
        payload = json.loads(path.read_text())
        payload["code_version"] = "0.0.0+cache0"
        path.write_text(json.dumps(payload))
        calls.clear()
        reporter = ProgressReporter()
        run_set(TINY, n_runs=2, base_seed=300,
                engine=EngineConfig(cache_dir=tmp_path, resume=True),
                reporter=reporter)
        assert calls == [300]
        assert reporter.cache_hits == 1 and reporter.computed == 1


class TestFaultTolerance:
    def test_infeasible_run_recorded_not_fatal(self, monkeypatch):
        def flaky(scenario):
            if scenario.seed == 201:
                raise InfeasibleError("forced infeasible")
            return _fake_run(scenario)

        monkeypatch.setattr(engine_mod, "run_comparison", flaky)
        reporter = ProgressReporter()
        res = run_set(TINY, n_runs=3, base_seed=200,
                      engine=EngineConfig(jobs=1), reporter=reporter)
        assert [r.seed for r in res.runs] == [200, 202]
        assert len(res.failures) == 1
        failure = res.failures[0]
        assert failure.seed == 201
        assert failure.error_type == "InfeasibleError"
        assert failure.attempts == 1          # deterministic: no retry
        assert failure.p_const is not None and failure.p_const > 0
        assert res.n_attempted == 3
        assert reporter.failed == 1

    def test_degenerate_baseline_recorded(self, monkeypatch):
        def sometimes_zero(scenario):
            baseline = 0.0 if scenario.seed == 401 else 100.0
            return _fake_run(scenario, baseline=baseline)

        monkeypatch.setattr(engine_mod, "run_comparison", sometimes_zero)
        reporter = ProgressReporter()
        res = run_set(TINY, n_runs=3, base_seed=400, reporter=reporter)
        assert len(res.runs) == 2
        assert [r.seed for r in res.degenerate] == [401]
        assert reporter.degenerate == 1
        for label, samples in res.improvements.items():
            assert samples.shape == (2,)      # degenerate run excluded

    def test_transient_error_retried(self, monkeypatch):
        calls = {"n": 0}

        def flaky_once(scenario):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return _fake_run(scenario)

        monkeypatch.setattr(engine_mod, "run_comparison", flaky_once)
        res = run_set(TINY, n_runs=2, base_seed=500,
                      engine=EngineConfig(retries=2, backoff_s=0.0))
        assert len(res.runs) == 2 and not res.failures
        assert calls["n"] == 3                # first run took two attempts

    def test_transient_error_exhausts_retries(self, monkeypatch):
        def always_fails(scenario):
            if scenario.seed == 601:
                raise OSError("still down")
            return _fake_run(scenario)

        monkeypatch.setattr(engine_mod, "run_comparison", always_fails)
        res = run_set(TINY, n_runs=3, base_seed=600,
                      engine=EngineConfig(retries=1, backoff_s=0.0))
        assert len(res.failures) == 1
        assert res.failures[0].attempts == 2

    def test_too_few_valid_runs_raises(self, monkeypatch):
        def always_infeasible(scenario):
            raise InfeasibleError("nothing fits")

        monkeypatch.setattr(engine_mod, "run_comparison", always_infeasible)
        with pytest.raises(EngineError, match="engine-tiny"):
            run_set(TINY, n_runs=3, base_seed=700)

    def test_failures_cached_and_resumed(self, tmp_path, monkeypatch):
        def flaky(scenario):
            if scenario.seed == 801:
                raise InfeasibleError("forced")
            return _fake_run(scenario)

        monkeypatch.setattr(engine_mod, "run_comparison", flaky)
        run_set(TINY, n_runs=3, base_seed=800,
                engine=EngineConfig(cache_dir=tmp_path))

        def forbid(*args, **kwargs):
            raise AssertionError("recomputed")

        monkeypatch.setattr(engine_mod, "_execute_comparison", forbid)
        res = run_set(TINY, n_runs=3, base_seed=800,
                      engine=EngineConfig(cache_dir=tmp_path, resume=True))
        assert len(res.failures) == 1 and res.failures[0].seed == 801


class TestRunSets:
    def test_multiple_sets(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "run_comparison", _fake_run)
        from dataclasses import replace

        configs = [TINY, replace(TINY, name="engine-tiny2")]
        results = run_sets(configs, n_runs=2, base_seed=900)
        assert set(results) == {"engine-tiny", "engine-tiny2"}

    def test_needs_two_runs(self):
        with pytest.raises(ValueError, match="two runs"):
            run_set(TINY, n_runs=1)


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(_double, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_parallel_preserves_order(self):
        assert parallel_map(_double, list(range(8)), jobs=2) \
            == [2 * x for x in range(8)]

    def test_empty(self):
        assert parallel_map(_double, [], jobs=4) == []


class TestCanonicalJson:
    """Regression: cache keys must not depend on hash randomization.

    ``cache_key`` used to serialize via ``json.dumps(..., default=list)``
    — a ``set`` field serialized in iteration order, which varies with
    ``PYTHONHASHSEED``, silently splitting the cache across processes.
    """

    def test_sets_serialize_sorted(self):
        from repro.experiments.engine import canonical_json

        a = canonical_json({"s": {"x", "y", "z", "w"}})
        b = canonical_json({"s": {"w", "z", "y", "x"}})
        assert a == b
        assert a == '{"s": ["w", "x", "y", "z"]}'

    def test_nested_collections(self):
        from repro.experiments.engine import canonical_json

        doc = canonical_json({"a": ({"k": frozenset({2, 1})},)})
        assert doc == '{"a": [{"k": [1, 2]}]}'

    def test_unknown_type_raises(self):
        from repro.experiments.engine import canonical_json

        with pytest.raises(TypeError, match="canonicalize"):
            canonical_json({"obj": object()})

    def test_non_string_dict_key_raises(self):
        from repro.experiments.engine import canonical_json

        with pytest.raises(TypeError, match="keys must be str"):
            canonical_json({1: "x"})

    def test_stable_across_hash_seeds(self):
        """The digest of a set-bearing payload is PYTHONHASHSEED-proof."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        src = str(Path(engine_mod.__file__).parents[2])
        code = (
            "import hashlib\n"
            "from repro.experiments.engine import canonical_json\n"
            "payload = {'members': set('abcdefghij'), 'n': 3}\n"
            "print(hashlib.sha256("
            "canonical_json(payload).encode()).hexdigest())\n")
        digests = []
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src)
            out = subprocess.run([sys.executable, "-c", code], env=env,
                                 capture_output=True, text=True, check=True)
            digests.append(out.stdout.strip())
        assert len(set(digests)) == 1

    def test_cache_key_unchanged_for_plain_config(self):
        # the canonicalization must be a no-op for JSON-native payloads:
        # existing caches built from plain configs stay valid
        import hashlib
        import json
        from dataclasses import asdict

        from repro import kernels
        from repro.experiments.engine import code_version

        payload = {"code_version": code_version(),
                   "config": asdict(TINY),
                   "kernel": kernels.active_name(), "seed": 7}
        legacy = hashlib.sha256(
            json.dumps(payload, sort_keys=True,
                       default=list).encode()).hexdigest()
        assert cache_key(TINY, 7) == legacy
