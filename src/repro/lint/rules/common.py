"""AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["dotted_name", "imported_modules", "imported_names",
           "walk_identifiers"]


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def imported_modules(tree: ast.Module) -> dict[str, str]:
    """``local alias -> module`` for every ``import`` in the file."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
    return out


def imported_names(tree: ast.Module) -> dict[str, tuple[str, str]]:
    """``local alias -> (module, name)`` for every ``from m import n``."""
    out: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                out[alias.asname or alias.name] = (node.module, alias.name)
    return out


def walk_identifiers(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr in a subtree."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr
