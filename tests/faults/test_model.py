"""Tests for repro.faults.model — taxonomy, events and timelines."""

import math

import numpy as np
import pytest

from repro.faults.model import (FaultEvent, FaultKind, FaultSchedule,
                                InventoryState)


class TestFaultEvent:
    def test_targeted_kinds_need_target(self):
        with pytest.raises(ValueError, match="target"):
            FaultEvent(start_s=0.0, kind=FaultKind.NODE_CRASH)
        with pytest.raises(ValueError, match="target"):
            FaultEvent(start_s=0.0, kind=FaultKind.CRAC_OUTAGE)

    def test_room_wide_kinds_reject_target(self):
        with pytest.raises(ValueError, match="room-wide"):
            FaultEvent(start_s=0.0, kind=FaultKind.POWER_CAP_DROP,
                       target=1, magnitude=0.3)

    def test_magnitude_range_enforced(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultEvent(start_s=0.0, kind=FaultKind.ECS_DRIFT, magnitude=1.0)
        with pytest.raises(ValueError, match="magnitude"):
            FaultEvent(start_s=0.0, kind=FaultKind.CRAC_DEGRADE, target=0,
                       magnitude=0.0)

    def test_negative_start_and_duration_rejected(self):
        with pytest.raises(ValueError, match="start"):
            FaultEvent(start_s=-1.0, kind=FaultKind.NODE_CRASH, target=0)
        with pytest.raises(ValueError, match="duration"):
            FaultEvent(start_s=0.0, kind=FaultKind.NODE_CRASH, target=0,
                       duration_s=0.0)

    def test_active_window_half_open(self):
        ev = FaultEvent(start_s=10.0, kind=FaultKind.NODE_CRASH, target=0,
                        duration_s=5.0)
        assert not ev.active_at(9.999)
        assert ev.active_at(10.0)
        assert ev.active_at(14.999)
        assert not ev.active_at(15.0)

    def test_permanent_fault_never_ends(self):
        ev = FaultEvent(start_s=1.0, kind=FaultKind.NODE_CRASH, target=0)
        assert math.isinf(ev.end_s)
        assert ev.active_at(1e12)

    def test_dict_round_trip(self):
        events = [
            FaultEvent(start_s=3.0, kind=FaultKind.CRAC_DEGRADE, target=1,
                       duration_s=7.5, magnitude=0.4),
            FaultEvent(start_s=0.0, kind=FaultKind.NODE_CRASH, target=2),
            FaultEvent(start_s=5.0, kind=FaultKind.POWER_CAP_DROP,
                       duration_s=2.0, magnitude=0.2),
        ]
        for ev in events:
            assert FaultEvent.from_dict(ev.to_dict()) == ev

    def test_permanent_duration_serializes_as_null(self):
        ev = FaultEvent(start_s=0.0, kind=FaultKind.NODE_CRASH, target=0)
        assert ev.to_dict()["duration_s"] is None
        assert FaultEvent.from_dict(ev.to_dict()) == ev


class TestInventoryState:
    def test_nominal(self):
        state = InventoryState.nominal(4, 2)
        assert state.is_nominal
        assert state.node_alive.all()
        assert state.dead_nodes.size == 0

    def test_dead_nodes(self):
        state = InventoryState(node_dead_count=np.array([0, 2, 0, 1]),
                               crac_capacity=np.ones(2))
        assert not state.is_nominal
        assert list(state.dead_nodes) == [1, 3]
        assert list(state.node_alive) == [True, False, True, False]


class TestFaultSchedule:
    def _sched(self):
        return FaultSchedule.from_events([
            FaultEvent(start_s=10.0, kind=FaultKind.NODE_CRASH, target=1,
                       duration_s=10.0),
            FaultEvent(start_s=15.0, kind=FaultKind.CRAC_OUTAGE, target=0,
                       duration_s=10.0),
            FaultEvent(start_s=5.0, kind=FaultKind.ECS_DRIFT,
                       duration_s=30.0, magnitude=0.2),
        ])

    def test_events_sorted_on_construction(self):
        sched = self._sched()
        starts = [ev.start_s for ev in sched]
        assert starts == sorted(starts)

    def test_state_at_composes(self):
        sched = self._sched()
        s0 = sched.state_at(0.0, 4, 2)
        assert s0.is_nominal
        s12 = sched.state_at(12.0, 4, 2)
        assert list(s12.dead_nodes) == [1]
        assert s12.ecs_factor == pytest.approx(0.8)
        s16 = sched.state_at(16.0, 4, 2)
        assert s16.crac_capacity[0] == 0.0
        s40 = sched.state_at(40.0, 4, 2)
        assert s40.is_nominal  # recovery is exact

    def test_overlapping_crashes_count(self):
        sched = FaultSchedule.from_events([
            FaultEvent(start_s=0.0, kind=FaultKind.NODE_CRASH, target=0,
                       duration_s=10.0),
            FaultEvent(start_s=5.0, kind=FaultKind.NODE_CRASH, target=0,
                       duration_s=10.0),
        ])
        assert sched.state_at(7.0, 2, 1).node_dead_count[0] == 2
        # the node stays dead until the *last* overlapping crash expires
        s12 = sched.state_at(12.0, 2, 1)
        assert s12.node_dead_count[0] == 1 and not s12.node_alive[0]
        assert sched.state_at(15.0, 2, 1).node_alive[0]

    def test_boundaries_sorted_unique_interior(self):
        sched = self._sched()
        cuts = sched.boundaries(100.0)
        assert cuts == [5.0, 10.0, 15.0, 20.0, 25.0, 35.0]
        # beyond-horizon and t=0 instants are excluded
        assert sched.boundaries(18.0) == [5.0, 10.0, 15.0]

    def test_validate_for_rejects_out_of_range_targets(self):
        sched = self._sched()
        sched.validate_for(4, 2)
        with pytest.raises(ValueError, match="node"):
            sched.validate_for(1, 2)
        with pytest.raises(ValueError, match="CRAC"):
            sched.validate_for(4, 0)
        # the same schedule with capacity for every target is fine
        sched.validate_for(2, 1)

    def test_events_starting_at(self):
        sched = self._sched()
        assert len(sched.events_starting_at(10.0)) == 1
        assert sched.events_starting_at(10.0, FaultKind.NODE_CRASH)[0] \
            .target == 1
        assert sched.events_starting_at(10.0, FaultKind.CRAC_OUTAGE) == []

    def test_dict_round_trip(self):
        sched = self._sched()
        assert FaultSchedule.from_dict(sched.to_dict()) == sched

    def test_empty(self):
        assert not FaultSchedule.empty()
        assert len(FaultSchedule.empty()) == 0
        assert FaultSchedule.empty().boundaries(100.0) == []
