"""Conservative call graph over a :class:`~repro.lint.project.Project`.

The dataflow analyses compute *intraprocedural summaries* (what a
function's return value carries, given what its parameters carry) and
chain them along call edges.  Summaries must be computed callees-first,
so this module builds the edge set and a deterministic bottom-up
function order.

Conservativeness: only calls whose target resolves to a project
function become edges — calls through variables, ``self.method()``
dispatch and external libraries are invisible.  That can only *miss*
propagation chains, never invent them, which matches the linter's
err-toward-silence posture.  Recursion (any strongly-connected
component) is broken by falling back to the empty summary for the
back edge; the analyses document the same fallback.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.project import FunctionInfo, Project

__all__ = ["CallGraph", "CallSite", "build_callgraph"]


@dataclass(frozen=True)
class CallSite:
    """One resolved call expression inside a function body."""

    caller: str                 # qualified name of the enclosing function
    callee: str                 # resolved target (maybe external)
    node_lineno: int


@dataclass
class CallGraph:
    """Edges between project functions plus every resolved call site."""

    edges: dict[str, tuple[str, ...]] = field(default_factory=dict)
    sites: list[CallSite] = field(default_factory=list)

    def callees(self, fqn: str) -> tuple[str, ...]:
        return self.edges.get(fqn, ())

    def bottom_up(self, project: Project) -> list[FunctionInfo]:
        """Project functions ordered callees-before-callers.

        Iterative post-order DFS from every function in sorted order;
        cycles are visited once in discovery order, so members of a
        recursive clique see partial (empty) summaries for their back
        edges — the documented conservative fallback.
        """
        order: list[str] = []
        done: set[str] = set()
        for root in sorted(self.edges):
            if root in done:
                continue
            stack: list[tuple[str, int]] = [(root, 0)]
            on_path: set[str] = {root}
            while stack:
                name, idx = stack.pop()
                callees = self.edges.get(name, ())
                while idx < len(callees) and (callees[idx] in done
                                              or callees[idx] in on_path):
                    idx += 1
                if idx < len(callees):
                    stack.append((name, idx + 1))
                    child = callees[idx]
                    on_path.add(child)
                    stack.append((child, 0))
                else:
                    done.add(name)
                    on_path.discard(name)
                    order.append(name)
        return [project.functions[name] for name in order
                if name in project.functions]


def build_callgraph(project: Project) -> CallGraph:
    """Resolve every call expression in every project function."""
    graph = CallGraph()
    for func in project.sorted_functions():
        callees: list[str] = []
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            target = project.resolve(func.module, node.func)
            if target is None:
                continue
            graph.sites.append(CallSite(
                caller=func.qualname, callee=target,
                node_lineno=node.lineno))
            if target in project.functions and target != func.qualname:
                callees.append(target)
        graph.edges[func.qualname] = tuple(
            sorted(dict.fromkeys(callees)))
    return graph
