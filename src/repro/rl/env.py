"""Gym-style thermal-scheduling environment over the epoch loop + DES.

One episode is a short horizon of fixed-length control epochs.  At each
step the agent picks a joint action — a CRAC outlet level and a P-state
fill per node type — and the environment:

1. maps the action to a per-core candidate, repairs it against the
   power cap and redlines with the same deterministic repair the
   metaheuristic backends use (:class:`repro.solvers.common.
   CandidateEvaluator`), so **every committed plan is feasible by
   construction**;
2. solves the Stage 3 LP at the repaired P-states for the desired-rate
   matrix;
3. replays the epoch's slice of the (seeded, episode-long) Poisson task
   trace through the second-step DES and pays out the realized reward;
4. simulates the thermal transient from the previous operating point
   and reports redline-violation minutes in ``info``.

The API is duck-typed gymnasium: ``reset(seed) -> (obs, info)`` and
``step(action) -> (obs, reward, terminated, truncated, info)``.  There
is **no hard gymnasium dependency** — :func:`make_gymnasium_env` wraps
the environment in a real ``gymnasium.Env`` only when the package is
importable.

Determinism: the episode is a pure function of the reset seed.  The
task trace is drawn once at ``reset`` from ``np.random.default_rng
(seed)`` and every other ingredient (repair, LP, DES) is deterministic,
so identical seeds give bit-identical trajectories — tested in
``tests/rl/``.

Observation layout (``float64`` vector, ``observation_size`` long):

== ==========================================================
0  epoch index / n_epochs
1+ per-task-type upcoming arrival count this epoch, normalized
   by the expected count + 1
-3 previous mean outlet temperature, normalized to [0, 1]
-2 worst steady-state redline margin of the room state, °C / 10
-1 total room power / power cap
== ==========================================================
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.core.stage3 import Stage3Solution
from repro.datacenter.builder import DataCenter
from repro.datacenter.power import total_power
from repro.obs import metrics as obs_metrics
from repro.simulate.engine import simulate_trace
from repro.solvers.common import Candidate, CandidateEvaluator
from repro.thermal.transient import simulate_transient
from repro.workload.tasktypes import Workload
from repro.workload.trace import Task, generate_trace

__all__ = ["ThermalSchedulingEnv", "make_gymnasium_env"]


class ThermalSchedulingEnv:
    """Duck-typed gym environment for the epoch scheduling problem.

    Parameters
    ----------
    datacenter:
        Room with a thermal model attached.
    workload:
        Task mix; its arrival rates drive the episode trace.
    p_const:
        Room power cap, kW.
    epoch_s:
        Seconds per control epoch (one ``step``).
    n_epochs:
        Steps per episode.
    outlet_levels:
        Outlet-temperature grid resolution available to actions.
    tau_s:
        Node thermal time constant for the transient check.
    """

    def __init__(self, datacenter: DataCenter, workload: Workload,
                 p_const: float, *, epoch_s: float = 60.0,
                 n_epochs: int = 4, outlet_levels: int = 5,
                 tau_s: float = 15.0):
        if epoch_s <= 0:
            raise ValueError("epoch length must be positive")
        if n_epochs < 1:
            raise ValueError("need at least one epoch per episode")
        self.datacenter = datacenter
        self.workload = workload
        self.p_const = float(p_const)
        self.epoch_s = float(epoch_s)
        self.n_epochs = int(n_epochs)
        self.tau_s = float(tau_s)
        self.evaluator = CandidateEvaluator(datacenter, workload, p_const,
                                            outlet_levels=outlet_levels)
        self._model = datacenter.require_thermal()
        self._trace: list[Task] | None = None
        self._cursor = 0
        self._epoch = 0
        self._t_out_prev: np.ndarray | None = None
        self._last_margin = 0.0
        self._last_power_frac = 0.0
        self._last_outlet_norm = 0.5

    # ------------------------------------------------------------------
    @property
    def n_task_types(self) -> int:
        return self.workload.n_task_types

    @property
    def observation_size(self) -> int:
        return 1 + self.n_task_types + 3

    def action_spec(self) -> dict[str, Any]:
        """Discrete action shape: one outlet level + one fill per type.

        An action is ``(outlet_level, fills)`` with ``0 <= outlet_level
        < outlet_levels`` and ``fills`` one P-state fill per node type
        (each core of type *t* is set to ``min(fills[t], off_t)`` before
        repair).
        """
        etas = tuple(spec.n_pstates for spec in self.datacenter.node_types)
        return {"outlet_levels": self.evaluator.outlet_levels,
                "pstate_levels": etas}

    # ------------------------------------------------------------------
    def plan_action(self, action: tuple[int, Any]
                    ) -> tuple[Candidate, float]:
        """Repair + score an action without advancing the episode.

        Returns the repaired (feasible) candidate and its Stage 3
        predicted reward rate; the scripted greedy policy uses this to
        rank actions cheaply (rewards are memoized per P-state class
        histogram inside the shared evaluator).
        """
        level, fills = action
        level = int(level)
        if not 0 <= level < self.evaluator.outlet_levels:
            raise ValueError(f"outlet level {level} out of range")
        fills_arr = np.asarray(fills, dtype=int)
        if fills_arr.shape != (len(self.datacenter.node_types),):
            raise ValueError(
                f"need one P-state fill per node type "
                f"({len(self.datacenter.node_types)}), got "
                f"{fills_arr.shape}")
        pstates = np.minimum(fills_arr[self.datacenter.core_type],
                             self.evaluator.off)
        cand = Candidate(
            outlet_idx=np.full(self.datacenter.n_crac, level, dtype=int),
            pstates=pstates)
        reward = self.evaluator.evaluate(cand)
        return cand, reward

    # ------------------------------------------------------------------
    def _observe(self) -> np.ndarray:
        start = self._epoch * self.epoch_s
        end = start + self.epoch_s
        counts = np.zeros(self.n_task_types)
        assert self._trace is not None
        for task in self._trace[self._cursor:]:
            if task.arrival >= end:
                break
            counts[task.task_type] += 1
        expected = np.asarray(self.workload.arrival_rates) * self.epoch_s
        obs = np.empty(self.observation_size)
        obs[0] = self._epoch / self.n_epochs
        obs[1:1 + self.n_task_types] = counts / (expected + 1.0)
        obs[-3] = self._last_outlet_norm
        obs[-2] = self._last_margin / 10.0
        obs[-1] = self._last_power_frac
        return obs

    def _room_state(self, t_vec: np.ndarray,
                    node_power: np.ndarray) -> None:
        margin = self._model.redline_margin(t_vec, node_power,
                                            self.datacenter.redline_c)
        self._last_margin = float(margin.min())
        breakdown = total_power(self.datacenter, t_vec, node_power)
        self._last_power_frac = float(breakdown.total / self.p_const)
        lows = self.evaluator.outlet_grid[0]
        highs = self.evaluator.outlet_grid[-1]
        span = np.maximum(highs - lows, 1e-9)
        self._last_outlet_norm = float(np.mean((t_vec - lows) / span))

    def reset(self, seed: int = 0) -> tuple[np.ndarray, dict[str, Any]]:
        """Start a fresh episode; pure function of ``seed``."""
        rng = np.random.default_rng(seed)
        horizon = self.epoch_s * self.n_epochs
        self._trace = generate_trace(self.workload, horizon, rng)
        self._cursor = 0
        self._epoch = 0
        dc = self.datacenter
        idle_power = dc.node_power_kw(dc.all_off_pstates())
        t_mid = np.full(dc.n_crac, float(np.mean(
            [c.outlet_range_c for c in dc.cracs])))
        self._t_out_prev = self._model.steady_state(t_mid,
                                                    idle_power).t_out
        self._room_state(t_mid, idle_power)
        obs_metrics.counter("rl.episodes").inc()
        return self._observe(), {"n_tasks": len(self._trace),
                                 "seed": int(seed)}

    def step(self, action: tuple[int, Any]
             ) -> tuple[np.ndarray, float, bool, bool, dict[str, Any]]:
        """Commit one epoch plan and replay its task slice.

        Returns ``(obs, reward, terminated, truncated, info)``; reward
        is the epoch's realized DES total reward.  ``info`` carries the
        plan audit: predicted Stage 3 reward rate, worst steady-state
        redline margin (>= ``-tol`` by repair construction), transient
        redline-violation minutes during the transition, and total room
        power.
        """
        if self._trace is None:
            raise RuntimeError("call reset() before step()")
        if self._epoch >= self.n_epochs:
            raise RuntimeError("episode over — call reset()")
        cand, predicted = self.plan_action(action)
        t_vec = self.evaluator.outlets(cand.outlet_idx)
        stage3: Stage3Solution = self.evaluator.finish(cand)
        dc = self.datacenter
        node_power = dc.node_power_kw(cand.pstates)
        assert self._t_out_prev is not None
        transient = simulate_transient(
            self._model, t_vec, node_power, self._t_out_prev,
            duration_s=min(10.0 * self.tau_s, self.epoch_s),
            tau_s=self.tau_s)
        violation_min = transient.violation_minutes(dc.redline_c)
        start = self._epoch * self.epoch_s
        end = start + self.epoch_s
        chunk: list[Task] = []
        while self._cursor < len(self._trace) \
                and self._trace[self._cursor].arrival < end:
            task = self._trace[self._cursor]
            chunk.append(Task(arrival=task.arrival - start,
                              task_type=task.task_type, uid=task.uid,
                              deadline=task.deadline - start))
            self._cursor += 1
        metrics = simulate_trace(dc, self.workload, stage3.tc,
                                 cand.pstates, chunk,
                                 duration=self.epoch_s)
        self._t_out_prev = self._model.steady_state(t_vec,
                                                    node_power).t_out
        self._room_state(t_vec, node_power)
        self._epoch += 1
        terminated = self._epoch >= self.n_epochs
        obs_metrics.counter("rl.steps").inc()
        info = {
            "predicted_reward_rate": float(predicted),
            "steady_margin_c": self._last_margin,
            "violation_minutes": float(violation_min),
            "power_kw": self._last_power_frac * self.p_const,
            "n_tasks": len(chunk),
            "epoch": self._epoch - 1,
        }
        return (self._observe(), float(metrics.total_reward), terminated,
                False, info)


def make_gymnasium_env(datacenter: DataCenter, workload: Workload,
                       p_const: float, **kwargs: Any) -> Any:
    """Wrap :class:`ThermalSchedulingEnv` in a real ``gymnasium.Env``.

    Optional adapter — gymnasium is **not** a dependency of this
    package; calling this without it installed raises ``RuntimeError``
    with instructions, everything else in :mod:`repro.rl` keeps working.
    Actions become a flat ``MultiDiscrete([outlet_levels, *etas])``
    vector, observations a ``Box`` of the duck-typed vector.
    """
    try:
        import gymnasium
        from gymnasium import spaces
    except ImportError:
        raise RuntimeError(
            "gymnasium is not installed; use ThermalSchedulingEnv "
            "directly (duck-typed, same API) or install gymnasium to "
            "get a wrapped gymnasium.Env") from None

    inner = ThermalSchedulingEnv(datacenter, workload, p_const, **kwargs)
    spec = inner.action_spec()

    class _GymThermalEnv(gymnasium.Env):  # type: ignore[misc]
        metadata = {"render_modes": []}

        def __init__(self) -> None:
            self.env = inner
            self.action_space = spaces.MultiDiscrete(
                [spec["outlet_levels"], *spec["pstate_levels"]])
            self.observation_space = spaces.Box(
                low=-np.inf, high=np.inf,
                shape=(inner.observation_size,), dtype=np.float64)

        def reset(self, *, seed: int | None = None,
                  options: dict | None = None) -> tuple[np.ndarray, dict]:
            super().reset(seed=seed)
            return self.env.reset(seed=0 if seed is None else seed)

        def step(self, action: np.ndarray
                 ) -> tuple[np.ndarray, float, bool, bool, dict]:
            flat = np.asarray(action, dtype=int)
            return self.env.step((int(flat[0]), flat[1:]))

    return _GymThermalEnv()


# typing helper for policies
Policy = Callable[[np.ndarray], tuple[int, Any]]
