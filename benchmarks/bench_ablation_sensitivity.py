"""Parameter sensitivity ablation — the Figure 6 observations, isolated.

The paper explains its Figure 6 trends via two knobs:

1. *static power share*: the lower the static share, the better the
   reward/W of intermediate P-states relative to P-state 0, so the
   larger the three-stage technique's edge;
2. *V_prop*: more ECS variation means more P-state/task-type affinity
   to exploit.

This benchmark varies each knob separately (the paper only reports the
three combined sets) and prints mean improvements, so each observation
can be attributed to its knob.
"""

import numpy as np

from repro.experiments import ScenarioConfig, run_simulation_set


def bench_ablation_sensitivity(benchmark, capsys, scale):
    n_runs = max(3, scale.n_runs // 2)
    grid = [
        ("static=30% vprop=0.1", 0.3, 0.1),
        ("static=30% vprop=0.3", 0.3, 0.3),
        ("static=20% vprop=0.1", 0.2, 0.1),
        ("static=20% vprop=0.3", 0.2, 0.3),
    ]

    def run():
        out = {}
        for label, static, vprop in grid:
            cfg = ScenarioConfig(name=label, n_nodes=scale.n_nodes,
                                 static_fraction=static, v_prop=vprop)
            out[label] = run_simulation_set(cfg, n_runs=n_runs,
                                            base_seed=4000)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(f"sensitivity grid ({n_runs} runs each) — best-of-psi "
              "improvement over baseline")
        print(f"{'configuration':<24}{'mean %':>9}{'95% CI':>16}")
        for label, _, _ in grid:
            ci = results[label].intervals["best"]
            print(f"{label:<24}{ci.mean:>+9.2f}"
                  f"   [{ci.low:+.2f}, {ci.high:+.2f}]")
        s30v1 = results["static=30% vprop=0.1"].intervals["best"].mean
        s20v3 = results["static=20% vprop=0.3"].intervals["best"].mean
        print(f"\npaper's combined claim: corner-to-corner gain "
              f"{s30v1:+.2f}% -> {s20v3:+.2f}%")
