"""Solver tournament — every backend raced on the fig6 golden scenario.

Runs :func:`repro.experiments.tournament.sweep_tournament` on the
benchmark-scale set-1 room (the same ``(config, seed=1000)`` recipe the
golden fig6 suite pins) with the three shipped backends and writes
``BENCH_tournament.json`` to the repo root.  Everything in the JSON is
deterministic — seeded searches, evaluation budgets, no wall-clock
fields — so CI diffs the artifact across ``--jobs`` values and gates on
the quality ordering:

* three-stage reward >= each metaheuristic (the decomposition is the
  quality reference), and
* each metaheuristic >= 90% of the three-stage reward (the searches
  must stay competitive, not just feasible).

Wall-clock timing is reported to the console only (pytest-benchmark's
one cheap round keeps the harness engaged) and never serialized.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.tournament import (TournamentConfig,
                                          sweep_tournament,
                                          tournament_table)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_tournament.json"

MAX_EVALS = 800
BACKEND_SEED = 0


def bench_tournament(benchmark, capsys, scale):
    config = TournamentConfig(
        n_nodes=scale.n_nodes, seed=1000, sets=(1,),
        backends=("three_stage", "annealing", "evolution"),
        backend_seed=BACKEND_SEED, max_evals=MAX_EVALS)
    points = sweep_tournament(config)

    doc = {
        "schema": 1,
        "n_nodes": config.n_nodes,
        "seed": config.seed,
        "backend_seed": BACKEND_SEED,
        "max_evals": MAX_EVALS,
        "points": [p.to_dict() for p in points],
    }
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    # keep pytest-benchmark's machinery engaged (one cheap re-race of the
    # cheapest backend)
    benchmark.pedantic(
        lambda: sweep_tournament(TournamentConfig(
            n_nodes=config.n_nodes, seed=1000, sets=(1,),
            backends=("three_stage",))),
        rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(f"tournament: {config.n_nodes} nodes, seed {config.seed}, "
              f"budget {MAX_EVALS} evals")
        print(tournament_table(points))
        print(f"written to {OUT_PATH.name}")

    by_backend = {p.backend: p for p in points}
    anchor = by_backend["three_stage"].reward_rate
    assert anchor > 0, "three-stage earned nothing on the fig6 scenario"
    for name in ("annealing", "evolution"):
        reward = by_backend[name].reward_rate
        assert reward <= anchor + 1e-9, \
            f"{name} beat three_stage — quality anchor no longer holds"
        assert reward >= 0.9 * anchor, \
            f"{name} fell below 90% of the three-stage reward " \
            f"({reward:.1f} vs {anchor:.1f})"
        assert by_backend[name].violation_minutes == 0.0
