"""Thermal substrate: heat-flow model (Section IV), cross-interference
generation (Appendix B), and the linearized constraint views used by the
optimizers."""

from repro.thermal.constraints import ThermalLinearization
from repro.thermal.heatflow import (SPARSE_AUTO_UNITS, HeatFlowModel,
                                    SteadyState)
from repro.thermal.estimation import (Measurement, collect_measurements,
                                      estimate_mix_matrix, estimation_error)
from repro.thermal.interference import (attach_thermal_model,
                                        exit_coefficients, generate_alpha,
                                        recirculation_coefficients)
from repro.thermal.sparse import (DEFAULT_COUPLING, Zone,
                                  attach_zonal_thermal, zonal_block_alpha,
                                  zone_partition)
from repro.thermal.transient import (TransientResult, simulate_transient,
                                     time_to_steady_state)

__all__ = [
    "ThermalLinearization",
    "HeatFlowModel",
    "SteadyState",
    "SPARSE_AUTO_UNITS",
    "DEFAULT_COUPLING",
    "Zone",
    "zone_partition",
    "zonal_block_alpha",
    "attach_zonal_thermal",
    "attach_thermal_model",
    "exit_coefficients",
    "generate_alpha",
    "recirculation_coefficients",
    "Measurement",
    "collect_measurements",
    "estimate_mix_matrix",
    "estimation_error",
    "TransientResult",
    "simulate_transient",
    "time_to_steady_state",
]
