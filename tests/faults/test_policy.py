"""Tests for repro.faults.policy — the fault-reaction control loop."""

import numpy as np
import pytest

from repro.experiments import PAPER_SET_1, generate_scenario, scaled_down
from repro.faults.model import FaultEvent, FaultKind, FaultSchedule
from repro.faults.policy import FaultAwareController, ReactionPolicy
from repro.workload import generate_trace

N_NODES = 6
SEED = 0
HORIZON = 60.0


@pytest.fixture(scope="module")
def chaos_scenario():
    return generate_scenario(scaled_down(PAPER_SET_1, N_NODES), SEED)


@pytest.fixture(scope="module")
def chaos_trace(chaos_scenario):
    return generate_trace(chaos_scenario.workload, HORIZON,
                          np.random.default_rng(SEED + 1))


def _controller(sc, **policy_kwargs):
    return FaultAwareController(sc.datacenter, sc.workload, sc.p_const,
                                ReactionPolicy(**policy_kwargs))


class TestReactionPolicy:
    def test_invalid_stranded_rejected(self):
        with pytest.raises(ValueError, match="stranded"):
            ReactionPolicy(stranded="panic")

    def test_invalid_exhausted_rejected(self):
        with pytest.raises(ValueError, match="on_derate_exhausted"):
            ReactionPolicy(on_derate_exhausted="shrug")


class TestEmptySchedule:
    def test_single_interval(self, chaos_scenario, chaos_trace):
        result = _controller(chaos_scenario).run(
            chaos_trace, HORIZON, FaultSchedule.empty())
        assert len(result.intervals) == 1
        iv = result.intervals[0]
        assert (iv.start_s, iv.end_s, iv.cause) == (0.0, HORIZON, "start")
        assert iv.derated == 0
        assert iv.transient_overshoot_c is None  # cold start
        assert result.n_replans == 0
        assert result.violation_minutes == 0.0

    def test_bit_identical_to_plain_simulate(self, chaos_scenario,
                                             chaos_trace):
        """Acceptance criterion: chaos with no faults == repro simulate."""
        from repro.core import three_stage_assignment
        from repro.simulate import simulate_trace

        sc = chaos_scenario
        result = _controller(sc).run(chaos_trace, HORIZON,
                                     FaultSchedule.empty())
        plan = three_stage_assignment(sc.datacenter, sc.workload,
                                      sc.p_const, psi=50.0)
        metrics = simulate_trace(sc.datacenter, sc.workload, plan.tc,
                                 plan.pstates, chaos_trace,
                                 duration=HORIZON)
        iv = result.intervals[0]
        assert iv.plan_reward_rate == plan.reward_rate
        assert iv.metrics.total_reward == metrics.total_reward
        assert iv.metrics.to_dict() == metrics.to_dict()
        np.testing.assert_array_equal(iv.metrics.completed,
                                      metrics.completed)


class TestCracOutageReaction:
    """Acceptance criterion: a CRAC outage triggers a re-solve whose
    post-transition transient respects every redline."""

    def test_outage_triggers_safe_replan(self, chaos_scenario, chaos_trace):
        schedule = FaultSchedule.from_events([
            FaultEvent(start_s=20.0, kind=FaultKind.CRAC_OUTAGE, target=0,
                       duration_s=20.0)])
        result = _controller(chaos_scenario).run(chaos_trace, HORIZON,
                                                 schedule)
        assert [iv.cause for iv in result.intervals] == \
            ["start", "fault:crac_outage", "recovery:crac_outage"]
        assert result.n_replans == 2
        outage_iv = result.intervals[1]
        # the degraded plan was re-solved, and its transition stayed
        # below every redline
        assert outage_iv.transient_overshoot_c is not None
        assert outage_iv.transient_overshoot_c <= 1e-6
        assert outage_iv.violation_minutes == 0.0
        assert outage_iv.replan_wall_s > 0.0
        # the outage typically costs planned reward (never gains any)
        assert outage_iv.plan_reward_rate \
            <= result.intervals[0].plan_reward_rate + 1e-9

    def test_recovery_restores_nominal_plan(self, chaos_scenario,
                                            chaos_trace):
        schedule = FaultSchedule.from_events([
            FaultEvent(start_s=20.0, kind=FaultKind.CRAC_OUTAGE, target=0,
                       duration_s=20.0)])
        result = _controller(chaos_scenario).run(chaos_trace, HORIZON,
                                                 schedule)
        last = result.intervals[-1]
        assert last.crac_capacity == [1.0] * \
            chaos_scenario.datacenter.n_crac
        assert last.n_nodes_alive == N_NODES


class TestNodeCrashStranding:
    def _schedule(self):
        return FaultSchedule.from_events([
            FaultEvent(start_s=20.0, kind=FaultKind.NODE_CRASH, target=0,
                       duration_s=20.0)])

    def test_crash_shrinks_inventory_and_strands(self, chaos_scenario,
                                                 chaos_trace):
        result = _controller(chaos_scenario).run(chaos_trace, HORIZON,
                                                 self._schedule())
        first, crashed, recovered = result.intervals
        assert crashed.n_nodes_alive == N_NODES - 1
        assert recovered.n_nodes_alive == N_NODES
        # the interval *before* the crash absorbed the boundary outage:
        # tasks queued on node 0's cores at t=20 were stranded
        assert first.metrics.n_fault_events == 1
        assert first.metrics.stranded_requeued is not None
        assert result.tasks_requeued == \
            int(first.metrics.stranded_requeued.sum())

    def test_drop_policy_accounts_losses(self, chaos_scenario, chaos_trace):
        requeue = _controller(chaos_scenario, stranded="requeue").run(
            chaos_trace, HORIZON, self._schedule())
        drop = _controller(chaos_scenario, stranded="drop").run(
            chaos_trace, HORIZON, self._schedule())
        dropped_stranded = sum(
            int(iv.metrics.stranded_dropped.sum())
            for iv in drop.intervals
            if iv.metrics.stranded_dropped is not None)
        requeued = requeue.tasks_requeued
        assert requeued == dropped_stranded  # same tasks, two dispositions
        assert requeue.tasks_requeued > 0 or dropped_stranded == 0
        # dropping stranded work can never beat requeuing it
        assert drop.total_reward <= requeue.total_reward + 1e-9


class TestResultAggregation:
    def test_to_dict_schema(self, chaos_scenario, chaos_trace):
        schedule = FaultSchedule.from_events([
            FaultEvent(start_s=30.0, kind=FaultKind.POWER_CAP_DROP,
                       duration_s=15.0, magnitude=0.3)])
        result = _controller(chaos_scenario).run(chaos_trace, HORIZON,
                                                 schedule)
        doc = result.to_dict()
        assert doc["schema"] == 1
        assert doc["n_fault_events"] == 1
        assert doc["n_replans"] == 2
        assert len(doc["intervals"]) == 3
        assert doc["total_reward"] == pytest.approx(result.total_reward)
        # the cap-drop interval planned under a reduced budget
        cap_iv = doc["intervals"][1]
        assert cap_iv["cap_kw"] == pytest.approx(
            0.7 * chaos_scenario.p_const)
        if cap_iv["shed"]:
            # a cap this tight may admit no plan at all — the interval
            # then sheds every task rather than aborting the run
            assert cap_iv["plan_reward_rate"] == 0.0

    def test_infeasible_cap_sheds_load(self, chaos_scenario, chaos_trace):
        schedule = FaultSchedule.from_events([
            FaultEvent(start_s=30.0, kind=FaultKind.POWER_CAP_DROP,
                       duration_s=15.0, magnitude=0.9)])
        result = _controller(chaos_scenario).run(chaos_trace, HORIZON,
                                                 schedule)
        shed_iv = result.intervals[1]
        assert shed_iv.shed
        assert shed_iv.plan_reward_rate == 0.0
        assert shed_iv.metrics.total_reward == 0.0
        # ... and strict mode surfaces the infeasibility instead
        with pytest.raises(RuntimeError):
            _controller(chaos_scenario,
                        on_derate_exhausted="raise").run(
                chaos_trace, HORIZON, schedule)

    def test_invalid_horizon_rejected(self, chaos_scenario, chaos_trace):
        with pytest.raises(ValueError, match="horizon"):
            _controller(chaos_scenario).run(chaos_trace, 0.0,
                                            FaultSchedule.empty())


class TestDegenerateChaosResult:
    """Regression: a zero-length chaos horizon must not divide by zero."""

    def test_zero_horizon_reward_rate_is_zero(self):
        from repro.faults.model import FaultSchedule
        from repro.faults.policy import ChaosRunResult

        result = ChaosRunResult(horizon_s=0.0,
                                schedule=FaultSchedule.empty(),
                                intervals=[])
        assert result.reward_rate == 0.0
        assert result.total_reward == 0.0
