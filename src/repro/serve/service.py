"""The rolling-horizon control service behind ``repro serve``.

Architecture (one asyncio event loop, two tasks, one bounded queue):

* a **producer** drains a streaming trace source — any iterator of
  :class:`repro.workload.trace.TickDemand`, typically
  :func:`repro.workload.trace.stream_trace_ticks` — into an
  ``asyncio.Queue`` of bounded depth (back-pressure: trace generation
  never runs unboundedly ahead of control);
* a **consumer** takes one tick at a time and runs the control step:
  re-solve the first-step assignment for the tick's arrival-rate vector
  with the previous tick's :class:`~repro.core.warmstart.SolveState`
  as a warm start, transient-guard the transition
  (:func:`repro.core.controller.plan_with_transient_guard`), then admit
  arrivals against the plan's execution-rate capacity and shed the
  excess.

Warm-start economics: between ticks only the arrival-rate vector
changes, which is exactly the ``"stage1"`` reuse level — Stage 1 and
Stage 2 replay bit-identically and only the Stage 3 rate LP re-solves.
The service therefore pays the full search cost once, on the first
tick.

Determinism: with a seeded trace stream the whole run is a pure
function of its inputs — :meth:`ServeResult.to_dict` contains no wall
times, so two runs with the same seed produce identical tick logs
(enforced by the CI ``serve-smoke`` job).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import AsyncIterator, Iterable, Iterator

import numpy as np

from repro import kernels
from repro.control.forecast import ForecastProvider
from repro.control.mpc import MPCConfig, MPCPlanner
from repro.core.api import SolveOptions, SolveRequest, solve
from repro.core.controller import plan_with_transient_guard
from repro.core.warmstart import SolveState
from repro.datacenter.builder import DataCenter
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate as obs_annotate
from repro.obs.trace import span as obs_span
from repro.workload.tasktypes import Workload
from repro.workload.trace import Task, TickDemand

__all__ = ["ServeConfig", "TickRecord", "ServeResult", "ControlService",
           "serve_trace"]


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the control service.

    Attributes
    ----------
    tick_s:
        Control-tick length, seconds (the replanning period).
    psi:
        ARR aggregation level for the re-solves.
    tau_s / derate_step / max_derate:
        Transient-guard parameters
        (:func:`repro.core.controller.plan_with_transient_guard`).
    warm:
        ``"replay"`` (default) threads warm-start state between ticks
        using only the value-exact reuse levels; ``"seed"`` also allows
        the heuristic seeded search after a cap change; ``"off"``
        solves every tick cold.
    queue_depth:
        Bound of the producer/consumer queue (back-pressure).
    controller:
        ``"interval"`` (default) replans each tick reactively with the
        transient guard; ``"mpc"`` plans with the receding-horizon
        planner (:mod:`repro.control.mpc`), looking ``horizon_ticks``
        ticks ahead and pre-cooling before derating.
    horizon_ticks:
        MPC lookahead depth, in ticks.
    precool_step_c / max_precool:
        MPC pre-cool escalation (redline tightening per level, levels).
    """

    tick_s: float = 60.0
    psi: float = 50.0
    tau_s: float = 120.0
    derate_step: float = 0.05
    max_derate: int = 10
    warm: str = "replay"
    queue_depth: int = 4
    controller: str = "interval"
    horizon_ticks: int = 3
    precool_step_c: float = 1.0
    max_precool: int = 3

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise ValueError(f"tick_s must be positive, got {self.tick_s}")
        if self.warm not in ("off", "replay", "seed"):
            raise ValueError(
                f"warm must be 'off', 'replay' or 'seed', got {self.warm!r}")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if self.controller not in ("interval", "mpc"):
            raise ValueError(
                f"controller must be 'interval' or 'mpc', "
                f"got {self.controller!r}")
        if self.horizon_ticks < 1:
            raise ValueError("horizon_ticks must be at least 1")

    def mpc_config(self) -> MPCConfig:
        """The planner tunables this service config implies."""
        return MPCConfig(
            horizon_steps=self.horizon_ticks, step_s=self.tick_s,
            psi=self.psi, tau_s=self.tau_s,
            precool_step_c=self.precool_step_c,
            max_precool=self.max_precool,
            derate_step=self.derate_step, max_derate=self.max_derate,
            on_exhausted="best", warm=self.warm)


@dataclass
class TickRecord:
    """One control tick of a service run (no wall times — deterministic).

    Attributes
    ----------
    index / start_s:
        Tick number and start instant.
    rates:
        Arrival-rate vector the tick was planned for.
    reward_rate:
        Stage 3 prediction of the committed plan (0.0 on a shed-all
        tick).
    warm_level:
        Warm-start reuse level the replan engaged (``"none"``,
        ``"structure"``, ``"stage1"``, ``"request"``, or ``"shed"``
        when no feasible plan existed).
    derated:
        Derate steps the transient guard took.
    arrived / admitted / shed_tasks:
        Tick arrivals vs. what the plan's execution-rate capacity
        admitted; the rest was shed.
    shed:
        True when the tick shed any load (including shed-all ticks).
    precooled:
        Pre-cool level the committed plan was solved at (MPC controller
        only; the reactive tick controller never pre-cools).
    """

    index: int
    start_s: float
    rates: list[float]
    reward_rate: float
    warm_level: str
    derated: int
    arrived: int
    admitted: int
    shed_tasks: int
    shed: bool
    precooled: int = 0

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start_s": self.start_s,
            "rates": self.rates,
            "reward_rate": self.reward_rate,
            "warm_level": self.warm_level,
            "derated": self.derated,
            "arrived": self.arrived,
            "admitted": self.admitted,
            "shed_tasks": self.shed_tasks,
            "shed": self.shed,
            "precooled": self.precooled,
        }


@dataclass
class ServeResult:
    """Aggregate outcome of one service run."""

    tick_s: float
    ticks: list[TickRecord] = field(default_factory=list)

    @property
    def n_ticks(self) -> int:
        return len(self.ticks)

    @property
    def total_reward(self) -> float:
        """Predicted reward over the run (reward rate x tick length)."""
        return float(sum(t.reward_rate for t in self.ticks)) * self.tick_s

    @property
    def tasks_arrived(self) -> int:
        return sum(t.arrived for t in self.ticks)

    @property
    def tasks_shed(self) -> int:
        return sum(t.shed_tasks for t in self.ticks)

    @property
    def shed_ticks(self) -> int:
        return sum(1 for t in self.ticks if t.shed)

    @property
    def warm_levels(self) -> dict[str, int]:
        """Tick count per warm-start reuse level."""
        levels: dict[str, int] = {}
        for t in self.ticks:
            levels[t.warm_level] = levels.get(t.warm_level, 0) + 1
        return levels

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "tick_s": self.tick_s,
            "n_ticks": self.n_ticks,
            "total_reward": self.total_reward,
            "tasks_arrived": self.tasks_arrived,
            "tasks_shed": self.tasks_shed,
            "shed_ticks": self.shed_ticks,
            "warm_levels": self.warm_levels,
            "ticks": [t.to_dict() for t in self.ticks],
        }


def _admit(tasks: tuple[Task, ...], capacity_rates: np.ndarray,
           tick_s: float) -> tuple[int, int]:
    """Admission control: how many of ``tasks`` the plan can serve.

    The committed plan's execution-rate matrix bounds the sustainable
    throughput per task type at ``tc.sum(axis=1)`` tasks/s; a tick
    admits at most ``floor(rate * tick_s)`` arrivals of each type
    (earliest first — flash-crowd excess is shed, not queued across
    ticks, because a stale backlog would invalidate the steady-state
    planning model).

    Returns ``(admitted, shed)`` counts.
    """
    allowance = np.floor(capacity_rates * tick_s + 1e-9).astype(int)
    taken = np.zeros_like(allowance)
    admitted = 0
    for task in tasks:
        if taken[task.task_type] < allowance[task.task_type]:
            taken[task.task_type] += 1
            admitted += 1
    return admitted, len(tasks) - admitted


class ControlService:
    """Drives the rolling-horizon control loop over a tick stream.

    Parameters
    ----------
    datacenter:
        The room (thermal model attached).
    workload:
        Base workload; each tick's plan uses the tick's arrival-rate
        vector in place of ``workload.arrival_rates``.
    p_const:
        Room power cap, kW.
    config:
        Service tunables (:class:`ServeConfig`).
    forecast:
        Optional :class:`~repro.control.forecast.ForecastProvider` for
        the MPC lookahead (``controller="mpc"``); ``None`` degenerates
        the lookahead to persistence (every future tick looks like the
        current one).
    """

    def __init__(self, datacenter: DataCenter, workload: Workload,
                 p_const: float, config: ServeConfig | None = None,
                 forecast: ForecastProvider | None = None):
        if p_const <= 0:
            raise ValueError("power cap must be positive")
        datacenter.require_thermal()
        self.datacenter = datacenter
        self.workload = workload
        self.p_const = p_const
        self.config = config or ServeConfig()
        self.forecast = forecast
        self._mpc: MPCPlanner | None = None
        if self.config.controller == "mpc":
            self._mpc = MPCPlanner(self.config.mpc_config())
        self._warm: SolveState | None = None
        self._t_out: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _shed_all(self, demand: TickDemand) -> TickRecord:
        """Shed-all tick: the room admitted no feasible plan."""
        obs_metrics.counter("serve.shed_events").inc()
        obs_metrics.counter("serve.shed_tasks").inc(len(demand.tasks))
        obs_annotate(warm_level="shed")
        return TickRecord(
            index=demand.index, start_s=demand.start_s,
            rates=[float(r) for r in demand.rates],
            reward_rate=0.0, warm_level="shed", derated=0,
            arrived=len(demand.tasks), admitted=0,
            shed_tasks=len(demand.tasks), shed=True)

    def _mpc_step(self, demand: TickDemand, wl: Workload):
        """Plan one tick with the receding-horizon planner."""
        cfg = self.config
        rates = wl.arrival_rates
        if self.forecast is not None:
            forecast_rates = self.forecast.rates_ahead(
                demand.start_s, rates, cfg.horizon_ticks, cfg.tick_s)
        else:
            forecast_rates = np.tile(rates, (cfg.horizon_ticks, 1))
        return self._mpc.plan(self.datacenter, wl, self.p_const,
                              self._t_out, forecast_rates,
                              first_step_s=cfg.tick_s)

    def _control_step(self, demand: TickDemand) -> TickRecord:
        """One tick: warm replan, transient guard, admission control."""
        cfg = self.config
        wl = replace(self.workload,
                     arrival_rates=np.asarray(demand.rates, dtype=float))
        precooled = 0
        if cfg.controller == "mpc":
            decision = self._mpc_step(demand, wl)
            if decision.shed:
                return self._shed_all(demand)
            plan = decision.plan
            derated = decision.derated
            precooled = decision.precooled
            warm_level = decision.warm_level
        else:
            options = SolveOptions(psi=cfg.psi,
                                   warm_seed=cfg.warm == "seed",
                                   kernel=kernels.active_name())
            state = self._warm if cfg.warm != "off" else None
            try:
                if self._t_out is None:
                    # first tick: no operating point to transition from
                    plan = solve(SolveRequest(self.datacenter, wl,
                                              self.p_const, options=options,
                                              warm_start=state))
                    derated = 0
                else:
                    plan, derated, _ = plan_with_transient_guard(
                        self.datacenter, wl, self.p_const, self._t_out,
                        psi=cfg.psi, tau_s=cfg.tau_s,
                        derate_step=cfg.derate_step,
                        max_derate=cfg.max_derate, on_exhausted="best",
                        warm_start=state, warm_seed=cfg.warm == "seed")
            except RuntimeError:
                # the room admits no plan at these rates — shed
                # everything this tick and keep the service alive
                return self._shed_all(demand)
            if cfg.warm != "off":
                self._warm = plan.state
            runtime = plan.state.runtime
            warm_level = runtime.level if runtime is not None else "none"

        # propagate the room's operating point for the next transition
        model = self.datacenter.require_thermal()
        node_power = self.datacenter.node_power_kw(plan.pstates)
        self._t_out = model.steady_state(plan.t_crac_out, node_power).t_out

        admitted, shed_tasks = _admit(demand.tasks, plan.tc.sum(axis=1),
                                      cfg.tick_s)
        if shed_tasks:
            obs_metrics.counter("serve.shed_events").inc()
            obs_metrics.counter("serve.shed_tasks").inc(shed_tasks)
        obs_annotate(warm_level=warm_level, admitted=admitted,
                     shed_tasks=shed_tasks)
        return TickRecord(
            index=demand.index, start_s=demand.start_s,
            rates=[float(r) for r in demand.rates],
            reward_rate=float(plan.reward_rate), warm_level=warm_level,
            derated=derated, arrived=len(demand.tasks),
            admitted=admitted, shed_tasks=shed_tasks,
            shed=shed_tasks > 0, precooled=precooled)

    # ------------------------------------------------------------------
    async def _produce(self, source: Iterable[TickDemand],
                       queue: asyncio.Queue) -> None:
        for demand in source:
            await queue.put(demand)
        await queue.put(None)  # end-of-stream sentinel

    async def _consume(self, queue: asyncio.Queue,
                       result: ServeResult) -> None:
        while True:
            demand = await queue.get()
            if demand is None:
                return
            with obs_span("serve.tick", index=demand.index):
                record = self._control_step(demand)
            obs_metrics.counter("serve.ticks").inc()
            result.ticks.append(record)

    async def run(self, source: Iterable[TickDemand] | Iterator[TickDemand]
                  ) -> ServeResult:
        """Consume ``source`` to exhaustion and return the run log."""
        result = ServeResult(tick_s=self.config.tick_s)
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.queue_depth)
        with obs_span("serve", tick_s=self.config.tick_s,
                      warm=self.config.warm):
            async with asyncio.TaskGroup() as group:
                group.create_task(self._produce(source, queue))
                group.create_task(self._consume(queue, result))
        return result

    async def stream(self, source: Iterable[TickDemand]
                     ) -> AsyncIterator[TickRecord]:
        """Process ticks lazily, yielding each record as it completes."""
        for demand in source:
            with obs_span("serve.tick", index=demand.index):
                record = self._control_step(demand)
            obs_metrics.counter("serve.ticks").inc()
            yield record
            await asyncio.sleep(0)  # cooperative scheduling point


def serve_trace(datacenter: DataCenter, workload: Workload, p_const: float,
                source: Iterable[TickDemand],
                config: ServeConfig | None = None,
                forecast: ForecastProvider | None = None) -> ServeResult:
    """Synchronous convenience wrapper: run the service to completion."""
    service = ControlService(datacenter, workload, p_const, config, forecast)
    return asyncio.run(service.run(source))
