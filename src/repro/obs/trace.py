"""Hierarchical wall-clock spans (the tracing half of :mod:`repro.obs`).

A *span* measures one timed region of the solver or simulator::

    from repro.obs import span

    with span("stage1.search", nodes=30):
        ...

Spans nest: a span opened while another is active becomes its child, and
the finished record carries the full dot-joined path
(``"solve.stage1.search"``).  The design constraints, in order:

* **near-zero overhead when disabled** — the common case.  ``span()``
  checks one module-level flag and returns a shared no-op context
  manager; no allocation, no clock read.
* **thread-safe** — the span stack is thread-local, finished records
  append under a lock.  Spans opened on different threads never see each
  other as parents.
* **picklable state** — :meth:`Tracer.snapshot` returns plain dicts so a
  ``ProcessPoolExecutor`` worker can ship its spans back to the parent
  (see :func:`repro.obs.export.merge_snapshot`).

Timestamps come from :func:`time.perf_counter` relative to the tracer's
epoch, so they are meaningful *within* one tracer only; merged worker
records keep their own relative clocks (durations stay valid, absolute
starts are per-process).
"""

from __future__ import annotations

import threading
import time
from typing import Any

__all__ = ["Tracer", "Span", "span", "tracing_enabled", "enable_tracing",
           "disable_tracing", "reset_tracing", "current_tracer",
           "swap_tracer", "annotate"]


class Tracer:
    """Collects finished span records for one process (or one capture).

    Records are plain dicts — ``{"path", "name", "t0", "dur", "attrs"}``
    — appended in span *exit* order, which is deterministic for a
    deterministic program.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.records: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # ------------------------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def record(self, rec: dict) -> None:
        with self._lock:
            self.records.append(rec)

    def snapshot(self) -> dict:
        """Picklable/JSON-able copy of everything recorded so far."""
        with self._lock:
            return {"schema": 1, "spans": [dict(r) for r in self.records]}

    def merge(self, snapshot: dict) -> None:
        """Append another tracer's span records (e.g. from a worker).

        Records keep their recorded paths; call sites that need the
        merge to be deterministic must merge snapshots in a
        deterministic order (the engine merges in seed order).
        """
        spans = snapshot.get("spans", [])
        with self._lock:
            self.records.extend(dict(r) for r in spans)

    def reset(self) -> None:
        with self._lock:
            self.records.clear()
        self._epoch = time.perf_counter()


class Span:
    """A live (entered) span; created by :func:`span` when enabled."""

    __slots__ = ("_tracer", "name", "attrs", "path", "_t0")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.path = name
        self._t0 = 0.0

    def set(self, **attrs: Any) -> "Span":
        """Attach key/value attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.path = f"{stack[-1]}.{self.name}" if stack else self.name
        stack.append(self.path)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        t1 = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self.path:
            stack.pop()
        pending = getattr(tracer._local, "pending_attrs", None)
        if pending is not None and self.path in pending:
            self.attrs.update(pending.pop(self.path))
        tracer.record({
            "path": self.path,
            "name": self.name,
            "t0": self._t0 - tracer._epoch,
            "dur": t1 - self._t0,
            "attrs": self.attrs,
        })


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()
_TRACER = Tracer(enabled=False)


def current_tracer() -> Tracer:
    return _TRACER


def swap_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global tracer; returns the old one.

    Used by :func:`repro.obs.capture` to isolate a scoped capture (e.g.
    one engine run) from whatever the surrounding process accumulated.
    """
    global _TRACER
    old = _TRACER
    _TRACER = tracer
    return old


def tracing_enabled() -> bool:
    return _TRACER.enabled


def enable_tracing() -> None:
    _TRACER.enabled = True


def disable_tracing() -> None:
    _TRACER.enabled = False


def reset_tracing() -> None:
    _TRACER.reset()


def span(name: str, **attrs: Any) -> "Span | _NullSpan":
    """Open a span named ``name`` on the global tracer.

    Returns a context manager; when tracing is disabled this is a shared
    no-op object and the call costs one flag check.  Attribute values
    should be JSON-able scalars (they are exported verbatim).
    """
    tracer = _TRACER
    if not tracer.enabled:
        return _NULL_SPAN
    return Span(tracer, name, attrs)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the *innermost* open span, if any.

    A no-op when tracing is disabled or no span is open — safe to call
    unconditionally from hot paths.
    """
    tracer = _TRACER
    if not tracer.enabled:
        return
    stack = tracer._stack()
    if not stack:
        return
    # the innermost open span is found by path; record-on-exit means we
    # stash the attrs on the stack-side channel instead
    pending = getattr(tracer._local, "pending_attrs", None)
    if pending is None:
        pending = {}
        tracer._local.pending_attrs = pending
    pending.setdefault(stack[-1], {}).update(attrs)
