"""Tests for repro.core.stage3 — the desired execution-rate LP."""

import numpy as np
import pytest

from repro.core.stage3 import solve_stage3


@pytest.fixture(scope="module")
def stage3(scenario, assignment):
    return solve_stage3(scenario.datacenter, scenario.workload,
                        assignment.pstates)


class TestConstraints:
    def test_constraint1_core_utilization(self, scenario, assignment,
                                          stage3):
        """sum_i TC(i,k)/ECS(i,CT_k,PS_k) <= 1 for every core."""
        dc, wl = scenario.datacenter, scenario.workload
        ecs = wl.ecs[:, dc.core_type, assignment.pstates]  # (T, NCORES)
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(stage3.tc > 0, stage3.tc / ecs, 0.0).sum(axis=0)
        assert np.all(util <= 1.0 + 1e-6)

    def test_constraint2_deadlines(self, scenario, assignment, stage3):
        """TC(i,k) = 0 when the core's P-state cannot meet m_i."""
        dc, wl = scenario.datacenter, scenario.workload
        for i in range(wl.n_task_types):
            for k in range(dc.n_cores):
                if stage3.tc[i, k] > 0:
                    assert wl.can_meet_deadline(
                        i, int(dc.core_type[k]), int(assignment.pstates[k]))

    def test_constraint3_arrival_rates(self, scenario, stage3):
        wl = scenario.workload
        served = stage3.tc.sum(axis=1)
        assert np.all(served <= wl.arrival_rates + 1e-6)

    def test_off_cores_get_nothing(self, scenario, assignment, stage3):
        dc = scenario.datacenter
        off = np.asarray([dc.node_types[t].off_pstate
                          for t in dc.core_type])
        off_mask = assignment.pstates == off
        assert np.all(stage3.tc[:, off_mask] == 0.0)

    def test_objective_matches_tc(self, scenario, stage3):
        wl = scenario.workload
        reward = float(wl.rewards @ stage3.tc.sum(axis=1))
        assert reward == pytest.approx(stage3.reward_rate, rel=1e-9)

    def test_nonnegative(self, stage3):
        assert stage3.tc.min() >= 0.0


class TestClassSymmetry:
    def test_equal_rates_within_class(self, scenario, assignment, stage3):
        """Cores with the same (node type, P-state) get equal rates."""
        dc = scenario.datacenter
        eta = scenario.workload.n_pstates
        class_id = dc.core_type * eta + assignment.pstates
        for c in np.unique(class_id):
            members = np.nonzero(class_id == c)[0]
            col = stage3.tc[:, members]
            np.testing.assert_allclose(col, col[:, :1] * np.ones_like(col))

    def test_class_rates_aggregate(self, scenario, stage3):
        np.testing.assert_allclose(stage3.class_rates.sum(),
                                   stage3.tc.sum(), rtol=1e-9)


class TestEdgeCases:
    def test_all_off_earns_zero(self, scenario):
        dc = scenario.datacenter
        off = np.asarray([dc.node_types[t].off_pstate
                          for t in dc.core_type])
        sol = solve_stage3(dc, scenario.workload, off)
        assert sol.reward_rate == 0.0
        np.testing.assert_allclose(sol.tc, 0.0)

    def test_all_p0_earns_positive(self, scenario):
        dc = scenario.datacenter
        sol = solve_stage3(dc, scenario.workload,
                           np.zeros(dc.n_cores, dtype=int))
        assert sol.reward_rate > 0

    def test_more_cores_more_reward(self, scenario, assignment):
        """All-P0 dominates the assignment's P-state mix in pure reward
        terms (ignoring power, which Stage 3 does not constrain)."""
        dc = scenario.datacenter
        full = solve_stage3(dc, scenario.workload,
                            np.zeros(dc.n_cores, dtype=int))
        assert full.reward_rate >= assignment.reward_rate - 1e-9

    def test_bad_shape_rejected(self, scenario):
        with pytest.raises(ValueError, match="expected"):
            solve_stage3(scenario.datacenter, scenario.workload,
                         np.zeros(3, dtype=int))

    def test_bad_pstate_rejected(self, scenario):
        dc = scenario.datacenter
        ps = np.zeros(dc.n_cores, dtype=int)
        ps[0] = 99
        with pytest.raises(ValueError, match="out of ECS range"):
            solve_stage3(dc, scenario.workload, ps)
