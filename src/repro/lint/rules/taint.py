"""Determinism taint tracking (RL040).

The repo's headline invariant is bit-identical reruns: cache keys,
warm-start digests and serialized payloads must not depend on when, on
which machine, or under which ``PYTHONHASHSEED`` a run happened.  This
analysis tracks *taint atoms* — values derived from a nondeterministic
source — through assignments, containers, calls and returns, and
reports when one reaches a determinism-critical sink.  Every finding
carries the full source → propagation → sink chain in its ``trace``.

Sources (each atom remembers its kind and birth site):

* ``wall-clock`` — ``time.time()``/``perf_counter()``/``datetime.now()``
* ``unseeded-rng`` — ``default_rng()`` with no seed, legacy global
  ``random.*`` / ``numpy.random.*`` draws
* ``set-order`` — ``set``/``frozenset`` literals and constructors
  (iteration order varies with ``PYTHONHASHSEED``)
* ``environment`` — ``os.environ`` / ``os.getenv``
* ``process-id`` — ``os.getpid()``
* ``object-identity`` — ``id()``
* ``uuid`` — ``uuid.uuid1()`` / ``uuid.uuid4()``

Sinks: cache-key/path construction, warm-start digests, canonical
cache payloads, content hashes, and (for ``set-order`` only) plain
``json.dumps`` — the exact shape of the PR-3 cache-split bug, where
``json.dumps(..., default=list)`` serialized a ``set`` in iteration
order and silently split the experiment cache across processes.

Sanitizers: ``sorted()`` / ``min`` / ``max`` / ``sum`` / ``len`` and
``canonical_json()`` erase ``set-order`` (they collapse or canonicalize
iteration order); nothing erases the other kinds.

Interprocedural flow uses two summary channels computed callees-first:
what a function *returns* (with parameter markers the caller
substitutes), and which parameters reach a sink *inside* the callee —
so ``g(tainted)`` is reported at the call site even when the sink is
three frames down.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.lint.base import LintConfig, ProjectRule, register
from repro.lint.callgraph import build_callgraph
from repro.lint.dataflow import FunctionAnalysis
from repro.lint.project import FunctionInfo, Project

__all__ = ["DeterminismTaint"]

_PARAM_PREFIX = "param:"


@dataclass(frozen=True)
class _Atom:
    """One taint fact: a kind plus the steps that carried it here.

    ``kind`` is either a concrete source kind (``wall-clock``, ...) or a
    parameter marker ``param:NAME`` used in summaries; ``sanitized``
    lists kinds a sanitizer erased along this path (only meaningful on
    markers, whose concrete kind is unknown until substitution).
    """

    kind: str
    steps: tuple[str, ...] = ()
    sanitized: frozenset[str] = frozenset()

    @property
    def is_marker(self) -> bool:
        return self.kind.startswith(_PARAM_PREFIX)


def _atom_key(atom: _Atom) -> tuple[str, tuple[str, ...]]:
    return (atom.kind, atom.steps)


@dataclass(frozen=True)
class _SinkRecord:
    """A sink reachable from one parameter of a summarized function."""

    chain: tuple[str, ...]              # steps from function entry to sink
    kinds: frozenset[str] | None        # sink's kind filter (None = all)
    what: str                           # human label of the sink
    sanitized: frozenset[str] = frozenset()


@dataclass
class _Summary:
    """Interprocedural summary of one analyzed function."""

    result_atoms: frozenset[_Atom] = frozenset()
    param_sinks: dict[str, tuple[_SinkRecord, ...]] = field(
        default_factory=dict)


@dataclass(frozen=True)
class _Sink:
    names: tuple[str, ...]              # match fqn == n or fqn.endswith(.n)
    kinds: frozenset[str] | None        # None accepts every kind
    what: str


_ALL_BUT_SET_ORDER = frozenset({
    "wall-clock", "unseeded-rng", "environment", "process-id",
    "object-identity", "uuid",
})

_SINKS: tuple[_Sink, ...] = (
    _Sink(("cache_key",), None, "the experiment cache key"),
    _Sink(("cache_path",), None, "the cache file path"),
    _Sink(("compute_digests",), None, "the warm-start digests"),
    # canonical_json sorts sets, so set-order stops here — but a
    # wall-clock value canonicalized into a cache payload is still a bug
    _Sink(("canonical_json",), _ALL_BUT_SET_ORDER,
          "the canonical cache payload"),
    _Sink(("json.dumps", "json.dump"), frozenset({"set-order"}),
          "JSON output (iteration-order dependent)"),
    _Sink(("hashlib.sha256", "hashlib.sha1", "hashlib.md5",
           "hashlib.blake2b", "hashlib.new"), None, "a content digest"),
)

_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.localtime",
    "time.gmtime", "time.strftime",
})

_DATETIME_TAILS = frozenset({"now", "utcnow", "today", "fromtimestamp"})

_RNG_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng", "random.Random", "random.SystemRandom",
})

_GLOBAL_DRAWS = frozenset({
    "random", "randn", "rand", "randint", "randrange", "shuffle",
    "choice", "choices", "sample", "uniform", "gauss", "normal",
    "permutation", "getrandbits", "standard_normal",
})

#: Calls whose result collapses or canonicalizes iteration order.
_SET_ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "len"})


def _matches(fqn: str, names: tuple[str, ...]) -> bool:
    return any(fqn == n or fqn.endswith("." + n) for n in names)


def _short(fqn: str) -> str:
    return fqn.rsplit(".", 1)[-1]


def _call_source_kind(fqn: str, node: ast.Call) -> str | None:
    """Concrete source kind produced by calling ``fqn``, if any."""
    if fqn in _WALLCLOCK_CALLS:
        return "wall-clock"
    if fqn.startswith("datetime.") and fqn.rsplit(".", 1)[-1] in \
            _DATETIME_TAILS:
        return "wall-clock"
    if fqn in _RNG_CONSTRUCTORS:
        if not node.args and not node.keywords:
            return "unseeded-rng"
        return None                     # a seeded RNG is deterministic
    if fqn.startswith(("random.", "numpy.random.")) and \
            fqn.rsplit(".", 1)[-1] in _GLOBAL_DRAWS:
        return "unseeded-rng"
    if fqn == "os.getenv" or fqn.startswith("os.environ"):
        return "environment"
    if fqn in ("os.getpid", "os.getppid"):
        return "process-id"
    if fqn == "id":
        return "object-identity"
    if fqn in ("uuid.uuid1", "uuid.uuid4"):
        return "uuid"
    return None


class _TaintAnalysis(FunctionAnalysis[frozenset]):
    """One function's pass of the taint interpreter."""

    def __init__(self, project: Project, func: FunctionInfo,
                 config: LintConfig,
                 summaries: dict[str, _Summary],
                 emit: Callable[..., None]) -> None:
        super().__init__(project, func)
        self.config = config
        self.summaries = summaries
        self.emit = emit
        self.param_sink_records: dict[str, list[_SinkRecord]] = {}
        self._sources_allowed = not any(
            frag in func.module.rel_path
            for frag in config.taint_source_allow)

    # -- domain --------------------------------------------------------
    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def param_value(self, name: str,
                    annotation: str | None) -> frozenset | None:
        if name in ("self", "cls"):
            return None
        return frozenset({_Atom(_PARAM_PREFIX + name)})

    def free_name(self, node: ast.Name) -> frozenset | None:
        return self._name_source(node)

    def const_value(self, node: ast.Constant) -> frozenset | None:
        return None

    def attribute_value(self, node: ast.Attribute,
                        base: frozenset | None) -> frozenset | None:
        extra = self._name_source(node)
        if extra is not None:
            return (base or frozenset()) | extra
        return base

    def collection_value(self, node: ast.expr,
                         elements: list[frozenset | None]) -> \
            frozenset | None:
        out: set[_Atom] = set()
        for element in elements:
            out |= element or frozenset()
        if isinstance(node, (ast.Set, ast.SetComp)) and \
                self._sources_allowed:
            out.add(_Atom("set-order", (
                f"{self.location(node)}: set constructed here (iteration "
                f"order varies with PYTHONHASHSEED)",)))
        return frozenset(out) if out else None

    def call_result(self, node: ast.Call, fqn: str | None,
                    args: list[frozenset | None],
                    kwargs: dict[str, frozenset | None],
                    receiver: frozenset | None = None) -> \
            frozenset | None:
        joined: set[_Atom] = set()
        for value in args:
            joined |= value or frozenset()
        for name in sorted(kwargs):
            joined |= kwargs[name] or frozenset()

        if fqn is not None:
            self._check_sink(node, fqn, joined)

        # sanitizers collapse iteration order; their result is safe
        # for set-order regardless of what went in
        if fqn is not None and (fqn in _SET_ORDER_SANITIZERS
                                or _matches(fqn, ("canonical_json",))):
            return self._sanitize(joined | (receiver or frozenset()))

        callee = self.project.function(fqn) if fqn is not None else None
        if callee is not None and fqn in self.summaries:
            return self._apply_summary(node, fqn, callee, args, kwargs)

        out = set(joined)
        if receiver:
            out |= receiver
        if fqn is not None and self._sources_allowed:
            kind = _call_source_kind(fqn, node)
            if kind == "set-order" or fqn in ("set", "frozenset"):
                out.add(_Atom("set-order", (
                    f"{self.location(node)}: set constructed here "
                    f"(iteration order varies with PYTHONHASHSEED)",)))
            elif kind is not None:
                out.add(_Atom(kind, (
                    f"{self.location(node)}: {kind} source "
                    f"{_short(fqn)}()",)))
        return frozenset(out) if out else None

    # -- mechanics -----------------------------------------------------
    def _name_source(self, node: ast.expr) -> frozenset | None:
        if not self._sources_allowed:
            return None
        fqn = self.project.resolve(self.module, node)
        if fqn is not None and (fqn == "os.environ"
                                or fqn.startswith("os.environ.")):
            return frozenset({_Atom("environment", (
                f"{self.location(node)}: environment source "
                f"os.environ",))})
        return None

    @staticmethod
    def _sanitize(value: set[_Atom] | frozenset) -> frozenset | None:
        out: set[_Atom] = set()
        for atom in value:
            if atom.kind == "set-order":
                continue
            if atom.is_marker:
                atom = replace(atom,
                               sanitized=atom.sanitized | {"set-order"})
            out.add(atom)
        return frozenset(out) if out else None

    def _check_sink(self, node: ast.Call, fqn: str,
                    atoms: set[_Atom] | frozenset) -> None:
        for sink in _SINKS:
            if not _matches(fqn, sink.names):
                continue
            step = (f"{self.location(node)}: flows into "
                    f"{_short(fqn)}() -> {sink.what}")
            for atom in sorted(atoms, key=_atom_key):
                if atom.is_marker:
                    pname = atom.kind[len(_PARAM_PREFIX):]
                    self.param_sink_records.setdefault(pname, []).append(
                        _SinkRecord(chain=atom.steps + (step,),
                                    kinds=sink.kinds, what=sink.what,
                                    sanitized=atom.sanitized))
                elif sink.kinds is None or atom.kind in sink.kinds:
                    self.emit(self, node, atom, sink.what,
                              atom.steps + (step,))
            return

    def _apply_summary(self, node: ast.Call, fqn: str,
                       callee: FunctionInfo,
                       args: list[frozenset | None],
                       kwargs: dict[str, frozenset | None]) -> \
            frozenset | None:
        summary = self.summaries[fqn]
        mapping = self.map_arguments(callee, node, args, kwargs)
        hop = (f"{self.location(node)}: passed to {_short(fqn)}()")

        # taint reaching a sink *inside* the callee (possibly deeper)
        for pname in sorted(summary.param_sinks):
            value = mapping.get(pname)
            if not value:
                continue
            for record in summary.param_sinks[pname]:
                for atom in sorted(value, key=_atom_key):
                    blocked = record.sanitized | atom.sanitized
                    if atom.is_marker:
                        outer = atom.kind[len(_PARAM_PREFIX):]
                        self.param_sink_records.setdefault(
                            outer, []).append(_SinkRecord(
                                chain=atom.steps + (hop,) + record.chain,
                                kinds=record.kinds, what=record.what,
                                sanitized=blocked))
                        continue
                    if record.kinds is not None and \
                            atom.kind not in record.kinds:
                        continue
                    if atom.kind in blocked:
                        continue
                    self.emit(self, node, atom, record.what,
                              atom.steps + (hop,) + record.chain)

        # the callee's return value with parameter markers substituted
        ret = (f"{self.location(node)}: returned by {_short(fqn)}()")
        out: set[_Atom] = set()
        for atom in sorted(summary.result_atoms, key=_atom_key):
            if atom.is_marker:
                pname = atom.kind[len(_PARAM_PREFIX):]
                for sub in sorted(mapping.get(pname) or frozenset(),
                                  key=_atom_key):
                    out.add(_Atom(sub.kind,
                                  sub.steps + (hop,) + atom.steps,
                                  sub.sanitized | atom.sanitized))
            else:
                out.add(_Atom(atom.kind, atom.steps + (ret,),
                              atom.sanitized))
        return frozenset(out) if out else None


@register
class DeterminismTaint(ProjectRule):
    code = "RL040"
    name = "determinism-taint"
    category = "determinism"
    description = ("a nondeterministic value (wall clock, unseeded RNG, "
                   "set iteration order, environment, pid, id()) reaches "
                   "a cache key, digest or serialized payload")

    def __init__(self, project: Project, config: LintConfig) -> None:
        super().__init__(project, config)
        self._seen: set[tuple[str, int, int, str, str]] = set()

    def check(self) -> None:
        graph = build_callgraph(self.project)
        summaries: dict[str, _Summary] = {}
        for func in graph.bottom_up(self.project):
            analysis = _TaintAnalysis(self.project, func, self.config,
                                      summaries, self._emit)
            analysis.analyze()
            summaries[func.qualname] = _Summary(
                result_atoms=analysis.joined_returns() or frozenset(),
                # loop bodies interpret twice; keep each record once
                param_sinks={name: tuple(dict.fromkeys(records))
                             for name, records in sorted(
                                 analysis.param_sink_records.items())})

    def _emit(self, analysis: _TaintAnalysis, node: ast.AST,
              atom: _Atom, what: str, trace: tuple[str, ...]) -> None:
        key = (analysis.module.rel_path, getattr(node, "lineno", 1),
               getattr(node, "col_offset", 0), atom.kind, what)
        if key in self._seen:
            return
        self._seen.add(key)
        message = (f"nondeterministic {atom.kind} value reaches "
                   f"{what}; runs will disagree across processes "
                   f"or reruns")
        self.report(analysis.module, node, message, trace=trace)
