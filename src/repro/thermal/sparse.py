"""Zonal (block-sparse) cross-interference construction for large rooms.

Appendix B's LP-based :func:`~repro.thermal.interference.generate_alpha`
produces a fully dense ``alpha`` and solves an LP with ``n_units**2``
variables — fine for the paper's 153-unit room, intractable at the
ROADMAP's 100x target (15k nodes).  Real rooms are not dense either:
Figure 1's hot-aisle containment means a node's exhaust overwhelmingly
reaches the CRAC unit facing its own hot aisle, with only weak
recirculation across aisles (Van Damme et al. model exactly this as
zonal blocks with boundary coupling).

This module builds that structure directly from the room layout:

* :func:`zone_partition` groups compute nodes by the hot aisle they
  exhaust into (CRAC unit *i* faces hot aisle *i*, Appendix B);
* :func:`zonal_block_alpha` assembles a flow-conserving CSR ``alpha``
  where a ``1 - coupling`` share of every unit's exhaust mixes
  uniformly (flow-weighted) within its own zone and a ``coupling``
  share leaks across zone boundaries;
* :func:`attach_zonal_thermal` wires the result into a
  :class:`~repro.thermal.heatflow.HeatFlowModel` (sparse backend).

Both component matrices are row-stochastic and flow-conserving, so any
convex combination is too — the :class:`HeatFlowModel` validation
accepts the result without rebalancing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.datacenter.builder import DataCenter
from repro.datacenter.layout import Layout
from repro.thermal.heatflow import HeatFlowModel

__all__ = ["Zone", "zone_partition", "zonal_block_alpha",
           "attach_zonal_thermal", "DEFAULT_COUPLING"]

#: Default cross-zone leakage share of every unit's exhaust.
DEFAULT_COUPLING: float = 0.05


@dataclass(frozen=True)
class Zone:
    """One hot-aisle zone: a CRAC unit plus the nodes exhausting into it.

    Attributes
    ----------
    index:
        Zone id; equals the index of the CRAC unit facing the aisle.
    crac:
        CRAC unit index (same as ``index``; kept for readability).
    nodes:
        Node indices (0-based over nodes, *not* unit indices) assigned
        to this aisle, ascending.
    """

    index: int
    crac: int
    nodes: np.ndarray

    def units(self, n_crac: int) -> np.ndarray:
        """Unit indices (CRACs-first order) of the zone's members."""
        return np.concatenate([[self.crac], n_crac + self.nodes])


def zone_partition(layout: Layout) -> list[Zone]:
    """Partition nodes into one zone per hot aisle / CRAC unit.

    Every CRAC gets a zone even if no node exhausts into its aisle
    (possible for tiny rooms with more CRACs than racks).
    """
    zones = []
    for z in range(layout.n_crac):
        nodes = np.nonzero(layout.hot_aisle_of_node == z)[0]
        zones.append(Zone(index=z, crac=z, nodes=nodes))
    return zones


def zonal_block_alpha(datacenter: DataCenter,
                      coupling: float = DEFAULT_COUPLING) -> sp.csr_matrix:
    """Flow-conserving block-sparse ``alpha`` from the hot-aisle layout.

    ``alpha[i, j]`` is the share of unit *i*'s exhaust reaching unit
    *j*'s inlet (Section IV).  The matrix is the convex combination

    ``alpha = (1 - coupling) * B + coupling * C``

    where ``B`` mixes each unit's exhaust uniformly (flow-weighted)
    within its own zone — ``B[i, j] = F_j / F(zone)`` for *i*, *j* in
    the same zone — and ``C`` carries the cross-zone leakage: node
    exhaust that fails containment is re-ingested by the same node
    (self-loop), while CRAC supply leaking under the floor splits
    evenly between the two neighboring CRAC units (a ring, matching
    the alternating-aisle geometry of Figure 1).

    Both ``B`` and ``C`` are row-stochastic, and both conserve flow
    (``alpha.T @ F = F``): ``B`` by construction within each zone, and
    ``C`` because self-loops are trivially conserving and the CRAC
    ring is conserving when CRAC flows are (near-)equal — which the
    builder's default homogeneous split guarantees.  Unequal CRAC
    flows with ``coupling > 0`` are rejected.

    Returns CSR with ``O(sum of squared zone sizes)`` non-zeros — for
    the symmetric rooms built by :func:`build_datacenter` that is
    ``n_units**2 / n_crac``, e.g. ~0.3% density at 300 zones.
    """
    if not 0.0 <= coupling < 1.0:
        raise ValueError(f"coupling must be in [0, 1), got {coupling}")
    flows = datacenter.unit_flows
    n_crac = datacenter.n_crac
    n_units = datacenter.n_units
    zones = zone_partition(datacenter.layout)
    crac_flows = flows[:n_crac]
    if coupling > 0.0 and n_crac > 1 and not np.allclose(
            crac_flows, crac_flows[0], rtol=1e-6):
        raise ValueError(
            "zonal_block_alpha requires (near-)equal CRAC flows when "
            "coupling > 0: the cross-zone CRAC ring only conserves flow "
            f"for a homogeneous split, got {crac_flows}")

    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []

    # In-zone uniform mixing block: (1 - coupling) * F_j / F(zone).
    for zone in zones:
        members = zone.units(n_crac)
        share = (1.0 - coupling) * flows[members] / flows[members].sum()
        k = members.size
        rows.append(np.repeat(members, k))
        cols.append(np.tile(members, k))
        vals.append(np.tile(share, k))

    if coupling > 0.0:
        # Node leakage: self-loop (exhaust re-ingested at the same rack).
        node_units = np.arange(n_crac, n_units)
        rows.append(node_units)
        cols.append(node_units)
        vals.append(np.full(node_units.size, coupling))
        # CRAC leakage: even split to the two ring neighbors (or a
        # self-loop for a single-CRAC room).
        cracs = np.arange(n_crac)
        if n_crac == 1:
            rows.append(cracs)
            cols.append(cracs)
            vals.append(np.full(1, coupling))
        else:
            for shift in (-1, 1):
                rows.append(cracs)
                cols.append((cracs + shift) % n_crac)
                vals.append(np.full(n_crac, coupling / 2.0))

    alpha = sp.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n_units, n_units)).tocsr()
    alpha.sum_duplicates()
    return alpha


def attach_zonal_thermal(datacenter: DataCenter,
                         coupling: float = DEFAULT_COUPLING,
                         backend: str = "auto") -> HeatFlowModel:
    """Build a zonal block alpha for ``datacenter`` and attach the model.

    Convenience wrapper mirroring
    :func:`~repro.thermal.interference.attach_thermal_model` but scaling
    to 100x rooms: the alpha is CSR and the model defaults to the
    sparse backend for large rooms (``backend="auto"``).
    """
    alpha = zonal_block_alpha(datacenter, coupling=coupling)
    model = HeatFlowModel(alpha, datacenter.unit_flows, datacenter.n_crac,
                          backend=backend)
    datacenter.thermal = model
    return model
