"""Piecewise-linear function machinery.

The heart of the paper's Stage 1 relaxation is the family of
piecewise-linear (PWL) reward-rate functions:

* ``RR_{i,j}(p)`` — reward rate of task type *i* on a core of type *j* as
  a function of assigned core power *p* (Section V.B.2, Figures 3 and 4);
* ``ARR_j(p)``   — the aggregate reward rate of a core of type *j*
  (Figure 5), which must be made *concave* by ignoring "bad" P-states so
  that the Stage 1 optimization stays an LP.

This module provides a small, vectorized :class:`PiecewiseLinear` type
supporting evaluation, averaging, the upper concave majorant, and the
segment decomposition used to express concave-PWL maximization as a
linear program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["PiecewiseLinear", "Segment", "concave_majorant_points"]


@dataclass(frozen=True)
class Segment:
    """One linear piece of a PWL function.

    Attributes
    ----------
    length:
        Extent of the piece along the x axis (>= 0).
    slope:
        Slope of the piece (reward per unit power for ARR functions).
    """

    length: float
    slope: float


class PiecewiseLinear:
    """A continuous piecewise-linear function defined by breakpoints.

    The function is defined on ``[x[0], x[-1]]``; evaluation outside the
    domain clamps to the boundary values (a core cannot consume less than
    the off-state power or more than P-state 0 power).

    Parameters
    ----------
    x:
        Strictly increasing breakpoint abscissae.
    y:
        Function values at the breakpoints, same length as ``x``.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: Sequence[float], y: Sequence[float]):
        x_arr = np.asarray(x, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        if x_arr.ndim != 1 or y_arr.ndim != 1:
            raise ValueError("breakpoints must be one-dimensional")
        if x_arr.size != y_arr.size:
            raise ValueError(
                f"x and y must have equal length, got {x_arr.size} and {y_arr.size}")
        if x_arr.size < 2:
            raise ValueError("a piecewise-linear function needs >= 2 breakpoints")
        if not np.all(np.diff(x_arr) > 0):
            raise ValueError("breakpoint abscissae must be strictly increasing")
        self.x = x_arr
        self.y = y_arr

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def through_points(cls, points: Iterable[tuple[float, float]]) -> "PiecewiseLinear":
        """Build a PWL function through unordered ``(x, y)`` points.

        Points are sorted by ``x``.  Duplicate abscissae are rejected
        because they would make the function multivalued.
        """
        pts = sorted(points)
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        if len(set(xs)) != len(xs):
            raise ValueError(f"duplicate abscissae in points: {xs}")
        return cls(xs, ys)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def __call__(self, p):
        """Evaluate the function at scalar or array ``p`` (clamped)."""
        return np.interp(p, self.x, self.y)

    @property
    def domain(self) -> tuple[float, float]:
        """The ``(xmin, xmax)`` interval the function is defined on."""
        return float(self.x[0]), float(self.x[-1])

    def slopes(self) -> np.ndarray:
        """Slope of each of the ``len(x) - 1`` pieces."""
        return np.diff(self.y) / np.diff(self.x)

    def segments(self) -> list[Segment]:
        """Decompose into :class:`Segment` pieces, left to right."""
        lengths = np.diff(self.x)
        slopes = self.slopes()
        return [Segment(float(l), float(s)) for l, s in zip(lengths, slopes)]

    def is_concave(self, tol: float = 1e-9) -> bool:
        """True if slopes are non-increasing left to right."""
        s = self.slopes()
        return bool(np.all(np.diff(s) <= tol))

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def scale(self, factor: float) -> "PiecewiseLinear":
        """Return the function multiplied by a scalar."""
        return PiecewiseLinear(self.x, self.y * factor)

    @staticmethod
    def average(functions: Sequence["PiecewiseLinear"]) -> "PiecewiseLinear":
        """Pointwise average of PWL functions (used to build ARR_j).

        The result's breakpoints are the union of all inputs'
        breakpoints, so the average is exact, not sampled.
        """
        if not functions:
            raise ValueError("cannot average zero functions")
        grid = np.unique(np.concatenate([f.x for f in functions]))
        total = np.zeros_like(grid)
        for f in functions:
            total += f(grid)
        return PiecewiseLinear(grid, total / len(functions))

    def concave_majorant(self) -> "PiecewiseLinear":
        """Upper concave envelope of the breakpoints.

        This is exactly the paper's "ignore the bad P-states" operation
        (Section V.B.2, Figure 5): breakpoints that lie strictly below a
        chord between two other breakpoints are dropped, producing the
        smallest concave PWL function that dominates this one at every
        breakpoint.
        """
        hx, hy = concave_majorant_points(self.x, self.y)
        return PiecewiseLinear(hx, hy)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, PiecewiseLinear):
            return NotImplemented
        return (self.x.shape == other.x.shape
                and np.allclose(self.x, other.x)
                and np.allclose(self.y, other.y))

    def __hash__(self):  # pragma: no cover - dataclass-like identity
        return hash((self.x.tobytes(), self.y.tobytes()))

    def __repr__(self) -> str:
        pts = ", ".join(f"({xi:g}, {yi:g})" for xi, yi in zip(self.x, self.y))
        return f"PiecewiseLinear([{pts}])"


def concave_majorant_points(x: np.ndarray, y: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Upper concave hull of points already sorted by increasing ``x``.

    A standard monotone-chain sweep: a breakpoint is kept only while the
    sequence of slopes remains non-increasing.  Runs in O(n).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    keep: list[int] = []
    for i in range(x.size):
        while len(keep) >= 2:
            i1, i2 = keep[-2], keep[-1]
            # cross product test: is point i above the line (i1 -> i2)?
            lhs = (y[i2] - y[i1]) * (x[i] - x[i1])
            rhs = (y[i] - y[i1]) * (x[i2] - x[i1])
            if lhs >= rhs:  # i2 keeps the chain concave
                break
            keep.pop()
        keep.append(i)
    idx = np.asarray(keep)
    return x[idx], y[idx]
