"""Seeded simulated-annealing backend over (outlets, P-states).

A classic single-chain anneal in the joint space of
:class:`repro.solvers.common.Candidate`: start from the best of the
deterministic constructive seeds, propose one neighborhood move per
iteration (:func:`repro.solvers.common.mutate`), always accept
improvements, accept regressions with probability
``exp(delta / temperature)`` under a geometric cooling schedule sized so
the temperature decays by three decades across the evaluation budget.

Determinism contract: all randomness flows from one
``np.random.default_rng(options.seed)`` generator and the budget is
``options.max_evals`` evaluations — no wall clock anywhere — so the
result is a pure function of the request and bit-identical across
processes and ``--jobs`` values.  Dispatch goes through
:func:`repro.core.api._solve_generic`, which also gives the backend the
standard request-level warm-start replay.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.api import (SolveOutcome, SolveRequest, SolveResult,
                            _solve_generic)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate as obs_annotate
from repro.obs.trace import span as obs_span
from repro.solvers import register_solver
from repro.solvers.common import (Candidate, CandidateEvaluator, mutate,
                                  outcome_from_best, seed_candidates)

__all__ = ["solve_annealing"]

#: Fraction of the incumbent reward used as the starting temperature.
#: Single-move reward deltas are a few percent of the total, so this
#: starts the chain accepting most small regressions without devolving
#: into a random walk.
_T0_FRACTION = 0.02

#: Total temperature decay across the budget (three decades).
_COOLING_SPAN = 1e-3


def _run_annealing(request: SolveRequest) -> SolveOutcome:
    opt = request.options
    evaluator = CandidateEvaluator(request.datacenter, request.workload,
                                   request.p_const)
    rng = np.random.default_rng(opt.seed)
    with obs_span("annealing", n_nodes=request.datacenter.n_nodes,
                  seed=opt.seed, max_evals=opt.max_evals):
        best: Candidate | None = None
        for cand in seed_candidates(evaluator):
            if evaluator.evaluations >= opt.max_evals:
                break
            evaluator.evaluate(cand)
            if best is None or cand.reward > best.reward:
                best = cand
        assert best is not None  # max_evals >= 1 is enforced by options
        current = best
        temperature = _T0_FRACTION * max(best.reward, 1.0)
        remaining = max(opt.max_evals - evaluator.evaluations, 1)
        alpha = _COOLING_SPAN ** (1.0 / remaining)
        while evaluator.evaluations < opt.max_evals:
            cand = mutate(current, evaluator, rng)
            evaluator.evaluate(cand)
            delta = cand.reward - current.reward
            if delta >= 0.0 or rng.random() < math.exp(
                    delta / max(temperature, 1e-12)):
                current = cand
            if cand.reward > best.reward:
                best = cand
            temperature *= alpha
        obs_annotate(evaluations=evaluator.evaluations,
                     best_reward=best.reward)
    obs_metrics.counter("solver.evals.annealing").inc(evaluator.evaluations)
    return outcome_from_best("annealing", evaluator, best, opt.seed)


def solve_annealing(request: SolveRequest) -> SolveResult:
    """Simulated-annealing backend (``SolveOptions.backend="annealing"``)."""
    return _solve_generic(request, "annealing", _run_annealing)


register_solver("annealing", solve_annealing, replace=True)
