"""Task-type-dependent core power (the Section III.C model extension).

The paper assumes core power depends only on core type and P-state, but
notes the model extension explicitly: "In some cases, the power
consumption of a core is also a function of the task type that it
executes.  For example, I/O intensive tasks usually consume less power
than other tasks [23] ... A third index would have to be added to pi to
represent the effect of a task type on the power consumption of a core."

:class:`TaskPowerModel` adds that third index multiplicatively: a core
of type *j* in P-state *k* draws

* ``pi[j,k] * factor_i`` while executing a task of type *i* (I/O-bound
  types have ``factor < 1``, AVX-style compute-bound types ``> 1``), and
* ``pi[j,k] * idle_fraction`` while idle,

so the *time-averaged* power of a core serving desired rates
``TC(i, k)`` is linear in the rates — which is what lets
:func:`repro.core.stage3_power.solve_stage3_power_aware` keep the power
and thermal constraints as LP rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # imports would be circular at runtime: this module is
    # re-exported from repro.power, which repro.datacenter and
    # repro.workload both depend on
    from repro.datacenter.builder import DataCenter
    from repro.workload.tasktypes import Workload

__all__ = ["TaskPowerModel", "sample_task_power_model",
           "expected_node_power"]


@dataclass(frozen=True)
class TaskPowerModel:
    """Multiplicative task-type power factors.

    Attributes
    ----------
    factors:
        Per-task-type active-power multiplier on the nominal P-state
        power (1.0 = the paper's base model).
    idle_fraction:
        Idle draw as a fraction of the nominal P-state power; must not
        exceed any active factor (running a task cannot be cheaper than
        idling at the same P-state).
    """

    factors: np.ndarray
    idle_fraction: float = 0.6

    def __post_init__(self) -> None:
        f = np.asarray(self.factors, dtype=float)
        object.__setattr__(self, "factors", f)
        if f.ndim != 1 or np.any(f <= 0):
            raise ValueError("factors must be a 1-D positive array")
        if not 0.0 <= self.idle_fraction <= float(f.min()):
            raise ValueError(
                f"idle_fraction ({self.idle_fraction}) must be in "
                f"[0, min(factors)={f.min():.3f}]")

    @property
    def n_task_types(self) -> int:
        return int(self.factors.size)

    def active_power(self, nominal_kw: float, task_type: int) -> float:
        """Draw while executing ``task_type`` at a nominal P-state power."""
        return nominal_kw * float(self.factors[task_type])

    def idle_power(self, nominal_kw: float) -> float:
        """Draw while idle at a nominal P-state power."""
        return nominal_kw * self.idle_fraction


def sample_task_power_model(workload: "Workload", rng: np.random.Generator,
                            spread: float = 0.2,
                            idle_fraction: float = 0.6) -> TaskPowerModel:
    """Sample factors uniformly in ``[1 - spread, 1 + spread]``.

    A symmetric spread keeps the paper's nominal powers as the *mean*
    model while admitting both I/O-light and compute-heavy types.
    """
    if not 0.0 <= spread < 1.0:
        raise ValueError(f"spread must be in [0, 1), got {spread}")
    factors = rng.uniform(1.0 - spread, 1.0 + spread,
                          size=workload.n_task_types)
    idle = min(idle_fraction, float(factors.min()))
    return TaskPowerModel(factors=factors, idle_fraction=idle)


def expected_node_power(datacenter: "DataCenter", workload: "Workload",
                        pstates: np.ndarray, tc: np.ndarray,
                        model: TaskPowerModel) -> np.ndarray:
    """Time-averaged Eq. 1 node powers under task-dependent draw.

    For each core: busy share on type *i* is ``TC(i,k) / ECS(i, CT_k,
    PS_k)``; the remainder idles.  Returns one power per node, kW.
    """
    pstates = np.asarray(pstates, dtype=int)
    tc = np.asarray(tc, dtype=float)
    if tc.shape != (workload.n_task_types, datacenter.n_cores):
        raise ValueError("tc shape mismatch")
    if model.n_task_types != workload.n_task_types:
        raise ValueError("task power model dimension mismatch")
    nominal = np.empty(datacenter.n_cores)
    for t, spec in enumerate(datacenter.node_types):
        mask = datacenter.core_type == t
        table = np.asarray(spec.pstate_power_kw)
        nominal[mask] = table[pstates[mask]]
    ecs = workload.ecs[:, datacenter.core_type, pstates]   # (T, NCORES)
    with np.errstate(divide="ignore", invalid="ignore"):
        busy = np.where(ecs > 0, tc / np.maximum(ecs, 1e-300), 0.0)
    if np.any(tc[ecs <= 0] > 0):
        raise ValueError("tc assigns rate to a core that cannot run the type")
    total_busy = busy.sum(axis=0)
    if np.any(total_busy > 1.0 + 1e-6):
        raise ValueError("tc over-subscribes a core (utilization > 1)")
    active_kw = (busy * model.factors[:, None]).sum(axis=0) * nominal
    idle_kw = (1.0 - np.minimum(total_busy, 1.0)) \
        * model.idle_fraction * nominal
    core_kw = active_kw + idle_kw
    sums = np.bincount(datacenter.core_node, weights=core_kw,
                       minlength=datacenter.n_nodes)
    return datacenter.node_base_power + sums
