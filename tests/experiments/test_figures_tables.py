"""Tests for repro.experiments.figures / .tables — paper artifacts."""

import numpy as np
import pytest

from repro.experiments.figures import (fig3_rr_function,
                                       fig4_rr_function_with_deadline,
                                       fig5_arr_functions, fig6_data,
                                       format_fig6)
from repro.experiments.config import ScenarioConfig
from repro.experiments.tables import (format_table1, format_table2,
                                      pstate_static_percentages, table1_rows,
                                      table2_rows)


class TestFigureExamples:
    def test_fig3_exact(self):
        f = fig3_rr_function()
        np.testing.assert_allclose(f.x, [0.0, 0.05, 0.10, 0.15])
        np.testing.assert_allclose(f.y, [0.0, 0.5, 0.9, 1.2])

    def test_fig4_exact(self):
        f = fig4_rr_function_with_deadline()
        np.testing.assert_allclose(f.y, [0.0, 0.0, 0.9, 1.2])

    def test_fig5_hull(self):
        arr = fig5_arr_functions()
        np.testing.assert_allclose(arr.concave.x, [0.0, 0.10, 0.15])
        np.testing.assert_allclose(arr.concave.y, [0.0, 0.9, 1.2])

    def test_fig5_bad_pstate_ratio_story(self):
        """P-state 2 is 'bad': its reward/power ratio (0) is below
        P-state 1's (9) — the paper's definition."""
        arr = fig5_arr_functions()
        raw = arr.raw
        assert raw(0.05) / 0.05 == pytest.approx(0.0)
        assert raw(0.10) / 0.10 == pytest.approx(9.0)


class TestFig6Harness:
    def test_small_fig6_run(self):
        cfgs = [ScenarioConfig(name="mini1", n_nodes=15),
                ScenarioConfig(name="mini3", n_nodes=15,
                               static_fraction=0.2, v_prop=0.3)]
        data = fig6_data(n_runs=2, base_seed=30, configs=cfgs)
        assert set(data) == {"mini1", "mini3"}
        text = format_fig6(data)
        assert "psi=25" in text and "best" in text
        assert "mini1" in text


class TestTables:
    def test_table1_row_values(self):
        rows = table1_rows()
        assert rows[0]["base_power_kw"] == pytest.approx(0.353)
        assert rows[1]["base_power_kw"] == pytest.approx(0.418)
        assert rows[0]["p0_power_kw"] == pytest.approx(0.01375)
        assert rows[1]["p0_power_kw"] == pytest.approx(0.01625)
        assert rows[0]["flow_m3s"] == pytest.approx(0.07)
        assert rows[1]["flow_m3s"] == pytest.approx(0.0828)

    def test_table1_formats(self):
        text = format_table1()
        assert "Table I" in text
        assert "0.353" in text and "0.418" in text
        assert "2500" in text and "2666" in text

    def test_table2_rows(self):
        rows = table2_rows()
        assert [r["label"] for r in rows] == list("ABCDE")
        assert rows[4]["ec_min"] == pytest.approx(0.80)

    def test_table2_formats(self):
        text = format_table2()
        assert "Table II" in text and "80-90%" in text

    def test_static_percentages_fig6_annotation(self):
        pct = pstate_static_percentages(0.3)
        for name, fracs in pct.items():
            assert fracs[0] == pytest.approx(0.3)
            # slower P-states are more static-dominated
            assert np.all(np.diff(fracs) > 0)
            assert np.all(fracs < 1.0)

    def test_static_percentages_scale_with_input(self):
        p20 = pstate_static_percentages(0.2)
        p30 = pstate_static_percentages(0.3)
        for name in p20:
            assert np.all(p20[name] < p30[name])
