"""Transient-physics property tier (hypothesis).

The MPC planner (:mod:`repro.control.mpc`) trusts
:func:`~repro.thermal.transient.simulate_transient` as its prediction
model, so this suite pins the physics the controller leans on, over
randomized operating points rather than fixed examples:

* the max-norm error to the steady-state fixed point never increases
  along a trajectory (first-order dynamics with a row-stochastic mixing
  matrix are a sup-norm contraction);
* :func:`~repro.thermal.transient.time_to_steady_state` is consistent
  with the trajectory the integrator actually produces;
* refining ``dt`` converges (halving the step moves the terminal state
  less than the step it refines);
* the sparse thermal backend predicts the same trajectories as the
  dense oracle to the backend-agreement tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.thermal.transient import simulate_transient, time_to_steady_state

RELAXED = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.function_scoped_fixture])

#: Sparse/dense backend agreement (same policy as test_sparse_equivalence).
ATOL = 1e-9


def _draw_point(data, dc):
    """A random operating point + start state for ``small_dc``."""
    model = dc.thermal
    t_crac = data.draw(hnp.arrays(float, dc.n_crac,
                                  elements=st.floats(12.0, 22.0)))
    p = data.draw(hnp.arrays(float, dc.n_nodes,
                             elements=st.floats(0.0, 1.5)))
    p_start = data.draw(hnp.arrays(float, dc.n_nodes,
                                   elements=st.floats(0.0, 1.5)))
    t_start = data.draw(hnp.arrays(float, dc.n_crac,
                                   elements=st.floats(12.0, 22.0)))
    start = model.steady_state(t_start, p_start).t_out
    return model, t_crac, p, start


class TestMonotoneConvergence:
    @given(data=st.data())
    @RELAXED
    def test_max_norm_error_never_increases(self, small_dc, data):
        """sup-norm contraction: each step moves no farther from the
        fixed point, from any steady start toward any new point."""
        model, t_crac, p, start = _draw_point(data, small_dc)
        target = model.steady_state(t_crac, p).t_out
        res = simulate_transient(model, t_crac, p, start,
                                 duration_s=600.0, tau_s=120.0, dt_s=5.0)
        err = np.abs(res.t_out - target[None, :]).max(axis=1)
        assert np.all(np.diff(err) <= 1e-9)

    @given(data=st.data())
    @RELAXED
    def test_error_decays_toward_zero(self, small_dc, data):
        """Long horizons end close to the steady state (stability)."""
        model, t_crac, p, start = _draw_point(data, small_dc)
        target = model.steady_state(t_crac, p).t_out
        res = simulate_transient(model, t_crac, p, start,
                                 duration_s=1800.0, tau_s=120.0, dt_s=5.0)
        assert np.abs(res.t_out[-1] - target).max() < 0.05


class TestTimeToSteadyStateConsistency:
    @given(data=st.data(), tol=st.floats(0.05, 0.5))
    @RELAXED
    def test_settled_at_reported_time_not_before(self, small_dc, data, tol):
        """The reported settling time is the first trajectory sample
        within tolerance — the integrator and the stopwatch agree."""
        model, t_crac, p, start = _draw_point(data, small_dc)
        tts = time_to_steady_state(model, t_crac, p, start,
                                   tolerance_c=tol, tau_s=120.0, dt_s=2.0)
        assert np.isfinite(tts)
        target = model.steady_state(t_crac, p).t_out
        if tts == 0.0:
            effective = start.copy()
            effective[:model.n_crac] = t_crac
            assert np.abs(effective - target).max() <= tol
            return
        res = simulate_transient(model, t_crac, p, start,
                                 duration_s=tts, tau_s=120.0, dt_s=2.0)
        err = np.abs(res.t_out - target[None, :]).max(axis=1)
        assert err[-1] <= tol + 1e-12
        assert np.all(err[:-1] > tol)

    @given(data=st.data())
    @RELAXED
    def test_fixed_point_settles_in_zero_seconds(self, small_dc, data):
        """Regression: starting *at* the steady state returns 0.0 even
        with a degenerate ``max_s`` (no trajectory is built at all)."""
        model, t_crac, p, _ = _draw_point(data, small_dc)
        ss = model.steady_state(t_crac, p).t_out
        assert time_to_steady_state(model, t_crac, p, ss) == 0.0
        assert time_to_steady_state(model, t_crac, p, ss, max_s=0.0) == 0.0


class TestStepRefinement:
    @given(data=st.data())
    @RELAXED
    def test_halving_dt_converges(self, small_dc, data):
        """Terminal states form a Cauchy-like sequence under dt halving:
        the 2->1 gap bounds the 1->0.5 gap (first-order convergence)."""
        model, t_crac, p, start = _draw_point(data, small_dc)
        finals = {}
        for dt in (8.0, 4.0, 2.0):
            res = simulate_transient(model, t_crac, p, start,
                                     duration_s=240.0, tau_s=120.0, dt_s=dt)
            finals[dt] = res.t_out[-1]
        gap_coarse = np.abs(finals[8.0] - finals[4.0]).max()
        gap_fine = np.abs(finals[4.0] - finals[2.0]).max()
        assert gap_fine <= gap_coarse + 1e-12
        # and the whole ladder is already tight in absolute terms
        assert gap_fine < 0.1

    @given(data=st.data())
    @RELAXED
    def test_refinement_approaches_exact_endpoint(self, small_dc, data):
        """The dt ladder converges toward the analytic per-step
        exponential solution (finest step taken as reference)."""
        model, t_crac, p, start = _draw_point(data, small_dc)
        ref = simulate_transient(model, t_crac, p, start, duration_s=240.0,
                                 tau_s=120.0, dt_s=1.0).t_out[-1]
        errs = [np.abs(simulate_transient(
            model, t_crac, p, start, duration_s=240.0, tau_s=120.0,
            dt_s=dt).t_out[-1] - ref).max() for dt in (16.0, 8.0, 4.0)]
        assert errs[2] <= errs[1] + 1e-12 <= errs[0] + 2e-12


class TestSparseBackendAgreement:
    @given(data=st.data())
    @RELAXED
    def test_trajectories_match_dense(self, small_dc, data):
        """The MPC prediction model is backend-independent: sparse and
        dense integrate to the same trajectory within 1e-9."""
        model, t_crac, p, start = _draw_point(data, small_dc)
        sparse = model.with_backend("sparse")
        dense_res = simulate_transient(model, t_crac, p, start,
                                       duration_s=300.0, dt_s=5.0)
        sparse_res = simulate_transient(sparse, t_crac, p, start,
                                        duration_s=300.0, dt_s=5.0)
        np.testing.assert_allclose(sparse_res.t_out, dense_res.t_out,
                                   atol=ATOL)
        np.testing.assert_allclose(sparse_res.t_in, dense_res.t_in,
                                   atol=ATOL)

    @given(data=st.data())
    @RELAXED
    def test_settling_times_match_dense(self, small_dc, data):
        model, t_crac, p, start = _draw_point(data, small_dc)
        sparse = model.with_backend("sparse")
        dense_tts = time_to_steady_state(model, t_crac, p, start, dt_s=2.0)
        sparse_tts = time_to_steady_state(sparse, t_crac, p, start, dt_s=2.0)
        assert sparse_tts == pytest.approx(dense_tts, abs=2.0)
