"""Project model: module graph and symbol table for whole-program rules.

The per-file rules (:mod:`repro.lint.rules`) see one ``ast.Module`` at a
time; the dataflow analyses (RL03x/RL04x/RL05x) need to see *across*
files — a taint source in ``repro.serve.service`` can reach a cache-key
sink in ``repro.experiments.engine`` through three call hops.  This
module parses every linted file once into a :class:`Project`:

* dotted module names derived from the package layout (``src/repro/
  units.py`` → ``repro.units``; a loose file is its own stem),
* per-module import tables (``import x as y`` / ``from m import n``),
* a symbol table of every module-level function, method and class
  (dataclass fields included, with their source line — RL050 anchors
  findings there),
* :meth:`Project.resolve`, the conservative name resolver every
  analysis shares: a dotted call target is resolved through the import
  tables to a fully-qualified name, falling back to the local module
  namespace and finally to the raw dotted text (builtins stay bare:
  ``sorted``, ``int``).

Everything is built eagerly and deterministically (files in sorted
order, dicts keyed by qualified name) so analysis output is stable
across runs and ``PYTHONHASHSEED`` values — the linter holds itself to
the invariant it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Protocol

__all__ = ["FieldInfo", "ClassInfo", "FunctionInfo", "ModuleInfo",
           "Project", "build_project", "dotted_name", "imported_modules",
           "imported_names", "module_name_for"]


# -- AST naming helpers (rules.common re-exports these; they live here
# so the project model does not import the rules package) --------------

def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def imported_modules(tree: ast.Module) -> dict[str, str]:
    """``local alias -> module`` for every ``import`` in the file."""
    out: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out[alias.asname or alias.name.split(".")[0]] = alias.name
    return out


def imported_names(tree: ast.Module) -> dict[str, tuple[str, str]]:
    """``local alias -> (module, name)`` for every ``from m import n``."""
    out: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                out[alias.asname or alias.name] = (node.module, alias.name)
    return out


class SourceFile(Protocol):
    """What :func:`build_project` needs per file (FileContext satisfies it)."""

    path: Path
    rel_path: str
    source: str
    lines: list[str]
    tree: ast.Module


def module_name_for(path: Path) -> str:
    """Dotted module name implied by the package layout around ``path``.

    Walks up while the parent directory holds an ``__init__.py``; a file
    outside any package is addressed by its bare stem (fixtures, scripts).
    """
    parts: list[str] = []
    if path.name == "__init__.py":
        parts.append(path.parent.name)
        node = path.parent.parent
    else:
        parts.append(path.stem)
        node = path.parent
    while (node / "__init__.py").is_file():
        parts.append(node.name)
        node = node.parent
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field (an annotated class-body assignment)."""

    name: str
    lineno: int
    annotation: str | None


@dataclass
class ClassInfo:
    """A class definition and its dataclass-style fields."""

    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    fields: list[FieldInfo] = field(default_factory=list)


@dataclass
class FunctionInfo:
    """A function or method definition with its parameter shapes."""

    qualname: str
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: list[str] = field(default_factory=list)
    annotations: dict[str, str | None] = field(default_factory=dict)
    is_method: bool = False


@dataclass
class ModuleInfo:
    """One parsed source file plus its local symbol and import tables."""

    name: str
    path: Path
    rel_path: str
    source: str
    lines: list[str]
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


def _annotation_text(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value           # string annotation ("SolveState")
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):    # pragma: no cover
        return None


def _collect_function(module: ModuleInfo,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      owner: str | None) -> None:
    local = node.name if owner is None else f"{owner}.{node.name}"
    qualname = f"{module.name}.{local}"
    args = node.args
    params = [a.arg for a in (*args.posonlyargs, *args.args,
                              *args.kwonlyargs)]
    annotations = {a.arg: _annotation_text(a.annotation)
                   for a in (*args.posonlyargs, *args.args,
                             *args.kwonlyargs)}
    if args.vararg is not None:
        params.append(args.vararg.arg)
        annotations[args.vararg.arg] = None
    if args.kwarg is not None:
        params.append(args.kwarg.arg)
        annotations[args.kwarg.arg] = None
    module.functions[qualname] = FunctionInfo(
        qualname=qualname, module=module, node=node, params=params,
        annotations=annotations, is_method=owner is not None)


def _collect_class(module: ModuleInfo, node: ast.ClassDef) -> None:
    qualname = f"{module.name}.{node.name}"
    info = ClassInfo(qualname=qualname, module=module, node=node)
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                          ast.Name):
            info.fields.append(FieldInfo(
                name=stmt.target.id, lineno=stmt.lineno,
                annotation=_annotation_text(stmt.annotation)))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _collect_function(module, stmt, node.name)
    module.classes[qualname] = info


#: Names treated as builtins by :meth:`Project.resolve` — unresolved
#: bare names fall back to themselves, so this set only needs the ones
#: analyses key behavior on.
_KNOWN_BUILTINS = frozenset({
    "sorted", "list", "tuple", "set", "frozenset", "dict", "str", "repr",
    "int", "float", "bool", "len", "id", "hash", "enumerate", "zip",
    "min", "max", "sum", "abs", "round", "print", "range", "reversed",
})


@dataclass
class Project:
    """All modules under analysis plus global symbol lookup."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def resolve(self, module: ModuleInfo, expr: ast.expr) -> str | None:
        """Best-effort fully-qualified name of a Name/Attribute chain.

        Resolution order: ``from m import n`` aliases, ``import m as a``
        aliases, the module's own namespace, then the raw dotted text
        (so ``time.time`` without an import table hit still reads as
        ``time.time`` and builtins stay bare).  Returns ``None`` for
        expressions that are not name chains (calls on call results,
        subscripts, ``self.x`` methods resolve to ``None`` — analyses
        treat those conservatively).
        """
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in module.from_imports:
            mod, name = module.from_imports[head]
            base = f"{mod}.{name}"
            return f"{base}.{rest}" if rest else base
        if head in module.imports:
            base = module.imports[head]
            return f"{base}.{rest}" if rest else base
        local = f"{module.name}.{dotted}"
        if local in self.functions or local in self.classes:
            return local
        if not rest and head in _KNOWN_BUILTINS:
            return head
        return dotted

    def function(self, fqn: str | None) -> FunctionInfo | None:
        """Project function for a resolved name, tolerating class hops.

        ``m.Class`` used as a constructor resolves to the class; a
        resolved ``m.Class.method`` is looked up directly.
        """
        if fqn is None:
            return None
        return self.functions.get(fqn)

    def sorted_modules(self) -> list[ModuleInfo]:
        return [self.modules[name] for name in sorted(self.modules)]

    def sorted_functions(self) -> list[FunctionInfo]:
        return [self.functions[name] for name in sorted(self.functions)]


def build_project(files: Iterable[SourceFile]) -> Project:
    """Assemble a :class:`Project` from already-parsed files.

    Files arrive pre-parsed (the engine reads each file exactly once for
    both the AST rules and the dataflow pass).  Duplicate module names —
    two loose fixture files both named ``mod.py`` — keep the first in
    sorted-path order; analyses only ever see consistent tables.
    """
    project = Project()
    for ctx in sorted(files, key=lambda c: c.rel_path):
        name = module_name_for(Path(ctx.path))
        if name in project.modules:
            continue
        module = ModuleInfo(
            name=name, path=Path(ctx.path), rel_path=ctx.rel_path,
            source=ctx.source, lines=list(ctx.lines), tree=ctx.tree,
            imports=imported_modules(ctx.tree),
            from_imports=imported_names(ctx.tree))
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _collect_function(module, stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                _collect_class(module, stmt)
        project.modules[name] = module
        project.functions.update(module.functions)
        project.classes.update(module.classes)
    return project
