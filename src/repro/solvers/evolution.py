"""(μ+λ) evolutionary-search backend over (outlets, P-states).

A steady population of μ parents produces λ offspring per generation by
uniform crossover (independent per-core P-state mask, per-CRAC outlet
mask) followed by mutation (per-core uniform redraw at an expected three
cores per child, per-CRAC ±1 outlet jitter).  Parents and offspring
compete jointly; the best μ by Stage 3 reward survive, with candidate
content bytes as the sort tie-break so selection is fully deterministic
even under reward ties.

Determinism contract matches :mod:`repro.solvers.annealing`: one
``np.random.default_rng(options.seed)`` generator, budget counted in
``options.max_evals`` evaluations (offspring that do not fit into the
budget are discarded unevaluated), no wall clock — bit-identical across
processes and ``--jobs`` values.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import (SolveOutcome, SolveRequest, SolveResult,
                            _solve_generic)
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate as obs_annotate
from repro.obs.trace import span as obs_span
from repro.solvers import register_solver
from repro.solvers.common import (Candidate, CandidateEvaluator,
                                  outcome_from_best, seed_candidates)

__all__ = ["solve_evolution"]

#: Parent population size (μ).
MU = 6

#: Offspring per generation (λ).
LAMBDA = 12

#: Expected number of per-core P-state redraws per child.
_EXPECTED_CORE_MUTATIONS = 3.0

#: Per-CRAC probability of a ±1 outlet-level jitter per child.
_OUTLET_JITTER_PROB = 0.25


def _crossover(a: Candidate, b: Candidate,
               rng: np.random.Generator) -> Candidate:
    """Uniform crossover of two parents (new candidate)."""
    core_mask = rng.random(a.pstates.shape[0]) < 0.5
    crac_mask = rng.random(a.outlet_idx.shape[0]) < 0.5
    return Candidate(
        outlet_idx=np.where(crac_mask, a.outlet_idx, b.outlet_idx),
        pstates=np.where(core_mask, a.pstates, b.pstates))


def _mutate_child(child: Candidate, evaluator: CandidateEvaluator,
                  rng: np.random.Generator) -> None:
    """In-place mutation: P-state redraws + outlet jitter."""
    ev = evaluator
    p_core = min(_EXPECTED_CORE_MUTATIONS / max(ev.n_cores, 1), 1.0)
    redraw = rng.random(ev.n_cores) < p_core
    fresh = rng.integers(0, ev.off + 1)
    child.pstates = np.where(redraw, fresh, child.pstates)
    jitter_mask = rng.random(ev.n_crac) < _OUTLET_JITTER_PROB
    steps = np.where(rng.random(ev.n_crac) < 0.5, -1, 1)
    jittered = np.clip(child.outlet_idx + steps, 0, ev.outlet_levels - 1)
    child.outlet_idx = np.where(jitter_mask, jittered, child.outlet_idx)


def _rank(pool: list[Candidate]) -> list[Candidate]:
    """Best-first, content bytes as the deterministic tie-break."""
    return sorted(pool, key=lambda c: (-c.reward, c.key()))


def _run_evolution(request: SolveRequest) -> SolveOutcome:
    opt = request.options
    evaluator = CandidateEvaluator(request.datacenter, request.workload,
                                   request.p_const)
    rng = np.random.default_rng(opt.seed)

    def eval_within_budget(cands: list[Candidate]) -> list[Candidate]:
        scored: list[Candidate] = []
        for cand in cands:
            if evaluator.evaluations >= opt.max_evals:
                break
            evaluator.evaluate(cand)
            scored.append(cand)
        return scored

    with obs_span("evolution", n_nodes=request.datacenter.n_nodes,
                  seed=opt.seed, max_evals=opt.max_evals):
        initial = seed_candidates(evaluator)
        while len(initial) < MU + LAMBDA:
            initial.append(Candidate(
                outlet_idx=rng.integers(0, evaluator.outlet_levels,
                                        evaluator.n_crac),
                pstates=rng.integers(0, evaluator.off + 1)))
        population = _rank(eval_within_budget(initial))[:MU]
        while evaluator.evaluations < opt.max_evals:
            offspring: list[Candidate] = []
            for _ in range(LAMBDA):
                p1 = population[int(rng.integers(len(population)))]
                p2 = population[int(rng.integers(len(population)))]
                child = _crossover(p1, p2, rng)
                _mutate_child(child, evaluator, rng)
                offspring.append(child)
            population = _rank(population
                               + eval_within_budget(offspring))[:MU]
        best = population[0]
        obs_annotate(evaluations=evaluator.evaluations,
                     best_reward=best.reward)
    obs_metrics.counter("solver.evals.evolution").inc(evaluator.evaluations)
    return outcome_from_best("evolution", evaluator, best, opt.seed)


def solve_evolution(request: SolveRequest) -> SolveResult:
    """Evolutionary backend (``SolveOptions.backend="evolution"``)."""
    return _solve_generic(request, "evolution", _run_evolution)


register_solver("evolution", solve_evolution, replace=True)
