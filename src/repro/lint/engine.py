"""Lint driver: file discovery, rule execution, disposition.

Deterministic by construction: files are visited in sorted order, rules
in code order, findings sorted before output — the same tree always
produces byte-identical reports (the property this linter exists to
protect in the code it checks).
"""

from __future__ import annotations

import ast
import os
from pathlib import Path, PurePosixPath

from repro.lint.base import FileContext, LintConfig, RuleVisitor, all_rules
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, LintReport
from repro.lint.suppress import parse_suppressions

__all__ = ["iter_python_files", "lint_paths", "select_rules"]

_SKIP_DIRS = {"__pycache__", ".git", ".repro-cache", ".venv", "venv",
              "build", "dist", "node_modules"}


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for root, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in _SKIP_DIRS and not d.startswith("."))
                for name in filenames:
                    if name.endswith(".py"):
                        out.add(Path(root) / name)
        elif p.suffix == ".py":
            out.add(p)
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {p}")
    return sorted(out)


def select_rules(select: list[str] | None = None,
                 ignore: list[str] | None = None) -> list[type[RuleVisitor]]:
    """Resolve ``--select`` / ``--ignore`` into a rule list.

    ``select`` picks exactly those codes (and validates them);
    ``ignore`` then removes codes.  With neither, every registered rule
    runs.
    """
    rules = all_rules()
    known = {cls.code for cls in rules}
    for code in (select or []) + (ignore or []):
        if code not in known:
            raise ValueError(f"unknown rule code {code!r}; known: "
                             f"{', '.join(sorted(known))}")
    if select:
        wanted = set(select)
        rules = [cls for cls in rules if cls.code in wanted]
    if ignore:
        unwanted = set(ignore)
        rules = [cls for cls in rules if cls.code not in unwanted]
    return rules


def _rel_posix(path: Path) -> str:
    try:
        rel = path.resolve().relative_to(Path.cwd())
    except ValueError:
        rel = path
    return str(PurePosixPath(rel))


def _lint_file(path: Path, rules: list[type[RuleVisitor]],
               config: LintConfig) -> tuple[list[Finding], list[Finding]]:
    """Return (kept, suppressed) findings for one file."""
    rel = _rel_posix(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        finding = Finding(path=rel, line=1, col=1, code="RL000",
                          rule="parse-error",
                          message=f"cannot read file: {exc}")
        return [finding], []
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        finding = Finding(path=rel, line=exc.lineno or 1,
                          col=(exc.offset or 0) + 1, code="RL000",
                          rule="parse-error",
                          message=f"syntax error: {exc.msg}")
        return [finding], []
    ctx = FileContext(path=path, rel_path=rel, source=source,
                      lines=source.splitlines(), tree=tree)
    suppressions = parse_suppressions(source)
    kept: list[Finding] = []
    suppressed: list[Finding] = []
    for cls in rules:
        for finding in cls(ctx, config).run():
            if suppressions.is_suppressed(finding.code, finding.line):
                suppressed.append(finding)
            else:
                kept.append(finding)
    return kept, suppressed


def lint_paths(paths: list[str | Path], *,
               rules: list[type[RuleVisitor]] | None = None,
               config: LintConfig | None = None,
               baseline: Baseline | None = None) -> LintReport:
    """Lint every Python file under ``paths`` and build the report."""
    rules = all_rules() if rules is None else rules
    config = config or LintConfig()
    report = LintReport()
    for path in iter_python_files(paths):
        report.files_checked += 1
        kept, suppressed = _lint_file(path, rules, config)
        report.suppressed.extend(suppressed)
        for finding in sorted(kept):
            if baseline is not None and baseline.absorb(finding):
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    if baseline is not None:
        report.stale_baseline = baseline.stale_entries()
    report.findings.sort()
    report.suppressed.sort()
    report.baselined.sort()
    return report
