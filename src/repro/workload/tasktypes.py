"""Task types, rewards, deadlines and the Workload container
(Sections III.B, VI.C, VI.D).

A workload is a set of ``T`` known task types.  Type *i* carries

* a reward ``r_i`` collected when one of its tasks finishes by its
  deadline (Eq. 11: reciprocal of the type's average P-state-0 ECS over
  node types — harder tasks are worth more);
* a relative deadline ``m_i`` (Eq. 14: ``1.5 * rand[1/MaxECS_i,
  1/MinECS_i]``, guaranteeing at least one core type can meet it);
* a Poisson arrival rate ``lambda_i`` (Eq. 16: sized so the room could
  absorb the load at full P-state-0 capacity but is oversubscribed under
  the power cap).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.builder import DataCenter

__all__ = ["Workload", "rewards_from_ecs", "deadline_slacks", "arrival_rates",
           "generate_workload"]


@dataclass(frozen=True)
class Workload:
    """Immutable workload description used by every optimizer and the DES.

    Attributes
    ----------
    ecs:
        ``(T, NTYPES, eta)`` tensor; ``ecs[i, j, k]`` = tasks of type *i*
        per second on a type-*j* core in P-state *k* (0 when off).
    rewards:
        ``r_i`` per task type.
    deadline_slack:
        ``m_i`` — deadline = arrival time + ``m_i`` (Section III.B).
    arrival_rates:
        ``lambda_i`` — tasks of type *i* per second entering the room.
    """

    ecs: np.ndarray
    rewards: np.ndarray
    deadline_slack: np.ndarray
    arrival_rates: np.ndarray

    def __post_init__(self) -> None:
        t = self.ecs.shape[0]
        for name in ("rewards", "deadline_slack", "arrival_rates"):
            arr = getattr(self, name)
            if arr.shape != (t,):
                raise ValueError(f"{name} must have shape ({t},), got {arr.shape}")
        if self.ecs.ndim != 3:
            raise ValueError("ecs must be a (T, NTYPES, eta) tensor")
        if np.any(self.ecs < 0):
            raise ValueError("ECS values must be non-negative")
        if not np.allclose(self.ecs[:, :, -1], 0.0):
            raise ValueError("the turned-off P-state must have zero ECS")
        if np.any(self.rewards <= 0) or np.any(self.deadline_slack <= 0):
            raise ValueError("rewards and deadline slacks must be positive")
        if np.any(self.arrival_rates < 0):
            raise ValueError("arrival rates must be non-negative")

    @property
    def n_task_types(self) -> int:
        return int(self.ecs.shape[0])

    @property
    def n_node_types(self) -> int:
        return int(self.ecs.shape[1])

    @property
    def n_pstates(self) -> int:
        """``eta`` including the turned-off state."""
        return int(self.ecs.shape[2])

    def exec_time(self, task_type: int, node_type: int, pstate: int) -> float:
        """ETC = 1 / ECS; ``inf`` for the off state or unsupported pairs."""
        speed = self.ecs[task_type, node_type, pstate]
        return float("inf") if speed <= 0.0 else 1.0 / speed

    def can_meet_deadline(self, task_type: int, node_type: int,
                          pstate: int) -> bool:
        """True when ``1/ECS <= m_i`` — the Constraint 2 test (Eq. 7)."""
        return self.exec_time(task_type, node_type, pstate) \
            <= float(self.deadline_slack[task_type])


def rewards_from_ecs(ecs_p0: np.ndarray) -> np.ndarray:
    """Eq. 11: ``r_i = 1 / mean_j ECS(i, j, 0)``."""
    ecs_p0 = np.asarray(ecs_p0, dtype=float)
    means = ecs_p0.mean(axis=1)
    if np.any(means <= 0):
        raise ValueError("every task type needs positive mean P-state-0 ECS")
    return 1.0 / means


def deadline_slacks(ecs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Eqs. 12-14: ``m_i = 1.5 * rand[1/MaxECS_i, 1/MinECS_i]``.

    ``MinECS_i`` is taken over the *slowest active* P-state (``eta - 2``)
    across node types, ``MaxECS_i`` over P-state 0, so at least one core
    type running flat out can always meet the deadline while slow
    P-states may not.
    """
    ecs = np.asarray(ecs, dtype=float)
    min_ecs = ecs[:, :, -2].min(axis=1)          # Eq. 12
    max_ecs = ecs[:, :, 0].max(axis=1)           # Eq. 13
    if np.any(min_ecs <= 0):
        raise ValueError("slowest active P-state must have positive ECS")
    lo = 1.0 / max_ecs
    hi = 1.0 / min_ecs
    return 1.5 * rng.uniform(lo, hi)             # Eq. 14


def arrival_rates(ecs: np.ndarray, datacenter: DataCenter,
                  rng: np.random.Generator,
                  v_arrival: float = 0.3) -> np.ndarray:
    """Eqs. 15-16: rates sized to oversubscribe a power-capped room.

    ``SumECS_i`` (Eq. 15) is type *i*'s throughput if every core ran
    P-state 0 and split itself evenly over the ``T`` task types; the rate
    is that value times ``rand[1 - V_arrival, 1 + V_arrival]``.
    """
    if not 0.0 <= v_arrival < 1.0:
        raise ValueError(f"v_arrival must be in [0, 1), got {v_arrival}")
    ecs = np.asarray(ecs, dtype=float)
    n_task_types = ecs.shape[0]
    # cores per node type, summed over the whole room
    type_counts = np.bincount(datacenter.core_type,
                              minlength=len(datacenter.node_types))
    sum_ecs = (ecs[:, :, 0] * type_counts[None, :]).sum(axis=1) / n_task_types
    variation = rng.uniform(1.0 - v_arrival, 1.0 + v_arrival,
                            size=n_task_types)
    return sum_ecs * variation


def generate_workload(datacenter: DataCenter, rng: np.random.Generator,
                      n_task_types: int = 8, v_ecs: float = 0.1,
                      v_prop: float = 0.1, v_arrival: float = 0.3
                      ) -> Workload:
    """Generate the full Section VI workload for a data center."""
    from repro.workload.ecs import extend_ecs, generate_p0_ecs

    ecs_p0 = generate_p0_ecs(n_task_types, datacenter.node_types, rng, v_ecs)
    ecs = extend_ecs(ecs_p0, datacenter.node_types, rng, v_prop)
    return Workload(
        ecs=ecs,
        rewards=rewards_from_ecs(ecs_p0),
        deadline_slack=deadline_slacks(ecs, rng),
        arrival_rates=arrival_rates(ecs, datacenter, rng, v_arrival),
    )
