"""Tests for repro.workload.trace — Poisson task traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.tasktypes import Workload
from repro.workload.trace import Task, generate_trace


def tiny_workload(rates) -> Workload:
    t = len(rates)
    ecs = np.ones((t, 1, 2))
    ecs[:, :, 1] = 0.0
    return Workload(
        ecs=ecs,
        rewards=np.ones(t),
        deadline_slack=np.full(t, 2.5),
        arrival_rates=np.asarray(rates, dtype=float),
    )


class TestGenerateTrace:
    def test_sorted_by_arrival(self):
        trace = generate_trace(tiny_workload([5.0, 3.0]), 50.0,
                               np.random.default_rng(0))
        arrivals = [t.arrival for t in trace]
        assert arrivals == sorted(arrivals)

    def test_arrivals_within_horizon(self):
        trace = generate_trace(tiny_workload([5.0]), 20.0,
                               np.random.default_rng(1))
        assert all(0.0 <= t.arrival < 20.0 for t in trace)

    def test_deadlines_offset_by_slack(self):
        wl = tiny_workload([5.0])
        trace = generate_trace(wl, 20.0, np.random.default_rng(2))
        for t in trace:
            assert t.deadline == pytest.approx(t.arrival + 2.5)

    def test_uids_dense_and_ordered(self):
        trace = generate_trace(tiny_workload([4.0, 4.0]), 30.0,
                               np.random.default_rng(3))
        assert [t.uid for t in trace] == list(range(len(trace)))

    def test_rate_roughly_respected(self):
        wl = tiny_workload([10.0])
        trace = generate_trace(wl, 500.0, np.random.default_rng(4))
        observed = len(trace) / 500.0
        assert observed == pytest.approx(10.0, rel=0.1)

    def test_zero_rate_type_produces_nothing(self):
        wl = tiny_workload([0.0, 5.0])
        trace = generate_trace(wl, 50.0, np.random.default_rng(5))
        assert all(t.task_type == 1 for t in trace)
        assert len(trace) > 0

    def test_bad_duration(self):
        with pytest.raises(ValueError, match="positive"):
            generate_trace(tiny_workload([1.0]), 0.0,
                           np.random.default_rng(0))

    def test_reproducible(self):
        wl = tiny_workload([3.0])
        t1 = generate_trace(wl, 20.0, np.random.default_rng(6))
        t2 = generate_trace(wl, 20.0, np.random.default_rng(6))
        assert t1 == t2

    @given(rate=st.floats(min_value=0.2, max_value=50.0),
           seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_invariants_hold_for_any_rate(self, rate, seed):
        wl = tiny_workload([rate])
        trace = generate_trace(wl, 10.0, np.random.default_rng(seed))
        arrivals = [t.arrival for t in trace]
        assert arrivals == sorted(arrivals)
        assert all(0 <= a < 10.0 for a in arrivals)


class TestTaskOrdering:
    def test_tasks_order_by_arrival(self):
        a = Task(arrival=1.0, task_type=5, uid=10, deadline=2.0)
        b = Task(arrival=2.0, task_type=0, uid=1, deadline=2.5)
        assert a < b


class TestFlashCrowdProfile:
    def test_burst_multiplies_rates(self):
        from repro.workload.trace import FlashCrowdProfile
        from repro.workload.profiles import ConstantProfile

        base = ConstantProfile(base_rates=np.asarray([2.0, 4.0]))
        profile = FlashCrowdProfile(base, bursts=((10.0, 5.0, 3.0),))
        assert np.allclose(profile.rates(5.0), [2.0, 4.0])
        assert np.allclose(profile.rates(12.0), [6.0, 12.0])
        assert np.allclose(profile.rates(15.0), [2.0, 4.0])  # half-open

    def test_overlapping_bursts_compound(self):
        from repro.workload.trace import FlashCrowdProfile
        from repro.workload.profiles import ConstantProfile

        base = ConstantProfile(base_rates=np.asarray([1.0]))
        profile = FlashCrowdProfile(
            base, bursts=((0.0, 10.0, 2.0), (5.0, 10.0, 3.0)))
        assert np.allclose(profile.rates(7.0), [6.0])

    def test_max_rates_bounds_rates_everywhere(self):
        from repro.workload.trace import FlashCrowdProfile
        from repro.workload.profiles import ConstantProfile

        base = ConstantProfile(base_rates=np.asarray([1.5]))
        profile = FlashCrowdProfile(
            base, bursts=((1.0, 2.0, 4.0), (2.0, 2.0, 0.5)))
        bound = profile.max_rates()
        for t in np.linspace(0.0, 6.0, 61):
            assert np.all(profile.rates(t) <= bound + 1e-12)

    def test_invalid_bursts_rejected(self):
        from repro.workload.trace import FlashCrowdProfile
        from repro.workload.profiles import ConstantProfile

        base = ConstantProfile(base_rates=np.asarray([1.0]))
        with pytest.raises(ValueError, match="duration"):
            FlashCrowdProfile(base, bursts=((0.0, 0.0, 2.0),))
        with pytest.raises(ValueError, match="magnitude"):
            FlashCrowdProfile(base, bursts=((0.0, 1.0, -1.0),))


class TestRegionalShiftProfile:
    def test_phases_stagger_types(self):
        from repro.workload.trace import RegionalShiftProfile
        from repro.workload.profiles import ConstantProfile

        base = ConstantProfile(base_rates=np.asarray([10.0, 10.0]))
        profile = RegionalShiftProfile(base, amplitude=0.5, period_s=100.0)
        r = profile.rates(25.0)
        assert not np.allclose(r[0], r[1])  # opposite phases at T=2

    def test_mean_over_cycle_is_base(self):
        from repro.workload.trace import RegionalShiftProfile
        from repro.workload.profiles import ConstantProfile

        base = ConstantProfile(base_rates=np.asarray([4.0, 8.0, 2.0]))
        profile = RegionalShiftProfile(base, amplitude=0.4, period_s=60.0)
        samples = np.stack([profile.rates(t)
                            for t in np.linspace(0.0, 60.0, 600,
                                                 endpoint=False)])
        assert np.allclose(samples.mean(axis=0), [4.0, 8.0, 2.0],
                           rtol=1e-3)

    def test_invalid_amplitude_rejected(self):
        from repro.workload.trace import RegionalShiftProfile
        from repro.workload.profiles import ConstantProfile

        base = ConstantProfile(base_rates=np.asarray([1.0]))
        with pytest.raises(ValueError, match="amplitude"):
            RegionalShiftProfile(base, amplitude=1.5)


class TestStreamTraceTicks:
    def _profile(self, rates):
        from repro.workload.profiles import ConstantProfile

        return ConstantProfile(base_rates=np.asarray(rates, dtype=float))

    def test_tick_structure(self):
        from repro.workload.trace import stream_trace_ticks

        wl = tiny_workload([5.0, 3.0])
        ticks = list(stream_trace_ticks(wl, self._profile([5.0, 3.0]),
                                        10.0, 4,
                                        np.random.default_rng(0)))
        assert [t.index for t in ticks] == [0, 1, 2, 3]
        assert [t.start_s for t in ticks] == [0.0, 10.0, 20.0, 30.0]
        for tick in ticks:
            assert np.allclose(tick.rates, [5.0, 3.0])
            for task in tick.tasks:
                assert tick.start_s <= task.arrival < tick.start_s + 10.0

    def test_uids_continuous_across_ticks(self):
        from repro.workload.trace import stream_trace_ticks

        wl = tiny_workload([8.0])
        ticks = list(stream_trace_ticks(wl, self._profile([8.0]), 5.0, 5,
                                        np.random.default_rng(1)))
        uids = [task.uid for tick in ticks for task in tick.tasks]
        assert uids == list(range(len(uids)))

    def test_deterministic_for_seed(self):
        from repro.workload.trace import stream_trace_ticks

        wl = tiny_workload([4.0, 2.0])
        a = list(stream_trace_ticks(wl, self._profile([4.0, 2.0]), 5.0, 3,
                                    np.random.default_rng(9)))
        b = list(stream_trace_ticks(wl, self._profile([4.0, 2.0]), 5.0, 3,
                                    np.random.default_rng(9)))
        assert all(x.tasks == y.tasks for x, y in zip(a, b))

    def test_burst_tick_has_more_arrivals(self):
        from repro.workload.trace import (FlashCrowdProfile,
                                          stream_trace_ticks)

        wl = tiny_workload([10.0])
        profile = FlashCrowdProfile(self._profile([10.0]),
                                    bursts=((10.0, 10.0, 5.0),))
        ticks = list(stream_trace_ticks(wl, profile, 10.0, 3,
                                        np.random.default_rng(3)))
        assert len(ticks[1].tasks) > 2 * len(ticks[0].tasks)

    def test_rejects_bad_dimensions(self):
        from repro.workload.trace import stream_trace_ticks

        wl = tiny_workload([1.0, 2.0])
        with pytest.raises(ValueError, match="dimension"):
            next(stream_trace_ticks(wl, self._profile([1.0]), 1.0, 1,
                                    np.random.default_rng(0)))
