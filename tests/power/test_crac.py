"""Tests for repro.power.crac — Eqs. 2-3 heat removal and CRAC power."""

import numpy as np
import pytest

from repro.power.cop import HP_UTILITY_COP, CoPModel
from repro.power.crac import crac_power_kw, heat_removed_kw
from repro.units import AIR_DENSITY


class TestHeatRemoved:
    def test_eq2(self):
        # q = rho * Cp * F * (Tin - Tout)
        q = heat_removed_kw(2.0, 30.0, 15.0)
        assert q == pytest.approx(AIR_DENSITY * 1.0 * 2.0 * 15.0)

    def test_clamped_at_zero(self):
        """No heat to remove when inlet is at or below outlet."""
        assert heat_removed_kw(2.0, 10.0, 15.0) == 0.0
        assert heat_removed_kw(2.0, 15.0, 15.0) == 0.0

    def test_vectorized(self):
        q = heat_removed_kw(np.asarray([1.0, 2.0]), 30.0, 15.0)
        assert q.shape == (2,)
        assert q[1] == pytest.approx(2 * q[0])

    def test_bad_flow(self):
        with pytest.raises(ValueError, match="positive"):
            heat_removed_kw(0.0, 30.0, 15.0)


class TestCracPower:
    def test_eq3(self):
        q = heat_removed_kw(2.0, 30.0, 15.0)
        p = crac_power_kw(2.0, 30.0, 15.0)
        assert p == pytest.approx(q / HP_UTILITY_COP(15.0))

    def test_zero_when_no_heat(self):
        assert crac_power_kw(2.0, 10.0, 15.0) == 0.0

    def test_warmer_outlet_cheaper_for_same_lift(self):
        """Same 10-degree lift costs less at a warmer outlet (higher CoP)."""
        cold = crac_power_kw(2.0, 20.0, 10.0)
        warm = crac_power_kw(2.0, 35.0, 25.0)
        assert warm < cold

    def test_custom_cop_model(self):
        unity = CoPModel(a2=0.0, a1=0.0, a0=1.0)
        p = crac_power_kw(2.0, 30.0, 15.0, cop_model=unity)
        assert p == pytest.approx(heat_removed_kw(2.0, 30.0, 15.0))

    def test_vector_of_units(self):
        p = crac_power_kw(np.asarray([1.0, 1.0]), np.asarray([30.0, 25.0]),
                          np.asarray([15.0, 15.0]))
        assert p[0] > p[1] > 0
