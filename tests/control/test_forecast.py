"""Tests for repro.control.forecast — provider contract and determinism."""

import numpy as np
import pytest

from repro.control.forecast import (FORECAST_KINDS, ForecastProvider,
                                    NoisyOracleForecast, OracleForecast,
                                    PersistenceForecast, make_forecast)
from repro.workload.profiles import ConstantProfile, DiurnalProfile

RATES = np.asarray([2.0, 1.0, 3.0])


def _profile():
    return DiurnalProfile(base_rates=RATES, amplitude=0.5, period_s=600.0)


def _providers():
    profile = _profile()
    return [OracleForecast(profile), PersistenceForecast(),
            NoisyOracleForecast(profile, sigma=0.3, seed=7)]


class TestContract:
    def test_row_zero_is_rates_now_verbatim(self):
        """The present is measured, never forecast — for every provider."""
        measured = RATES * 1.7  # deliberately differs from the profile
        for provider in _providers():
            out = provider.rates_ahead(120.0, measured, 4, 60.0)
            assert out.shape == (4, RATES.size)
            np.testing.assert_array_equal(out[0], measured)

    def test_rows_never_negative(self):
        for provider in _providers():
            out = provider.rates_ahead(0.0, RATES, 6, 60.0)
            assert np.all(out >= 0.0)

    def test_all_kinds_satisfy_protocol(self):
        for kind in FORECAST_KINDS:
            provider = make_forecast(kind, _profile(), seed=1)
            assert isinstance(provider, ForecastProvider)


class TestOracle:
    def test_future_rows_come_from_profile(self):
        profile = _profile()
        out = OracleForecast(profile).rates_ahead(100.0, RATES, 3, 60.0)
        np.testing.assert_allclose(out[1], profile.rates(160.0))
        np.testing.assert_allclose(out[2], profile.rates(220.0))

    def test_constant_profile_oracle_equals_persistence(self):
        profile = ConstantProfile(base_rates=RATES)
        oracle = OracleForecast(profile).rates_ahead(0.0, RATES, 4, 30.0)
        persist = PersistenceForecast().rates_ahead(0.0, RATES, 4, 30.0)
        np.testing.assert_array_equal(oracle, persist)


class TestPersistence:
    def test_every_row_repeats_now(self):
        out = PersistenceForecast().rates_ahead(300.0, RATES, 5, 60.0)
        np.testing.assert_array_equal(out, np.tile(RATES, (5, 1)))


class TestNoisyOracle:
    def test_deterministic_in_seed_and_instant(self):
        profile = _profile()
        a = NoisyOracleForecast(profile, seed=3).rates_ahead(
            90.0, RATES, 4, 60.0)
        b = NoisyOracleForecast(profile, seed=3).rates_ahead(
            90.0, RATES, 4, 60.0)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_future(self):
        profile = _profile()
        a = NoisyOracleForecast(profile, seed=3).rates_ahead(
            90.0, RATES, 4, 60.0)
        c = NoisyOracleForecast(profile, seed=4).rates_ahead(
            90.0, RATES, 4, 60.0)
        assert not np.array_equal(a[1:], c[1:])
        np.testing.assert_array_equal(a[0], c[0])  # row 0 is still exact

    def test_noise_is_independent_of_call_order(self):
        """Forecasts are pure in (seed, t0, step) — recomputing a later
        instant first does not shift the noise."""
        profile = _profile()
        p = NoisyOracleForecast(profile, seed=11)
        late_first = p.rates_ahead(600.0, RATES, 3, 60.0)
        p.rates_ahead(0.0, RATES, 3, 60.0)
        late_again = p.rates_ahead(600.0, RATES, 3, 60.0)
        np.testing.assert_array_equal(late_first, late_again)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown forecast kind"):
            make_forecast("psychic", _profile())

    def test_bad_steps_rejected(self):
        with pytest.raises(ValueError, match="steps"):
            PersistenceForecast().rates_ahead(0.0, RATES, 0, 60.0)

    def test_bad_step_length_rejected(self):
        with pytest.raises(ValueError, match="step_s"):
            PersistenceForecast().rates_ahead(0.0, RATES, 3, 0.0)

    def test_matrix_rates_rejected(self):
        with pytest.raises(ValueError, match="vector"):
            PersistenceForecast().rates_ahead(0.0, np.ones((2, 3)), 3, 60.0)
