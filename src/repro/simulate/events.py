"""Minimal discrete-event kernel used by the data center simulator.

A binary-heap event queue with a tie-breaking sequence number so that
events at equal timestamps pop in insertion order (deterministic runs).
The kernel is deliberately tiny — arrivals, completions and the fault
kinds the chaos-testing layer injects — but is kept separate from the
engine so further extensions (P-state changes, thermal transients) have
a place to plug in.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any

__all__ = ["EventKind", "Event", "EventQueue", "CoreOutage"]


class EventKind(IntEnum):
    """Kinds of simulation events.

    The integer values fix the pop order at identical timestamps, and
    each adjacency is deliberate:

    * ``COMPLETION`` first — a finishing core frees up (and its task
      counts as done) before anything else happens at that instant;
    * ``FAULT`` before ``RECOVERY`` — the two compose through per-core
      counters, so a fault starting exactly when another ends leaves the
      core dead either way, but the fixed order keeps replays
      deterministic;
    * ``ARRIVAL`` last — a task arriving at the instant of a fault sees
      the core already dead, and one arriving at a recovery instant may
      already use the recovered core.
    """

    COMPLETION = 0
    FAULT = 1
    RECOVERY = 2
    ARRIVAL = 3


@dataclass(frozen=True)
class CoreOutage:
    """A window during which a set of cores cannot execute tasks.

    The DES-level shape of a node crash: the affected cores take no new
    tasks on ``[start_s, end_s)`` and any queued work is stranded at
    ``start_s``.  ``end_s = inf`` means no recovery within the run.
    Windows may overlap (cores are dead while covered by at least one).
    """

    start_s: float
    cores: tuple[int, ...]
    end_s: float = math.inf

    def __post_init__(self) -> None:
        if not self.start_s >= 0.0:
            raise ValueError(f"outage start must be >= 0, got {self.start_s}")
        if not self.end_s > self.start_s:
            raise ValueError("outage must end after it starts")
        if not self.cores:
            raise ValueError("outage needs at least one core")


@dataclass(order=True, frozen=True)
class Event:
    """One scheduled event.

    Sort key is ``(time, kind, seq)``; ``payload`` is excluded from
    ordering.
    """

    time: float
    kind: EventKind
    seq: int
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Heap-based future event list."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, payload: Any = None) -> Event:
        """Schedule an event; returns it (useful for assertions)."""
        if not time >= 0.0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(time=float(time), kind=kind, seq=next(self._counter),
                      payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float:
        """Timestamp of the earliest event."""
        if not self._heap:
            raise IndexError("peek on empty event queue")
        return self._heap[0].time

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
