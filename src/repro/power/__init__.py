"""Power models: CMOS core power (Appendix A), CRAC CoP and power (Eqs. 2-3, 8)."""

from repro.power.cmos import (CmosConstants, derive_constants,
                              pstate_powers, static_fraction)
from repro.power.cop import CoPModel, HP_UTILITY_COP
from repro.power.crac import crac_power_kw, heat_removed_kw
from repro.power.taskpower import (TaskPowerModel, expected_node_power,
                                   sample_task_power_model)

__all__ = [
    "CmosConstants",
    "derive_constants",
    "pstate_powers",
    "static_fraction",
    "CoPModel",
    "HP_UTILITY_COP",
    "crac_power_kw",
    "heat_removed_kw",
    "TaskPowerModel",
    "expected_node_power",
    "sample_task_power_model",
]
