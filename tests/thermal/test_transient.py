"""Tests for repro.thermal.transient — first-order room dynamics."""

import numpy as np
import pytest

from repro.thermal.transient import (TransientResult, simulate_transient,
                                     time_to_steady_state)


@pytest.fixture(scope="module")
def setup(small_dc):
    model = small_dc.thermal
    t_out = np.full(small_dc.n_crac, 15.0)
    p_hot = small_dc.node_power_kw(small_dc.all_p0_pstates())
    p_cold = small_dc.node_power_kw(small_dc.all_off_pstates())
    return model, t_out, p_hot, p_cold


class TestConvergence:
    def test_converges_to_steady_state(self, setup):
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        target = model.steady_state(t_out, p_hot)
        res = simulate_transient(model, t_out, p_hot, start,
                                 duration_s=1800.0, tau_s=120.0)
        assert np.abs(res.t_out[-1] - target.t_out).max() < 0.05
        assert np.abs(res.t_in[-1] - target.t_in).max() < 0.05

    def test_steady_start_stays_steady(self, setup):
        """The steady state is a fixed point of the dynamics."""
        model, t_out, p_hot, _ = setup
        ss = model.steady_state(t_out, p_hot)
        res = simulate_transient(model, t_out, p_hot, ss.t_out,
                                 duration_s=300.0)
        assert np.abs(res.t_out - ss.t_out[None, :]).max() < 1e-6

    def test_monotone_approach_from_below(self, setup):
        """Heating up: outlet temperatures rise monotonically."""
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        res = simulate_transient(model, t_out, p_hot, start,
                                 duration_s=600.0)
        nodes = res.t_out[:, model.n_crac:]
        assert np.all(np.diff(nodes, axis=0) >= -1e-9)

    def test_timescale_orders_of_minutes(self, setup):
        """The Section V.A claim: settling takes minutes, not seconds."""
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        tts = time_to_steady_state(model, t_out, p_hot, start,
                                   tolerance_c=0.1, tau_s=120.0)
        assert 60.0 < tts < 3600.0

    def test_faster_tau_settles_sooner(self, setup):
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        fast = time_to_steady_state(model, t_out, p_hot, start, tau_s=30.0)
        slow = time_to_steady_state(model, t_out, p_hot, start, tau_s=240.0)
        assert fast < slow


class TestOvershootDiagnostics:
    def test_no_overshoot_when_heating_to_feasible(self, setup, small_dc):
        """Monotone heating toward a feasible point never breaks
        redlines mid-transient."""
        model, t_out, _, p_cold = setup
        p_mid = 0.5 * (p_cold + small_dc.node_power_kw(
            small_dc.all_p0_pstates()))
        start = model.steady_state(t_out, p_cold).t_out
        if model.is_feasible(t_out, p_mid, small_dc.redline_c):
            res = simulate_transient(model, t_out, p_mid, start, 1200.0)
            assert res.max_inlet_overshoot(small_dc.redline_c) <= 1e-6


class TestHorizonClamp:
    """Regression: a horizon that is not a multiple of the step used to
    be integrated past ``duration_s`` by up to one full ``dt``."""

    def test_final_sample_lands_exactly_on_duration(self, setup):
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        res = simulate_transient(model, t_out, p_hot, start,
                                 duration_s=100.7, dt_s=3.0)
        assert res.times[-1] == 100.7
        assert res.times.max() <= 100.7
        assert np.all(np.diff(res.times) > 0)

    def test_multiple_horizon_grid_unchanged(self, setup):
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        res = simulate_transient(model, t_out, p_hot, start,
                                 duration_s=90.0, dt_s=3.0)
        np.testing.assert_array_equal(res.times, 3.0 * np.arange(31))

    def test_partial_step_uses_exact_decay(self, setup):
        """The clamped final step must advance the state as far as an
        exact integration over the same short interval would."""
        model, t_out, p_hot, p_cold = setup
        start = model.steady_state(t_out, p_cold).t_out
        res = simulate_transient(model, t_out, p_hot, start,
                                 duration_s=10.5, dt_s=1.0)
        # restart from the last full-step state and take the remainder
        # as its own (tiny but valid) horizon
        res2 = simulate_transient(model, t_out, p_hot, res.t_out[-2],
                                  duration_s=0.5, dt_s=0.5)
        np.testing.assert_allclose(res.t_out[-1], res2.t_out[-1],
                                   atol=1e-12)


class TestViolationMinutes:
    """Regression: every violated sample used to count one full ``dt``;
    the trapezoid weighting halves the boundary samples."""

    REDLINE = np.asarray([5.0])

    @staticmethod
    def _result(times, t_in_col):
        times = np.asarray(times, dtype=float)
        t_in = np.asarray(t_in_col, dtype=float)[:, None]
        return TransientResult(times=times, t_out=t_in.copy(), t_in=t_in)

    def test_violation_only_at_final_sample_counts_half_interval(self):
        res = self._result([0.0, 60.0, 120.0], [0.0, 0.0, 10.0])
        assert res.violation_minutes(self.REDLINE) \
            == pytest.approx(0.5)        # 30 s, not the old 60 s

    def test_violation_only_at_first_sample_counts_half_interval(self):
        res = self._result([0.0, 60.0, 120.0], [10.0, 0.0, 0.0])
        assert res.violation_minutes(self.REDLINE) == pytest.approx(0.5)

    def test_clamped_final_gap_weighted_by_its_true_length(self):
        res = self._result([0.0, 60.0, 90.0], [0.0, 0.0, 10.0])
        assert res.violation_minutes(self.REDLINE) == pytest.approx(0.25)

    def test_always_violated_integrates_whole_horizon(self):
        res = self._result([0.0, 60.0, 90.0], [10.0, 10.0, 10.0])
        assert res.violation_minutes(self.REDLINE) == pytest.approx(1.5)

    def test_single_sample_trajectory_is_zero(self):
        res = self._result([0.0], [10.0])
        assert res.violation_minutes(self.REDLINE) == 0.0


class TestValidation:
    def test_bad_step(self, setup):
        model, t_out, p_hot, _ = setup
        with pytest.raises(ValueError, match="too coarse"):
            simulate_transient(model, t_out, p_hot,
                               np.full(model.n_units, 15.0),
                               duration_s=10.0, tau_s=10.0, dt_s=5.0)

    def test_bad_duration(self, setup):
        model, t_out, p_hot, _ = setup
        with pytest.raises(ValueError, match="positive"):
            simulate_transient(model, t_out, p_hot,
                               np.full(model.n_units, 15.0),
                               duration_s=0.0)

    def test_bad_initial_shape(self, setup):
        model, t_out, p_hot, _ = setup
        with pytest.raises(ValueError, match="initial state"):
            simulate_transient(model, t_out, p_hot, np.zeros(3), 10.0)
