"""Sparse thermal backend + zonal Stage 1 at the 100x scale target.

Two measurements, written to ``BENCH_sparse.json`` (repo root):

* ``build`` — :class:`~repro.thermal.heatflow.HeatFlowModel`
  construction, dense vs sparse, on a 10x (1500-node) zonal room.  The
  backends are forced explicitly: 1503 units is below the
  ``SPARSE_AUTO_UNITS`` auto threshold, and the point is to compare the
  O(n^3) dense inverse against the ``splu`` factorization on the same
  block-sparse alpha.  CI gates ``build.speedup >= 5``.
* ``replan`` — the 100x room (15000 nodes / 300 CRACs at paper scale,
  3000 / 60 at the default small scale): sparse zonal model build, a
  cold zonal Stage 1 solve, then a rate-drifted warm replan through
  stages 1-3.  Stage 1 never reads arrival rates, so the warm solve
  replays verbatim and the replan is dominated by stages 2-3.  CI gates
  ``replan.warm_total_s < 1`` (the ROADMAP's sub-second target; it
  holds at full scale, so the reduced CI room clears it with margin).

The power cap is computed directly from
:func:`~repro.datacenter.power.total_power` at the fixed outlets —
``power_bounds``'s outlet product-grid search is exponential in the
CRAC count and intractable at 300 CRACs.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

import numpy as np

from repro.core.stage1_zonal import solve_stage1_zonal
from repro.core.stage2 import convert_power_to_pstates
from repro.core.stage3 import solve_stage3
from repro.datacenter import build_datacenter
from repro.datacenter.power import total_power
from repro.thermal.heatflow import HeatFlowModel
from repro.thermal.sparse import attach_zonal_thermal, zonal_block_alpha
from repro.workload import generate_workload

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sparse.json"

BUILD_REPS = 2
T_OUT_C = 18.0


def _best_of(fn, reps: int = BUILD_REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_build(n_nodes: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    dc = build_datacenter(n_nodes=n_nodes, n_crac=3, rng=rng)
    alpha = zonal_block_alpha(dc)
    flows, nc = dc.unit_flows, dc.n_crac
    alpha_dense = alpha.toarray()

    dense_s = _best_of(
        lambda: HeatFlowModel(alpha_dense, flows, nc, backend="dense"))
    sparse_s = _best_of(
        lambda: HeatFlowModel(alpha, flows, nc, backend="sparse"))

    # equivalence on the exact room being timed
    d = HeatFlowModel(alpha_dense, flows, nc, backend="dense")
    s = HeatFlowModel(alpha, flows, nc, backend="sparse")
    t = np.full(nc, T_OUT_C)
    p = np.linspace(0.2, 1.2, dc.n_nodes)
    assert np.allclose(s.steady_state(t, p).t_in,
                       d.steady_state(t, p).t_in, atol=1e-9)

    return {
        "n_nodes": dc.n_nodes,
        "n_units": dc.n_units,
        "dense_build_s": dense_s,
        "sparse_build_s": sparse_s,
        "speedup": dense_s / sparse_s,
    }


def _bench_replan(n_nodes: int, n_crac: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    dc = build_datacenter(n_nodes=n_nodes, n_crac=n_crac, rng=rng)
    t0 = time.perf_counter()
    model = attach_zonal_thermal(dc)
    thermal_build_s = time.perf_counter() - t0
    workload = generate_workload(dc, rng)
    t_fix = np.full(n_crac, T_OUT_C)
    p_off = total_power(dc, t_fix,
                        dc.node_power_kw(dc.all_off_pstates())).total
    p_full = total_power(dc, t_fix,
                         dc.node_power_kw(dc.all_p0_pstates())).total
    p_const = p_off + 0.5 * (p_full - p_off)

    t0 = time.perf_counter()
    cold, state = solve_stage1_zonal(dc, workload, p_const=p_const,
                                     t_crac_out=t_fix, max_sweeps=2)
    cold_s = time.perf_counter() - t0

    # rolling-horizon tick: only the arrival rates drift
    drifted = dataclasses.replace(workload,
                                  arrival_rates=workload.arrival_rates * 1.3)
    t0 = time.perf_counter()
    warm, _ = solve_stage1_zonal(dc, drifted, p_const=p_const,
                                 t_crac_out=t_fix, max_sweeps=2, warm=state)
    warm_stage1_s = time.perf_counter() - t0
    assert warm is cold                       # verbatim replay
    t0 = time.perf_counter()
    stage2 = convert_power_to_pstates(dc, warm.core_power_kw,
                                      warm.node_power_kw)
    stage2_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    solve_stage3(dc, drifted, stage2.pstates)
    stage3_s = time.perf_counter() - t0

    return {
        "n_nodes": n_nodes,
        "n_crac": n_crac,
        "backend": model.backend,
        "p_const_kw": p_const,
        "thermal_build_s": thermal_build_s,
        "cold_stage1_s": cold_s,
        "cold_objective": cold.objective,
        "sweeps": cold.sweeps,
        "repair_scale": cold.repair_scale,
        "warm_stage1_s": warm_stage1_s,
        "stage2_s": stage2_s,
        "stage3_s": stage3_s,
        "warm_total_s": warm_stage1_s + stage2_s + stage3_s,
    }


def bench_sparse(benchmark, capsys, scale):
    if scale.is_paper:
        replan = _bench_replan(15000, 300, 7)
    else:
        replan = _bench_replan(3000, 60, 7)
    build = _bench_build(1500, 2013)
    doc = {"schema": 1, "scale": scale.name, "build": build,
           "replan": replan}
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    # keep pytest-benchmark's machinery engaged (one cheap round)
    small = build_datacenter(n_nodes=60, n_crac=3,
                             rng=np.random.default_rng(1))
    benchmark.pedantic(zonal_block_alpha, args=(small,),
                       rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(f"build ({build['n_units']} units, backends forced): "
              f"dense {build['dense_build_s'] * 1e3:8.1f} ms  "
              f"sparse {build['sparse_build_s'] * 1e3:8.1f} ms  "
              f"x{build['speedup']:.1f}")
        print(f"replan ({replan['n_nodes']} nodes, {replan['n_crac']} "
              f"CRACs, backend={replan['backend']}):")
        print(f"  thermal build {replan['thermal_build_s']:7.2f} s   "
              f"cold stage1 {replan['cold_stage1_s']:7.2f} s "
              f"(sweeps={replan['sweeps']}, "
              f"repair={replan['repair_scale']:.4f})")
        print(f"  warm replan   stage1 {replan['warm_stage1_s'] * 1e3:6.1f}"
              f" ms + stage2 {replan['stage2_s'] * 1e3:6.1f} ms + stage3 "
              f"{replan['stage3_s'] * 1e3:6.1f} ms = "
              f"{replan['warm_total_s'] * 1e3:6.1f} ms")
        print(f"written to {OUT_PATH.name}")

    assert replan["backend"] == "sparse", \
        "the 100x room must select the sparse backend automatically"
    assert build["speedup"] >= 5.0, \
        "sparse model build regressed below the 5x gate vs dense at 10x"
    assert replan["warm_total_s"] < 1.0, \
        "warm replan regressed above the sub-second target"
