"""Tests for repro.simulate.engine — DES replay of the second step."""

import numpy as np
import pytest

from repro.simulate.engine import simulate_trace
from repro.workload.tasktypes import Workload
from repro.workload.trace import Task, generate_trace


@pytest.fixture(scope="module")
def des_run(scenario, assignment):
    rng = np.random.default_rng(99)
    trace = generate_trace(scenario.workload, 20.0, rng)
    metrics = simulate_trace(scenario.datacenter, scenario.workload,
                             assignment.tc, assignment.pstates, trace,
                             duration=20.0)
    return trace, metrics


class TestAccounting:
    def test_every_task_completed_or_dropped(self, des_run):
        trace, metrics = des_run
        assert metrics.completed.sum() + metrics.dropped.sum() == len(trace)

    def test_reward_matches_completions(self, scenario, des_run):
        _, metrics = des_run
        expect = float(scenario.workload.rewards @ metrics.completed)
        assert metrics.total_reward == pytest.approx(expect)

    def test_atc_matches_counts(self, des_run):
        trace, metrics = des_run
        assert metrics.atc.sum() * metrics.duration == pytest.approx(
            metrics.completed.sum())

    def test_utilization_bounded(self, des_run):
        _, metrics = des_run
        u = metrics.utilization
        assert np.all(u >= 0.0)
        assert np.all(u <= 1.0 + 1e-9)

    def test_achieved_close_to_plan(self, scenario, assignment, des_run):
        """The DES should realize a large share of the fluid plan."""
        _, metrics = des_run
        assert metrics.reward_rate >= 0.7 * assignment.reward_rate

    def test_achieved_not_above_plan_much(self, scenario, assignment,
                                          des_run):
        """ATC/TC <= 1 caps the scheduler near the plan (Poisson noise
        allows a small overshoot)."""
        _, metrics = des_run
        assert metrics.reward_rate <= 1.2 * assignment.reward_rate

    def test_drop_fraction_shape(self, scenario, des_run):
        _, metrics = des_run
        df = metrics.drop_fraction
        assert df.shape == (scenario.workload.n_task_types,)
        assert np.all((df >= 0) & (df <= 1))

    def test_unplanned_types_fully_dropped(self, scenario, assignment,
                                           des_run):
        """Types with zero planned rate must be entirely dropped."""
        _, metrics = des_run
        planned = assignment.tc.sum(axis=1)
        arrived = metrics.completed + metrics.dropped
        for i in np.nonzero(planned == 0)[0]:
            if arrived[i] > 0:
                assert metrics.dropped[i] == arrived[i]


class TestDeterminismAndEdges:
    def test_empty_trace(self, scenario, assignment):
        m = simulate_trace(scenario.datacenter, scenario.workload,
                           assignment.tc, assignment.pstates, [],
                           duration=5.0)
        assert m.total_reward == 0.0
        assert m.completed.sum() == 0

    def test_deterministic(self, scenario, assignment):
        rng = np.random.default_rng(5)
        trace = generate_trace(scenario.workload, 5.0, rng)
        m1 = simulate_trace(scenario.datacenter, scenario.workload,
                            assignment.tc, assignment.pstates, trace)
        m2 = simulate_trace(scenario.datacenter, scenario.workload,
                            assignment.tc, assignment.pstates, trace)
        assert m1.total_reward == m2.total_reward
        np.testing.assert_array_equal(m1.completed, m2.completed)

    def test_single_task_completes(self, scenario, assignment):
        wl = scenario.workload
        # pick a type the plan serves
        i = int(np.argmax(assignment.tc.sum(axis=1)))
        task = Task(arrival=0.0, task_type=i, uid=0,
                    deadline=float(wl.deadline_slack[i]))
        m = simulate_trace(scenario.datacenter, wl, assignment.tc,
                           assignment.pstates, [task], duration=1.0)
        assert m.completed[i] == 1
        assert m.total_reward == pytest.approx(float(wl.rewards[i]))

    def test_all_off_drops_everything(self, scenario):
        dc, wl = scenario.datacenter, scenario.workload
        off = np.asarray([dc.node_types[t].off_pstate
                          for t in dc.core_type])
        tc = np.zeros((wl.n_task_types, dc.n_cores))
        trace = generate_trace(wl, 2.0, np.random.default_rng(1))
        m = simulate_trace(dc, wl, tc, off, trace, duration=2.0)
        assert m.completed.sum() == 0
        assert m.dropped.sum() == len(trace)
