"""End-to-end observability: CLI --trace-out, cross-process merging.

The headline guarantees under test:

* ``repro simulate --trace-out`` writes a parseable event log whose
  profile is consistent (children within parents, tree within the
  measured wall time);
* worker snapshots merge back so the profile tree's *structure* is
  bit-identical for any ``--jobs`` value (engine seed order,
  ``parallel_map`` item order);
* enabling tracing changes no simulation number.
"""

import json
import time

import numpy as np

from repro import obs
from repro.cli import main
from repro.experiments.config import ScenarioConfig
from repro.experiments.engine import EngineConfig, parallel_map, run_set
from repro.obs import profile_from_snapshot, read_events_jsonl
from repro.obs.trace import span

TINY = ScenarioConfig(name="obs-tiny", n_nodes=10, n_crac=3)


def _traced_square(x: int) -> int:
    with span("item"):
        with span("work"):
            pass
    return x * x


class TestCliTraceOut:
    def test_simulate_trace_out_parseable_and_consistent(self, tmp_path,
                                                         capsys):
        log = tmp_path / "sim.jsonl"
        t0 = time.perf_counter()
        code = main(["simulate", "--nodes", "10", "--horizon", "5",
                     "--trace-out", str(log)])
        wall = time.perf_counter() - t0
        assert code == 0
        parsed = read_events_jsonl(log)
        assert parsed["meta"]["command"] == "simulate"
        assert parsed["spans"], "traced run recorded no spans"
        root = profile_from_snapshot(parsed)
        # stage timings nest: every node covers its children, and the
        # whole tree fits inside the measured wall time
        def check(node):
            assert node.child_total_s <= node.total_s + 1e-6
            for child in node.children.values():
                check(child)
        for top in root.children.values():
            check(top)
        assert root.total_s <= wall
        # the solver and DES hot paths both show up
        assert "three_stage" in root.children
        assert "des_replay" in root.children
        assert "lp.solves.stage1" in parsed["metrics"]
        assert "des.replays" in parsed["metrics"]

    def test_profile_subcommand_renders_log(self, tmp_path, capsys):
        log = tmp_path / "sim.jsonl"
        assert main(["simulate", "--nodes", "10", "--horizon", "5",
                     "--trace-out", str(log)]) == 0
        capsys.readouterr()
        assert main(["profile", str(log)]) == 0
        out = capsys.readouterr().out
        assert "three_stage" in out
        assert "des.replays" in out

    def test_profile_subcommand_json(self, tmp_path, capsys):
        log = tmp_path / "sim.jsonl"
        assert main(["simulate", "--nodes", "10", "--horizon", "5",
                     "--trace-out", str(log)]) == 0
        capsys.readouterr()
        assert main(["profile", str(log), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["profile"]["name"] == "total"
        assert "des.replays" in doc["metrics"]

    def test_profile_subcommand_missing_file(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "nope.jsonl")]) == 2

    def test_trace_out_leaves_obs_disabled(self, tmp_path, capsys):
        log = tmp_path / "sim.jsonl"
        main(["simulate", "--nodes", "10", "--horizon", "5",
              "--trace-out", str(log)])
        assert not obs.enabled()


class TestTracingIsInert:
    def test_tracing_changes_no_simulation_number(self):
        from repro.core import three_stage_assignment
        from repro.experiments.generator import generate_scenario
        from repro.simulate import simulate_trace
        from repro.workload import generate_trace

        sc = generate_scenario(TINY, 3)
        plan = three_stage_assignment(sc.datacenter, sc.workload,
                                      sc.p_const, psi=50.0)
        trace = generate_trace(sc.workload, 5.0,
                               np.random.default_rng(4))
        plain = simulate_trace(sc.datacenter, sc.workload, plan.tc,
                               plan.pstates, trace, duration=5.0)
        obs.enable()
        traced = simulate_trace(sc.datacenter, sc.workload, plan.tc,
                                plan.pstates, trace, duration=5.0)
        assert traced.total_reward == plain.total_reward
        assert np.array_equal(traced.completed, plain.completed)
        assert np.array_equal(traced.dropped, plain.dropped)
        assert np.array_equal(traced.busy_time, plain.busy_time)


class TestParallelMapMerge:
    def test_untraced_behavior_unchanged(self):
        assert parallel_map(_traced_square, [1, 2, 3], jobs=1) == [1, 4, 9]
        assert obs.current_tracer().records == []

    def test_item_order_merge_identical_across_jobs(self):
        structures = []
        results = []
        for jobs in (1, 2):
            with obs.capture() as snap_fn:
                results.append(parallel_map(_traced_square,
                                            list(range(6)), jobs=jobs))
                snapshot = snap_fn()
            structures.append(
                profile_from_snapshot(snapshot).structure())
        assert results[0] == results[1]
        assert structures[0] == structures[1]
        assert structures[0]["children"]["item"]["count"] == 6


class TestEngineMerge:
    def test_run_set_profile_structure_identical_across_jobs(self):
        outputs = []
        for jobs in (1, 2):
            with obs.capture() as snap_fn:
                result = run_set(TINY, n_runs=2, base_seed=1000,
                                 engine=EngineConfig(jobs=jobs))
                snapshot = snap_fn()
            assert len(result.runs) == 2
            outputs.append(snapshot)
        s1, s2 = outputs
        assert profile_from_snapshot(s1).structure() \
            == profile_from_snapshot(s2).structure()
        assert [r["path"] for r in s1["spans"]] \
            == [r["path"] for r in s2["spans"]]
        # counter-style metrics are exactly equal; histogram moments over
        # deterministic values too (wall-time histograms would differ,
        # but the engine records none at this level)
        assert s1["metrics"] == s2["metrics"]

    def test_cache_replay_preserves_profile(self, tmp_path):
        with obs.capture() as snap_fn:
            run_set(TINY, n_runs=2, base_seed=1000,
                    engine=EngineConfig(jobs=1, cache_dir=tmp_path))
            fresh = snap_fn()
        with obs.capture() as snap_fn:
            run_set(TINY, n_runs=2, base_seed=1000,
                    engine=EngineConfig(jobs=1, cache_dir=tmp_path,
                                        resume=True))
            replayed = snap_fn()
        assert profile_from_snapshot(fresh).structure() \
            == profile_from_snapshot(replayed).structure()
        assert replayed["metrics"]["engine.cache_hits"]["value"] == 2
