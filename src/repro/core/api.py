"""Unified solver API — one request shape for every first-step solver.

The four first-step entry points grew up separately and diverged:
``solve_stage1`` took ``(datacenter, workload, psi, p_const)``,
``solve_baseline`` and ``best_psi_assignment`` took
``(datacenter, workload, p_const)`` with different tuning keywords, and
``solve_exact`` adds its own enumeration knobs.  Their return shapes
diverged the same way (result, ``(result, search)`` tuples, …).

This module is the convergence point:

* :class:`SolveRequest` — the problem: a data center, a workload, a
  power cap, and optionally the previous solve's ``warm_start`` state.
* :class:`SolveOptions` — every tuning knob any solver accepts, all
  keyword-only, with the shared defaults.
* :func:`solve` — dispatch through the :mod:`repro.solvers` backend
  registry, selected by ``SolveOptions.backend`` (or the explicit
  ``method=`` override).  Built-ins: the classic ``"three_stage"``,
  ``"best_psi"``, ``"baseline"`` and ``"exact"`` methods registered
  here, plus the seeded metaheuristics ``"annealing"`` and
  ``"evolution"`` from :mod:`repro.solvers`.  Returns a
  :class:`SolveResult`.

Frozen result protocol
----------------------
Every :func:`solve` call returns a :class:`SolveResult` pairing

* ``outcome`` — the method-specific result object.  It satisfies
  :class:`SolveOutcome` (``.reward_rate``, ``.verify(datacenter,
  p_const)``, ``.to_dict()``); ``SolveResult`` re-exposes the same
  three members and transparently forwards every other attribute to the
  outcome, so existing call sites (``.tc``, ``.pstates``,
  ``.t_crac_out``, ``.power(...)``, …) keep working unchanged.
* ``state`` — an opaque :class:`repro.core.warmstart.SolveState`
  handle.  Feeding it back via ``SolveRequest.warm_start`` lets the
  next solve reuse search state, thermal linearizations and LP
  solutions.  The contract is strict: **a warm-started solve of an
  identical request is bit-identical to a cold solve**, and a state
  never changes *values* — only speed — unless
  ``SolveOptions.warm_seed`` explicitly allows the heuristic seeded
  search after a structural change (power cap moved).  ``state`` is
  JSON-serializable via ``to_dict()``/``from_dict()``; the serialized
  form drops the in-memory caches but keeps exact warm-starting for
  unchanged-cap requests.

These shapes — ``SolveRequest``/``SolveOptions`` in,
``SolveResult``/``SolveState`` out — are frozen as of this release;
new solver capabilities must extend ``SolveOptions`` with defaulted
fields rather than change any signature.  All legacy positional calling
conventions have been removed (they now raise ``TypeError``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Protocol, runtime_checkable

from repro import kernels
from repro.core.warmstart import (Digests, SolveState, WarmContext,
                                  capture_state, compute_digests,
                                  prepare_context)
from repro.datacenter.builder import DataCenter
from repro.obs import metrics as obs_metrics
from repro.solvers import get_solver, list_solvers, register_solver
from repro.workload.tasktypes import Workload

if TYPE_CHECKING:
    from repro.core.assignment import AssignmentResult

__all__ = ["SolveOptions", "SolveRequest", "SolveOutcome", "SolveResult",
           "SolveState", "BestPsiOutcome", "solve", "available_methods"]


@runtime_checkable
class SolveOutcome(Protocol):
    """What every first-step solver result can do.

    ``AssignmentResult``, ``BaselineSolution``, ``ExactResult``,
    :class:`BestPsiOutcome` and :class:`SolveResult` all satisfy this
    protocol.
    """

    @property
    def reward_rate(self) -> float: ...

    def verify(self, datacenter: DataCenter, p_const: float,
               tol: float = 1e-6) -> None: ...

    def to_dict(self) -> dict: ...


@dataclass(frozen=True)
class SolveOptions:
    """Tuning knobs shared across solvers (all keyword-only in use).

    Attributes
    ----------
    psi:
        ARR aggregation level for the single-ψ three-stage pipeline.
    psis:
        ψ levels evaluated by the ``best_psi`` method.
    search:
        CRAC outlet-temperature search mode (``"fast"`` or ``"full"``).
    coarse_step / final_step:
        Grid granularities of the ``"full"`` coarse-to-fine search.
    temp_step / max_assignments:
        Exact-enumeration knobs (``"exact"`` method only).
    kernel:
        Numeric kernel the solve runs under (``"vectorized"`` — the
        default — or the scalar ``"reference"`` oracle; see
        :mod:`repro.kernels` and ``docs/KERNELS.md``).
    warm_seed:
        Whether a warm start may seed the ``"fast"`` temperature search
        from the previous optimum after the power cap changed — a
        heuristic (different cap, possibly a different descent basin)
        that trades a bounded amount of reward for replan speed, so it
        is **off by default**: without it a warm start only engages the
        value-exact reuse levels and warm results match cold results
        bit-for-bit.  When only arrival rates changed the seed is exact
        and used regardless of this flag.
    backend:
        Solver backend :func:`solve` dispatches to when no explicit
        ``method=`` is given (see :mod:`repro.solvers`).  The default
        ``"three_stage"`` keeps every existing call site bit-identical.
    seed:
        RNG seed for stochastic backends (the metaheuristics).  The
        deterministic built-ins ignore it, but it still splits cache
        and warm-start digests so runs never mix.
    max_evals:
        Evaluation budget for metaheuristic backends — candidates
        repaired-and-scored, **never** wall-clock seconds, so budgeted
        searches stay bit-reproducible.
    thermal_backend:
        Linear-algebra backend of the heat-flow model the solve runs
        against: ``"auto"`` (the default — keep whatever the attached
        model chose by room size), ``"dense"`` (explicit inverse, the
        reference oracle) or ``"sparse"`` (CSR + cached ``splu``
        factorization; see ``docs/THERMAL.md``).  The setting is folded
        into the warm-start digests, so changing it never replays a
        stale cache entry.
    """

    psi: float = 50.0
    psis: tuple[float, ...] = (25.0, 50.0)
    search: str = "fast"
    coarse_step: float = 5.0
    final_step: float = 1.0
    temp_step: float = 3.0
    max_assignments: int = 200_000
    kernel: str = kernels.DEFAULT_KERNEL
    warm_seed: bool = False  # repro-lint: cache-exempt(changes the search path, never solution values; hashing it would defeat warm-start reuse)
    backend: str = "three_stage"
    seed: int = 0
    max_evals: int = 2000
    thermal_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.search not in ("fast", "full"):
            raise ValueError(
                f"unknown search mode {self.search!r} (use 'fast' or 'full')")
        if not self.psis:
            raise ValueError("need at least one psi value")
        if self.kernel not in kernels.available_kernels():
            raise ValueError(
                f"unknown kernel {self.kernel!r}; choose from "
                f"{', '.join(kernels.available_kernels())}")
        if self.max_evals < 1:
            raise ValueError("max_evals must be at least 1")
        if self.backend not in list_solvers():
            raise ValueError(
                f"unknown solver backend {self.backend!r}; choose from "
                f"{', '.join(list_solvers())}")
        if self.thermal_backend not in ("auto", "dense", "sparse"):
            raise ValueError(
                f"unknown thermal backend {self.thermal_backend!r} "
                "(use 'auto', 'dense' or 'sparse')")


@dataclass(frozen=True, eq=False)
class SolveRequest:
    """One first-step problem instance: room + workload + power cap.

    ``warm_start`` optionally carries the state of a previous solve;
    see the module docstring for the reuse contract.
    """

    datacenter: DataCenter
    workload: Workload
    p_const: float
    options: SolveOptions = field(default_factory=SolveOptions)
    warm_start: SolveState | None = None  # repro-lint: cache-exempt(a reuse hint; the digests decide what it may replay, so it cannot change results)

    def with_options(self, **changes: object) -> "SolveRequest":
        """A copy of this request with some options replaced."""
        return replace(self, options=replace(self.options, **changes))


@dataclass
class BestPsiOutcome:
    """Best-of-ψ result with the per-ψ assignments kept around.

    Satisfies :class:`SolveOutcome`; ``verify`` audits every per-ψ
    assignment (the paper reports them separately, so all must hold).
    """

    by_psi: dict[float, "AssignmentResult"]
    search: object | None = None

    @property
    def best(self) -> "AssignmentResult":
        return max(self.by_psi.values(), key=lambda r: r.reward_rate)

    @property
    def reward_rate(self) -> float:
        return self.best.reward_rate

    @property
    def reward_by_psi(self) -> dict[float, float]:
        return {psi: r.reward_rate for psi, r in self.by_psi.items()}

    def verify(self, datacenter: DataCenter, p_const: float,
               tol: float = 1e-6) -> None:
        for result in self.by_psi.values():
            result.verify(datacenter, p_const, tol=tol)

    def to_dict(self) -> dict:
        return {
            "method": "best_psi",
            "reward_rate": self.reward_rate,
            "best_psi": self.best.psi,
            "by_psi": {str(psi): r.to_dict()
                       for psi, r in self.by_psi.items()},
        }


@dataclass
class SolveResult:
    """A solver outcome paired with its warm-start state.

    Satisfies :class:`SolveOutcome` and forwards every attribute it does
    not define itself to :attr:`outcome`, so it is a drop-in for the
    bare result objects the solvers used to return.
    """

    outcome: SolveOutcome
    state: SolveState

    @property
    def reward_rate(self) -> float:
        return self.outcome.reward_rate

    def verify(self, datacenter: DataCenter, p_const: float,
               tol: float = 1e-6) -> None:
        self.outcome.verify(datacenter, p_const, tol=tol)

    def to_dict(self) -> dict:
        return self.outcome.to_dict()

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__"):
            raise AttributeError(name)
        return getattr(object.__getattribute__(self, "outcome"), name)


def _solve_three_stage(request: SolveRequest) -> SolveResult:
    from repro.core.assignment import three_stage_assignment

    opt = request.options
    digests = compute_digests(request.datacenter, request.workload,
                              request.p_const, opt)
    ctx = prepare_context(request.warm_start, digests,
                          method="three_stage", search=opt.search,
                          warm_seed=opt.warm_seed)
    obs_metrics.counter(f"solve.warm_level.{ctx.level}").inc()
    outcome = three_stage_assignment(
        request.datacenter, request.workload, request.p_const,
        psi=opt.psi, search=opt.search, warm=ctx)
    state = capture_state(digests, ctx, outcome, method="three_stage",
                          kernel=opt.kernel, search=opt.search,
                          psi=opt.psi)
    return SolveResult(outcome=outcome, state=state)


def _solve_best_psi(request: SolveRequest) -> SolveResult:
    from repro.core.assignment import best_psi_assignment

    opt = request.options
    prev = request.warm_start
    contexts: dict[float, WarmContext] = {}
    child_digests: dict[float, Digests] = {}
    for raw_psi in opt.psis:
        psi = float(raw_psi)
        digests = compute_digests(request.datacenter, request.workload,
                                  request.p_const, opt, psi=psi)
        child_digests[psi] = digests
        child = prev.children.get(str(psi)) if prev is not None else None
        contexts[psi] = prepare_context(child, digests,
                                        method="three_stage",
                                        search=opt.search,
                                        warm_seed=opt.warm_seed)
    _, by_psi = best_psi_assignment(
        request.datacenter, request.workload, request.p_const,
        psis=opt.psis, search=opt.search, warm=contexts)
    outcome = BestPsiOutcome(by_psi=by_psi)
    children = {
        str(psi): capture_state(child_digests[psi], contexts[psi], result,
                                method="three_stage", kernel=opt.kernel,
                                search=opt.search, psi=psi)
        for psi, result in by_psi.items()
    }
    parent_digests = compute_digests(request.datacenter, request.workload,
                                     request.p_const, opt)
    best = outcome.best
    state = SolveState(
        method="best_psi", kernel=opt.kernel, search=opt.search,
        digests=parent_digests, psi=None,
        t_crac_out=tuple(float(t) for t in best.t_crac_out),
        objective=float(outcome.reward_rate), children=children)
    return SolveResult(outcome=outcome, state=state)


def _solve_generic(request: SolveRequest, method: str,
                   run: Callable[[SolveRequest], SolveOutcome]
                   ) -> SolveResult:
    """Request-level replay wrapper for solvers without deeper warm paths.

    The baseline and exact solvers are deterministic in the request, so
    an unchanged request replays the stored outcome; anything else runs
    cold.
    """
    opt = request.options
    digests = compute_digests(request.datacenter, request.workload,
                              request.p_const, opt)
    prev = request.warm_start
    if prev is not None and prev.method == method \
            and prev.digests.request == digests.request \
            and prev.runtime is not None \
            and prev.runtime.outcome is not None:
        obs_metrics.counter("solve.replays").inc()
        outcome: SolveOutcome = prev.runtime.outcome
    else:
        outcome = run(request)
    ctx = WarmContext(stage1_key=digests.stage1)
    state = capture_state(digests, ctx, outcome, method=method,
                          kernel=opt.kernel, search=opt.search, psi=None)
    return SolveResult(outcome=outcome, state=state)


def _run_baseline(request: SolveRequest) -> SolveOutcome:
    from repro.core.baseline import solve_baseline

    opt = request.options
    solution, search = solve_baseline(
        request.datacenter, request.workload, request.p_const,
        search=opt.search, coarse_step=opt.coarse_step,
        final_step=opt.final_step)
    solution.search = search
    return solution


def _run_exact(request: SolveRequest) -> SolveOutcome:
    from repro.core.exact import solve_exact

    opt = request.options
    return solve_exact(
        request.datacenter, request.workload, request.p_const,
        temp_step=opt.temp_step, max_assignments=opt.max_assignments)


def _solve_baseline(request: SolveRequest) -> SolveResult:
    return _solve_generic(request, "baseline", _run_baseline)


def _solve_exact(request: SolveRequest) -> SolveResult:
    return _solve_generic(request, "exact", _run_exact)


register_solver("three_stage", _solve_three_stage, replace=True)
register_solver("best_psi", _solve_best_psi, replace=True)
register_solver("baseline", _solve_baseline, replace=True)
register_solver("exact", _solve_exact, replace=True)


def available_methods() -> tuple[str, ...]:
    """Names accepted by :func:`solve` (every registered backend)."""
    return list_solvers()


def solve(request: SolveRequest, *, method: str | None = None
          ) -> SolveResult:
    """Solve one first-step problem with the named technique.

    ``method`` overrides ``request.options.backend``; with neither set
    the default is the paper's ``"three_stage"`` decomposition.  The
    name is looked up in the :mod:`repro.solvers` registry, so externally
    registered backends dispatch exactly like the built-ins.

    Every return value is a :class:`SolveResult`: the method-specific
    outcome (``.reward_rate``, ``.verify(datacenter, p_const)``,
    ``.to_dict()`` plus forwarded attributes) together with the
    ``.state`` handle for warm-starting the next solve.  The solve runs
    under ``request.options.kernel`` (scoped — the process-wide kernel
    selection is restored afterwards).
    """
    name = request.options.backend if method is None else method
    solver = get_solver(name)
    backend = request.options.thermal_backend
    if backend != "auto" and request.datacenter.thermal is not None:
        converted = request.datacenter.with_thermal_backend(backend)
        if converted is not request.datacenter:
            request = replace(request, datacenter=converted)
    with kernels.use_kernel(request.options.kernel):
        return solver(request)
