"""Baseline assignment — P-state 0 or off (Section VII.A, Eqs. 19-22).

The paper compares against an adaptation of Parolini et al. [26]: each
compute node *j* devotes a fraction ``FRAC(i, j)`` of its cores to task
type *i*, every active core runs P-state 0, the rest are off.  For fixed
CRAC outlet temperatures this is the LP of Eq. 21; the same discretized
outlet-temperature search used by Stage 1 closes the loop, keeping the
comparison apples-to-apples.

After the LP, the paper rounds: the number of cores used at a node
(Eq. 22) may be fractional, so all of the node's fractions are scaled
down by a common factor until the core count is integral.

Note (DESIGN.md §3.4): the printed Eq. 19 omits the ``|cores_j|`` factor
in the node power; we include it, consistent with Eq. 22 and with the
reward term of Eq. 21.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datacenter.builder import DataCenter
from repro.optimize.linprog import InfeasibleError, LinearProgram
from repro.optimize.search import (SearchResult, coarse_to_fine_search,
                                   uniform_then_coordinate_search)
from repro.thermal.constraints import ThermalLinearization
from repro.workload.tasktypes import Workload

__all__ = ["BaselineSolution", "solve_baseline_fixed_temps", "solve_baseline"]


@dataclass
class BaselineSolution:
    """Result of the P0-or-off baseline at one outlet-temperature vector.

    Attributes
    ----------
    frac:
        Rounded ``FRAC`` matrix, shape ``(T, NCN)``.
    cores_on:
        Integer number of P-state-0 cores per node (Eq. 22 after
        rounding); the rest of each node's cores are off.
    reward_rate:
        Eq. 21 objective evaluated on the *rounded* fractions — what the
        baseline actually achieves.
    pstates:
        Global per-core P-states (0 or the off index) realizing
        ``cores_on``.
    tc:
        Desired-rate matrix equivalent, ``(T, NCORES)``, for driving the
        same dynamic scheduler / DES as the three-stage technique.
    node_power_kw:
        Eq. 1 node powers under ``pstates``.
    t_crac_out:
        The outlet temperatures this solution was computed at.
    search:
        Outlet-temperature search trace when solved through
        :func:`solve_baseline` via the unified API (else ``None``).
    """

    frac: np.ndarray
    cores_on: np.ndarray
    reward_rate: float
    pstates: np.ndarray
    tc: np.ndarray
    node_power_kw: np.ndarray
    t_crac_out: np.ndarray
    search: SearchResult | None = None

    def verify(self, datacenter: DataCenter, p_const: float,
               tol: float = 1e-6) -> None:
        """Assert the cap and redlines hold (the shared result protocol).

        Mirrors ``AssignmentResult.verify`` so baseline solutions can be
        audited through the same code paths.
        """
        from repro.datacenter.power import total_power

        model = datacenter.require_thermal()
        margin = model.redline_margin(self.t_crac_out, self.node_power_kw,
                                      datacenter.redline_c)
        if margin.min() < -tol:
            raise AssertionError(
                f"redline violated by {-margin.min():.4f} C at unit "
                f"{int(margin.argmin())}")
        breakdown = total_power(datacenter, self.t_crac_out,
                                self.node_power_kw)
        if breakdown.total > p_const + tol * max(1.0, p_const):
            raise AssertionError(
                f"power cap violated: {breakdown.total:.3f} kW > "
                f"{p_const:.3f} kW")

    def to_dict(self) -> dict:
        """JSON-friendly summary (the :class:`SolveOutcome` protocol)."""
        return {
            "method": "baseline",
            "reward_rate": self.reward_rate,
            "t_crac_out": self.t_crac_out.tolist(),
            "cores_on": self.cores_on.tolist(),
        }


def solve_baseline_fixed_temps(datacenter: DataCenter, workload: Workload,
                               linearization: ThermalLinearization,
                               p_const: float) -> BaselineSolution | None:
    """Solve Eq. 21 at fixed CRAC outlets, then round (Eq. 22).

    Returns ``None`` for infeasible outlet temperatures, mirroring
    :func:`repro.core.stage1.solve_stage1_fixed_temps`.
    """
    lin = linearization
    base = datacenter.node_base_power
    gain = lin.inlet_gain
    base_inlet_load = gain @ base
    if np.any(base_inlet_load > lin.redline_rhs + 1e-9):
        return None
    base_total = float(base.sum()) + lin.crac_const + float(lin.crac_coeff @ base)
    if base_total > p_const + 1e-9:
        return None

    t_count = workload.n_task_types
    n_nodes = datacenter.n_nodes
    ecs0 = workload.ecs[:, :, 0]                 # (T, NTYPES) at P-state 0
    # per-node constants
    n_cores = np.asarray([n.n_cores for n in datacenter.nodes], dtype=float)
    p0 = np.asarray([n.spec.p0_power_kw for n in datacenter.nodes])
    type_of = datacenter.node_type_index

    lp = LinearProgram(name="baseline", maximize=True)
    var = np.full((t_count, n_nodes), -1, dtype=int)
    for j in range(n_nodes):
        jt = type_of[j]
        for i in range(t_count):
            speed = float(ecs0[i, jt])
            if speed <= 0.0:
                continue
            # deadline handling: FRAC(i, j) = 0 when m_i < 1/ECS(i,j,0)
            if 1.0 / speed > float(workload.deadline_slack[i]):
                continue
            reward = float(workload.rewards[i]) * speed * n_cores[j]
            var[i, j] = lp.add_variables(1, lb=0.0, ub=1.0,
                                         objective=reward)[0]
    if lp.num_variables == 0:
        return None

    # Constraint 2: per node, fractions sum to at most 1.
    for j in range(n_nodes):
        coeffs = {var[i, j]: 1.0 for i in range(t_count) if var[i, j] >= 0}
        if coeffs:
            lp.add_le_constraint(coeffs, 1.0)
    # Constraint 1: per task type, executed rate <= arrival rate.
    for i in range(t_count):
        coeffs = {var[i, j]: float(n_cores[j] * ecs0[i, type_of[j]])
                  for j in range(n_nodes) if var[i, j] >= 0}
        if coeffs:
            lp.add_le_constraint(coeffs, float(workload.arrival_rates[i]))
    # Constraints 3/4: power cap and redlines — node core power is
    # p0_j * n_cores_j * sum_i FRAC(i, j).
    node_core_coeff = p0 * n_cores
    rhs_power = p_const - base_total
    power_coeffs: dict[int, float] = {}
    for j in range(n_nodes):
        w = float((1.0 + lin.crac_coeff[j]) * node_core_coeff[j])
        for i in range(t_count):
            if var[i, j] >= 0:
                power_coeffs[var[i, j]] = w
    lp.add_le_constraint(power_coeffs, rhs_power)
    rhs_redline = lin.redline_rhs - base_inlet_load
    for u in range(gain.shape[0]):
        coeffs = {}
        for j in range(n_nodes):
            w = float(gain[u, j] * node_core_coeff[j])
            if w == 0.0:
                continue
            for i in range(t_count):
                if var[i, j] >= 0:
                    coeffs[var[i, j]] = w
        if coeffs:
            lp.add_le_constraint(coeffs, float(rhs_redline[u]))

    try:
        sol = lp.solve()
    except InfeasibleError:
        return None

    frac = np.zeros((t_count, n_nodes))
    mask = var >= 0
    frac[mask] = sol.x[var[mask]]

    # Eq. 22 rounding: scale each node's fractions down so that the used
    # core count is integral.
    used = n_cores * frac.sum(axis=0)
    cores_on = np.floor(used + 1e-9).astype(int)
    scale = np.ones(n_nodes)
    nonzero = used > 1e-12
    scale[nonzero] = cores_on[nonzero] / used[nonzero]
    frac *= scale[None, :]

    # rounded reward (what the baseline actually earns)
    reward = 0.0
    for i in range(t_count):
        reward += float(workload.rewards[i]) * float(
            (n_cores * ecs0[i, type_of] * frac[i]).sum())

    # realize P-states: first cores_on cores of each node at P0, rest off
    pstates = datacenter.all_off_pstates()
    tc = np.zeros((t_count, datacenter.n_cores))
    for node in datacenter.nodes:
        k = int(cores_on[node.index])
        if k <= 0:
            continue
        first = node.first_core
        pstates[first:first + k] = 0
        node_rate = (n_cores[node.index]
                     * ecs0[:, type_of[node.index]]
                     * frac[:, node.index])
        tc[:, first:first + k] = (node_rate / k)[:, None]
    node_power = datacenter.node_power_kw(pstates)
    # validity of the linearized CRAC power at the rounded solution
    t_in = lin.inlet_temperatures(node_power)
    n_crac = lin.t_crac_out.size
    if np.any(t_in[:n_crac] < lin.t_crac_out - 1e-6):
        return None
    return BaselineSolution(
        frac=frac,
        cores_on=cores_on,
        reward_rate=reward,
        pstates=pstates,
        tc=tc,
        node_power_kw=node_power,
        t_crac_out=lin.t_crac_out.copy(),
    )


def solve_baseline(datacenter: DataCenter, workload: Workload,
                   p_const: float, *, search: str = "fast",
                   coarse_step: float = 5.0, final_step: float = 1.0
                   ) -> tuple[BaselineSolution, SearchResult]:
    """Baseline with the same CRAC outlet-temperature search as Stage 1."""
    model = datacenter.require_thermal()
    redline = datacenter.redline_c
    lows = [c.outlet_range_c[0] for c in datacenter.cracs]
    highs = [c.outlet_range_c[1] for c in datacenter.cracs]
    cop_model = datacenter.cracs[0].cop_model
    cache: dict[bytes, BaselineSolution] = {}

    def objective(t_vec: np.ndarray) -> float | None:
        lin = ThermalLinearization.build(model, t_vec, redline, cop_model)
        sol = solve_baseline_fixed_temps(datacenter, workload, lin, p_const)
        if sol is None:
            return None
        cache[t_vec.tobytes()] = sol
        return sol.reward_rate

    if search == "fast":
        result = uniform_then_coordinate_search(
            objective, datacenter.n_crac, min(lows), max(highs),
            step=final_step, maximize=True)
    elif search == "full":
        result = coarse_to_fine_search(
            objective, datacenter.n_crac, min(lows), max(highs),
            coarse_step=coarse_step, final_step=final_step,
            uniform_first=True, maximize=True)
    else:
        raise ValueError(f"unknown search mode {search!r} (use 'fast' or 'full')")
    return cache[result.temperatures.tobytes()], result
