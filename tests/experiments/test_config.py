"""Tests for repro.experiments.config — the simulation-set recipes."""

import pytest

from repro.experiments.config import (PAPER_SET_1, PAPER_SET_2, PAPER_SET_3,
                                      ScenarioConfig, paper_sets, scaled_down)


class TestPaperSets:
    def test_three_sets(self):
        assert [c.name for c in paper_sets()] == ["set1", "set2", "set3"]

    def test_set1_knobs(self):
        assert PAPER_SET_1.static_fraction == 0.3
        assert PAPER_SET_1.v_prop == 0.1

    def test_set2_knobs(self):
        assert PAPER_SET_2.static_fraction == 0.3
        assert PAPER_SET_2.v_prop == 0.3

    def test_set3_knobs(self):
        assert PAPER_SET_3.static_fraction == 0.2
        assert PAPER_SET_3.v_prop == 0.3

    def test_shared_paper_defaults(self):
        for cfg in paper_sets():
            assert cfg.n_nodes == 150
            assert cfg.n_crac == 3
            assert cfg.n_task_types == 8
            assert cfg.v_ecs == 0.1
            assert cfg.v_arrival == 0.3
            assert cfg.psis == (25.0, 50.0)


class TestScaling:
    def test_scaled_down_changes_only_size(self):
        small = scaled_down(PAPER_SET_2, 30)
        assert small.n_nodes == 30
        assert small.v_prop == PAPER_SET_2.v_prop
        assert small.static_fraction == PAPER_SET_2.static_fraction

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ScenarioConfig(n_nodes=0)
        with pytest.raises(ValueError, match="psi"):
            ScenarioConfig(psis=())

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_SET_1.n_nodes = 5
