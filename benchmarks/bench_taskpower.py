"""Task-dependent power extension — safety and cost of power-aware rates.

Section III.C sketches the model extension ("a third index would have to
be added to pi").  This benchmark implements the scenario that makes the
extension matter: a compute-heavy task mix draws above the nominal
P-state power, so the classic Stage 3 rates (budgeted at nominal,
always-busy draw) overshoot the cap, while the power-aware Stage 3 stays
inside it — and the benchmark measures what that safety costs in reward.
"""

import numpy as np

from repro.core import three_stage_assignment
from repro.core.stage3_power import solve_stage3_power_aware
from repro.power.taskpower import TaskPowerModel, expected_node_power
from repro.thermal.constraints import ThermalLinearization

SPREADS = (0.0, 0.1, 0.2, 0.3)


def bench_taskpower(benchmark, capsys, bench_scenario):
    sc = bench_scenario
    dc, wl = sc.datacenter, sc.workload
    plan = three_stage_assignment(dc, wl, sc.p_const, psi=50.0)
    lin = ThermalLinearization.build(dc.thermal, plan.t_crac_out,
                                     dc.redline_c)

    def sweep():
        rows = []
        for spread in SPREADS:
            model = TaskPowerModel(
                factors=np.full(wl.n_task_types, 1.0 + spread),
                idle_fraction=0.6)
            classic_p = expected_node_power(dc, wl, plan.pstates, plan.tc,
                                            model)
            classic_total = classic_p.sum() + lin.crac_power(classic_p)
            aware = solve_stage3_power_aware(dc, wl, plan.pstates, model,
                                             lin, sc.p_const)
            aware_p = expected_node_power(dc, wl, plan.pstates, aware.tc,
                                          model)
            aware_total = aware_p.sum() + lin.crac_power(aware_p)
            rows.append((spread, classic_total, aware_total,
                         aware.reward_rate))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print("task-dependent power: classic vs power-aware Stage 3 "
              f"(cap {sc.p_const:.1f} kW, classic reward "
              f"{plan.reward_rate:.1f}/s)")
        print(f"{'over-nominal':>13}{'classic kW':>12}{'aware kW':>10}"
              f"{'aware reward':>14}{'reward cost':>13}")
        for spread, classic_kw, aware_kw, reward in rows:
            cost = 100 * (1 - reward / plan.reward_rate)
            flag = " OVER CAP" if classic_kw > sc.p_const else ""
            print(f"{spread:>12.0%}{classic_kw:>12.2f}{aware_kw:>10.2f}"
                  f"{reward:>14.1f}{cost:>12.1f}%{flag}")

    for spread, classic_kw, aware_kw, _ in rows:
        assert aware_kw <= sc.p_const * (1 + 1e-6)
        if spread >= 0.2:
            # heavy mixes must expose the classic overshoot
            assert classic_kw > sc.p_const
