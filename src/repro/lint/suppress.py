"""Inline suppression comments.

Two forms, mirroring the usual lint pragmas:

* ``# repro-lint: disable=RL001`` (or ``RL001,RL020``) on the reported
  line suppresses those codes for that line only;
* ``# repro-lint: disable-file=RL004`` anywhere in the file (by
  convention near the top) suppresses the codes for the whole file;
  ``disable-file=all`` silences every rule.

A per-line pragma covers its whole *logical* line: on any line of a
multi-line statement (the ``def`` line of a wrapped signature, a
continuation line, the closing paren) it suppresses findings anchored
anywhere in that statement.  A decorator is its own logical line, so a
pragma trailing ``@decorator`` does **not** reach the ``def`` below it
— put the pragma on the ``def`` line, where rules anchor their
findings.

Comments are located with :mod:`tokenize`, so the pragma text inside a
string literal is inert.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppressions", "parse_suppressions"]

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"(all|RL\d{3}(?:\s*,\s*RL\d{3})*)")


@dataclass
class Suppressions:
    """Suppression state for one file."""

    line_codes: dict[int, frozenset[str]] = field(default_factory=dict)
    file_codes: frozenset[str] = frozenset()
    file_all: bool = False

    def is_suppressed(self, code: str, line: int) -> bool:
        if self.file_all or code in self.file_codes:
            return True
        return code in self.line_codes.get(line, frozenset())


def parse_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for pragma comments.

    Tokenization errors (the engine lints only files that already
    parsed, but be safe) yield an empty suppression set.
    """
    line_codes: dict[int, set[str]] = {}
    file_codes: set[str] = set()
    file_all = False
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions()

    span_start: int | None = None       # first line of the logical line
    last_line = 0                       # last line seen in this span
    pending: set[str] = set()           # per-line codes found in-span

    def flush(end_line: int) -> None:
        nonlocal span_start, pending
        if span_start is not None and pending:
            for lineno in range(span_start, end_line + 1):
                line_codes.setdefault(lineno, set()).update(pending)
        span_start = None
        pending = set()

    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                continue
            kind, codes_text = match.groups()
            if codes_text == "all":
                if kind == "disable-file":
                    file_all = True
                continue                 # per-line "all" is not a thing
            codes = {c.strip() for c in codes_text.split(",")}
            if kind == "disable-file":
                file_codes.update(codes)
            elif span_start is None:
                # a comment-only line: covers just that line
                line_codes.setdefault(tok.start[0], set()).update(codes)
            else:
                pending.update(codes)
        elif tok.type == tokenize.NEWLINE:
            flush(max(last_line, tok.start[0]))
        elif tok.type in (tokenize.NL, tokenize.INDENT,
                          tokenize.DEDENT, tokenize.ENDMARKER):
            continue
        else:
            if span_start is None:
                span_start = tok.start[0]
            last_line = tok.end[0]
    flush(last_line)                     # file ending mid-statement

    return Suppressions(
        line_codes={ln: frozenset(cs) for ln, cs in line_codes.items()},
        file_codes=frozenset(file_codes),
        file_all=file_all)
