"""Data center substrate: hardware catalog, layout, assembly, power accounting."""

from repro.datacenter.builder import DataCenter, build_datacenter
from repro.datacenter.coretypes import (NodeTypeSpec, hp_proliant_dl785_g5,
                                        nec_express5800_a1080a, paper_node_types)
from repro.datacenter.crac import CRACUnit
from repro.datacenter.layout import (RACK_LABELS, TABLE_II_RANGES, LabelRanges,
                                     Layout, build_layout, hot_aisle_split_matrix)
from repro.datacenter.nodes import ComputeNode
from repro.datacenter.power import (PowerBounds, PowerBreakdown, power_bounds,
                                    total_power)

__all__ = [
    "DataCenter",
    "build_datacenter",
    "NodeTypeSpec",
    "hp_proliant_dl785_g5",
    "nec_express5800_a1080a",
    "paper_node_types",
    "CRACUnit",
    "RACK_LABELS",
    "TABLE_II_RANGES",
    "LabelRanges",
    "Layout",
    "build_layout",
    "hot_aisle_split_matrix",
    "ComputeNode",
    "PowerBounds",
    "PowerBreakdown",
    "power_bounds",
    "total_power",
]
