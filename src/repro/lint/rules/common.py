"""AST helpers shared by the rule implementations.

The naming helpers live in :mod:`repro.lint.project` (the project model
needs them without importing the rules package); they are re-exported
here because every per-file rule historically imports them from this
module.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.project import (dotted_name, imported_modules,
                                imported_names)

__all__ = ["dotted_name", "imported_modules", "imported_names",
           "walk_identifiers"]


def walk_identifiers(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr in a subtree."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr
