"""Live rolling-horizon control service (deployment story, Section VII).

The paper positions the three-stage technique as something a data
center would re-run "when conditions change"; :mod:`repro.serve` makes
that concrete: a long-running control loop that consumes a streaming
arrival trace tick by tick, replans with warm-started incremental
solves (:class:`repro.core.warmstart.SolveState` threading), and sheds
load when the room saturates.  See ``docs/SERVING.md``.
"""

from repro.serve.service import (ControlService, ServeConfig, ServeResult,
                                 TickRecord, serve_trace)

__all__ = ["ControlService", "ServeConfig", "ServeResult", "TickRecord",
           "serve_trace"]
