"""Independent verification of the Stage 1 LP.

The Stage 1 solver relies on two nontrivial reductions (DESIGN.md §3.1):
node-level segment aggregation and the concave hull.  These tests verify
its optimum against implementations that use *neither* — random feasible
allocations (the LP must dominate them all) and a dense grid search on a
tiny room (the LP must match its best point).
"""

import numpy as np
import pytest

from repro.core.stage1 import (build_arr_functions, distribute_node_power,
                               solve_stage1_fixed_temps)
from repro.datacenter import build_datacenter, power_bounds
from repro.datacenter.coretypes import shrunken_node_types
from repro.thermal import ThermalLinearization, attach_thermal_model
from repro.workload import generate_workload


@pytest.fixture(scope="module")
def tiny():
    rng = np.random.default_rng(11)
    dc = build_datacenter(n_nodes=4, n_crac=2,
                          node_types=shrunken_node_types(2), rng=rng,
                          nodes_per_rack=4)
    attach_thermal_model(dc, rng=rng)
    wl = generate_workload(dc, rng, n_task_types=4)
    pc = power_bounds(dc).p_const
    lin = ThermalLinearization.build(
        dc.thermal, np.full(dc.n_crac, 16.0), dc.redline_c)
    arrs = build_arr_functions(dc, wl, 100.0)
    return dc, wl, pc, lin, arrs


def objective_of(dc, arrs, core_power):
    """Sum of concave-ARR values at given per-core powers."""
    total = 0.0
    for node in dc.nodes:
        hull = arrs[node.type_index].concave
        total += hull(core_power[list(node.core_indices)]).sum()
    return total


def feasible(dc, lin, pc, core_power):
    node_power = dc.node_base_power + np.asarray([
        core_power[list(n.core_indices)].sum() for n in dc.nodes])
    if np.any(lin.inlet_gain @ node_power > lin.redline_rhs + 1e-9):
        return False
    return node_power.sum() + lin.crac_power(node_power) <= pc + 1e-9


class TestLPDominatesSampledAllocations:
    def test_random_feasible_points_never_beat_lp(self, tiny):
        dc, wl, pc, lin, arrs = tiny
        sol = solve_stage1_fixed_temps(dc, arrs, lin, pc)
        assert sol is not None
        rng = np.random.default_rng(0)
        p0 = np.asarray([dc.node_types[t].p0_power_kw
                         for t in dc.core_type])
        beaten = 0
        for _ in range(300):
            candidate = rng.uniform(0.0, 1.0, dc.n_cores) * p0
            if not feasible(dc, lin, pc, candidate):
                continue
            value = objective_of(dc, arrs, candidate)
            assert value <= sol.objective + 1e-6
            beaten += 1
        assert beaten > 30     # the sampler found plenty of feasible points

    def test_scaled_down_lp_solution_stays_feasible(self, tiny):
        """Scaling the LP's own powers down keeps feasibility (the
        constraint set is monotone in power)."""
        dc, wl, pc, lin, arrs = tiny
        sol = solve_stage1_fixed_temps(dc, arrs, lin, pc)
        for frac in (0.0, 0.3, 0.7, 1.0):
            assert feasible(dc, lin, pc, frac * sol.core_power_kw)


class TestLPMatchesGridSearch:
    def test_single_scalar_parametrization(self, tiny):
        """Restrict to uniform per-core power p: the LP optimum must be
        at least the best uniform point (a subset of its feasible set)."""
        dc, wl, pc, lin, arrs = tiny
        sol = solve_stage1_fixed_temps(dc, arrs, lin, pc)
        p0_min = min(t.p0_power_kw for t in dc.node_types)
        best_uniform = -np.inf
        for p in np.linspace(0.0, p0_min, 60):
            candidate = np.full(dc.n_cores, p)
            if feasible(dc, lin, pc, candidate):
                best_uniform = max(best_uniform,
                                   objective_of(dc, arrs, candidate))
        assert sol.objective >= best_uniform - 1e-6

    def test_distribution_reproduces_lp_objective(self, tiny):
        """distribute_node_power must realize exactly the LP value."""
        dc, wl, pc, lin, arrs = tiny
        sol = solve_stage1_fixed_temps(dc, arrs, lin, pc)
        realized = objective_of(dc, arrs, sol.core_power_kw)
        assert realized == pytest.approx(sol.objective, rel=1e-6)


class TestKnapsackStructure:
    def test_lp_equals_greedy_when_only_power_binds(self, tiny):
        """With redlines relaxed, Stage 1 is a continuous knapsack: fill
        segments globally by reward-per-(1+crac_coeff)-watt.  The LP must
        match the greedy optimum."""
        dc, wl, pc, lin, arrs = tiny
        relaxed = ThermalLinearization(
            t_crac_out=lin.t_crac_out,
            inlet_const=lin.inlet_const,
            inlet_gain=lin.inlet_gain,
            redline_rhs=np.full_like(lin.redline_rhs, 1e9),
            crac_const=lin.crac_const,
            crac_coeff=lin.crac_coeff,
        )
        sol = solve_stage1_fixed_temps(dc, arrs, relaxed, pc)
        assert sol is not None
        # greedy continuous knapsack over (node, segment) items
        base = dc.node_base_power
        budget = pc - base.sum() - relaxed.crac_const \
            - float(relaxed.crac_coeff @ base)
        items = []
        for node in dc.nodes:
            lengths, slopes = arrs[node.type_index] \
                .segments_decreasing_slope()
            cost_rate = 1.0 + relaxed.crac_coeff[node.index]
            for length, slope in zip(lengths, slopes):
                cap = length * node.n_cores
                items.append((slope / cost_rate, cap, slope, cost_rate))
        items.sort(key=lambda it: -it[0])
        reward = 0.0
        for _, cap, slope, cost_rate in items:
            if budget <= 1e-12:
                break
            take = min(cap, budget / cost_rate)
            reward += take * slope
            budget -= take * cost_rate
        assert sol.objective == pytest.approx(reward, rel=1e-6)
