"""Epoch-controller extension — static plan vs re-planning under drift.

The paper sizes one static assignment for fixed arrival rates.  When the
load actually drifts (here: a surge to 150% of nominal), a static plan
sized for nominal load leaves reward on the table during the surge and
over-provisions during the lull.  This benchmark quantifies the value of
re-running the first step each epoch.
"""

import numpy as np

from repro.core import EpochController, three_stage_assignment
from repro.experiments import ScenarioConfig, generate_scenario
from repro.simulate import simulate_trace
from repro.workload import StepProfile, generate_nonstationary_trace


def bench_epoch_controller(benchmark, capsys, scale):
    sc = generate_scenario(
        ScenarioConfig(name="drift", n_nodes=min(15, scale.n_nodes)), 77)
    dc, wl = sc.datacenter, sc.workload
    # load surge: 70% nominal, then 150%, then back
    profile = StepProfile(
        boundaries=np.asarray([60.0, 120.0]),
        rate_levels=np.vstack([0.7 * wl.arrival_rates,
                               1.5 * wl.arrival_rates,
                               0.7 * wl.arrival_rates]))
    horizon = 180.0
    rng_trace = np.random.default_rng(5)

    def run_controller():
        ctrl = EpochController(dc, wl, sc.p_const, epoch_s=60.0,
                               tau_s=10.0)
        return ctrl.run(profile, horizon_s=horizon,
                        rng=np.random.default_rng(5))

    result = benchmark.pedantic(run_controller, rounds=1, iterations=1)

    # static comparison: one plan sized for nominal rates, same stream
    static_plan = three_stage_assignment(dc, wl, sc.p_const, psi=50.0)
    trace = generate_nonstationary_trace(wl, profile, horizon,
                                         np.random.default_rng(5))
    static_metrics = simulate_trace(dc, wl, static_plan.tc,
                                    static_plan.pstates, trace,
                                    duration=horizon)

    with capsys.disabled():
        print()
        print("re-planning vs static plan under a 0.7x -> 1.5x -> 0.7x "
              "load surge")
        print(f"{'epoch':>12}{'offered/s':>11}{'planned/s':>11}"
              f"{'achieved/s':>12}")
        for e in result.epochs:
            print(f"{e.start_s:>5.0f}-{e.end_s:<6.0f}"
                  f"{e.rates.sum():>11.1f}{e.plan.reward_rate:>11.1f}"
                  f"{e.metrics.reward_rate:>12.1f}")
        print(f"controller total reward rate: {result.reward_rate:10.1f}/s")
        print(f"static-plan reward rate     : "
              f"{static_metrics.reward_rate:10.1f}/s")
        delta = 100 * (result.reward_rate - static_metrics.reward_rate) \
            / static_metrics.reward_rate
        print(f"re-planning gain            : {delta:+.2f}%")
