"""Receding-horizon predictive control on the transient thermal model.

The paper's Section V.A premise — "temperature evolution in the data
center is in orders of minutes, while the execution of a task is in
orders of seconds" — is used *defensively* by the interval controllers
(:func:`repro.core.controller.plan_with_transient_guard` assumes the
candidate plan persists until the room settles and derates the power
cap until that worst case is clean).  This module uses the same slow
dynamics *offensively*, the receding-horizon formulation of Van Damme
et al. (PAPERS.md):

* each decision solves the first-step assignment for the next ``H``
  forecast rate vectors (:mod:`repro.control.forecast`), chaining
  :class:`~repro.core.warmstart.SolveState` through the horizon — rates
  are the only thing changing between steps, which is exactly the
  ``"stage1"`` reuse level, so Stage 1/2 replay bit-identically and
  only the Stage 3 rate LP re-solves per step;
* the chained plans are pushed through
  :func:`~repro.thermal.transient.simulate_transient` from the current
  room state — step ``j``'s transition starts from where step ``j-1``
  actually left the air, and the *terminal* step is integrated to
  settling, so the prediction is never more optimistic than the
  interval guard's persistent-plan assumption, only better informed;
* when the predicted trajectory overshoots a redline the planner first
  escalates **pre-cooling** — re-solving the committed step against a
  redline-tightened view of the room
  (:meth:`~repro.datacenter.builder.DataCenter.with_redline_margin`),
  which banks cold-air headroom at full compute capacity — and only
  then falls back to the interval controller's cap-derate loop, so a
  hazardous transition costs cooling margin before it costs compute;
* when nothing is feasible the planner degrades to shedding load
  (:func:`~repro.core.controller.shed_plan`), never crashing the run.

Warm chains are pooled per problem structure
(:class:`~repro.core.warmstart.WarmPool`): the true room and each
pre-cool tightening level keep independent chains, so every reuse the
solver engages stays value-exact.  See docs/CONTROL.md for the full
horizon/forecast/warm-replay contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro import kernels
from repro.control.forecast import FORECAST_KINDS, make_forecast
from repro.core.api import SolveOptions, SolveRequest, SolveResult, solve
from repro.core.controller import idle_start_t_out, shed_plan
from repro.core.warmstart import WarmPool, compute_digests
from repro.datacenter.builder import DataCenter
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate as obs_annotate
from repro.obs.trace import span as obs_span
from repro.simulate.engine import simulate_trace
from repro.simulate.metrics import SimulationMetrics
from repro.thermal.transient import simulate_transient
from repro.workload.profiles import (ArrivalProfile,
                                     generate_nonstationary_trace)
from repro.workload.tasktypes import Workload
from repro.workload.trace import Task

__all__ = ["MPCConfig", "MPCDecision", "MPCPlanner", "MPCEpochRecord",
           "MPCResult", "MPCController"]

#: Overshoot below this is "clean" (same tolerance as the interval guard).
_CLEAN_C = 1e-6


@dataclass(frozen=True)
class MPCConfig:
    """Tunables of the predictive controller.

    Attributes
    ----------
    horizon_steps:
        Lookahead depth ``H`` (number of forecast steps, including the
        committed one).  ``H = 1`` reduces the prediction to the
        interval guard's persistent-plan assumption.
    step_s:
        Length of one lookahead step (the decision epoch), seconds.
    psi:
        ARR aggregation level of every horizon solve.
    tau_s:
        Node thermal time constant of the prediction model.
    precool_step_c / max_precool:
        Pre-cool escalation: level ``k`` re-solves the committed step
        with every redline tightened by ``k * precool_step_c`` degrees
        (full cap, colder outlets).  0 levels disables pre-cooling.
    derate_step / max_derate:
        The cap-derate fallback (same semantics as
        :func:`~repro.core.controller.plan_with_transient_guard`).
    settle_factor:
        The terminal lookahead step is integrated for
        ``settle_factor * tau_s`` seconds (past settling), so hazards
        beyond the horizon are never missed.
    on_exhausted:
        ``"best"`` (default) commits the least-overshooting candidate
        when every escalation still overshoots; ``"raise"`` aborts.
    warm:
        ``"replay"`` (default) chains warm-start state through the
        horizon and across decisions (value-exact reuse only);
        ``"seed"`` additionally allows the heuristic seeded search
        after a cap change; ``"off"`` solves everything cold.
    """

    horizon_steps: int = 3
    step_s: float = 60.0
    psi: float = 50.0
    tau_s: float = 120.0
    precool_step_c: float = 1.0
    max_precool: int = 3
    derate_step: float = 0.05
    max_derate: int = 10
    settle_factor: float = 10.0
    on_exhausted: str = "best"
    warm: str = "replay"

    def __post_init__(self) -> None:
        if self.horizon_steps < 1:
            raise ValueError(
                f"horizon_steps must be >= 1, got {self.horizon_steps}")
        if self.step_s <= 0:
            raise ValueError(f"step_s must be positive, got {self.step_s}")
        if self.tau_s <= 0:
            raise ValueError(f"tau_s must be positive, got {self.tau_s}")
        if self.precool_step_c <= 0:
            raise ValueError("precool_step_c must be positive")
        if self.max_precool < 0:
            raise ValueError("max_precool must be >= 0")
        if not 0.0 < self.derate_step < 1.0:
            raise ValueError("derate_step must be in (0, 1)")
        if self.max_derate < 0:
            raise ValueError("max_derate must be >= 0")
        if self.settle_factor <= 0:
            raise ValueError("settle_factor must be positive")
        if self.on_exhausted not in ("best", "raise"):
            raise ValueError("on_exhausted must be 'best' or 'raise'")
        if self.warm not in ("off", "replay", "seed"):
            raise ValueError(
                f"warm must be 'off', 'replay' or 'seed', got {self.warm!r}")


@dataclass
class MPCDecision:
    """One committed MPC decision.

    Attributes
    ----------
    plan:
        The committed first-step plan — a
        :class:`~repro.core.api.SolveResult`, or a
        :class:`~repro.core.controller.ShedPlan` when ``shed``.
    precooled:
        Pre-cool level of the committed plan (0 = solved against the
        true redlines).
    derated:
        Cap-derate steps of the committed plan.
    predicted_overshoot_c:
        Worst redline overshoot along the predicted chained trajectory
        (``None`` on a cold start, which has no transition to predict).
    predicted_violation_min:
        Predicted minutes above any redline over the horizon.
    lookahead_steps:
        Horizon steps actually solved (may be shorter than ``H`` if a
        future step was infeasible).
    warm_level:
        Warm-start reuse level the committed solve engaged.
    shed:
        True when no feasible plan existed and all load is shed.
    """

    plan: Any
    precooled: int
    derated: int
    predicted_overshoot_c: float | None
    predicted_violation_min: float
    lookahead_steps: int
    warm_level: str
    shed: bool = False


def _warm_level(plan: SolveResult) -> str:
    runtime = plan.state.runtime
    return runtime.level if runtime is not None else "none"


class MPCPlanner:
    """Stateless-per-decision planner holding the warm chains.

    One planner instance should live as long as the control loop: its
    :class:`~repro.core.warmstart.WarmPool` carries the per-structure
    warm chains (true room, pre-cool levels, degraded inventories)
    across decisions.
    """

    def __init__(self, config: MPCConfig | None = None):
        self.config = config or MPCConfig()
        self.pool = WarmPool()

    # ------------------------------------------------------------------
    def _solve_step(self, datacenter: DataCenter, workload: Workload,
                    rates: np.ndarray, cap: float, options: SolveOptions,
                    state) -> SolveResult:
        wl = replace(workload, arrival_rates=np.asarray(rates, dtype=float))
        return solve(SolveRequest(datacenter, wl, cap, options=options,
                                  warm_start=state))

    def _structure_key(self, datacenter: DataCenter, workload: Workload,
                       cap: float, options: SolveOptions) -> str:
        return compute_digests(datacenter, workload, cap, options).structure

    def _shed_decision(self, datacenter: DataCenter,
                       workload: Workload) -> MPCDecision:
        obs_metrics.counter("mpc.shed_events").inc()
        return MPCDecision(
            plan=shed_plan(datacenter, workload.n_task_types),
            precooled=0, derated=0, predicted_overshoot_c=None,
            predicted_violation_min=0.0, lookahead_steps=0,
            warm_level="shed", shed=True)

    # ------------------------------------------------------------------
    def plan(self, datacenter: DataCenter, workload: Workload,
             p_const: float, t_out_prev: np.ndarray | None,
             forecast_rates: np.ndarray, *,
             first_step_s: float | None = None) -> MPCDecision:
        """One receding-horizon decision.

        Parameters
        ----------
        t_out_prev:
            Outlet temperatures of the room *now* (full view
            coordinates), or ``None`` on a cold start — then the first
            lookahead plan is committed unguarded, matching the interval
            controllers' cold-start convention.
        forecast_rates:
            ``(H, n_task_types)`` forecast matrix (row 0 = the step
            being committed); a single vector is treated as ``H = 1``.
        first_step_s:
            Length of the committed step (defaults to
            ``config.step_s``); the fault-aware loop passes the actual
            interval length, which fault boundaries can cut short.
        """
        cfg = self.config
        rates = np.atleast_2d(np.asarray(forecast_rates, dtype=float))
        first_s = cfg.step_s if first_step_s is None else float(first_step_s)
        if first_s <= 0:
            raise ValueError(f"first_step_s must be positive, got {first_s}")
        options = SolveOptions(psi=cfg.psi, warm_seed=cfg.warm == "seed",
                               kernel=kernels.active_name())
        pooled = cfg.warm != "off"

        with obs_span("mpc", steps=int(rates.shape[0]), cap_kw=p_const):
            obs_metrics.counter("mpc.decisions").inc()
            decision = self._plan_inner(datacenter, workload, p_const,
                                        t_out_prev, rates, first_s,
                                        options, pooled)
            obs_annotate(precooled=decision.precooled,
                         derated=decision.derated, shed=decision.shed)
        return decision

    def _plan_inner(self, datacenter: DataCenter, workload: Workload,
                    p_const: float, t_out_prev: np.ndarray | None,
                    rates: np.ndarray, first_s: float,
                    options: SolveOptions, pooled: bool) -> MPCDecision:
        cfg = self.config

        # -- lookahead: warm-chained solves over the forecast horizon --
        key = self._structure_key(datacenter, workload, p_const, options) \
            if pooled else None
        state = self.pool.get(key) if pooled else None
        plans: list[SolveResult] = []
        with obs_span("lookahead", steps=int(rates.shape[0])):
            for j in range(rates.shape[0]):
                try:
                    step_plan = self._solve_step(datacenter, workload,
                                                 rates[j], p_const,
                                                 options, state)
                except RuntimeError:
                    # infeasible (LP or CRAC search) at this step; the
                    # guard-loop convention treats both as "no plan"
                    if j == 0:
                        if cfg.on_exhausted == "raise":
                            raise
                        return self._shed_decision(datacenter, workload)
                    break  # truncate the horizon, keep the solved prefix
                state = step_plan.state
                plans.append(step_plan)
                obs_metrics.counter("mpc.lookahead_solves").inc()
        if pooled:
            self.pool.put(key, state)

        if t_out_prev is None:
            # cold start: nothing to transition from (parity with the
            # interval controllers' plain first solve)
            return MPCDecision(
                plan=plans[0], precooled=0, derated=0,
                predicted_overshoot_c=None, predicted_violation_min=0.0,
                lookahead_steps=len(plans),
                warm_level=_warm_level(plans[0]))

        # -- chained transient prediction -------------------------------
        model = datacenter.require_thermal()
        redline = datacenter.redline_c
        dt = min(1.0, cfg.tau_s / 4.0)
        settle_s = cfg.settle_factor * cfg.tau_s
        t_prev = np.asarray(t_out_prev, dtype=float)

        def predict(first_plan: SolveResult) -> tuple[float, float]:
            """Worst overshoot and violation minutes over the horizon."""
            t_out = t_prev
            worst, viol = -np.inf, 0.0
            seq = [first_plan] + plans[1:]
            for j, p in enumerate(seq):
                dur = first_s if j == 0 else cfg.step_s
                if j == len(seq) - 1:
                    # terminal step: integrate to settling, so the
                    # prediction covers everything the interval guard's
                    # persistent-plan assumption would
                    dur = max(dur, settle_s)
                node_power = datacenter.node_power_kw(p.pstates)
                with obs_span("transient"):
                    res = simulate_transient(
                        model, p.t_crac_out, node_power, t_out,
                        duration_s=max(dur, dt), tau_s=cfg.tau_s, dt_s=dt)
                worst = max(worst, res.max_inlet_overshoot(redline))
                viol += res.violation_minutes(redline)
                t_out = res.t_out[-1]
            return float(worst), float(viol)

        # -- candidate ladder: as-planned, pre-cool levels, derates ----
        best: tuple[SolveResult, int, int, float, float] | None = None

        def consider(plan_c: SolveResult, precool: int, derate: int
                     ) -> bool:
            nonlocal best
            worst, viol = predict(plan_c)
            if best is None or worst < best[3]:
                best = (plan_c, precool, derate, worst, viol)
            return worst <= _CLEAN_C

        clean = consider(plans[0], 0, 0)
        if not clean:
            # pre-cool first: tighter redlines at full compute capacity
            for level in range(1, cfg.max_precool + 1):
                dc_level = datacenter.with_redline_margin(
                    level * cfg.precool_step_c)
                key_l = self._structure_key(dc_level, workload, p_const,
                                            options) if pooled else None
                try:
                    plan_l = self._solve_step(dc_level, workload, rates[0],
                                              p_const, options,
                                              self.pool.get(key_l)
                                              if pooled else None)
                except RuntimeError:
                    break  # redlines too tight for any plan; stop here
                if pooled:
                    self.pool.put(key_l, plan_l.state)
                obs_metrics.counter("mpc.precools").inc()
                clean = consider(plan_l, level, 0)
                if clean:
                    break
        if not clean:
            # the interval controller's cap-derate loop as the fallback
            cap = p_const
            state_d = plans[0].state
            for derate in range(1, cfg.max_derate + 1):
                cap *= 1.0 - cfg.derate_step
                try:
                    plan_d = self._solve_step(datacenter, workload,
                                              rates[0], cap, options,
                                              state_d)
                except RuntimeError:
                    break  # derated cap admits no plan; commit the best
                state_d = plan_d.state
                obs_metrics.counter("mpc.derates").inc()
                clean = consider(plan_d, 0, derate)
                if clean:
                    break
        if not clean:
            obs_metrics.counter("mpc.exhausted").inc()
            if cfg.on_exhausted == "raise":
                raise RuntimeError(
                    f"predicted trajectory still overshoots redlines by "
                    f"{best[3]:.2f} C after pre-cool and derate "
                    f"escalation")

        plan_c, precool, derate, worst, viol = best
        return MPCDecision(
            plan=plan_c, precooled=precool, derated=derate,
            predicted_overshoot_c=worst, predicted_violation_min=viol,
            lookahead_steps=len(plans), warm_level=_warm_level(plan_c))


@dataclass
class MPCEpochRecord:
    """One epoch of an MPC controller run.

    ``predicted_overshoot_c`` is the planner's chained-horizon forecast;
    ``transient_overshoot_c`` / ``violation_minutes`` measure the actual
    transition over the epoch (the same methodology the interval
    controllers use, so runs are directly comparable).
    """

    start_s: float
    end_s: float
    rates: np.ndarray
    plan: Any
    precooled: int
    derated: int
    predicted_overshoot_c: float | None
    transient_overshoot_c: float | None
    violation_minutes: float
    warm_level: str
    shed: bool
    metrics: SimulationMetrics

    def to_dict(self) -> dict:
        return {
            "start_s": self.start_s,
            "end_s": self.end_s,
            "rates": [float(r) for r in self.rates],
            "plan_reward_rate": float(self.plan.reward_rate),
            "t_crac_out_c": [float(t) for t in self.plan.t_crac_out],
            "precooled": self.precooled,
            "derated": self.derated,
            "predicted_overshoot_c": self.predicted_overshoot_c,
            "transient_overshoot_c": self.transient_overshoot_c,
            "violation_minutes": self.violation_minutes,
            "warm_level": self.warm_level,
            "shed": self.shed,
            "metrics": self.metrics.to_dict(),
        }


@dataclass
class MPCResult:
    """Full MPC controller run output (mirrors ``ControllerResult``)."""

    epochs: list[MPCEpochRecord] = field(default_factory=list)

    @property
    def total_reward(self) -> float:
        return float(sum(e.metrics.total_reward for e in self.epochs))

    @property
    def horizon_s(self) -> float:
        if not self.epochs:
            return 0.0
        return float(self.epochs[-1].end_s - self.epochs[0].start_s)

    @property
    def reward_rate(self) -> float:
        horizon = self.horizon_s
        if horizon <= 0.0:
            return 0.0
        return self.total_reward / horizon

    @property
    def violation_minutes(self) -> float:
        return float(sum(e.violation_minutes for e in self.epochs))

    @property
    def precools(self) -> int:
        return sum(e.precooled for e in self.epochs)

    @property
    def derates(self) -> int:
        return sum(e.derated for e in self.epochs)

    @property
    def shed_epochs(self) -> int:
        return sum(1 for e in self.epochs if e.shed)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "horizon_s": self.horizon_s,
            "total_reward": self.total_reward,
            "reward_rate": self.reward_rate,
            "violation_minutes": self.violation_minutes,
            "precools": self.precools,
            "derates": self.derates,
            "shed_epochs": self.shed_epochs,
            "epochs": [e.to_dict() for e in self.epochs],
        }


class MPCController:
    """Drop-in predictive alternative to the epoch controller.

    Drives :class:`MPCPlanner` over a drifting arrival profile with the
    same trace realization, epoch grid and DES replay the memoryless
    :class:`~repro.core.controller.EpochController` would use — only the
    per-epoch planning differs, so ``--controller interval`` vs ``mpc``
    comparisons isolate the control policy.

    Parameters
    ----------
    datacenter / base_workload / p_const:
        As for the epoch controller.
    config:
        Planner tunables; the epoch grid is ``config.step_s``.
    forecast:
        Provider kind (``"oracle"`` / ``"persistence"`` / ``"noisy"``,
        see :func:`repro.control.forecast.make_forecast`).
    forecast_seed:
        Noise seed for the ``"noisy"`` provider.
    """

    def __init__(self, datacenter: DataCenter, base_workload: Workload,
                 p_const: float, config: MPCConfig | None = None,
                 forecast: str = "oracle", forecast_seed: int = 0):
        if p_const <= 0:
            raise ValueError("power cap must be positive")
        if forecast not in FORECAST_KINDS:
            raise ValueError(
                f"unknown forecast kind {forecast!r} "
                f"(use one of {FORECAST_KINDS})")
        datacenter.require_thermal()
        self.datacenter = datacenter
        self.base_workload = base_workload
        self.p_const = p_const
        self.config = config or MPCConfig()
        self.forecast = forecast
        self.forecast_seed = forecast_seed
        self.planner = MPCPlanner(self.config)

    # ------------------------------------------------------------------
    def run(self, profile: ArrivalProfile, horizon_s: float,
            rng: np.random.Generator) -> MPCResult:
        """Drive the controller over ``horizon_s`` seconds of load.

        Same conventions as ``EpochController.run``: one trace
        realization drawn up front and split at epoch boundaries, the
        cold room settled at mid-range outlets before the first epoch
        (so even the first transition is checked), room state carried
        across epochs through the actual transient end state.
        """
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        cfg = self.config
        dc = self.datacenter
        model = dc.require_thermal()
        provider = make_forecast(self.forecast, profile,
                                 seed=self.forecast_seed)
        trace = generate_nonstationary_trace(self.base_workload, profile,
                                             horizon_s, rng)
        n_epochs = int(np.ceil(horizon_s / cfg.step_s))
        dt = min(1.0, cfg.tau_s / 4.0)
        t_out_prev = idle_start_t_out(dc)
        epochs: list[MPCEpochRecord] = []
        cursor = 0
        for e in range(n_epochs):
            start = e * cfg.step_s
            end = min((e + 1) * cfg.step_s, horizon_s)
            with obs_span("epoch", index=e):
                rates = np.asarray(profile.rates(start), dtype=float)
                forecast = provider.rates_ahead(start, rates,
                                                cfg.horizon_steps,
                                                cfg.step_s)
                decision = self.planner.plan(dc, self.base_workload,
                                             self.p_const, t_out_prev,
                                             forecast,
                                             first_step_s=end - start)
                plan = decision.plan
                node_power = dc.node_power_kw(plan.pstates)
                with obs_span("transient"):
                    transient = simulate_transient(
                        model, plan.t_crac_out, node_power, t_out_prev,
                        duration_s=max(end - start, dt), tau_s=cfg.tau_s,
                        dt_s=dt)
                overshoot = transient.max_inlet_overshoot(dc.redline_c)
                violation = transient.violation_minutes(dc.redline_c)
                t_out_prev = transient.t_out[-1]
                chunk: list[Task] = []
                while cursor < len(trace) and trace[cursor].arrival < end:
                    t = trace[cursor]
                    chunk.append(Task(arrival=t.arrival - start,
                                      task_type=t.task_type, uid=t.uid,
                                      deadline=t.deadline - start))
                    cursor += 1
                workload = replace(self.base_workload, arrival_rates=rates)
                metrics = simulate_trace(dc, workload, plan.tc,
                                         plan.pstates, chunk,
                                         duration=end - start)
                epochs.append(MPCEpochRecord(
                    start_s=start, end_s=end, rates=rates, plan=plan,
                    precooled=decision.precooled,
                    derated=decision.derated,
                    predicted_overshoot_c=decision.predicted_overshoot_c,
                    transient_overshoot_c=float(overshoot),
                    violation_minutes=float(violation),
                    warm_level=decision.warm_level,
                    shed=decision.shed, metrics=metrics))
            obs_metrics.counter("mpc.epochs").inc()
        return MPCResult(epochs=epochs)
