"""Tournament sweep: ordering, gaps, caching, jobs-independence."""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.experiments.config import PAPER_SET_1, scaled_down
from repro.experiments.engine import cache_key
from repro.experiments.tournament import (TournamentConfig,
                                          TournamentPoint,
                                          run_tournament_point,
                                          sweep_tournament,
                                          tournament_table)

from tests.conftest import SEED

SMALL = TournamentConfig(n_nodes=6, seed=SEED, sets=(1,),
                         backends=("three_stage", "annealing"),
                         max_evals=60, tau_s=30.0)


@pytest.fixture(scope="module")
def points():
    return sweep_tournament(SMALL)


class TestSweep:
    def test_point_order_follows_config(self, points):
        assert [(p.set_index, p.backend) for p in points] == [
            (1, "three_stage"), (1, "annealing")]

    def test_three_stage_anchor_has_zero_gap(self, points):
        anchor = points[0]
        assert anchor.backend == "three_stage"
        assert anchor.gap_pct == pytest.approx(0.0)

    def test_metaheuristic_gap_relative_to_anchor(self, points):
        anchor, meta = points
        expected = 100.0 * (1.0 - meta.reward_rate / anchor.reward_rate)
        assert meta.gap_pct == pytest.approx(expected)

    def test_gap_nan_without_three_stage(self):
        config = replace(SMALL, backends=("annealing",))
        (point,) = sweep_tournament(config)
        assert math.isnan(point.gap_pct)

    def test_all_points_feasible_and_clean(self, points):
        for p in points:
            assert p.reward_rate >= 0.0
            assert p.violation_minutes == pytest.approx(0.0)
            assert p.p_const > 0.0

    def test_builtin_consumes_no_evaluations(self, points):
        assert points[0].evaluations == 0
        assert 0 < points[1].evaluations <= SMALL.max_evals

    def test_jobs_do_not_change_results(self, points):
        parallel = sweep_tournament(SMALL, jobs=2)
        assert [p.to_dict() for p in parallel] == \
            [p.to_dict() for p in points]

    def test_point_roundtrips_through_dict(self, points):
        for p in points:
            doc = p.to_dict()
            again = TournamentPoint.from_dict(doc)
            assert again.to_dict() == doc

    def test_single_point_matches_sweep(self, points):
        point = run_tournament_point(SMALL, (1, "annealing"))
        sweep_meta = points[1]
        assert point.reward_rate == pytest.approx(sweep_meta.reward_rate)
        assert point.evaluations == sweep_meta.evaluations


class TestCache:
    def test_resume_round_trip(self, tmp_path, points):
        cached = sweep_tournament(SMALL, cache_dir=str(tmp_path),
                                  resume=True)
        assert [p.to_dict() for p in cached] == \
            [p.to_dict() for p in points]
        # every point landed on disk; a resumed sweep loads them all
        files = list(tmp_path.glob("*.json"))
        assert len(files) == len(points)
        resumed = sweep_tournament(SMALL, cache_dir=str(tmp_path),
                                   resume=True)
        assert [p.to_dict() for p in resumed] == \
            [p.to_dict() for p in points]

    def test_cache_extra_splits_on_budget_knobs(self):
        base = SMALL.cache_extra(1, "annealing")
        other = replace(SMALL, max_evals=61).cache_extra(1, "annealing")
        assert base != other
        seeded = replace(SMALL, backend_seed=1).cache_extra(1, "annealing")
        assert base != seeded


class TestConfigValidation:
    def test_empty_sets_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TournamentConfig(sets=())

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TournamentConfig(backends=())

    def test_bad_set_index_rejected(self):
        with pytest.raises(ValueError, match="1-based"):
            TournamentConfig(sets=(4,))


class TestTable:
    def test_table_lists_every_point(self, points):
        table = tournament_table(points)
        for p in points:
            assert p.backend in table
        assert "gap" in table

    def test_nan_gap_renders_as_dashes(self):
        point = TournamentPoint(set_index=1, backend="annealing",
                                reward_rate=1.0, evaluations=10,
                                violation_minutes=0.0, p_const=5.0)
        assert "---" in tournament_table([point])


class TestEngineCacheSplit:
    """Backend knobs must split the run cache (CACHE_SCHEMA_VERSION 4)."""

    def test_backend_knobs_split_cache_key(self):
        base = scaled_down(PAPER_SET_1, 6)
        keys = {
            cache_key(base, SEED),
            cache_key(replace(base, backend="annealing"), SEED),
            cache_key(replace(base, backend_seed=1), SEED),
            cache_key(replace(base, max_evals=123), SEED),
        }
        assert len(keys) == 4
