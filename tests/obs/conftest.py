"""Keep the process-global obs state clean around every test."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
