"""Tests for repro.simulate.metrics — derived metric arithmetic."""

import numpy as np
import pytest

from repro.simulate.metrics import SimulationMetrics


def make_metrics(**overrides) -> SimulationMetrics:
    defaults = dict(
        duration=10.0,
        total_reward=50.0,
        completed=np.asarray([8, 0]),
        dropped=np.asarray([2, 0]),
        atc=np.asarray([[0.8, 0.0], [0.0, 0.0]]),
        tc=np.asarray([[1.0, 0.0], [0.0, 0.0]]),
        busy_time=np.asarray([5.0, 0.0]),
    )
    defaults.update(overrides)
    return SimulationMetrics(**defaults)


class TestDerived:
    def test_reward_rate(self):
        assert make_metrics().reward_rate == pytest.approx(5.0)

    def test_drop_fraction(self):
        df = make_metrics().drop_fraction
        assert df[0] == pytest.approx(0.2)
        assert df[1] == 0.0  # no arrivals -> zero, not NaN

    def test_utilization(self):
        np.testing.assert_allclose(make_metrics().utilization, [0.5, 0.0])

    def test_tracking_error(self):
        # only the TC>0 entry counts: |0.8 - 1.0| = 0.2
        assert make_metrics().tracking_error() == pytest.approx(0.2)

    def test_tracking_error_no_plan(self):
        m = make_metrics(tc=np.zeros((2, 2)))
        assert m.tracking_error() == 0.0

    def test_rate_ratios(self):
        ratios = make_metrics().rate_ratios()
        np.testing.assert_allclose(ratios, [0.8])


class TestDegenerateDuration:
    """Regression: zero-length horizons must not divide by zero."""

    def test_zero_duration_reward_rate_is_zero(self):
        m = make_metrics(duration=0.0)
        assert m.reward_rate == 0.0

    def test_zero_duration_utilization_is_zero(self):
        m = make_metrics(duration=0.0)
        np.testing.assert_array_equal(m.utilization, [0.0, 0.0])

    def test_zero_duration_to_dict_is_finite(self):
        doc = make_metrics(duration=0.0).to_dict()
        assert doc["reward_rate"] == 0.0
        assert doc["mean_utilization"] == 0.0

    def test_nonpositive_slack_is_nan(self):
        m = make_metrics(
            response_times=[np.asarray([1.0]), np.asarray([])])
        assert np.isnan(m.slack_utilization(0, 0.0))
        assert np.isnan(m.slack_utilization(1, 2.0))
