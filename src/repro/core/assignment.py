"""Three-stage assignment facade (Section V.B) and result verification.

``three_stage_assignment`` chains Stage 1 (power + CRAC outlets, with the
discretized temperature search), Stage 2 (integer P-states) and Stage 3
(desired execution rates) and returns everything a caller needs: the
final ``TC`` matrix for the dynamic scheduler, the predicted reward rate
(the Figure 6 metric), and enough intermediate state to audit the
constraints.

``best_psi_assignment`` reproduces the paper's "best of the two"
treatment: run the pipeline at several aggregation levels ψ and keep the
assignment with the highest Stage 3 reward rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.stage1 import Stage1Solution, solve_stage1
from repro.core.stage2 import Stage2Solution, solve_stage2
from repro.core.stage3 import Stage3Solution, solve_stage3
from repro.core.warmstart import WarmContext
from repro.datacenter.builder import DataCenter
from repro.datacenter.power import PowerBreakdown, total_power
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate as obs_annotate
from repro.obs.trace import span as obs_span
from repro.optimize.search import SearchResult
from repro.workload.tasktypes import Workload

__all__ = ["AssignmentResult", "three_stage_assignment", "best_psi_assignment"]


@dataclass
class AssignmentResult:
    """Complete output of the paper's first-step assignment.

    Attributes
    ----------
    psi:
        Aggregation level the ARR functions were built with.
    t_crac_out:
        Assigned CRAC outlet temperatures (decision 3 of Eq. 7).
    pstates:
        Per-core integer P-states (decision 1).
    tc:
        Desired execution-rate matrix (decision 2), ``(T, NCORES)``.
    reward_rate:
        Stage 3 objective — the steady-state total reward rate.
    stage1 / stage2 / stage3 / search:
        Intermediate artifacts for auditing and plots.
    """

    psi: float
    t_crac_out: np.ndarray
    pstates: np.ndarray
    tc: np.ndarray
    reward_rate: float
    stage1: Stage1Solution
    stage2: Stage2Solution
    stage3: Stage3Solution
    search: SearchResult

    def power(self, datacenter: DataCenter) -> PowerBreakdown:
        """Exact (nonlinear, clamped) total power at this assignment."""
        return total_power(datacenter, self.t_crac_out,
                           self.stage2.node_power_kw)

    def verify(self, datacenter: DataCenter, p_const: float,
               tol: float = 1e-6) -> None:
        """Assert the power cap and redlines hold at the final assignment.

        Raises ``AssertionError`` with a diagnostic message on violation;
        used by tests and the experiment runner as a safety net.
        """
        model = datacenter.require_thermal()
        margin = model.redline_margin(self.t_crac_out,
                                      self.stage2.node_power_kw,
                                      datacenter.redline_c)
        if margin.min() < -tol:
            raise AssertionError(
                f"redline violated by {-margin.min():.4f} C at unit "
                f"{int(margin.argmin())}")
        breakdown = self.power(datacenter)
        if breakdown.total > p_const + tol * max(1.0, p_const):
            raise AssertionError(
                f"power cap violated: {breakdown.total:.3f} kW > "
                f"{p_const:.3f} kW")

    def to_dict(self) -> dict:
        """JSON-friendly summary (the :class:`SolveOutcome` protocol)."""
        return {
            "method": "three_stage",
            "psi": self.psi,
            "reward_rate": self.reward_rate,
            "t_crac_out": self.t_crac_out.tolist(),
            "pstates": self.pstates.tolist(),
        }


def _stage1_outputs_equal(a: Stage1Solution, b: Stage1Solution) -> bool:
    """Bit-equality of the Stage 1 outputs Stage 2 consumes.

    Exact byte comparison is the point: Stage 2 may only be reused when
    Stage 1 reproduced its output *bit-for-bit*, so no tolerance.
    """
    return (a.t_crac_out.tobytes() == b.t_crac_out.tobytes()
            and a.core_power_kw.tobytes()  # repro-lint: disable=RL011
            == b.core_power_kw.tobytes()
            and a.node_power_kw.tobytes()  # repro-lint: disable=RL011
            == b.node_power_kw.tobytes())


def three_stage_assignment(datacenter: DataCenter, workload: Workload,
                           p_const: float, *, psi: float = 50.0,
                           search: str = "fast",
                           warm: WarmContext | None = None
                           ) -> AssignmentResult:
    """Run the full three-stage technique (Section V.B).

    All tuning knobs are keyword-only.  See
    :func:`repro.core.stage1.solve_stage1` for the ``search`` modes and
    the warm-start semantics of ``warm``; additionally, a context at
    reuse level ``"request"`` replays the previous outcome outright, and
    Stage 2 (a deterministic function of the Stage 1 output) is reused
    whenever Stage 1 reproduces its previous output bit-for-bit.
    """
    with obs_span("three_stage", psi=psi, n_nodes=datacenter.n_nodes,
                  p_const=p_const):
        if warm is not None and warm.level == "request" \
                and warm.outcome is not None:
            obs_annotate(warm_level="request")
            obs_metrics.counter("solve.replays").inc()
            return warm.outcome
        if warm is not None:
            obs_annotate(warm_level=warm.level)
        stage1, trace = solve_stage1(datacenter, workload,
                                     p_const=p_const, psi=psi,
                                     search=search, warm=warm)
        if warm is not None and warm.prev_stage1 is not None \
                and warm.prev_stage2 is not None \
                and _stage1_outputs_equal(stage1, warm.prev_stage1):
            stage2 = warm.prev_stage2
            obs_metrics.counter("stage2.reuses").inc()
        else:
            with obs_span("stage2"):
                stage2 = solve_stage2(datacenter, stage1)
        stage3 = solve_stage3(datacenter, workload, stage2.pstates)
    return AssignmentResult(
        psi=psi,
        t_crac_out=stage1.t_crac_out,
        pstates=stage2.pstates,
        tc=stage3.tc,
        reward_rate=stage3.reward_rate,
        stage1=stage1,
        stage2=stage2,
        stage3=stage3,
        search=trace,
    )


def best_psi_assignment(datacenter: DataCenter, workload: Workload,
                        p_const: float, *,
                        psis: Sequence[float] = (25.0, 50.0),
                        search: str = "fast",
                        warm: dict[float, WarmContext] | None = None
                        ) -> tuple[AssignmentResult, dict[float, AssignmentResult]]:
    """Run the pipeline for each ψ and keep the best Stage 3 reward.

    Returns ``(best, all_results)`` — the paper reports ψ=25, ψ=50 and
    "best of the two" separately (Figure 6), so callers get both.
    All tuning knobs are keyword-only.  ``warm`` optionally maps each ψ
    to its own :class:`repro.core.warmstart.WarmContext` (the ARR hulls
    differ per ψ, so the per-ψ pipelines warm-start independently).
    """
    if not psis:
        raise ValueError("need at least one psi value")
    results = {
        float(psi): three_stage_assignment(
            datacenter, workload, p_const, psi=float(psi), search=search,
            warm=warm.get(float(psi)) if warm is not None else None)
        for psi in psis
    }
    best = max(results.values(), key=lambda r: r.reward_rate)
    return best, results
