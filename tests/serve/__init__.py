"""Tests for repro.serve — the rolling-horizon control service."""
