"""Discrete-event replay of a task trace through the dynamic scheduler.

This is the paper's second-step evaluation: tasks arrive, the
:class:`~repro.core.scheduler.DynamicScheduler` maps each to a core (or
drops it), cores execute their queues FIFO, and reward is collected for
every task finished by its deadline.  Because the scheduler only assigns
tasks it can finish in time, assignment implies reward; completions are
still simulated as events so busy time and queue depths are exact.

Fault injection (chaos-testing extension): the replay optionally
consumes :class:`~repro.simulate.events.CoreOutage` windows.  A FAULT
event kills a set of cores — queued-but-unfinished work on them is
*stranded*: its reward is never collected, its recorded busy time is
rolled back to the crash instant, and each stranded task is either
re-entered into the arrival stream at the crash time (``requeue``) or
discarded (``drop``), with explicit per-type accounting either way.  A
RECOVERY event readmits the cores with an empty queue.  With no outages
the replay is bit-identical to the fault-free engine.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.scheduler import DynamicScheduler
from repro.datacenter.builder import DataCenter
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span as obs_span
from repro.simulate.events import CoreOutage, EventKind, EventQueue
from repro.simulate.metrics import SimulationMetrics
from repro.workload.tasktypes import Workload
from repro.workload.trace import Task

__all__ = ["simulate_trace"]

#: Allowed dispositions for tasks stranded by a core outage.
STRANDED_POLICIES = ("requeue", "drop")


def simulate_trace(datacenter: DataCenter, workload: Workload,
                   tc: np.ndarray, pstates: np.ndarray,
                   trace: list[Task], *,
                   duration: float | None = None,
                   collect_latency: bool = True,
                   faults: Sequence[CoreOutage] | None = None,
                   stranded_policy: str = "requeue") -> SimulationMetrics:
    """Replay ``trace`` and return :class:`SimulationMetrics`.

    Parameters
    ----------
    tc / pstates:
        Desired rates and P-states from a first-step assignment (either
        technique).
    trace:
        Tasks sorted by arrival time (as produced by
        :func:`repro.workload.trace.generate_trace`).
    duration:
        Horizon used for rate metrics; defaults to the last arrival (or
        1s for an empty trace).  Completions beyond the horizon still
        execute — the horizon only normalizes rates.
    collect_latency:
        Record per-task response times (memory ~ one float per task);
        disable for very long runs that only need rates.
    faults:
        Optional :class:`~repro.simulate.events.CoreOutage` windows to
        inject.  ``None`` (or empty) reproduces the fault-free replay
        bit-identically.
    stranded_policy:
        ``"requeue"`` re-enters tasks stranded by an outage into the
        arrival stream at the crash instant (original deadline — they
        may still be dropped if no surviving core can make it);
        ``"drop"`` discards them.  Response times of requeued tasks are
        measured from the requeue instant.
    """
    with obs_span("des_replay", n_tasks=len(trace),
                  faulted=bool(faults)):
        metrics = _simulate_trace(
            datacenter, workload, tc, pstates, trace, duration=duration,
            collect_latency=collect_latency, faults=faults,
            stranded_policy=stranded_policy)
    obs_metrics.counter("des.replays").inc()
    obs_metrics.counter("des.tasks_completed").inc(int(metrics.completed.sum()))
    obs_metrics.counter("des.tasks_dropped").inc(int(metrics.dropped.sum()))
    obs_metrics.counter("des.fault_events").inc(metrics.n_fault_events)
    if metrics.stranded_requeued is not None:
        obs_metrics.counter("des.stranded_requeued").inc(
            int(metrics.stranded_requeued.sum()))
    if metrics.stranded_dropped is not None:
        obs_metrics.counter("des.stranded_dropped").inc(
            int(metrics.stranded_dropped.sum()))
    return metrics


def _simulate_trace(datacenter: DataCenter, workload: Workload,
                    tc: np.ndarray, pstates: np.ndarray,
                    trace: list[Task], *,
                    duration: float | None,
                    collect_latency: bool,
                    faults: Sequence[CoreOutage] | None,
                    stranded_policy: str) -> SimulationMetrics:
    if stranded_policy not in STRANDED_POLICIES:
        raise ValueError(f"stranded_policy must be one of "
                         f"{STRANDED_POLICIES}, got {stranded_policy!r}")
    if duration is None:
        duration = trace[-1].arrival if trace else 1.0
        duration = max(duration, 1e-9)
    scheduler = DynamicScheduler(datacenter, workload, tc, pstates)
    n_cores = datacenter.n_cores
    t_count = workload.n_task_types
    core_free = np.zeros(n_cores)
    busy = np.zeros(n_cores)
    busy_by_type = np.zeros((t_count, n_cores))
    latencies: list[list[float]] | None = \
        [[] for _ in range(t_count)] if collect_latency else None
    completed = np.zeros(t_count, dtype=int)
    dropped = np.zeros(t_count, dtype=int)
    total_reward = 0.0

    queue = EventQueue()
    for task in trace:
        queue.push(task.arrival, EventKind.ARRIVAL, task)

    # fault-injection state -------------------------------------------
    have_faults = bool(faults)
    dead_count = np.zeros(n_cores, dtype=int)
    # per-core queued work: rec_id -> (task, start, finish, latency slot)
    inflight: list[dict[int, tuple[Task, float, float, int | None]]] = \
        [{} for _ in range(n_cores)]
    cancelled: set[int] = set()
    lat_removals: list[set[int]] | None = \
        [set() for _ in range(t_count)] if collect_latency else None
    stranded_requeued = np.zeros(t_count, dtype=int)
    stranded_dropped = np.zeros(t_count, dtype=int)
    n_fault_events = 0
    next_rec = 0
    if have_faults:
        for outage in faults:
            cores = np.asarray(outage.cores, dtype=int)
            if np.any(cores < 0) or np.any(cores >= n_cores):
                raise ValueError(
                    f"outage cores must be in 0..{n_cores - 1}")
            queue.push(outage.start_s, EventKind.FAULT, tuple(cores))
            if math.isfinite(outage.end_s):
                queue.push(outage.end_s, EventKind.RECOVERY, tuple(cores))

    def clip(t: float) -> float:
        return min(t, duration)

    prev_time = 0.0
    while queue:
        event = queue.pop()
        if event.time < prev_time - 1e-9:
            raise AssertionError("event times went backwards")
        prev_time = event.time
        if event.kind is EventKind.COMPLETION:
            task_type, core, rec_id = event.payload
            if rec_id in cancelled:
                cancelled.discard(rec_id)
                continue
            del inflight[core][rec_id]
            completed[task_type] += 1
            total_reward += float(workload.rewards[task_type])
            continue
        if event.kind is EventKind.FAULT:
            n_fault_events += 1
            newly_dead: list[int] = []
            for core in event.payload:
                dead_count[core] += 1
                if dead_count[core] == 1:
                    newly_dead.append(core)
            if newly_dead:
                scheduler.mark_cores_dead(np.asarray(newly_dead))
            now = event.time
            for core in newly_dead:
                for rec_id, (task, start, finish, slot) \
                        in inflight[core].items():
                    cancelled.add(rec_id)
                    scheduler.forget_assignment(task.task_type, core)
                    # roll back busy time the task will never execute:
                    # it ran (at most) from its start until the crash
                    lost = max(0.0, clip(finish) - clip(max(start, now)))
                    busy[core] -= lost
                    busy_by_type[task.task_type, core] -= lost
                    if lat_removals is not None and slot is not None:
                        lat_removals[task.task_type].add(slot)
                    if stranded_policy == "requeue":
                        stranded_requeued[task.task_type] += 1
                        queue.push(now, EventKind.ARRIVAL,
                                   Task(arrival=now,
                                        task_type=task.task_type,
                                        uid=task.uid,
                                        deadline=task.deadline))
                    else:
                        stranded_dropped[task.task_type] += 1
                inflight[core].clear()
            continue
        if event.kind is EventKind.RECOVERY:
            n_fault_events += 1
            newly_alive: list[int] = []
            for core in event.payload:
                dead_count[core] -= 1
                if dead_count[core] == 0:
                    newly_alive.append(core)
            if newly_alive:
                scheduler.mark_cores_alive(np.asarray(newly_alive))
                # the queue was cleared at crash time; the core restarts idle
                core_free[np.asarray(newly_alive)] = event.time
            continue
        task: Task = event.payload
        core = scheduler.select_core(task.task_type, task.deadline,
                                     task.arrival, core_free)
        if core is None:
            dropped[task.task_type] += 1
            continue
        scheduler.record_assignment(task.task_type, core)
        start = max(task.arrival, core_free[core])
        exec_time = scheduler.exec_time[task.task_type, core]
        finish = start + exec_time
        if finish > task.deadline + 1e-9:
            raise AssertionError(
                "scheduler assigned a task it cannot finish in time")
        core_free[core] = finish
        # busy time is clipped to the measurement horizon so utilization
        # stays a fraction even when queues extend past it (long-deadline
        # types may legally finish after the last arrival)
        clipped = max(0.0, clip(finish) - clip(start))
        busy[core] += clipped
        busy_by_type[task.task_type, core] += clipped
        slot = None
        if latencies is not None:
            slot = len(latencies[task.task_type])
            latencies[task.task_type].append(finish - task.arrival)
        queue.push(finish, EventKind.COMPLETION,
                   (task.task_type, core, next_rec))
        inflight[core][next_rec] = (task, start, finish, slot)
        next_rec += 1

    response_times = None
    if latencies is not None:
        response_times = []
        for i, samples in enumerate(latencies):
            if lat_removals is not None and lat_removals[i]:
                samples = [v for s, v in enumerate(samples)
                           if s not in lat_removals[i]]
            response_times.append(np.asarray(samples))

    return SimulationMetrics(
        duration=float(duration),
        total_reward=total_reward,
        completed=completed,
        dropped=dropped,
        atc=scheduler.assigned / float(duration),
        tc=np.asarray(tc, dtype=float),
        busy_time=busy,
        busy_by_type=busy_by_type,
        response_times=response_times,
        stranded_requeued=stranded_requeued if have_faults else None,
        stranded_dropped=stranded_dropped if have_faults else None,
        n_fault_events=n_fault_events,
    )
