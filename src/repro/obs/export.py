"""Export, aggregation and cross-process merge for :mod:`repro.obs`.

Two artifacts come out of a traced run:

* an **event log** — one JSON object per line (``--trace-out``):
  a ``meta`` header, every finished span in exit order, and a final
  ``metrics`` line with the registry snapshot.  The format round-trips:
  :func:`read_events_jsonl` reconstructs exactly what
  :func:`write_events_jsonl` wrote.
* a **profile tree** — spans aggregated by dotted path
  (:func:`build_profile`): per node the call count, total/min/max wall
  time, and children.  ``repro profile`` renders it; benchmarks dump it
  as ``BENCH_obs.json``.

Worker processes ship their spans back as snapshots
(:meth:`repro.obs.trace.Tracer.snapshot`); :func:`merge_snapshot` folds
one into the live global state.  Merging is *append + add*, so the
merged profile tree's structure (paths and counts) depends only on the
merge order, which the experiment engine fixes to seed order — a sweep
therefore profiles bit-identically (up to measured durations) for any
``--jobs`` value.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = ["ProfileNode", "build_profile", "profile_from_snapshot",
           "write_events_jsonl", "read_events_jsonl", "merge_snapshot",
           "obs_snapshot", "render_profile", "render_metrics",
           "profile_to_dict"]


class ProfileNode:
    """One aggregated span path in the profile tree."""

    __slots__ = ("name", "count", "total_s", "min_s", "max_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.children: dict[str, ProfileNode] = {}

    def observe(self, dur: float) -> None:
        self.count += 1
        self.total_s += dur
        if dur < self.min_s:
            self.min_s = dur
        if dur > self.max_s:
            self.max_s = dur

    @property
    def child_total_s(self) -> float:
        return sum(c.total_s for c in self.children.values())

    @property
    def self_s(self) -> float:
        """Time in this span not covered by child spans (>= 0 clamped)."""
        return max(0.0, self.total_s - self.child_total_s)

    def structure(self) -> dict:
        """Timing-free view (paths + counts) — the part that must be
        identical across worker counts for the same sweep."""
        return {
            "name": self.name,
            "count": self.count,
            "children": {k: c.structure()
                         for k, c in sorted(self.children.items())},
        }


def build_profile(spans: list[dict]) -> ProfileNode:
    """Aggregate span records into a profile tree rooted at ``"total"``.

    Every record lands on the tree node addressed by its dotted
    ``path``; intermediate nodes that never closed a span themselves
    (e.g. a parent that only appears via children) still exist with
    ``count == 0``.
    """
    root = ProfileNode("total")
    for rec in spans:
        node = root
        for part in rec["path"].split("."):
            nxt = node.children.get(part)
            if nxt is None:
                nxt = ProfileNode(part)
                node.children[part] = nxt
            node = nxt
        node.observe(float(rec["dur"]))
    # the synthetic root spans the union of its top-level children
    root.count = sum(c.count for c in root.children.values())
    root.total_s = root.child_total_s
    return root


def profile_to_dict(node: ProfileNode) -> dict:
    return {
        "name": node.name,
        "count": node.count,
        "total_s": node.total_s,
        "self_s": node.self_s,
        "min_s": None if node.count == 0 else node.min_s,
        "max_s": None if node.count == 0 else node.max_s,
        "children": {k: profile_to_dict(c)
                     for k, c in sorted(node.children.items())},
    }


# ----------------------------------------------------------------------
def obs_snapshot() -> dict:
    """Spans + metrics of the live global state, picklable/JSON-able."""
    return {
        "schema": 1,
        "spans": _trace.current_tracer().snapshot()["spans"],
        "metrics": _metrics.current_registry().snapshot(),
    }


def merge_snapshot(snapshot: dict) -> None:
    """Fold a worker's (or capture's) snapshot into the global state.

    Call sites needing determinism must fix the merge order themselves;
    the experiment engine merges in seed order, ``parallel_map`` in item
    order.
    """
    _trace.current_tracer().merge(snapshot)
    _metrics.current_registry().merge(snapshot.get("metrics", {}))


def write_events_jsonl(path: str | Path, *, snapshot: dict | None = None,
                       meta: dict | None = None) -> int:
    """Write the event log; returns the number of span lines written."""
    snap = obs_snapshot() if snapshot is None else snapshot
    spans = snap.get("spans", [])
    out = Path(path)
    with out.open("w") as fh:
        header = {"kind": "meta", "schema": 1}
        if meta:
            header.update(meta)
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for rec in spans:
            doc = {"kind": "span"}
            doc.update(rec)
            fh.write(json.dumps(doc, sort_keys=True) + "\n")
        fh.write(json.dumps({"kind": "metrics",
                             "metrics": snap.get("metrics", {})},
                            sort_keys=True) + "\n")
    return len(spans)


def read_events_jsonl(path: str | Path) -> dict:
    """Parse an event log back into ``{"spans": [...], "metrics": {...},
    "meta": {...}}`` (the inverse of :func:`write_events_jsonl`)."""
    spans: list[dict] = []
    metrics: dict = {}
    meta: dict = {}
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not valid JSON ({exc})") from exc
            kind = doc.pop("kind", None)
            if kind == "span":
                spans.append(doc)
            elif kind == "metrics":
                metrics = doc.get("metrics", {})
            elif kind == "meta":
                meta = doc
            else:
                raise ValueError(
                    f"{path}:{line_no}: unknown event kind {kind!r}")
    return {"schema": 1, "spans": spans, "metrics": metrics, "meta": meta}


# ----------------------------------------------------------------------
def render_profile(root: ProfileNode, *, min_total_s: float = 0.0,
                   indent: str = "  ") -> str:
    """Human-readable profile tree, children sorted by total time."""
    lines = [f"{'span':<44}{'calls':>8}{'total s':>10}{'self s':>10}"
             f"{'mean ms':>10}"]

    def walk(node: ProfileNode, depth: int) -> None:
        label = indent * depth + node.name
        mean_ms = node.total_s / node.count * 1e3 if node.count else 0.0
        lines.append(f"{label:<44}{node.count:>8d}{node.total_s:>10.3f}"
                     f"{node.self_s:>10.3f}{mean_ms:>10.2f}")
        children = sorted(node.children.values(),
                          key=lambda c: (-c.total_s, c.name))
        for child in children:
            if child.total_s >= min_total_s:
                walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def render_metrics(metrics: dict) -> str:
    """Fixed-width text dump of a metrics snapshot."""
    if not metrics:
        return "(no metrics recorded)"
    lines = [f"{'metric':<44}{'kind':>10}  value"]
    for name, doc in sorted(metrics.items()):
        kind = doc.get("kind", "?")
        if kind == "histogram":
            count = doc["count"]
            mean = doc["total"] / count if count else 0.0
            value = (f"count={count} mean={mean:.4g} "
                     f"min={doc['min']} max={doc['max']}")
        else:
            value = f"{doc.get('value')}"
        lines.append(f"{name:<44}{kind:>10}  {value}")
    return "\n".join(lines)


def profile_from_snapshot(snapshot: dict) -> ProfileNode:
    """Profile tree of one snapshot (``obs_snapshot`` or a parsed log)."""
    return build_profile(snapshot.get("spans", []))
