"""Comparison runner — the Figure 6 experiment (Section VII).

For each scenario both techniques solve the first-step assignment under
the same power cap and thermal model:

* the paper's three-stage technique at each ψ level (and "best of"),
* the P0-or-off baseline adapted from Parolini et al. [26].

A *simulation set* aggregates the per-run percentage improvements into a
mean with a 95% confidence interval (Student t), exactly the quantity
each Figure 6 bar reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import stats

from repro.core.assignment import best_psi_assignment
from repro.core.baseline import solve_baseline
from repro.experiments.config import ScenarioConfig
from repro.experiments.generator import Scenario, generate_scenario

__all__ = ["RunResult", "ConfidenceInterval", "SetResult",
           "run_comparison", "run_simulation_set", "confidence_interval"]


@dataclass(frozen=True)
class RunResult:
    """Rewards and improvements for one scenario.

    Attributes
    ----------
    seed:
        Scenario seed.
    reward_by_psi:
        Stage 3 reward rate of the three-stage technique per ψ.
    baseline_reward:
        Reward rate of the rounded Eq. 21 baseline.
    p_const:
        The cap both techniques ran under.
    """

    seed: int
    reward_by_psi: dict[float, float]
    baseline_reward: float
    p_const: float

    @property
    def best_reward(self) -> float:
        """Best-of-ψ reward (the paper's third bar per set)."""
        return max(self.reward_by_psi.values())

    def improvement_pct(self, psi: float | None = None) -> float:
        """Percentage improvement over the baseline.

        ``psi=None`` uses the best-of-ψ reward.
        """
        ours = self.best_reward if psi is None else self.reward_by_psi[psi]
        if self.baseline_reward <= 0:
            raise ZeroDivisionError(
                "baseline earned zero reward; improvement undefined")
        return 100.0 * (ours - self.baseline_reward) / self.baseline_reward


@dataclass(frozen=True)
class ConfidenceInterval:
    """Mean with a symmetric t-distribution confidence interval."""

    mean: float
    half_width: float
    level: float = 0.95

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.2f} +/- {self.half_width:.2f}"


def confidence_interval(samples: np.ndarray,
                        level: float = 0.95) -> ConfidenceInterval:
    """95% (by default) CI of the mean using the Student t quantile."""
    samples = np.asarray(samples, dtype=float)
    if samples.size < 2:
        raise ValueError("need at least two samples for a confidence interval")
    mean = float(samples.mean())
    sem = float(samples.std(ddof=1) / np.sqrt(samples.size))
    t_crit = float(stats.t.ppf(0.5 + level / 2.0, df=samples.size - 1))
    return ConfidenceInterval(mean=mean, half_width=t_crit * sem, level=level)


@dataclass
class SetResult:
    """Aggregated Figure 6 numbers for one simulation set.

    ``improvements`` maps a label (``"psi=25"``, ``"psi=50"``, ``"best"``)
    to the per-run percentage improvements; ``intervals`` to their CIs.
    """

    config: ScenarioConfig
    runs: list[RunResult]
    improvements: dict[str, np.ndarray] = field(init=False)
    intervals: dict[str, ConfidenceInterval] = field(init=False)

    def __post_init__(self) -> None:
        labels: dict[str, np.ndarray] = {}
        for psi in self.config.psis:
            labels[f"psi={psi:g}"] = np.asarray(
                [r.improvement_pct(psi) for r in self.runs])
        labels["best"] = np.asarray(
            [r.improvement_pct(None) for r in self.runs])
        self.improvements = labels
        self.intervals = {k: confidence_interval(v)
                          for k, v in labels.items()}


def run_comparison(scenario: Scenario) -> RunResult:
    """Run both techniques on one scenario (one Figure 6 sample)."""
    config = scenario.config
    _, by_psi = best_psi_assignment(
        scenario.datacenter, scenario.workload, scenario.p_const,
        psis=config.psis, search=config.search)
    for result in by_psi.values():
        result.verify(scenario.datacenter, scenario.p_const)
    baseline, _ = solve_baseline(
        scenario.datacenter, scenario.workload, scenario.p_const,
        search=config.search)
    return RunResult(
        seed=scenario.seed,
        reward_by_psi={psi: r.reward_rate for psi, r in by_psi.items()},
        baseline_reward=baseline.reward_rate,
        p_const=scenario.p_const,
    )


def run_simulation_set(config: ScenarioConfig, n_runs: int = 25,
                       base_seed: int = 1000,
                       progress: bool = False) -> SetResult:
    """Run a whole simulation set (paper: 25 runs) and aggregate.

    Seeds are ``base_seed + run_index`` so individual runs can be
    reproduced in isolation.
    """
    if n_runs < 2:
        raise ValueError("a simulation set needs at least two runs for CIs")
    runs: list[RunResult] = []
    for r in range(n_runs):
        scenario = generate_scenario(config, base_seed + r)
        runs.append(run_comparison(scenario))
        if progress:  # pragma: no cover - console output
            last = runs[-1]
            print(f"  [{config.name}] run {r + 1}/{n_runs}: "
                  f"best improvement {last.improvement_pct(None):+.2f}%")
    return SetResult(config=config, runs=runs)
