"""Optimality-gap validation — heuristic vs brute-force MINLP optimum.

Section VII.B: "A brute force discretized optimization of a problem that
has 3 CRAC units, 150 compute nodes, and 8 task types, is
computationally expensive.  However, tests on smaller problems ... have
shown no improvement."  This benchmark reproduces that validation at a
size where enumeration is exact: tiny rooms (3 nodes x 2 cores), full
P-state x outlet-temperature enumeration, Stage 3 LP per feasible point,
compared against the three-stage heuristic on the same rooms.
"""

import numpy as np

from repro.core import best_psi_assignment, count_assignments, solve_exact
from repro.datacenter import build_datacenter, power_bounds
from repro.datacenter.coretypes import shrunken_node_types
from repro.thermal import attach_thermal_model
from repro.workload import generate_workload


def _tiny_room(seed: int):
    rng = np.random.default_rng(seed)
    dc = build_datacenter(n_nodes=3, n_crac=2,
                          node_types=shrunken_node_types(2), rng=rng,
                          nodes_per_rack=3)
    attach_thermal_model(dc, rng=rng)
    wl = generate_workload(dc, rng, n_task_types=4)
    return dc, wl, power_bounds(dc).p_const


def bench_exact_gap(benchmark, capsys, scale):
    seeds = range(8) if scale.is_paper else range(4)
    rooms = [_tiny_room(s) for s in seeds]

    def run():
        rows = []
        for dc, wl, pc in rooms:
            exact = solve_exact(dc, wl, pc, temp_step=2.0)
            heur, _ = best_psi_assignment(dc, wl, pc,
                                          psis=(25.0, 50.0, 100.0))
            rows.append((exact, heur))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    gaps = [100 * (e.reward_rate - h.reward_rate) / e.reward_rate
            for e, h in rows]

    with capsys.disabled():
        dc0 = rooms[0][0]
        print()
        print("exact-vs-heuristic gap on tiny rooms "
              f"({dc0.n_nodes} nodes x {dc0.nodes[0].n_cores} cores, "
              f"{count_assignments(dc0)} P-state assignments x outlet grid)")
        print(f"{'seed':>6}{'exact':>9}{'heuristic':>11}{'gap %':>8}"
              f"{'LP solves':>11}")
        for s, (e, h), g in zip(seeds, rows, gaps):
            print(f"{s:>6}{e.reward_rate:>9.3f}{h.reward_rate:>11.3f}"
                  f"{g:>8.2f}{e.lp_solves:>11}")
        print(f"mean gap {np.mean(gaps):.2f}%, max {np.max(gaps):.2f}% "
              "(paper: 'no improvement' found by brute force on its "
              "40-node check)")

    # the heuristic may tie but never meaningfully beats the enumeration
    for e, h in rows:
        assert h.reward_rate <= e.reward_rate * 1.02 + 1e-9
    assert np.mean(gaps) < 15.0
