"""Discrete-event replay of a task trace through the dynamic scheduler.

This is the paper's second-step evaluation: tasks arrive, the
:class:`~repro.core.scheduler.DynamicScheduler` maps each to a core (or
drops it), cores execute their queues FIFO, and reward is collected for
every task finished by its deadline.  Because the scheduler only assigns
tasks it can finish in time, assignment implies reward; completions are
still simulated as events so busy time and queue depths are exact.
"""

from __future__ import annotations

import numpy as np

from repro.core.scheduler import DynamicScheduler
from repro.datacenter.builder import DataCenter
from repro.simulate.events import EventKind, EventQueue
from repro.simulate.metrics import SimulationMetrics
from repro.workload.tasktypes import Workload
from repro.workload.trace import Task

__all__ = ["simulate_trace"]


def simulate_trace(datacenter: DataCenter, workload: Workload,
                   tc: np.ndarray, pstates: np.ndarray,
                   trace: list[Task], *,
                   duration: float | None = None,
                   collect_latency: bool = True) -> SimulationMetrics:
    """Replay ``trace`` and return :class:`SimulationMetrics`.

    Parameters
    ----------
    tc / pstates:
        Desired rates and P-states from a first-step assignment (either
        technique).
    trace:
        Tasks sorted by arrival time (as produced by
        :func:`repro.workload.trace.generate_trace`).
    duration:
        Horizon used for rate metrics; defaults to the last arrival (or
        1s for an empty trace).  Completions beyond the horizon still
        execute — the horizon only normalizes rates.
    collect_latency:
        Record per-task response times (memory ~ one float per task);
        disable for very long runs that only need rates.
    """
    if duration is None:
        duration = trace[-1].arrival if trace else 1.0
        duration = max(duration, 1e-9)
    scheduler = DynamicScheduler(datacenter, workload, tc, pstates)
    n_cores = datacenter.n_cores
    t_count = workload.n_task_types
    core_free = np.zeros(n_cores)
    busy = np.zeros(n_cores)
    busy_by_type = np.zeros((t_count, n_cores))
    latencies: list[list[float]] | None = \
        [[] for _ in range(t_count)] if collect_latency else None
    completed = np.zeros(t_count, dtype=int)
    dropped = np.zeros(t_count, dtype=int)
    total_reward = 0.0

    queue = EventQueue()
    for task in trace:
        queue.push(task.arrival, EventKind.ARRIVAL, task)
    prev_time = 0.0
    while queue:
        event = queue.pop()
        if event.time < prev_time - 1e-9:
            raise AssertionError("event times went backwards")
        prev_time = event.time
        if event.kind is EventKind.COMPLETION:
            task_type, core = event.payload
            completed[task_type] += 1
            total_reward += float(workload.rewards[task_type])
            continue
        task: Task = event.payload
        core = scheduler.select_core(task.task_type, task.deadline,
                                     task.arrival, core_free)
        if core is None:
            dropped[task.task_type] += 1
            continue
        scheduler.record_assignment(task.task_type, core)
        start = max(task.arrival, core_free[core])
        exec_time = scheduler.exec_time[task.task_type, core]
        finish = start + exec_time
        if finish > task.deadline + 1e-9:
            raise AssertionError(
                "scheduler assigned a task it cannot finish in time")
        core_free[core] = finish
        # busy time is clipped to the measurement horizon so utilization
        # stays a fraction even when queues extend past it (long-deadline
        # types may legally finish after the last arrival)
        clipped = max(0.0, min(finish, duration) - min(start, duration))
        busy[core] += clipped
        busy_by_type[task.task_type, core] += clipped
        if latencies is not None:
            latencies[task.task_type].append(finish - task.arrival)
        queue.push(finish, EventKind.COMPLETION, (task.task_type, core))

    return SimulationMetrics(
        duration=float(duration),
        total_reward=total_reward,
        completed=completed,
        dropped=dropped,
        atc=scheduler.assigned / float(duration),
        tc=np.asarray(tc, dtype=float),
        busy_time=busy,
        busy_by_type=busy_by_type,
        response_times=(None if latencies is None else
                        [np.asarray(l) for l in latencies]),
    )
