"""Precomputed lookup tables shared by the vectorized kernels.

Two kinds of memoization:

* :class:`CorePowerTable` — the per-type P-state power ladders padded
  into one dense ``(n_types, max_eta)`` array plus the node/core layout
  arrays the kernels gather through.  Built once per
  :class:`~repro.datacenter.builder.DataCenter` and cached on the
  instance (rooms are immutable after construction).
* :class:`CachedCoP` — exact memoization of a CoP curve evaluation at
  repeated outlet-temperature vectors.  The stage-1 temperature search
  revisits the same outlet vectors across psi levels and controller
  epochs; the quadratic is cheap but the memo makes the evaluation a
  dict lookup and — more importantly — guarantees bit-identical values
  for identical inputs by construction.

Both return the exact same floats the unmemoized path produces: a table
gather reads the same IEEE doubles the scalar code reads, and the CoP
memo stores the result of the one real evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.datacenter.builder import DataCenter
    from repro.power.cop import CoPModel

__all__ = ["CorePowerTable", "core_power_table", "CachedCoP"]

_TABLE_ATTR = "_kernel_core_power_table"


@dataclass(frozen=True)
class CorePowerTable:
    """Dense P-state power lookup + room layout arrays.

    Attributes
    ----------
    power:
        ``(n_types, max_eta)`` per-core P-state power, kW; rows of types
        with fewer P-states are zero-padded (the pad is never indexed —
        call sites bounds-check against :attr:`n_pstates` first).
    n_pstates / off_pstate:
        Per-type ladder length ``eta_j`` and off index (``eta_j - 1``).
    node_first_core / node_n_cores:
        Global core-index layout, one entry per node.
    """

    power: np.ndarray
    n_pstates: np.ndarray
    off_pstate: np.ndarray
    node_first_core: np.ndarray
    node_n_cores: np.ndarray


def core_power_table(datacenter: "DataCenter") -> CorePowerTable:
    """The room's :class:`CorePowerTable`, built once and cached."""
    cached = datacenter.__dict__.get(_TABLE_ATTR)
    if cached is not None:
        return cached
    specs = datacenter.node_types
    etas = np.asarray([spec.n_pstates for spec in specs], dtype=int)
    power = np.zeros((len(specs), int(etas.max())))
    for t, spec in enumerate(specs):
        power[t, :etas[t]] = np.asarray(spec.pstate_power_kw)
    counts = np.asarray([node.n_cores for node in datacenter.nodes],
                        dtype=int)
    firsts = np.concatenate([[0], np.cumsum(counts)[:-1]]).astype(int)
    table = CorePowerTable(
        power=power,
        n_pstates=etas,
        off_pstate=etas - 1,
        node_first_core=firsts,
        node_n_cores=counts,
    )
    datacenter.__dict__[_TABLE_ATTR] = table
    return table


class CachedCoP:
    """Memoizing wrapper around a :class:`~repro.power.cop.CoPModel`.

    Keyed on the exact bytes of the input array, so a hit returns the
    bit-identical result of the original evaluation.  The memo is
    bounded (FIFO eviction) — the temperature search only ever visits a
    few hundred distinct outlet vectors, so eviction is a safety valve,
    not a steady state.
    """

    _MAX_ENTRIES = 4096

    def __init__(self, model: "CoPModel"):
        self.model = model
        self._memo: dict[bytes, np.ndarray] = {}

    def __call__(self, t_out_c) -> np.ndarray:
        t = np.asarray(t_out_c, dtype=float)
        key = t.tobytes()
        hit = self._memo.get(key)
        if hit is None:
            hit = np.asarray(self.model(t), dtype=float)
            if len(self._memo) >= self._MAX_ENTRIES:
                self._memo.pop(next(iter(self._memo)))
            self._memo[key] = hit
        return hit.copy()
