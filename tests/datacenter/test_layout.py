"""Tests for repro.datacenter.layout — racks, labels, hot aisles."""

import numpy as np
import pytest

from repro.datacenter.layout import (RACK_LABELS, TABLE_II_RANGES, LabelRanges,
                                     build_layout, hot_aisle_split_matrix)


class TestTableII:
    def test_all_labels_present(self):
        assert set(TABLE_II_RANGES) == set(RACK_LABELS)

    @pytest.mark.parametrize("label,ec,rc", [
        ("A", (0.30, 0.40), (0.00, 0.10)),
        ("B", (0.30, 0.40), (0.00, 0.20)),
        ("C", (0.40, 0.50), (0.10, 0.30)),
        ("D", (0.70, 0.80), (0.30, 0.70)),
        ("E", (0.80, 0.90), (0.40, 0.80)),
    ])
    def test_paper_ranges(self, label, ec, rc):
        r = TABLE_II_RANGES[label]
        assert (r.ec_min, r.ec_max) == ec
        assert (r.rc_min, r.rc_max) == rc

    def test_top_of_rack_recirculates_more(self):
        """EC and RC both increase with height (paper's discussion)."""
        ecs = [TABLE_II_RANGES[l].ec_max for l in RACK_LABELS]
        rcs = [TABLE_II_RANGES[l].rc_max for l in RACK_LABELS]
        assert ecs == sorted(ecs)
        assert rcs == sorted(rcs)

    def test_label_ranges_validation(self):
        with pytest.raises(ValueError, match="min exceeds max"):
            LabelRanges(0.5, 0.4, 0.0, 0.1)
        with pytest.raises(ValueError, match=r"\[0,1\]"):
            LabelRanges(0.5, 1.4, 0.0, 0.1)


class TestBuildLayout:
    def test_paper_room(self):
        layout = build_layout(150, 3, nodes_per_rack=5)
        assert layout.n_nodes == 150
        assert layout.n_racks == 30
        # balanced labels: 30 of each
        for label in RACK_LABELS:
            assert layout.nodes_with_label(label).size == 30

    def test_bottom_slot_is_label_a(self):
        layout = build_layout(10, 2)
        assert layout.label_of_node[0] == "A"
        assert layout.label_of_node[4] == "E"

    def test_hot_aisles_round_robin(self):
        layout = build_layout(30, 3, nodes_per_rack=5)
        counts = np.bincount(layout.hot_aisle_of_node, minlength=3)
        assert counts.tolist() == [10, 10, 10]

    def test_partial_rack(self):
        layout = build_layout(7, 1, nodes_per_rack=5)
        assert layout.n_racks == 2
        assert layout.label_of_node[6] == "B"

    def test_unknown_label_rejected(self):
        layout = build_layout(5, 1)
        with pytest.raises(ValueError, match="unknown"):
            layout.nodes_with_label("Z")

    @pytest.mark.parametrize("n_nodes,n_crac,npr", [
        (0, 1, 5), (5, 0, 5), (5, 1, 0), (5, 1, 9),
    ])
    def test_bad_arguments(self, n_nodes, n_crac, npr):
        with pytest.raises(ValueError):
            build_layout(n_nodes, n_crac, npr)


class TestHotAisleSplit:
    def test_rows_sum_to_one(self):
        m = hot_aisle_split_matrix(3)
        np.testing.assert_allclose(m.sum(axis=1), 1.0)

    def test_facing_crac_dominates(self):
        m = hot_aisle_split_matrix(3, facing_share=0.7)
        for i in range(3):
            assert m[i, i] == pytest.approx(0.7)
            assert np.all(m[i, i] >= m[i])

    def test_single_crac_identity(self):
        np.testing.assert_allclose(hot_aisle_split_matrix(1), [[1.0]])

    def test_nearer_crac_gets_more(self):
        m = hot_aisle_split_matrix(4, facing_share=0.6)
        # aisle 0: CRAC 1 closer than CRAC 3
        assert m[0, 1] > m[0, 3]

    def test_bad_args(self):
        with pytest.raises(ValueError, match="positive"):
            hot_aisle_split_matrix(0)
        with pytest.raises(ValueError, match="facing_share"):
            hot_aisle_split_matrix(3, facing_share=0.0)
