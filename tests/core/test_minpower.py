"""Tests for repro.core.minpower — the Section VIII extension."""

import numpy as np
import pytest

from repro.core.assignment import three_stage_assignment
from repro.core.minpower import minimize_power


@pytest.fixture(scope="module")
def primal(scenario):
    return three_stage_assignment(scenario.datacenter, scenario.workload,
                                  scenario.p_const, psi=50.0)


@pytest.fixture(scope="module")
def minpower(scenario, primal):
    target = 0.8 * primal.reward_rate
    return target, minimize_power(scenario.datacenter, scenario.workload,
                                  target, psi=50.0)


class TestMinPower:
    def test_relaxed_reward_meets_target(self, minpower):
        target, res = minpower
        assert res.relaxed_reward >= target - 1e-6

    def test_cheaper_than_primal_cap(self, scenario, minpower):
        """Asking for 80% of the reward must cost less than the cap the
        primal problem saturated."""
        _, res = minpower
        assert res.total_power_kw < scenario.p_const

    def test_thermally_feasible(self, scenario, minpower):
        _, res = minpower
        dc = scenario.datacenter
        node_power = dc.node_power_kw(res.pstates)
        assert dc.thermal.is_feasible(res.t_crac_out, node_power,
                                      dc.redline_c)

    def test_monotone_in_target(self, scenario, primal):
        """Higher reward targets cost at least as much power."""
        lo = minimize_power(scenario.datacenter, scenario.workload,
                            0.5 * primal.reward_rate)
        hi = minimize_power(scenario.datacenter, scenario.workload,
                            0.9 * primal.reward_rate)
        assert hi.total_power_kw >= lo.total_power_kw - 1e-6

    def test_unreachable_target_raises(self, scenario, primal):
        with pytest.raises(RuntimeError, match="unreachable"):
            minimize_power(scenario.datacenter, scenario.workload,
                           100.0 * primal.reward_rate)

    def test_bad_target_rejected(self, scenario):
        with pytest.raises(ValueError, match="positive"):
            minimize_power(scenario.datacenter, scenario.workload, 0.0)

    def test_decisions_well_formed(self, scenario, minpower):
        _, res = minpower
        dc = scenario.datacenter
        assert res.pstates.shape == (dc.n_cores,)
        assert res.tc.shape == (scenario.workload.n_task_types, dc.n_cores)
        assert res.reward_rate > 0
