"""Tests for repro.obs.trace — spans, nesting, disabled no-op, capture."""

import threading

from repro import obs
from repro.obs.trace import _NULL_SPAN, Tracer, annotate, span


class TestDisabled:
    def test_span_is_shared_noop(self):
        assert span("a") is _NULL_SPAN
        assert span("b", k=1) is _NULL_SPAN

    def test_noop_span_records_nothing(self):
        with span("solve"):
            with span("inner"):
                pass
        annotate(ignored=True)
        assert obs.current_tracer().records == []

    def test_set_is_chainable_noop(self):
        assert span("x").set(a=1) is _NULL_SPAN


class TestNesting:
    def test_paths_dot_join_and_exit_order(self):
        obs.enable()
        with span("solve"):
            with span("stage1"):
                pass
            with span("stage3"):
                pass
        paths = [r["path"] for r in obs.current_tracer().records]
        assert paths == ["solve.stage1", "solve.stage3", "solve"]

    def test_sibling_reuse_same_parent(self):
        obs.enable()
        with span("a"):
            for _ in range(3):
                with span("b"):
                    pass
        paths = [r["path"] for r in obs.current_tracer().records]
        assert paths == ["a.b", "a.b", "a.b", "a"]

    def test_record_fields(self):
        obs.enable()
        with span("lp", vars=7):
            pass
        (rec,) = obs.current_tracer().records
        assert rec["name"] == "lp"
        assert rec["path"] == "lp"
        assert rec["attrs"] == {"vars": 7}
        assert rec["dur"] >= 0.0

    def test_annotate_lands_on_innermost_open_span(self):
        obs.enable()
        with span("outer"):
            with span("inner"):
                annotate(probes=12)
        recs = {r["path"]: r for r in obs.current_tracer().records}
        assert recs["outer.inner"]["attrs"] == {"probes": 12}
        assert recs["outer"]["attrs"] == {}

    def test_annotate_without_open_span_is_noop(self):
        obs.enable()
        annotate(orphan=True)
        assert obs.current_tracer().records == []

    def test_exception_still_records_and_pops(self):
        obs.enable()
        try:
            with span("outer"):
                with span("boom"):
                    raise RuntimeError("x")
        except RuntimeError:
            pass
        paths = [r["path"] for r in obs.current_tracer().records]
        assert paths == ["outer.boom", "outer"]
        # the stack unwound completely: a new span is a root again
        with span("after"):
            pass
        assert obs.current_tracer().records[-1]["path"] == "after"


class TestThreads:
    def test_threads_do_not_nest_under_each_other(self):
        obs.enable()
        ready = threading.Barrier(2)

        def work(name: str) -> None:
            ready.wait()
            with span(name):
                pass

        with span("main"):
            threads = [threading.Thread(target=work, args=(f"t{i}",))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        paths = sorted(r["path"] for r in obs.current_tracer().records)
        # worker spans are roots of their own threads, not "main.tN"
        assert paths == ["main", "t0", "t1"]


class TestCapture:
    def test_capture_isolates_and_restores(self):
        obs.enable()
        with span("before"):
            pass
        with obs.capture() as snap_fn:
            with span("inside"):
                pass
            snapshot = snap_fn()
        with span("after"):
            pass
        outer_paths = [r["path"] for r in obs.current_tracer().records]
        assert outer_paths == ["before", "after"]
        assert [r["path"] for r in snapshot["spans"]] == ["inside"]

    def test_capture_restores_on_error(self):
        tracer_before = obs.current_tracer()
        try:
            with obs.capture():
                raise ValueError("boom")
        except ValueError:
            pass
        assert obs.current_tracer() is tracer_before

    def test_capture_records_even_when_globally_disabled(self):
        assert not obs.enabled()
        with obs.capture() as snap_fn:
            with span("inside"):
                pass
            snapshot = snap_fn()
        assert [r["path"] for r in snapshot["spans"]] == ["inside"]
        assert not obs.enabled()


class TestMergeAndReset:
    def test_merge_appends_in_call_order(self):
        obs.enable()
        with span("parent"):
            pass
        worker = Tracer(enabled=True)
        worker.record({"path": "w", "name": "w", "t0": 0.0, "dur": 0.1,
                       "attrs": {}})
        obs.current_tracer().merge(worker.snapshot())
        paths = [r["path"] for r in obs.current_tracer().records]
        assert paths == ["parent", "w"]

    def test_reset_drops_records_keeps_enabled(self):
        obs.enable()
        with span("x"):
            pass
        obs.reset()
        assert obs.current_tracer().records == []
        assert obs.enabled()
