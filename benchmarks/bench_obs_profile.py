"""Observability layer — tracing overhead and the profile artifact.

Runs the first-step solve + second-step DES replay twice on the same
room: once with :mod:`repro.obs` disabled (the tier-1 configuration)
and once recording.  Reports the relative overhead — the layer's
contract is <2% while disabled and modest while enabled — and writes
the enabled run's aggregated profile tree plus metrics snapshot to
``BENCH_obs.json`` (the same document ``repro profile --json`` emits
for a ``--trace-out`` log).
"""

import json
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.core import three_stage_assignment
from repro.experiments import ScenarioConfig, generate_scenario
from repro.obs import profile_from_snapshot, profile_to_dict
from repro.simulate import simulate_trace
from repro.workload import generate_trace

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _pipeline(sc, horizon):
    plan = three_stage_assignment(sc.datacenter, sc.workload, sc.p_const,
                                  psi=50.0)
    trace = generate_trace(sc.workload, horizon,
                           np.random.default_rng(sc.seed + 1))
    return simulate_trace(sc.datacenter, sc.workload, plan.tc,
                          plan.pstates, trace, duration=horizon)


def bench_obs_profile(benchmark, capsys, scale):
    sc = generate_scenario(
        ScenarioConfig(name="obs", n_nodes=min(20, scale.n_nodes)), 11)
    horizon = scale.des_horizon

    # warm-up (imports, caches) so both timed passes see the same state
    _pipeline(sc, horizon)

    t0 = time.perf_counter()
    untraced = _pipeline(sc, horizon)
    wall_off = time.perf_counter() - t0

    with obs.capture() as snap_fn:
        t0 = time.perf_counter()
        traced = _pipeline(sc, horizon)
        wall_on = time.perf_counter() - t0
    snapshot = snap_fn()

    # tracing must not change a single number
    assert traced.total_reward == untraced.total_reward
    assert np.array_equal(traced.completed, untraced.completed)

    benchmark.pedantic(_pipeline, args=(sc, horizon), rounds=1,
                       iterations=1)

    root = profile_from_snapshot(snapshot)
    overhead_pct = 100.0 * (wall_on - wall_off) / wall_off
    doc = {
        "schema": 1,
        "scale": scale.name,
        "n_nodes": sc.datacenter.n_nodes,
        "horizon_s": horizon,
        "wall_untraced_s": wall_off,
        "wall_traced_s": wall_on,
        "overhead_pct": overhead_pct,
        "n_spans": len(snapshot["spans"]),
        "profile": profile_to_dict(root),
        "metrics": snapshot["metrics"],
    }
    OUT_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    with capsys.disabled():
        print()
        print(f"untraced pipeline : {wall_off * 1e3:8.1f} ms")
        print(f"traced pipeline   : {wall_on * 1e3:8.1f} ms "
              f"({overhead_pct:+.1f}%)")
        print(f"spans recorded    : {len(snapshot['spans'])}")
        print(f"profile written   : {OUT_PATH}")
