"""RL031 good: casts touch only dimensionless values."""


def quantize(count: float, ratio: float) -> tuple[int, int]:
    return int(count), int(round(ratio))
