"""RL003 good: every draw flows from a seeded Generator."""

import random

import numpy as np


def draw(seed: int, rng: np.random.Generator | None = None):
    if rng is None:
        rng = np.random.default_rng(seed)
    a = rng.random()
    b = rng.choice([1, 2, 3])
    r = random.Random(seed)              # explicitly seeded is fine
    return a, b, r
