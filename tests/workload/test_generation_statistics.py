"""Statistical validation of the Section VI generators over many seeds.

Single-seed tests verify bounds; these verify the *distributions* the
paper's recipe implies: performance ratios, doubling structure, arrival
scaling and deadline coverage all concentrate where they should.
"""

import numpy as np
import pytest

from repro.datacenter.coretypes import paper_node_types
from repro.workload.ecs import generate_ecs, generate_p0_ecs
from repro.workload.tasktypes import deadline_slacks, rewards_from_ecs

TYPES = paper_node_types()
N_SEEDS = 40


class TestEcsDistributions:
    def test_node_type_ratio_concentrates_at_0_6(self):
        ratios = []
        for seed in range(N_SEEDS):
            m = generate_p0_ecs(8, TYPES, np.random.default_rng(seed))
            ratios.append((m[:, 0] / m[:, 1]).mean())
        assert np.mean(ratios) == pytest.approx(0.6, rel=0.03)

    def test_task_doubling_structure_survives_noise(self):
        """Adjacent task-type means stay near ratio 2 despite V_ecs."""
        log_ratios = []
        for seed in range(N_SEEDS):
            m = generate_p0_ecs(8, TYPES, np.random.default_rng(seed))
            means = m.mean(axis=1)
            log_ratios.extend(np.log2(means[1:] / means[:-1]))
        assert np.mean(log_ratios) == pytest.approx(1.0, abs=0.05)

    def test_pstate_scaling_tracks_clock_ratio(self):
        """Mean ECS(P1)/ECS(P0) over seeds ~ f1/f0 (slightly below, due
        to the monotonicity repair's rejection of high draws)."""
        ratios = {0: [], 1: []}
        for seed in range(N_SEEDS):
            ecs = generate_ecs(8, TYPES, np.random.default_rng(seed),
                               v_prop=0.1)
            for j, spec in enumerate(TYPES):
                f = spec.frequencies_mhz
                ratios[j].append(
                    (ecs[:, j, 1] / ecs[:, j, 0]).mean() / (f[1] / f[0]))
        for j in ratios:
            assert np.mean(ratios[j]) == pytest.approx(1.0, abs=0.05)

    def test_rewards_inverse_to_easiness(self):
        """r_i * mean ECS_i == 1 identically (Eq. 11)."""
        for seed in range(5):
            m = generate_p0_ecs(8, TYPES, np.random.default_rng(seed))
            r = rewards_from_ecs(m)
            np.testing.assert_allclose(r * m.mean(axis=1), 1.0)


class TestDeadlineCoverage:
    def test_deadlines_span_their_interval(self):
        """Across seeds, m_i draws cover the [1.5/Max, 1.5/Min] interval
        rather than clustering at one end."""
        positions = []
        for seed in range(N_SEEDS):
            rng = np.random.default_rng(seed)
            ecs = generate_ecs(8, TYPES, rng)
            m = deadline_slacks(ecs, rng)
            lo = 1.5 / ecs[:, :, 0].max(axis=1)
            hi = 1.5 / ecs[:, :, -2].min(axis=1)
            positions.extend((m - lo) / (hi - lo))
        positions = np.asarray(positions)
        assert positions.min() >= -1e-9
        assert positions.max() <= 1.0 + 1e-9
        # roughly uniform: mean near 1/2, both halves populated
        assert 0.4 < positions.mean() < 0.6
        assert (positions < 0.25).mean() > 0.1
        assert (positions > 0.75).mean() > 0.1

    def test_some_types_meetable_at_lowest_frequency(self):
        """The paper: "There is also a chance of generating a task type
        such that some of its tasks' deadlines can be met by all core
        types running at their lowest frequency" — observed over seeds."""
        seen = False
        for seed in range(N_SEEDS):
            rng = np.random.default_rng(seed)
            ecs = generate_ecs(8, TYPES, rng)
            m = deadline_slacks(ecs, rng)
            worst_exec = 1.0 / ecs[:, :, -2].min(axis=1)
            if np.any(m >= worst_exec):
                seen = True
                break
        assert seen
